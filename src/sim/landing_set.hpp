#pragma once
// Sorted small-vector of out-of-order landed instance numbers.
//
// Under injected DMA retry stalls a later transfer can complete before an
// earlier one; the consumer reads its cyclic buffer in order, so such
// landings park here until the contiguous frontier reaches them.  The set
// is tiny (bounded by the DMA queue depth) and strictly drains from the
// front as the frontier advances, so a sorted vector with a lazy head
// offset beats the former std::set<int64_t>: no per-landing node
// allocation, and the frontier-advance loop is a pointer bump.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace cellstream::sim {

class LandingSet {
 public:
  bool empty() const { return head_ == values_.size(); }
  std::size_t size() const { return values_.size() - head_; }

  /// Insert a value not already present (each instance lands exactly
  /// once; a duplicate landing would be an accounting bug, so it throws).
  void insert(std::int64_t value) {
    const auto begin = values_.begin() + static_cast<std::ptrdiff_t>(head_);
    const auto it = std::lower_bound(begin, values_.end(), value);
    CS_ASSERT(it == values_.end() || *it != value,
              "LandingSet: duplicate landing");
    values_.insert(it, value);
  }

  /// Pop `frontier` while it is the smallest parked value, advancing the
  /// reference: returns the new frontier after consuming the contiguous
  /// run that starts at `frontier`.
  std::int64_t advance_frontier(std::int64_t frontier) {
    while (head_ < values_.size() && values_[head_] == frontier) {
      ++head_;
      ++frontier;
    }
    compact();
    return frontier;
  }

  /// Visit parked values in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = head_; i < values_.size(); ++i) fn(values_[i]);
  }

  /// Translate every parked value by `delta` (steady-state fast-forward).
  void shift(std::int64_t delta) {
    for (std::size_t i = head_; i < values_.size(); ++i) values_[i] += delta;
  }

 private:
  void compact() {
    // Reclaim the consumed prefix once it dominates the storage; keeps
    // the vector from creeping even on endless retry-stall runs.
    if (head_ >= 8 && head_ * 2 >= values_.size()) {
      values_.erase(values_.begin(),
                    values_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<std::int64_t> values_;
  std::size_t head_ = 0;  // values_[0..head_) already consumed
};

}  // namespace cellstream::sim
