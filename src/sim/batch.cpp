#include "sim/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "support/error.hpp"

namespace cellstream::sim {

std::size_t default_batch_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void run_batch(std::size_t count, const std::function<void(std::size_t)>& job,
               const BatchOptions& options) {
  CS_ENSURE(job != nullptr, "run_batch: null job");
  if (count == 0) return;
  std::size_t threads =
      options.threads == 0 ? default_batch_threads() : options.threads;
  threads = std::min(threads, count);

  if (threads <= 1) {
    // Same contract as the pooled path: the batch runs to completion and
    // the lowest-indexed failure (= the first, serially) is rethrown.
    std::exception_ptr first;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        job(i);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  // Work stealing by atomic ticket: long jobs don't serialize behind a
  // static partition.  Failures are parked per index so the batch always
  // completes and the rethrow below is deterministic.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(count);
  const auto worker = [&next, &errors, &job, count] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();  // the calling thread pulls tickets too
  for (std::thread& t : pool) t.join();

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace cellstream::sim
