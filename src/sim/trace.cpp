#include "sim/trace.hpp"

#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace cellstream::sim {

namespace {

// Escape the few JSON-special characters our names can contain.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const CellPlatform& platform) {
  out << "[\n";
  // Thread-name metadata: one lane per PE for compute, one for transfers.
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << line;
  };
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(pe) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         platform.pe_name(pe) + "\"}}");
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(platform.pe_count() + pe) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         platform.pe_name(pe) + " transfers\"}}");
  }
  for (const TraceEvent& e : events) {
    CS_ENSURE(e.end >= e.start, "write_chrome_trace: negative duration");
    const std::size_t lane =
        e.kind == TraceEvent::Kind::kCompute ? e.pe
                                             : platform.pe_count() + e.pe;
    std::ostringstream line;
    line << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << lane << ",\"name\":\""
         << json_escape(e.name) << "\",\"ts\":" << e.start * 1e6
         << ",\"dur\":" << (e.end - e.start) * 1e6
         << ",\"cat\":\""
         << (e.kind == TraceEvent::Kind::kCompute ? "compute" : "transfer")
         << "\"";
    if (e.instance >= 0) {
      line << ",\"args\":{\"instance\":" << e.instance << "}";
    }
    line << "}";
    emit(line.str());
  }
  out << "\n]\n";
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const CellPlatform& platform) {
  std::ostringstream os;
  write_chrome_trace(os, events, platform);
  return os.str();
}

}  // namespace cellstream::sim
