#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <set>
#include <string>

#include "des/engine.hpp"
#include "des/flow_network.hpp"
#include "fault/injector.hpp"
#include "support/strings.hpp"

namespace cellstream::sim {

namespace {

using des::NodeId;

/// One unit of asynchronous communication a PE can initiate during its
/// communication phase.
struct Channel {
  enum class Kind { kEdgeFetch, kMemRead, kMemWrite };
  Kind kind;
  std::size_t index;  // EdgeId for kEdgeFetch, TaskId otherwise
};

struct EdgeState {
  PeId src = 0, dst = 0;
  bool remote = false;
  std::int64_t depth = 0;   // buffer capacity in instances
  double bytes = 0.0;
  std::int64_t produced = 0;  // instances written by the producer
  std::int64_t fetched = 0;   // contiguous landing frontier at the consumer
  std::int64_t issued = 0;    // DMAs ever issued (remote)
  std::int64_t inflight = 0;  // DMAs in the air (remote)
  std::int64_t consumed = 0;  // instances the consumer is finished with
  /// Instances whose DMA completed while an earlier one is still in the
  /// air (possible only under injected retry stalls).  The consumer reads
  /// its cyclic buffer in order, so data becomes *usable* only when the
  /// contiguous frontier reaches it.
  std::set<std::int64_t> landed_ooo;
};

struct TaskState {
  PeId pe = 0;
  double work = 0.0;  // seconds per instance on its host
  int peek = 0;
  std::int64_t next_instance = 0;
  // Main-memory streams (same frontier discipline as EdgeState).
  double read_bytes = 0.0;
  std::int64_t mem_fetched = 0, mem_issued = 0, mem_inflight = 0;
  std::set<std::int64_t> mem_landed_ooo;
  double write_bytes = 0.0;
  std::int64_t writes_started = 0, writes_done = 0;
};

struct PeState {
  std::vector<TaskId> tasks;       // topological order
  std::vector<Channel> channels;   // communication work this PE initiates
  std::size_t task_cursor = 0;
  std::size_t channel_cursor = 0;
  bool busy = false;
  bool wake_scheduled = false;
  std::size_t gets_outstanding = 0;   // SPE MFC queue (<= spe_dma_slots)
  std::size_t proxy_outstanding = 0;  // PPE-issued reads from this SPE (<= 8)
};

class Simulator {
 public:
  Simulator(const SteadyStateAnalysis& analysis, const Mapping& mapping,
            const SimOptions& options)
      : ss_(analysis),
        graph_(analysis.graph()),
        platform_(analysis.platform()),
        mapping_(mapping),
        opt_(options),
        net_(make_network()) {
    CS_ENSURE(opt_.instances >= 1, "simulate: empty stream");
    mapping.validate(platform_);
    CS_ENSURE(mapping.task_count() == graph_.task_count(),
              "simulate: mapping does not match the graph");
    if (opt_.enforce_local_store) {
      const ResourceUsage u = ss_.usage(mapping);
      for (PeId pe = platform_.ppe_count; pe < platform_.pe_count(); ++pe) {
        CS_ENSURE(u.buffer_bytes[pe] <=
                      static_cast<double>(platform_.buffer_budget()),
                  "simulate: buffers of " + platform_.pe_name(pe) +
                      " exceed the local store (" +
                      format_bytes(u.buffer_bytes[pe]) + "); mapping cannot "
                      "be loaded on real hardware");
      }
    }
    if (opt_.fault_plan != nullptr && !opt_.fault_plan->empty()) {
      opt_.fault_plan->validate(platform_);
      CS_ENSURE(opt_.instance_offset >= 0,
                "simulate: instance_offset must be >= 0");
      CS_ENSURE(!opt_.fault_plan->pe_failure,
                "simulate: plans with a permanent fail-stop need the "
                "failover coordinator (fault::run_with_failover); the raw "
                "simulator models transient faults only");
      injector_.emplace(*opt_.fault_plan);
      hang_fired_.assign(opt_.fault_plan->hangs.size(), 0);
    }
    build_state();
    register_chip_links();
  }

  SimResult run();

 private:
  des::FlowNetwork make_network() {
    const std::size_t n = platform_.pe_count();
    std::vector<double> out_cap(n + 1, platform_.interface_bandwidth);
    std::vector<double> in_cap(n + 1, platform_.interface_bandwidth);
    out_cap[n] = des::FlowNetwork::infinity();  // main memory
    in_cap[n] = des::FlowNetwork::infinity();
    return des::FlowNetwork(engine_, std::move(out_cap), std::move(in_cap));
  }

  void build_state();
  void register_chip_links();

  des::TransferId start_edge_transfer(const EdgeState& e, PeId dst,
                                      std::function<void()> done) {
    if (platform_.chip_count > 1 && platform_.crosses_chips(e.src, dst)) {
      return net_.start_transfer_over(
          {net_.out_port(e.src), xchip_out_[platform_.chip_of(e.src)],
           xchip_in_[platform_.chip_of(dst)], net_.in_port(dst)},
          e.bytes, std::move(done));
    }
    return net_.start_transfer(e.src, dst, e.bytes, std::move(done));
  }

  void wake(PeId pe);
  void step(PeId pe);
  std::optional<Channel> find_issuable(PeId pe);
  bool channel_issuable(PeId pe, const Channel& channel) const;
  void issue(PeId pe, const Channel& channel);
  std::optional<TaskId> find_runnable(PeId pe);
  bool task_runnable(TaskId t) const;
  void complete_instance(TaskId t);
  void advance_done_counter(std::int64_t completed_instance);

  std::int64_t stream_len() const {
    return static_cast<std::int64_t>(opt_.instances);
  }

  const SteadyStateAnalysis& ss_;
  const TaskGraph& graph_;
  const CellPlatform& platform_;
  Mapping mapping_;
  SimOptions opt_;

  // Main memory sits on the extra flow-network node after the PEs.
  NodeId memory_node() const { return platform_.pe_count(); }

  des::Engine engine_;
  des::FlowNetwork net_;
  // Per-chip inter-chip link resources (Section 7 extension); empty on
  // single-chip platforms.
  std::vector<des::ResourceId> xchip_out_, xchip_in_;

  std::vector<EdgeState> edges_;
  std::vector<TaskState> tasks_;
  std::vector<PeState> pes_;

  std::int64_t done_count_ = 0;
  std::int64_t tasks_at_done_ = 0;
  std::vector<double> completion_times_;
  // Unified telemetry (busy/overhead/bytes/queue peaks per PE, period
  // timestamps) — the single source of truth for SimResult's accounting.
  obs::Recorder recorder_;
  std::vector<TraceEvent> trace_;

  // Deterministic fault injection (engaged only when a plan is supplied).
  std::optional<fault::FaultInjector> injector_;
  std::vector<char> hang_fired_;  // one-shot latch per hang spec
  fault::FaultStats faults_;
};

void Simulator::register_chip_links() {
  if (platform_.chip_count <= 1) return;
  for (std::size_t chip = 0; chip < platform_.chip_count; ++chip) {
    xchip_out_.push_back(net_.add_resource(platform_.cross_chip_bandwidth));
    xchip_in_.push_back(net_.add_resource(platform_.cross_chip_bandwidth));
  }
}

void Simulator::build_state() {
  edges_.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const Edge& edge = graph_.edge(e);
    EdgeState& state = edges_[e];
    state.src = mapping_.pe_of(edge.from);
    state.dst = mapping_.pe_of(edge.to);
    state.remote = state.src != state.dst;
    state.depth = ss_.buffer_depth(e);
    state.bytes = edge.data_bytes;
  }

  tasks_.resize(graph_.task_count());
  pes_.resize(platform_.pe_count());
  for (TaskId t : graph_.topological_order()) {
    const Task& task = graph_.task(t);
    TaskState& state = tasks_[t];
    state.pe = mapping_.pe_of(t);
    state.work = platform_.is_ppe(state.pe) ? task.wppe : task.wspe;
    state.peek = task.peek;
    state.read_bytes = task.read_bytes;
    state.write_bytes = task.write_bytes;
    pes_[state.pe].tasks.push_back(t);
  }

  // Communication channels each PE polls during its communication phase:
  // remote-edge fetches it is the consumer of, then its tasks' memory
  // streams.
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    if (edges_[e].remote) {
      pes_[edges_[e].dst].channels.push_back(
          {Channel::Kind::kEdgeFetch, e});
    }
  }
  for (TaskId t = 0; t < graph_.task_count(); ++t) {
    if (tasks_[t].read_bytes > 0.0) {
      pes_[tasks_[t].pe].channels.push_back({Channel::Kind::kMemRead, t});
    }
    if (tasks_[t].write_bytes > 0.0) {
      pes_[tasks_[t].pe].channels.push_back({Channel::Kind::kMemWrite, t});
    }
  }

  completion_times_.assign(opt_.instances, 0.0);
  done_count_ = 0;
  tasks_at_done_ = static_cast<std::int64_t>(graph_.task_count());
  recorder_.reset(platform_.pe_count(), obs::TimeDomain::kSimulated);
}

void Simulator::wake(PeId pe) {
  PeState& state = pes_[pe];
  if (state.busy || state.wake_scheduled) return;
  state.wake_scheduled = true;
  engine_.schedule_in(0.0, [this, pe] {
    pes_[pe].wake_scheduled = false;
    step(pe);
  });
}

void Simulator::step(PeId pe) {
  PeState& state = pes_[pe];
  if (state.busy) return;

  // Communication phase: initiate one eligible transfer (issuing a DMA
  // interrupts the core briefly; the transfer itself then proceeds in the
  // background through the flow network).
  if (const std::optional<Channel> channel = find_issuable(pe)) {
    state.busy = true;
    engine_.schedule_in(opt_.dma_issue_overhead, [this, pe, ch = *channel] {
      PeState& s = pes_[pe];
      s.busy = false;
      recorder_.on_overhead(pe, opt_.dma_issue_overhead);
      // Re-validate before enqueueing: between the decision and the end of
      // the issue overhead another PE may have consumed the last shared
      // queue slot (two PPEs racing for one SPE's 8-deep proxy stack).
      // The core still paid the interruption; it simply retries.
      if (channel_issuable(pe, ch)) issue(pe, ch);
      step(pe);
    });
    return;
  }

  // Computation phase: process one instance of a runnable task.  Injected
  // faults (slowdown windows, one-shot hangs) stretch the busy period; the
  // extra time is recorded as overhead, never as work, so the occupation
  // cross-check (I7/I9) keeps comparing nominal work against the model.
  if (const std::optional<TaskId> task = find_runnable(pe)) {
    double injected = 0.0;
    if (injector_) {
      const TaskState& ts = tasks_[*task];
      const std::int64_t gi = ts.next_instance + opt_.instance_offset;
      const double slow = (injector_->compute_factor(pe, gi) - 1.0) * ts.work;
      if (slow > 0.0) {
        injected += slow;
        faults_.slowdown_seconds += slow;
      }
      const std::size_t hang = injector_->hang_index(pe, gi);
      if (hang != fault::FaultInjector::npos && !hang_fired_[hang]) {
        hang_fired_[hang] = 1;
        const double stall = injector_->hang_seconds(hang);
        injected += stall;
        ++faults_.hangs;
        faults_.hang_seconds += stall;
      }
    }
    const double duration =
        opt_.dispatch_overhead + tasks_[*task].work + injected;
    state.busy = true;
    engine_.schedule_in(duration, [this, pe, t = *task, injected] {
      PeState& s = pes_[pe];
      s.busy = false;
      recorder_.on_overhead(pe, opt_.dispatch_overhead + injected);
      recorder_.on_execution(pe, tasks_[t].work);
      if (opt_.record_trace) {
        TraceEvent ev;
        ev.kind = TraceEvent::Kind::kCompute;
        ev.name = graph_.task(t).name;
        ev.pe = pe;
        ev.src_pe = pe;
        // The window covers the whole processing of the instance, injected
        // stall included, so per-PE windows never overlap (I6).
        ev.start = engine_.now() - tasks_[t].work - injected;
        ev.end = engine_.now();
        ev.instance = tasks_[t].next_instance;
        ev.task = static_cast<std::int64_t>(t);
        trace_.push_back(std::move(ev));
      }
      complete_instance(t);
      step(pe);
    });
    return;
  }
  // Nothing to do: stay idle until an event wakes us.
}

bool Simulator::channel_issuable(PeId pe, const Channel& channel) const {
  const PeState& state = pes_[pe];
  const bool is_spe = platform_.is_spe(pe);
  switch (channel.kind) {
    case Channel::Kind::kEdgeFetch: {
      const EdgeState& e = edges_[channel.index];
      const std::int64_t next_fetch = e.issued;
      if (next_fetch >= e.produced) return false;             // nothing new
      if (next_fetch - e.consumed >= e.depth) return false;   // in-buf full
      if (is_spe) {
        if (state.gets_outstanding >= platform_.spe_dma_slots) return false;
      } else if (platform_.is_spe(e.src)) {
        // PPE reading from a SPE local store uses that SPE's proxy stack.
        if (pes_[e.src].proxy_outstanding >= platform_.ppe_to_spe_dma_slots) {
          return false;
        }
      }
      return true;
    }
    case Channel::Kind::kMemRead: {
      const TaskState& t = tasks_[channel.index];
      const std::int64_t next_fetch = t.mem_issued;
      if (next_fetch >= stream_len()) return false;  // stream exhausted
      if (next_fetch - t.next_instance >=
          static_cast<std::int64_t>(opt_.memory_stream_depth)) {
        return false;
      }
      return !is_spe || state.gets_outstanding < platform_.spe_dma_slots;
    }
    case Channel::Kind::kMemWrite: {
      const TaskState& t = tasks_[channel.index];
      if (t.writes_started >= t.next_instance) return false;  // no new data
      return !is_spe || state.gets_outstanding < platform_.spe_dma_slots;
    }
  }
  return false;
}

std::optional<Channel> Simulator::find_issuable(PeId pe) {
  PeState& state = pes_[pe];
  const std::size_t count = state.channels.size();
  for (std::size_t probe = 0; probe < count; ++probe) {
    const std::size_t idx = (state.channel_cursor + probe) % count;
    if (channel_issuable(pe, state.channels[idx])) {
      state.channel_cursor = (idx + 1) % count;
      return state.channels[idx];
    }
  }
  return std::nullopt;
}

void Simulator::issue(PeId pe, const Channel& channel) {
  PeState& state = pes_[pe];
  const bool is_spe = platform_.is_spe(pe);
  recorder_.on_transfer_issued(pe);
  switch (channel.kind) {
    case Channel::Kind::kEdgeFetch: {
      const EdgeId eid = channel.index;
      EdgeState& e = edges_[eid];
      ++e.inflight;
      const bool proxy = !is_spe && platform_.is_spe(e.src);
      if (is_spe) {
        ++state.gets_outstanding;
        recorder_.on_mfc_queue_depth(pe, state.gets_outstanding);
      }
      if (proxy) {
        ++pes_[e.src].proxy_outstanding;
        recorder_.on_proxy_queue_depth(e.src, pes_[e.src].proxy_outstanding);
      }
      const double t0 = engine_.now();
      const std::int64_t inst = e.issued;
      ++e.issued;
      // A failed DMA attempt holds its queue slot through the seeded
      // retry/backoff delay, then the transfer proceeds normally — data is
      // delayed, never lost.  The trace window [t0, end] spans the stall,
      // matching the slot-occupancy convention the I4 replay checks.
      const double stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kEdge, eid,
                          inst + opt_.instance_offset, &faults_.dma_retries)
                    : 0.0;
      auto launch = [this, eid, pe, proxy, t0, inst] {
        start_edge_transfer(edges_[eid], pe, [this, eid, pe, proxy, t0, inst] {
        EdgeState& edge = edges_[eid];
        --edge.inflight;
        // Land the instance, then advance the contiguous frontier: under
        // injected retry stalls a later DMA can complete first, but the
        // consumer reads its cyclic buffer in order, so the data (and the
        // producer's slot) only unlock frontier-contiguously.
        edge.landed_ooo.insert(inst);
        while (edge.landed_ooo.erase(edge.fetched) > 0) ++edge.fetched;
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        if (proxy) --pes_[edge.src].proxy_outstanding;
        // Interface accounting: a remote edge crosses the producer's out
        // interface and the consumer's in interface (constraints 1e/1f).
        recorder_.on_bytes_out(edge.src, edge.bytes);
        recorder_.on_bytes_in(pe, edge.bytes);
        if (opt_.record_trace) {
          const Edge& ge = graph_.edge(eid);
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kEdge;
          ev.name = graph_.task(ge.from).name + "->" + graph_.task(ge.to).name;
          ev.pe = pe;
          ev.src_pe = edge.src;
          ev.start = t0;
          ev.end = engine_.now();
          ev.instance = inst;
          ev.edge = static_cast<std::int64_t>(eid);
          trace_.push_back(std::move(ev));
        }
        wake(edge.src);  // output buffer slot freed
        wake(pe);        // input data available
        });
      };
      if (stall > 0.0) {
        faults_.backoff_seconds += stall;
        engine_.schedule_in(stall, std::move(launch));
      } else {
        launch();
      }
      return;
    }
    case Channel::Kind::kMemRead: {
      const TaskId tid = channel.index;
      TaskState& t = tasks_[tid];
      ++t.mem_inflight;
      if (is_spe) {
        ++state.gets_outstanding;
        recorder_.on_mfc_queue_depth(pe, state.gets_outstanding);
      }
      const double t0 = engine_.now();
      const std::int64_t inst = t.mem_issued;
      ++t.mem_issued;
      const double read_stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kMemRead, tid,
                          inst + opt_.instance_offset,
                          &faults_.dma_retries)
                    : 0.0;
      auto launch_read = [this, tid, pe, t0, inst] {
        net_.start_transfer(memory_node(), pe, tasks_[tid].read_bytes,
                            [this, tid, pe, t0, inst] {
        TaskState& task = tasks_[tid];
        --task.mem_inflight;
        // Same contiguous-frontier discipline as edge fetches: a stalled
        // read must not let a later one unlock this instance's compute.
        task.mem_landed_ooo.insert(inst);
        while (task.mem_landed_ooo.erase(task.mem_fetched) > 0) {
          ++task.mem_fetched;
        }
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        // A memory stream read enters through the reader's in interface
        // (constraint 1g); main memory itself is unconstrained.
        recorder_.on_bytes_in(pe, task.read_bytes);
        if (opt_.record_trace) {
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kMemRead;
          ev.name = "read:" + graph_.task(tid).name;
          ev.pe = pe;
          ev.src_pe = pe;
          ev.start = t0;
          ev.end = engine_.now();
          ev.instance = inst;
          ev.task = static_cast<std::int64_t>(tid);
          trace_.push_back(std::move(ev));
        }
        wake(pe);
        });
      };
      if (read_stall > 0.0) {
        faults_.backoff_seconds += read_stall;
        engine_.schedule_in(read_stall, std::move(launch_read));
      } else {
        launch_read();
      }
      return;
    }
    case Channel::Kind::kMemWrite: {
      const TaskId tid = channel.index;
      TaskState& t = tasks_[tid];
      ++t.writes_started;
      if (is_spe) {
        ++state.gets_outstanding;
        recorder_.on_mfc_queue_depth(pe, state.gets_outstanding);
      }
      const double t0 = engine_.now();
      const std::int64_t inst = t.writes_started - 1;
      const double write_stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kMemWrite, tid,
                          inst + opt_.instance_offset,
                          &faults_.dma_retries)
                    : 0.0;
      auto launch_write = [this, tid, pe, t0, inst] {
        net_.start_transfer(pe, memory_node(), tasks_[tid].write_bytes,
                            [this, tid, pe, t0, inst] {
        TaskState& task = tasks_[tid];
        ++task.writes_done;
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        // A memory stream write leaves through the writer's *out*
        // interface (constraint 1h, the bounded-multiport model) — never
        // through its in interface, and never through the consumer of
        // some later read.
        recorder_.on_bytes_out(pe, task.write_bytes);
        if (opt_.record_trace) {
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kMemWrite;
          ev.name = "write:" + graph_.task(tid).name;
          ev.pe = pe;
          ev.src_pe = pe;
          ev.start = t0;
          ev.end = engine_.now();
          ev.instance = inst;
          ev.task = static_cast<std::int64_t>(tid);
          trace_.push_back(std::move(ev));
        }
        wake(pe);
        });
      };
      if (write_stall > 0.0) {
        faults_.backoff_seconds += write_stall;
        engine_.schedule_in(write_stall, std::move(launch_write));
      } else {
        launch_write();
      }
      return;
    }
  }
}

bool Simulator::task_runnable(TaskId tid) const {
  const TaskState& t = tasks_[tid];
  const std::int64_t i = t.next_instance;
  if (i >= stream_len()) return false;

  // Inputs: instance i plus up to peek following ones (clamped at the end
  // of the stream, where no further instances exist).
  const std::int64_t need = std::min(i + t.peek + 1, stream_len());
  for (EdgeId e : graph_.in_edges(tid)) {
    const EdgeState& edge = edges_[e];
    const std::int64_t available = edge.remote ? edge.fetched : edge.produced;
    if (available < need) return false;
  }
  if (t.read_bytes > 0.0 && t.mem_fetched < i + 1) return false;

  // Output buffers: one free slot per out-edge (producer side frees on
  // remote fetch / local consumption).
  for (EdgeId e : graph_.out_edges(tid)) {
    const EdgeState& edge = edges_[e];
    const std::int64_t freed = edge.remote ? edge.fetched : edge.consumed;
    if (edge.produced - freed >= edge.depth) return false;
  }
  if (t.write_bytes > 0.0 &&
      i - t.writes_done >=
          static_cast<std::int64_t>(opt_.memory_stream_depth)) {
    return false;
  }
  return true;
}

std::optional<TaskId> Simulator::find_runnable(PeId pe) {
  PeState& state = pes_[pe];
  const std::size_t count = state.tasks.size();
  for (std::size_t probe = 0; probe < count; ++probe) {
    const std::size_t idx = (state.task_cursor + probe) % count;
    if (task_runnable(state.tasks[idx])) {
      state.task_cursor = (idx + 1) % count;
      return state.tasks[idx];
    }
  }
  return std::nullopt;
}

void Simulator::complete_instance(TaskId tid) {
  TaskState& t = tasks_[tid];
  const std::int64_t i = t.next_instance;
  t.next_instance = i + 1;

  for (EdgeId e : graph_.out_edges(tid)) {
    EdgeState& edge = edges_[e];
    ++edge.produced;
    if (edge.remote) wake(edge.dst);  // consumer may fetch now
  }
  for (EdgeId e : graph_.in_edges(tid)) {
    edges_[e].consumed = i + 1;  // instances <= i are no longer needed
  }
  advance_done_counter(i);
}

void Simulator::advance_done_counter(std::int64_t completed_instance) {
  // Only tasks crossing the current frontier move the done counter.
  if (completed_instance != done_count_) return;
  --tasks_at_done_;
  while (tasks_at_done_ == 0) {
    completion_times_[done_count_] = engine_.now();
    recorder_.on_instance_complete(engine_.now());
    ++done_count_;
    if (done_count_ >= stream_len()) return;
    tasks_at_done_ = 0;
    for (const TaskState& t : tasks_) {
      if (t.next_instance == done_count_) ++tasks_at_done_;
    }
  }
}

SimResult Simulator::run() {
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) wake(pe);
  engine_.run_until(opt_.max_simulated_seconds);
  CS_ENSURE(done_count_ >= stream_len(),
            "simulate: stream did not finish within " +
                format_number(opt_.max_simulated_seconds) +
                " simulated seconds (" + std::to_string(done_count_) + "/" +
                std::to_string(stream_len()) + " instances done) — " +
                "deadlock or overload");

  SimResult result;
  result.completion_times = std::move(completion_times_);
  result.makespan = result.completion_times.back();
  result.overall_throughput =
      static_cast<double>(opt_.instances) / result.makespan;
  // Steady state is measured over the middle half of the stream: the
  // first quarter excludes the pipeline fill, the last quarter excludes
  // the drain (during which completions of the final instances bunch up
  // and would overstate the rate).
  const std::size_t lo = opt_.instances / 4;
  const std::size_t hi = (3 * opt_.instances) / 4;
  if (lo >= 1 && hi > lo &&
      result.completion_times[hi - 1] > result.completion_times[lo - 1]) {
    result.steady_throughput =
        static_cast<double>(hi - lo) /
        (result.completion_times[hi - 1] - result.completion_times[lo - 1]);
  } else {
    result.steady_throughput = result.overall_throughput;
  }
  recorder_.set_elapsed(result.makespan);
  result.counters = recorder_.take();
  result.pe_busy_seconds.resize(platform_.pe_count());
  result.pe_overhead_seconds.resize(platform_.pe_count());
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) {
    result.pe_busy_seconds[pe] = result.counters.pe[pe].compute_seconds;
    result.pe_overhead_seconds[pe] = result.counters.pe[pe].overhead_seconds;
  }
  result.dma_transfers = result.counters.total_transfers();
  result.trace = std::move(trace_);
  result.faults = faults_;
  result.edge_produced.resize(graph_.edge_count());
  result.edge_delivered.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    result.edge_produced[e] = edges_[e].produced;
    result.edge_delivered[e] =
        edges_[e].remote ? edges_[e].fetched : edges_[e].produced;
  }
  return result;
}

}  // namespace

std::vector<std::pair<std::size_t, double>> SimResult::windowed_throughput(
    std::size_t window, std::size_t stride) const {
  CS_ENSURE(window >= 1 && stride >= 1, "windowed_throughput: bad window");
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t i = window; i < completion_times.size(); i += stride) {
    const double dt = completion_times[i] - completion_times[i - window];
    if (dt > 0.0) {
      out.emplace_back(i, static_cast<double>(window) / dt);
    }
  }
  return out;
}

SimResult simulate(const SteadyStateAnalysis& analysis, const Mapping& mapping,
                   const SimOptions& options) {
  Simulator simulator(analysis, mapping, options);
  return simulator.run();
}

}  // namespace cellstream::sim
