#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "des/engine.hpp"
#include "des/flow_network.hpp"
#include "fault/injector.hpp"
#include "sim/landing_set.hpp"
#include "support/strings.hpp"

namespace cellstream::sim {

namespace {

using des::NodeId;

// ---------------------------------------------------------------------------
// Integer-nanosecond time grid.
//
// The engine clock runs in ticks of 1 ns, stored in a double.  Integer
// values are exact in a double up to 2^53 (≈ 104 simulated days), so
// sums and differences of event times are *exact*: when the scheduler
// state repeats after a period, the whole future event timeline repeats
// bit-identically, shifted by an exactly representable constant.  That is
// what makes the steady-state fast-forward sound (docs/PERFORMANCE.md).
// Durations under half a tick round to zero-length busy windows.
// ---------------------------------------------------------------------------
constexpr double kTicksPerSecond = 1e9;
constexpr double kSecondsPerTick = 1e-9;

double to_ticks(double seconds, const char* what) {
  CS_ENSURE(std::isfinite(seconds) && seconds >= 0.0 &&
                seconds * kTicksPerSecond < 9.0e15,
            std::string("simulate: bad duration for ") + what);
  return static_cast<double>(std::llround(seconds * kTicksPerSecond));
}

std::int64_t tick_delta(double later, double earlier) {
  // Both operands are integer-valued doubles; the difference is exact.
  return std::llround(later - earlier);
}

/// One unit of asynchronous communication a PE can initiate during its
/// communication phase.
struct Channel {
  enum class Kind { kEdgeFetch, kMemRead, kMemWrite };
  Kind kind;
  std::size_t index;  // EdgeId for kEdgeFetch, TaskId otherwise
};

struct EdgeState {
  PeId src = 0, dst = 0;
  bool remote = false;
  std::int64_t depth = 0;   // buffer capacity in instances
  double bytes = 0.0;
  std::int64_t produced = 0;  // instances written by the producer
  std::int64_t fetched = 0;   // contiguous landing frontier at the consumer
  std::int64_t issued = 0;    // DMAs ever issued (remote)
  std::int64_t inflight = 0;  // DMAs in the air (remote)
  std::int64_t consumed = 0;  // instances the consumer is finished with
  /// Instances whose DMA completed while an earlier one is still in the
  /// air (possible only under injected retry stalls).  The consumer reads
  /// its cyclic buffer in order, so data becomes *usable* only when the
  /// contiguous frontier reaches it.
  LandingSet landed_ooo;
};

struct TaskState {
  PeId pe = 0;
  double work = 0.0;        // seconds per instance on its host
  double work_ticks = 0.0;  // the same, on the event grid
  int peek = 0;
  std::int64_t next_instance = 0;
  // Main-memory streams (same frontier discipline as EdgeState).
  double read_bytes = 0.0;
  std::int64_t mem_fetched = 0, mem_issued = 0, mem_inflight = 0;
  LandingSet mem_landed_ooo;
  double write_bytes = 0.0;
  std::int64_t writes_started = 0, writes_done = 0;
};

// Behavior tags for pending events, used by the periodicity signature:
// a snapshot must describe not only the counters but what every pending
// closure will *do* when it fires.
constexpr std::uint64_t kTagIssue = 1ull << 60;
constexpr std::uint64_t kTagCompute = 2ull << 60;
constexpr std::uint64_t kTagWake = 3ull << 60;
constexpr std::uint64_t kTagFlowCompletion = 4ull << 60;

struct PeState {
  std::vector<TaskId> tasks;       // topological order
  std::vector<Channel> channels;   // communication work this PE initiates
  std::size_t task_cursor = 0;
  std::size_t channel_cursor = 0;
  bool busy = false;
  bool wake_scheduled = false;
  std::size_t gets_outstanding = 0;   // SPE MFC queue (<= spe_dma_slots)
  std::size_t proxy_outstanding = 0;  // PPE-issued reads from this SPE (<= 8)
  // Pending-event attribution (periodicity snapshots).
  des::EventId busy_event = 0;   // valid while busy
  std::uint64_t busy_tag = 0;    // kTagIssue|channel or kTagCompute|task
  des::EventId wake_event = 0;   // valid while wake_scheduled
  // Accounting (folded into obs::Counters once, at the end of the run,
  // so totals are independent of how many events actually executed —
  // the fast-forward bit-identity requirement).
  std::uint64_t issue_attempts = 0;  // DMA-issue overhead windows paid
  double injected_seconds = 0.0;     // fault stalls booked as overhead
  std::size_t mfc_peak = 0;
  std::size_t proxy_peak = 0;
};

/// In-flight transfer identity.  Completion closures capture a slot index
/// and read `inst` through it at fire time, so a fast-forward time shift
/// updates the instance a pending completion will land (the closure itself
/// cannot be rewritten once scheduled).
struct InflightSlot {
  std::uint32_t kind = 0;   // Channel::Kind
  std::uint32_t index = 0;  // edge or task id
  std::int64_t inst = 0;
};

class Simulator {
 public:
  Simulator(const SteadyStateAnalysis& analysis, const Mapping& mapping,
            const SimOptions& options)
      : ss_(analysis),
        graph_(analysis.graph()),
        platform_(analysis.platform()),
        mapping_(mapping),
        opt_(options),
        net_(make_network()) {
    CS_ENSURE(opt_.instances >= 1, "simulate: empty stream");
    mapping.validate(platform_);
    CS_ENSURE(mapping.task_count() == graph_.task_count(),
              "simulate: mapping does not match the graph");
    if (opt_.enforce_local_store) {
      const ResourceUsage u = ss_.usage(mapping);
      for (PeId pe = platform_.ppe_count; pe < platform_.pe_count(); ++pe) {
        CS_ENSURE(u.buffer_bytes[pe] <=
                      static_cast<double>(platform_.buffer_budget()),
                  "simulate: buffers of " + platform_.pe_name(pe) +
                      " exceed the local store (" +
                      format_bytes(u.buffer_bytes[pe]) + "); mapping cannot "
                      "be loaded on real hardware");
      }
    }
    if (opt_.fault_plan != nullptr && !opt_.fault_plan->empty()) {
      opt_.fault_plan->validate(platform_);
      CS_ENSURE(opt_.instance_offset >= 0,
                "simulate: instance_offset must be >= 0");
      CS_ENSURE(!opt_.fault_plan->pe_failure,
                "simulate: plans with a permanent fail-stop need the "
                "failover coordinator (fault::run_with_failover); the raw "
                "simulator models transient faults only");
      injector_.emplace(*opt_.fault_plan);
      hang_fired_.assign(opt_.fault_plan->hangs.size(), 0);
    }
    dma_issue_ticks_ = to_ticks(opt_.dma_issue_overhead, "dma_issue_overhead");
    dispatch_ticks_ = to_ticks(opt_.dispatch_overhead, "dispatch_overhead");
    max_ticks_ = to_ticks(opt_.max_simulated_seconds, "max_simulated_seconds");
    net_.set_time_quantum(1.0);  // completions snap to the tick grid
    // Fast-forward is only sound when every event is periodic: traces
    // must record each event, and injected faults are instance-keyed
    // (aperiodic by design), so both force a full run.
    ff_enabled_ = opt_.fast_forward && !opt_.record_trace && !injector_;
    ff_info_.enabled = ff_enabled_;
    build_state();
    register_chip_links();
  }

  SimResult run();

 private:
  des::FlowNetwork make_network() {
    const std::size_t n = platform_.pe_count();
    // Port capacities are bytes per engine-time unit; the engine runs in
    // ticks, so scale bytes/s down by the tick length.
    std::vector<double> out_cap(n + 1,
                                platform_.interface_bandwidth * kSecondsPerTick);
    std::vector<double> in_cap(n + 1,
                               platform_.interface_bandwidth * kSecondsPerTick);
    out_cap[n] = des::FlowNetwork::infinity();  // main memory
    in_cap[n] = des::FlowNetwork::infinity();
    return des::FlowNetwork(engine_, std::move(out_cap), std::move(in_cap));
  }

  void build_state();
  void register_chip_links();

  des::TransferId start_edge_transfer(const EdgeState& e, PeId dst,
                                      des::InlineAction done) {
    if (platform_.chip_count > 1 && platform_.crosses_chips(e.src, dst)) {
      return net_.start_transfer_over(
          {net_.out_port(e.src), xchip_out_[platform_.chip_of(e.src)],
           xchip_in_[platform_.chip_of(dst)], net_.in_port(dst)},
          e.bytes, std::move(done));
    }
    return net_.start_transfer(e.src, dst, e.bytes, std::move(done));
  }

  void wake(PeId pe);
  void step(PeId pe);
  std::optional<Channel> find_issuable(PeId pe);
  bool channel_issuable(PeId pe, const Channel& channel) const;
  void issue(PeId pe, const Channel& channel);
  std::optional<TaskId> find_runnable(PeId pe);
  bool task_runnable(TaskId t) const;
  void complete_instance(TaskId t);
  void advance_done_counter(std::int64_t completed_instance);

  // Steady-state fast-forward (docs/PERFORMANCE.md).
  std::uint32_t alloc_inflight(Channel::Kind kind, std::size_t index,
                               std::int64_t inst);
  void bind_inflight(std::uint32_t slot, des::TransferId id);
  std::int64_t finish_inflight(std::uint32_t slot);
  const InflightSlot* find_inflight(des::TransferId id) const;
  void maybe_snapshot(TaskId completing_task);
  bool build_signature(std::vector<std::uint64_t>& sig, TaskId completing);
  struct Snapshot;
  void engage_fast_forward(const Snapshot& snap);

  std::int64_t stream_len() const {
    return static_cast<std::int64_t>(opt_.instances);
  }

  const SteadyStateAnalysis& ss_;
  const TaskGraph& graph_;
  const CellPlatform& platform_;
  Mapping mapping_;
  SimOptions opt_;

  // Main memory sits on the extra flow-network node after the PEs.
  NodeId memory_node() const { return platform_.pe_count(); }

  des::Engine engine_;
  des::FlowNetwork net_;
  // Per-chip inter-chip link resources (Section 7 extension); empty on
  // single-chip platforms.
  std::vector<des::ResourceId> xchip_out_, xchip_in_;

  std::vector<EdgeState> edges_;
  std::vector<TaskState> tasks_;
  std::vector<PeState> pes_;

  double dma_issue_ticks_ = 0.0;
  double dispatch_ticks_ = 0.0;
  double max_ticks_ = 0.0;

  std::int64_t done_count_ = 0;
  std::int64_t tasks_at_done_ = 0;
  std::vector<double> completion_ticks_;
  std::vector<TraceEvent> trace_;

  // Deterministic fault injection (engaged only when a plan is supplied).
  std::optional<fault::FaultInjector> injector_;
  std::vector<char> hang_fired_;  // one-shot latch per hang spec
  fault::FaultStats faults_;

  // -- Fast-forward state -------------------------------------------------
  struct Snapshot {
    std::uint64_t hash = 0;
    std::vector<std::uint64_t> sig;
    std::int64_t done = 0;
    double tick = 0.0;
    std::vector<std::uint64_t> attempts;  // per-PE issue_attempts
  };
  // A cycle longer than this many instances is not detected (the window
  // bounds snapshot memory); detection stops after kDetectLimit instances
  // so aperiodic runs pay a bounded cost.
  static constexpr std::size_t kSnapshotWindow = 64;
  static constexpr std::int64_t kDetectLimit = 4096;

  bool ff_enabled_ = false;
  bool ff_done_ = false;
  FastForwardInfo ff_info_;
  std::vector<Snapshot> snapshots_;
  std::int64_t last_snapshot_done_ = -1;
  std::vector<std::uint64_t> sig_scratch_;
  std::int64_t max_peek_ = 0;
  // Slot slab for in-flight transfers plus the active set by id (ids
  // issue monotonically, so `inflight_` stays sorted) — gives the
  // signature a stable, instance-relative identity for every flow the
  // network reports, and gives pending completions a handle whose `inst`
  // a fast-forward shift can rewrite.
  std::vector<InflightSlot> islots_;
  std::vector<std::uint32_t> islot_free_;
  std::vector<std::pair<des::TransferId, std::uint32_t>> inflight_;
};

void Simulator::register_chip_links() {
  if (platform_.chip_count <= 1) return;
  for (std::size_t chip = 0; chip < platform_.chip_count; ++chip) {
    xchip_out_.push_back(net_.add_resource(platform_.cross_chip_bandwidth *
                                           kSecondsPerTick));
    xchip_in_.push_back(net_.add_resource(platform_.cross_chip_bandwidth *
                                          kSecondsPerTick));
  }
}

void Simulator::build_state() {
  edges_.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const Edge& edge = graph_.edge(e);
    EdgeState& state = edges_[e];
    state.src = mapping_.pe_of(edge.from);
    state.dst = mapping_.pe_of(edge.to);
    state.remote = state.src != state.dst;
    state.depth = ss_.buffer_depth(e);
    state.bytes = edge.data_bytes;
  }

  tasks_.resize(graph_.task_count());
  pes_.resize(platform_.pe_count());
  for (TaskId t : graph_.topological_order()) {
    const Task& task = graph_.task(t);
    TaskState& state = tasks_[t];
    state.pe = mapping_.pe_of(t);
    state.work = platform_.is_ppe(state.pe) ? task.wppe : task.wspe;
    state.work_ticks = to_ticks(state.work, "task work");
    state.peek = task.peek;
    state.read_bytes = task.read_bytes;
    state.write_bytes = task.write_bytes;
    max_peek_ = std::max(max_peek_, static_cast<std::int64_t>(task.peek));
    pes_[state.pe].tasks.push_back(t);
  }

  // Communication channels each PE polls during its communication phase:
  // remote-edge fetches it is the consumer of, then its tasks' memory
  // streams.
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    if (edges_[e].remote) {
      pes_[edges_[e].dst].channels.push_back(
          {Channel::Kind::kEdgeFetch, e});
    }
  }
  for (TaskId t = 0; t < graph_.task_count(); ++t) {
    if (tasks_[t].read_bytes > 0.0) {
      pes_[tasks_[t].pe].channels.push_back({Channel::Kind::kMemRead, t});
    }
    if (tasks_[t].write_bytes > 0.0) {
      pes_[tasks_[t].pe].channels.push_back({Channel::Kind::kMemWrite, t});
    }
  }

  completion_ticks_.assign(opt_.instances, 0.0);
  done_count_ = 0;
  tasks_at_done_ = static_cast<std::int64_t>(graph_.task_count());
}

void Simulator::wake(PeId pe) {
  PeState& state = pes_[pe];
  if (state.busy || state.wake_scheduled) return;
  state.wake_scheduled = true;
  state.wake_event = engine_.schedule_in(0.0, [this, pe] {
    pes_[pe].wake_scheduled = false;
    step(pe);
  });
}

void Simulator::step(PeId pe) {
  PeState& state = pes_[pe];
  if (state.busy) return;

  // Communication phase: initiate one eligible transfer (issuing a DMA
  // interrupts the core briefly; the transfer itself then proceeds in the
  // background through the flow network).
  if (const std::optional<Channel> channel = find_issuable(pe)) {
    state.busy = true;
    state.busy_tag = kTagIssue |
                     (static_cast<std::uint64_t>(channel->kind) << 32) |
                     static_cast<std::uint64_t>(channel->index);
    state.busy_event =
        engine_.schedule_in(dma_issue_ticks_, [this, pe, ch = *channel] {
          PeState& s = pes_[pe];
          s.busy = false;
          s.busy_tag = 0;
          ++s.issue_attempts;
          // Re-validate before enqueueing: between the decision and the
          // end of the issue overhead another PE may have consumed the
          // last shared queue slot (two PPEs racing for one SPE's 8-deep
          // proxy stack).  The core still paid the interruption; it
          // simply retries.
          if (channel_issuable(pe, ch)) issue(pe, ch);
          step(pe);
        });
    return;
  }

  // Computation phase: process one instance of a runnable task.  Injected
  // faults (slowdown windows, one-shot hangs) stretch the busy period; the
  // extra time is recorded as overhead, never as work, so the occupation
  // cross-check (I7/I9) keeps comparing nominal work against the model.
  if (const std::optional<TaskId> task = find_runnable(pe)) {
    double injected = 0.0;
    if (injector_) {
      const TaskState& ts = tasks_[*task];
      const std::int64_t gi = ts.next_instance + opt_.instance_offset;
      const double slow = (injector_->compute_factor(pe, gi) - 1.0) * ts.work;
      if (slow > 0.0) {
        injected += slow;
        faults_.slowdown_seconds += slow;
      }
      const std::size_t hang = injector_->hang_index(pe, gi);
      if (hang != fault::FaultInjector::npos && !hang_fired_[hang]) {
        hang_fired_[hang] = 1;
        const double stall = injector_->hang_seconds(hang);
        injected += stall;
        ++faults_.hangs;
        faults_.hang_seconds += stall;
      }
    }
    const double injected_ticks = to_ticks(injected, "injected fault stall");
    const double duration =
        dispatch_ticks_ + tasks_[*task].work_ticks + injected_ticks;
    state.busy = true;
    state.busy_tag = kTagCompute | static_cast<std::uint64_t>(*task);
    state.busy_event = engine_.schedule_in(
        duration, [this, pe, t = *task, injected, injected_ticks] {
          PeState& s = pes_[pe];
          s.busy = false;
          s.busy_tag = 0;
          s.injected_seconds += injected;
          if (opt_.record_trace) {
            TraceEvent ev;
            ev.kind = TraceEvent::Kind::kCompute;
            ev.name = graph_.task(t).name;
            ev.pe = pe;
            ev.src_pe = pe;
            // The window covers the whole processing of the instance,
            // injected stall included, so per-PE windows never overlap
            // (I6).
            ev.start = (engine_.now() - tasks_[t].work_ticks -
                        injected_ticks) * kSecondsPerTick;
            ev.end = engine_.now() * kSecondsPerTick;
            ev.instance = tasks_[t].next_instance;
            ev.task = static_cast<std::int64_t>(t);
            trace_.push_back(std::move(ev));
          }
          complete_instance(t);
          step(pe);
        });
    return;
  }
  // Nothing to do: stay idle until an event wakes us.
}

bool Simulator::channel_issuable(PeId pe, const Channel& channel) const {
  const PeState& state = pes_[pe];
  const bool is_spe = platform_.is_spe(pe);
  switch (channel.kind) {
    case Channel::Kind::kEdgeFetch: {
      const EdgeState& e = edges_[channel.index];
      const std::int64_t next_fetch = e.issued;
      if (next_fetch >= e.produced) return false;             // nothing new
      if (next_fetch - e.consumed >= e.depth) return false;   // in-buf full
      if (is_spe) {
        if (state.gets_outstanding >= platform_.spe_dma_slots) return false;
      } else if (platform_.is_spe(e.src)) {
        // PPE reading from a SPE local store uses that SPE's proxy stack.
        if (pes_[e.src].proxy_outstanding >= platform_.ppe_to_spe_dma_slots) {
          return false;
        }
      }
      return true;
    }
    case Channel::Kind::kMemRead: {
      const TaskState& t = tasks_[channel.index];
      const std::int64_t next_fetch = t.mem_issued;
      if (next_fetch >= stream_len()) return false;  // stream exhausted
      if (next_fetch - t.next_instance >=
          static_cast<std::int64_t>(opt_.memory_stream_depth)) {
        return false;
      }
      return !is_spe || state.gets_outstanding < platform_.spe_dma_slots;
    }
    case Channel::Kind::kMemWrite: {
      const TaskState& t = tasks_[channel.index];
      if (t.writes_started >= t.next_instance) return false;  // no new data
      return !is_spe || state.gets_outstanding < platform_.spe_dma_slots;
    }
  }
  return false;
}

std::optional<Channel> Simulator::find_issuable(PeId pe) {
  PeState& state = pes_[pe];
  const std::size_t count = state.channels.size();
  for (std::size_t probe = 0; probe < count; ++probe) {
    const std::size_t idx = (state.channel_cursor + probe) % count;
    if (channel_issuable(pe, state.channels[idx])) {
      state.channel_cursor = (idx + 1) % count;
      return state.channels[idx];
    }
  }
  return std::nullopt;
}

std::uint32_t Simulator::alloc_inflight(Channel::Kind kind, std::size_t index,
                                        std::int64_t inst) {
  std::uint32_t slot;
  if (!islot_free_.empty()) {
    slot = islot_free_.back();
    islot_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(islots_.size());
    islots_.emplace_back();
  }
  islots_[slot] = {static_cast<std::uint32_t>(kind),
                   static_cast<std::uint32_t>(index), inst};
  return slot;
}

void Simulator::bind_inflight(std::uint32_t slot, des::TransferId id) {
  inflight_.emplace_back(id, slot);
}

std::int64_t Simulator::finish_inflight(std::uint32_t slot) {
  // The set is tiny (bounded by the DMA queue depths).
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (it->second == slot) {
      inflight_.erase(it);
      const std::int64_t inst = islots_[slot].inst;
      islot_free_.push_back(slot);
      return inst;
    }
  }
  CS_ASSERT(false, "simulate: completed transfer was never registered");
  return 0;
}

const InflightSlot* Simulator::find_inflight(des::TransferId id) const {
  const auto it = std::lower_bound(
      inflight_.begin(), inflight_.end(), id,
      [](const auto& entry, des::TransferId v) { return entry.first < v; });
  if (it == inflight_.end() || it->first != id) return nullptr;
  return &islots_[it->second];
}

void Simulator::issue(PeId pe, const Channel& channel) {
  PeState& state = pes_[pe];
  const bool is_spe = platform_.is_spe(pe);
  switch (channel.kind) {
    case Channel::Kind::kEdgeFetch: {
      const EdgeId eid = channel.index;
      EdgeState& e = edges_[eid];
      ++e.inflight;
      const bool proxy = !is_spe && platform_.is_spe(e.src);
      if (is_spe) {
        ++state.gets_outstanding;
        if (state.gets_outstanding > state.mfc_peak) {
          state.mfc_peak = state.gets_outstanding;
        }
      }
      if (proxy) {
        PeState& src = pes_[e.src];
        ++src.proxy_outstanding;
        if (src.proxy_outstanding > src.proxy_peak) {
          src.proxy_peak = src.proxy_outstanding;
        }
      }
      const double t0 = engine_.now();
      const std::int64_t inst = e.issued;
      ++e.issued;
      // A failed DMA attempt holds its queue slot through the seeded
      // retry/backoff delay, then the transfer proceeds normally — data is
      // delayed, never lost.  The trace window [t0, end] spans the stall,
      // matching the slot-occupancy convention the I4 replay checks.
      const double stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kEdge, eid,
                          inst + opt_.instance_offset, &faults_.dma_retries)
                    : 0.0;
      auto launch = [this, eid, pe, proxy, t0, inst] {
        const std::uint32_t slot =
            alloc_inflight(Channel::Kind::kEdgeFetch, eid, inst);
        const des::TransferId tid = start_edge_transfer(
            edges_[eid], pe, [this, eid, pe, proxy, t0, slot] {
        EdgeState& edge = edges_[eid];
        const std::int64_t inst = finish_inflight(slot);
        --edge.inflight;
        // Land the instance, then advance the contiguous frontier: under
        // injected retry stalls a later DMA can complete first, but the
        // consumer reads its cyclic buffer in order, so the data (and the
        // producer's slot) only unlock frontier-contiguously.
        edge.landed_ooo.insert(inst);
        edge.fetched = edge.landed_ooo.advance_frontier(edge.fetched);
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        if (proxy) --pes_[edge.src].proxy_outstanding;
        if (opt_.record_trace) {
          const Edge& ge = graph_.edge(eid);
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kEdge;
          ev.name = graph_.task(ge.from).name + "->" + graph_.task(ge.to).name;
          ev.pe = pe;
          ev.src_pe = edge.src;
          ev.start = t0 * kSecondsPerTick;
          ev.end = engine_.now() * kSecondsPerTick;
          ev.instance = inst;
          ev.edge = static_cast<std::int64_t>(eid);
          trace_.push_back(std::move(ev));
        }
        wake(edge.src);  // output buffer slot freed
        wake(pe);        // input data available
        });
        bind_inflight(slot, tid);
      };
      if (stall > 0.0) {
        faults_.backoff_seconds += stall;
        engine_.schedule_in(to_ticks(stall, "dma retry stall"),
                            std::move(launch));
      } else {
        launch();
      }
      return;
    }
    case Channel::Kind::kMemRead: {
      const TaskId tid = channel.index;
      TaskState& t = tasks_[tid];
      ++t.mem_inflight;
      if (is_spe) {
        ++state.gets_outstanding;
        if (state.gets_outstanding > state.mfc_peak) {
          state.mfc_peak = state.gets_outstanding;
        }
      }
      const double t0 = engine_.now();
      const std::int64_t inst = t.mem_issued;
      ++t.mem_issued;
      const double read_stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kMemRead, tid,
                          inst + opt_.instance_offset,
                          &faults_.dma_retries)
                    : 0.0;
      auto launch_read = [this, tid, pe, t0, inst] {
        const std::uint32_t slot =
            alloc_inflight(Channel::Kind::kMemRead, tid, inst);
        const des::TransferId xid = net_.start_transfer(
            memory_node(), pe, tasks_[tid].read_bytes,
            [this, tid, pe, t0, slot] {
        TaskState& task = tasks_[tid];
        const std::int64_t inst = finish_inflight(slot);
        --task.mem_inflight;
        // Same contiguous-frontier discipline as edge fetches: a stalled
        // read must not let a later one unlock this instance's compute.
        task.mem_landed_ooo.insert(inst);
        task.mem_fetched = task.mem_landed_ooo.advance_frontier(task.mem_fetched);
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        if (opt_.record_trace) {
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kMemRead;
          ev.name = "read:" + graph_.task(tid).name;
          ev.pe = pe;
          ev.src_pe = pe;
          ev.start = t0 * kSecondsPerTick;
          ev.end = engine_.now() * kSecondsPerTick;
          ev.instance = inst;
          ev.task = static_cast<std::int64_t>(tid);
          trace_.push_back(std::move(ev));
        }
        wake(pe);
        });
        bind_inflight(slot, xid);
      };
      if (read_stall > 0.0) {
        faults_.backoff_seconds += read_stall;
        engine_.schedule_in(to_ticks(read_stall, "dma retry stall"),
                            std::move(launch_read));
      } else {
        launch_read();
      }
      return;
    }
    case Channel::Kind::kMemWrite: {
      const TaskId tid = channel.index;
      TaskState& t = tasks_[tid];
      ++t.writes_started;
      if (is_spe) {
        ++state.gets_outstanding;
        if (state.gets_outstanding > state.mfc_peak) {
          state.mfc_peak = state.gets_outstanding;
        }
      }
      const double t0 = engine_.now();
      const std::int64_t inst = t.writes_started - 1;
      const double write_stall =
          injector_ ? injector_->dma_delay(
                          fault::FaultInjector::TransferKind::kMemWrite, tid,
                          inst + opt_.instance_offset,
                          &faults_.dma_retries)
                    : 0.0;
      auto launch_write = [this, tid, pe, t0, inst] {
        const std::uint32_t slot =
            alloc_inflight(Channel::Kind::kMemWrite, tid, inst);
        const des::TransferId xid = net_.start_transfer(
            pe, memory_node(), tasks_[tid].write_bytes,
            [this, tid, pe, t0, slot] {
        TaskState& task = tasks_[tid];
        const std::int64_t inst = finish_inflight(slot);
        ++task.writes_done;
        if (platform_.is_spe(pe)) --pes_[pe].gets_outstanding;
        if (opt_.record_trace) {
          TraceEvent ev;
          ev.kind = TraceEvent::Kind::kTransfer;
          ev.payload = TraceEvent::Payload::kMemWrite;
          ev.name = "write:" + graph_.task(tid).name;
          ev.pe = pe;
          ev.src_pe = pe;
          ev.start = t0 * kSecondsPerTick;
          ev.end = engine_.now() * kSecondsPerTick;
          ev.instance = inst;
          ev.task = static_cast<std::int64_t>(tid);
          trace_.push_back(std::move(ev));
        }
        wake(pe);
        });
        bind_inflight(slot, xid);
      };
      if (write_stall > 0.0) {
        faults_.backoff_seconds += write_stall;
        engine_.schedule_in(to_ticks(write_stall, "dma retry stall"),
                            std::move(launch_write));
      } else {
        launch_write();
      }
      return;
    }
  }
}

bool Simulator::task_runnable(TaskId tid) const {
  const TaskState& t = tasks_[tid];
  const std::int64_t i = t.next_instance;
  if (i >= stream_len()) return false;

  // Inputs: instance i plus up to peek following ones (clamped at the end
  // of the stream, where no further instances exist).
  const std::int64_t need = std::min(i + t.peek + 1, stream_len());
  for (EdgeId e : graph_.in_edges(tid)) {
    const EdgeState& edge = edges_[e];
    const std::int64_t available = edge.remote ? edge.fetched : edge.produced;
    if (available < need) return false;
  }
  if (t.read_bytes > 0.0 && t.mem_fetched < i + 1) return false;

  // Output buffers: one free slot per out-edge (producer side frees on
  // remote fetch / local consumption).
  for (EdgeId e : graph_.out_edges(tid)) {
    const EdgeState& edge = edges_[e];
    const std::int64_t freed = edge.remote ? edge.fetched : edge.consumed;
    if (edge.produced - freed >= edge.depth) return false;
  }
  if (t.write_bytes > 0.0 &&
      i - t.writes_done >=
          static_cast<std::int64_t>(opt_.memory_stream_depth)) {
    return false;
  }
  return true;
}

std::optional<TaskId> Simulator::find_runnable(PeId pe) {
  PeState& state = pes_[pe];
  const std::size_t count = state.tasks.size();
  for (std::size_t probe = 0; probe < count; ++probe) {
    const std::size_t idx = (state.task_cursor + probe) % count;
    if (task_runnable(state.tasks[idx])) {
      state.task_cursor = (idx + 1) % count;
      return state.tasks[idx];
    }
  }
  return std::nullopt;
}

void Simulator::complete_instance(TaskId tid) {
  TaskState& t = tasks_[tid];
  const std::int64_t i = t.next_instance;
  t.next_instance = i + 1;

  for (EdgeId e : graph_.out_edges(tid)) {
    EdgeState& edge = edges_[e];
    ++edge.produced;
    if (edge.remote) wake(edge.dst);  // consumer may fetch now
  }
  for (EdgeId e : graph_.in_edges(tid)) {
    edges_[e].consumed = i + 1;  // instances <= i are no longer needed
  }
  advance_done_counter(i);
  maybe_snapshot(tid);
}

void Simulator::advance_done_counter(std::int64_t completed_instance) {
  // Only tasks crossing the current frontier move the done counter.
  if (completed_instance != done_count_) return;
  --tasks_at_done_;
  while (tasks_at_done_ == 0) {
    completion_ticks_[done_count_] = engine_.now();
    ++done_count_;
    if (done_count_ >= stream_len()) return;
    tasks_at_done_ = 0;
    for (const TaskState& t : tasks_) {
      if (t.next_instance == done_count_) ++tasks_at_done_;
    }
  }
}

// ---------------------------------------------------------------------------
// Steady-state fast-forward.
//
// After each completed stream instance the simulator captures a relative
// *signature* of the entire scheduler state: all counters expressed
// relative to the done counter, every pending event's behavior tag,
// relative fire time and tie-break order, and every in-flight transfer's
// exact remaining-bytes/rate bit patterns.  Because event times live on
// an exact integer grid and the flow network recomputes rates in a
// deterministic order, two equal signatures prove the future evolution of
// the run is identical up to a translation by (Δdone, Δticks).  The run
// then jumps k periods in O(1): clocks and counters shift, completion
// times of skipped instances are reconstructed by the same recurrence the
// full run would have produced (exact integer arithmetic), and per-run
// totals are derived from counters at the end — so the final stats are
// bit-identical to the full simulation (differential rule D6).
// ---------------------------------------------------------------------------

void Simulator::maybe_snapshot(TaskId completing_task) {
  if (!ff_enabled_ || ff_done_) return;
  if (done_count_ <= last_snapshot_done_) return;  // no new instance boundary
  last_snapshot_done_ = done_count_;
  if (done_count_ >= stream_len()) return;
  if (done_count_ > kDetectLimit) {
    // Aperiodic (or a period beyond the window): stop paying for detection.
    ff_done_ = true;
    snapshots_.clear();
    snapshots_.shrink_to_fit();
    return;
  }
  if (!build_signature(sig_scratch_, completing_task)) return;
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a over the words
  for (std::uint64_t w : sig_scratch_) {
    hash ^= w;
    hash *= 1099511628211ull;
  }
  for (const Snapshot& snap : snapshots_) {
    if (snap.hash == hash && snap.sig == sig_scratch_) {
      engage_fast_forward(snap);
      return;
    }
  }
  if (snapshots_.size() >= kSnapshotWindow) {
    snapshots_.erase(snapshots_.begin());
  }
  Snapshot snap;
  snap.hash = hash;
  snap.sig = sig_scratch_;
  snap.done = done_count_;
  snap.tick = engine_.now();
  snap.attempts.reserve(pes_.size());
  for (const PeState& p : pes_) snap.attempts.push_back(p.issue_attempts);
  snapshots_.push_back(std::move(snap));
}

bool Simulator::build_signature(std::vector<std::uint64_t>& sig,
                                TaskId completing) {
  sig.clear();
  const double now_tick = engine_.now();
  const std::int64_t d = done_count_;
  const auto push = [&sig](std::uint64_t v) { sig.push_back(v); };
  const auto push_i = [&push](std::int64_t v) {
    push(static_cast<std::uint64_t>(v));
  };
  const auto push_bits = [&push](double v) {
    push(std::bit_cast<std::uint64_t>(v));
  };

  // Control-flow context: we are inside `completing`'s finish event; the
  // task id determines the PE whose step() runs next.
  push_i(static_cast<std::int64_t>(completing));
  push_i(tasks_at_done_);

  // Counters that advance once per stream instance are encoded relative
  // to the done counter (their offsets recur in the steady state); ones
  // that never move — fetch/issue progress of local edges, memory-stream
  // progress of tasks without that stream — are encoded absolutely, or
  // the growing gap to `d` would make every signature unique.
  for (const EdgeState& e : edges_) {
    push_i(e.produced - d);
    push_i(e.fetched - (e.remote ? d : 0));
    push_i(e.issued - (e.remote ? d : 0));
    push_i(e.consumed - d);
    push_i(e.inflight);
    push_i(static_cast<std::int64_t>(e.landed_ooo.size()));
    e.landed_ooo.for_each([&](std::int64_t v) { push_i(v - d); });
  }
  for (const TaskState& t : tasks_) {
    const std::int64_t rd = t.read_bytes > 0.0 ? d : 0;
    const std::int64_t wd = t.write_bytes > 0.0 ? d : 0;
    push_i(t.next_instance - d);
    push_i(t.mem_fetched - rd);
    push_i(t.mem_issued - rd);
    push_i(t.mem_inflight);
    push_i(t.writes_started - wd);
    push_i(t.writes_done - wd);
    push_i(static_cast<std::int64_t>(t.mem_landed_ooo.size()));
    t.mem_landed_ooo.for_each([&](std::int64_t v) { push_i(v - d); });
  }
  for (const PeState& p : pes_) {
    push(p.task_cursor);
    push(p.channel_cursor);
    push(static_cast<std::uint64_t>(p.busy) |
         (static_cast<std::uint64_t>(p.wake_scheduled) << 1));
    push(p.gets_outstanding);
    push(p.proxy_outstanding);
  }

  // Pending engine events: behavior tag, relative fire tick, and their
  // mutual (seq) order.  Every event the simulator can have in flight is
  // attributed here; if the count disagrees with the engine some event
  // escaped the model (e.g. a fault stall) and no snapshot is taken.
  struct Ev {
    std::uint64_t seq;
    std::uint64_t tag;
    std::int64_t dt;
  };
  std::vector<Ev> events;
  events.reserve(pes_.size() * 2 + 1);
  for (PeId pe = 0; pe < pes_.size(); ++pe) {
    const PeState& p = pes_[pe];
    if (p.busy) {
      events.push_back({engine_.sequence_of(p.busy_event), p.busy_tag,
                        tick_delta(engine_.time_of(p.busy_event), now_tick)});
    }
    if (p.wake_scheduled) {
      events.push_back({engine_.sequence_of(p.wake_event),
                        kTagWake | static_cast<std::uint64_t>(pe), 0});
    }
  }
  if (net_.completion_pending()) {
    events.push_back(
        {engine_.sequence_of(net_.completion_event()), kTagFlowCompletion,
         tick_delta(engine_.time_of(net_.completion_event()), now_tick)});
  }
  if (events.size() != engine_.pending()) return false;
  std::sort(events.begin(), events.end(),
            [](const Ev& a, const Ev& b) { return a.seq < b.seq; });
  for (const Ev& ev : events) {
    push(ev.tag);
    push_i(ev.dt);
  }

  // Active flows in start order: relative identity plus the exact
  // remaining/rate bit patterns (as of the network's last progress
  // point, whose offset from now is appended below).
  bool known = true;
  net_.for_each_active(
      [&](des::TransferId id, double remaining, double rate) {
        const InflightSlot* tag = find_inflight(id);
        if (tag == nullptr) {
          known = false;
          return;
        }
        push((static_cast<std::uint64_t>(tag->kind) << 32) | tag->index);
        push_i(tag->inst - d);
        push_bits(remaining);
        push_bits(rate);
      });
  if (!known) return false;
  push_i(tick_delta(now_tick, net_.last_progress_time()));
  return true;
}

void Simulator::engage_fast_forward(const Snapshot& snap) {
  const std::int64_t cycle_d = done_count_ - snap.done;
  const double cycle_t = engine_.now() - snap.tick;
  // Copy before snapshots_ (which owns `snap`) is released below.
  const std::vector<std::uint64_t> attempts_at_snap = snap.attempts;
  CS_ASSERT(cycle_d > 0 && cycle_t > 0.0, "fast-forward: degenerate cycle");
  ff_done_ = true;  // one jump covers the whole steady state
  ff_info_.cycle_instances = cycle_d;
  ff_info_.cycle_seconds = cycle_t * kSecondsPerTick;
  // Cross-check against the analytic steady state: the observed period
  // can never beat the model's bound (rule D6 asserts ratio >= ~1).
  const double model_period = ss_.period(mapping_);
  ff_info_.model_period = model_period;
  ff_info_.period_ratio =
      model_period > 0.0
          ? (cycle_t * kSecondsPerTick / static_cast<double>(cycle_d)) /
                model_period
          : 0.0;

  // How many whole cycles fit before any counter's comparisons against
  // the stream end change truth value?  Leave one cycle plus the peek and
  // memory-stream lookahead as margin, so the post-jump run re-enters
  // ordinary (still periodic) simulation well before the drain begins.
  const std::int64_t margin =
      cycle_d + max_peek_ + 1 +
      static_cast<std::int64_t>(opt_.memory_stream_depth) + 1;
  std::int64_t k = std::numeric_limits<std::int64_t>::max();
  for (const TaskState& t : tasks_) {
    const std::int64_t lead = std::max(t.next_instance, t.mem_issued);
    k = std::min(k, (stream_len() - margin - lead) / cycle_d);
  }
  for (const EdgeState& e : edges_) {
    const std::int64_t lead = std::max(e.produced, e.issued);
    k = std::min(k, (stream_len() - margin - lead) / cycle_d);
  }
  snapshots_.clear();
  snapshots_.shrink_to_fit();
  if (k <= 0) return;  // stream too short for a safe jump

  const std::int64_t skipped = k * cycle_d;
  const double shift = static_cast<double>(k) * cycle_t;
  engine_.shift_time(shift);
  net_.on_time_shift(shift);
  // Translate exactly the counters the signature encodes done-relative;
  // ones pinned at zero (local edges, absent memory streams) stay put,
  // as they would in the full run.
  for (EdgeState& e : edges_) {
    e.produced += skipped;
    e.consumed += skipped;
    if (e.remote) {
      e.fetched += skipped;
      e.issued += skipped;
    }
    e.landed_ooo.shift(skipped);
  }
  for (TaskState& t : tasks_) {
    t.next_instance += skipped;
    if (t.read_bytes > 0.0) {
      t.mem_fetched += skipped;
      t.mem_issued += skipped;
    }
    if (t.write_bytes > 0.0) {
      t.writes_started += skipped;
      t.writes_done += skipped;
    }
    t.mem_landed_ooo.shift(skipped);
  }
  for (PeId pe = 0; pe < pes_.size(); ++pe) {
    const std::uint64_t per_cycle =
        pes_[pe].issue_attempts - attempts_at_snap[pe];
    pes_[pe].issue_attempts += static_cast<std::uint64_t>(k) * per_cycle;
  }
  // Pending transfer completions read their instance through the slot
  // slab, so shifting here also shifts what they will land.
  for (const auto& [id, slot] : inflight_) islots_[slot].inst += skipped;

  // Completion times of the skipped instances obey the same recurrence
  // the full run would have produced; the additions are exact (integer-
  // valued doubles), so the reconstructed values are bit-identical.
  const std::int64_t old_done = done_count_;
  done_count_ += skipped;
  for (std::int64_t m = old_done; m < old_done + skipped; ++m) {
    completion_ticks_[m] = completion_ticks_[m - cycle_d] + cycle_t;
  }

  ff_info_.engaged = true;
  ff_info_.skipped_cycles = k;
  ff_info_.skipped_instances = skipped;
}

SimResult Simulator::run() {
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) wake(pe);
  engine_.run_until(max_ticks_);
  CS_ENSURE(done_count_ >= stream_len(),
            "simulate: stream did not finish within " +
                format_number(opt_.max_simulated_seconds) +
                " simulated seconds (" + std::to_string(done_count_) + "/" +
                std::to_string(stream_len()) + " instances done) — " +
                "deadlock or overload");

  SimResult result;
  result.completion_times.resize(opt_.instances);
  for (std::size_t i = 0; i < opt_.instances; ++i) {
    result.completion_times[i] = completion_ticks_[i] * kSecondsPerTick;
  }
  result.makespan = result.completion_times.back();
  result.overall_throughput =
      static_cast<double>(opt_.instances) / result.makespan;
  // Steady state is measured over the middle half of the stream: the
  // first quarter excludes the pipeline fill, the last quarter excludes
  // the drain (during which completions of the final instances bunch up
  // and would overstate the rate).
  const std::size_t lo = opt_.instances / 4;
  const std::size_t hi = (3 * opt_.instances) / 4;
  if (lo >= 1 && hi > lo &&
      result.completion_times[hi - 1] > result.completion_times[lo - 1]) {
    result.steady_throughput =
        static_cast<double>(hi - lo) /
        (result.completion_times[hi - 1] - result.completion_times[lo - 1]);
  } else {
    result.steady_throughput = result.overall_throughput;
  }

  // Telemetry is derived from the integer progress counters in one fixed
  // pass (task order, then edge order), never accumulated per event —
  // the totals therefore do not depend on how many events actually
  // executed, which is what makes fast-forwarded stats bit-identical.
  obs::Counters& counters = result.counters;
  counters.domain = obs::TimeDomain::kSimulated;
  counters.pe.resize(platform_.pe_count());
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const TaskState& ts = tasks_[t];
    obs::PeCounters& c = counters.pe[ts.pe];
    const double executed = static_cast<double>(ts.next_instance);
    c.tasks_executed += static_cast<std::uint64_t>(ts.next_instance);
    c.compute_seconds += executed * ts.work;
    c.overhead_seconds += executed * opt_.dispatch_overhead;
    if (ts.read_bytes > 0.0) {
      const double landed = static_cast<double>(
          ts.mem_fetched + static_cast<std::int64_t>(ts.mem_landed_ooo.size()));
      c.bytes_in += landed * ts.read_bytes;
      c.transfers_issued += static_cast<std::uint64_t>(ts.mem_issued);
    }
    if (ts.write_bytes > 0.0) {
      c.bytes_out += static_cast<double>(ts.writes_done) * ts.write_bytes;
      c.transfers_issued += static_cast<std::uint64_t>(ts.writes_started);
    }
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const EdgeState& es = edges_[e];
    if (!es.remote) continue;
    // Interface accounting: a remote edge crosses the producer's out
    // interface and the consumer's in interface (constraints 1e/1f);
    // bytes count per completed landing, frontier-contiguous or not.
    const double landed = static_cast<double>(
        es.fetched + static_cast<std::int64_t>(es.landed_ooo.size()));
    counters.pe[es.src].bytes_out += landed * es.bytes;
    counters.pe[es.dst].bytes_in += landed * es.bytes;
    counters.pe[es.dst].transfers_issued +=
        static_cast<std::uint64_t>(es.issued);
  }
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) {
    const PeState& p = pes_[pe];
    obs::PeCounters& c = counters.pe[pe];
    c.overhead_seconds +=
        static_cast<double>(p.issue_attempts) * opt_.dma_issue_overhead +
        p.injected_seconds;
    c.mfc_queue_peak = p.mfc_peak;
    c.proxy_queue_peak = p.proxy_peak;
  }
  counters.instance_completion = result.completion_times;
  counters.elapsed_seconds = result.makespan;

  result.pe_busy_seconds.resize(platform_.pe_count());
  result.pe_overhead_seconds.resize(platform_.pe_count());
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) {
    result.pe_busy_seconds[pe] = result.counters.pe[pe].compute_seconds;
    result.pe_overhead_seconds[pe] = result.counters.pe[pe].overhead_seconds;
  }
  result.dma_transfers = result.counters.total_transfers();
  result.trace = std::move(trace_);
  result.faults = faults_;
  result.edge_produced.resize(graph_.edge_count());
  result.edge_delivered.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    result.edge_produced[e] = edges_[e].produced;
    result.edge_delivered[e] =
        edges_[e].remote ? edges_[e].fetched : edges_[e].produced;
  }
  result.fast_forward = ff_info_;
  return result;
}

}  // namespace

std::vector<std::pair<std::size_t, double>> SimResult::windowed_throughput(
    std::size_t window, std::size_t stride) const {
  CS_ENSURE(window >= 1 && stride >= 1, "windowed_throughput: bad window");
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t i = window; i < completion_times.size(); i += stride) {
    const double dt = completion_times[i] - completion_times[i - window];
    if (dt > 0.0) {
      out.emplace_back(i, static_cast<double>(window) / dt);
    }
  }
  return out;
}

SimResult simulate(const SteadyStateAnalysis& analysis, const Mapping& mapping,
                   const SimOptions& options) {
  Simulator simulator(analysis, mapping, options);
  return simulator.run();
}

}  // namespace cellstream::sim
