#pragma once
// Discrete-event simulator of a mapped streaming application on the Cell.
//
// This is the stand-in for the paper's PlayStation 3 / IBM QS22 runs (the
// hardware is long discontinued; see DESIGN.md).  It executes the same
// scheduler state machine as the paper's framework (Fig. 4): every PE
// cyclically alternates a *communication phase* — watch completed DMAs,
// issue eligible "Get" commands (each interrupting the core for a small
// issue overhead, since SPEs are not multi-threaded) — and a *computation
// phase* — select a runnable task instance, process it, signal the new
// data.  Modeled resources:
//
//   * unrelated-machine compute costs (wppe / wspe),
//   * per-PE bidirectional interfaces shared max-min fairly
//     (des::FlowNetwork), memory traffic included,
//   * the receiver-reads DMA protocol with the Cell's queue limits:
//     at most 16 outstanding SPE-issued DMAs per SPE, at most 8
//     outstanding PPE-issued DMAs per source SPE,
//   * bounded stream buffers sized by the steady-state analysis
//     (firstPeriod differences), duplicated at both endpoints,
//   * per-instance dispatch overhead (the source of the paper's ~5 %
//     model-vs-measurement gap).
//
// All event times live on an integer-nanosecond grid (exact in a double up
// to 2^53 ns), which makes the periodic steady state *exactly* periodic in
// the float sense — the basis of the fast-forward optimization
// (docs/PERFORMANCE.md): once the event pattern provably repeats over a
// full period, the run skips ahead k periods in O(1) by translating clocks
// and counters, with final stats bit-identical to the full simulation.

#include <cstdint>
#include <vector>

#include "core/steady_state.hpp"
#include "fault/fault_plan.hpp"
#include "obs/recorder.hpp"
#include "sim/trace.hpp"

namespace cellstream::sim {

struct SimOptions {
  /// Stream length in instances.
  std::size_t instances = 10000;
  /// PE time consumed by initiating one DMA / memcpy (computation is
  /// interrupted, then resumes — paper Section 4.1).
  double dma_issue_overhead = 0.5e-6;
  /// Per-task-instance scheduling cost (select task, check resources,
  /// signal dependants — paper Fig. 4a).
  double dispatch_overhead = 1.0e-6;
  /// Buffer slots for each task's main-memory read/write streams
  /// (double-buffering and a bit of slack).
  std::size_t memory_stream_depth = 4;
  /// Refuse mappings whose buffers overflow a SPE local store (a real
  /// Cell could not even load them).  DMA-count violations are *not*
  /// rejected: the runtime simply serializes, as real hardware would.
  bool enforce_local_store = true;
  /// Simulated-seconds safety net against pathological configurations.
  double max_simulated_seconds = 1e6;
  /// Record a full execution trace (see sim/trace.hpp).  Off by default:
  /// a 10k-instance run generates millions of events.
  bool record_trace = false;
  /// Steady-state fast-forward: detect an exactly repeating event pattern
  /// and skip ahead analytically (final stats stay bit-identical to a
  /// full run — differential rule D6 in src/check/).  Auto-disabled when
  /// record_trace is on (the trace must contain every event) or a fault
  /// plan is active (injected faults are instance-keyed and aperiodic);
  /// fuzz/fault runs and failover phases therefore always simulate every
  /// event.
  bool fast_forward = true;
  /// Optional deterministic fault scenario (see src/fault/): transient
  /// compute slowdowns, one-shot hangs and DMA retry/backoff delays are
  /// injected into the run; the extra time is accounted as overhead so
  /// the I7/I9 occupation cross-check stays exact.  Plans containing a
  /// permanent PE fail-stop are rejected here — drive those through
  /// fault::run_with_failover, which splits the stream around the loss.
  /// The plan is borrowed, not owned; it must outlive the call.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Index of the first instance of this run within the whole stream.
  /// The failover coordinator simulates the post-failure phase with the
  /// offset set to the drain frontier, so instance-keyed faults (DMA
  /// draws, slowdown windows) line up with the global stream position.
  std::int64_t instance_offset = 0;
};

/// Diagnostics of the steady-state fast-forward (docs/PERFORMANCE.md).
struct FastForwardInfo {
  bool enabled = false;   ///< Option on and not auto-disabled.
  bool engaged = false;   ///< A cycle was detected and skipped.
  std::int64_t cycle_instances = 0;  ///< Stream instances per cycle.
  double cycle_seconds = 0.0;        ///< Simulated seconds per cycle.
  std::int64_t skipped_cycles = 0;
  std::int64_t skipped_instances = 0;
  /// Cross-check against core/steady_state: the analytic period T and the
  /// observed per-instance period divided by it.  The simulator can never
  /// beat the bound, so the ratio is >= ~1; it is close to 1 when the
  /// mapping's bottleneck behaves as modeled (dispatch overheads push it
  /// a few percent up — the paper's ~5 % gap).
  double model_period = 0.0;
  double period_ratio = 0.0;
};

struct SimResult {
  /// completion_times[i]: simulated second at which instance i left the
  /// last task of the graph.
  std::vector<double> completion_times;
  double makespan = 0.0;           ///< Completion time of the last instance.
  double overall_throughput = 0.0; ///< instances / makespan.
  /// Throughput measured over the middle half of the stream (pipeline
  /// fill and drain excluded).
  double steady_throughput = 0.0;

  std::vector<double> pe_busy_seconds;      ///< Compute time per PE.
  std::vector<double> pe_overhead_seconds;  ///< Dispatch + DMA-issue time.
  std::uint64_t dma_transfers = 0;          ///< Total transfers issued.
  /// Full telemetry of the run (always recorded; the per-PE vectors above
  /// are views of it kept for compatibility).  Feeds obs::build_report
  /// and the predicted-vs-observed cross-check (invariant I7).
  obs::Counters counters;
  /// Execution trace (empty unless SimOptions::record_trace).
  std::vector<TraceEvent> trace;
  /// Fault counters accumulated by the run (all zero without a plan).
  fault::FaultStats faults;
  /// Per-edge end-to-end accounting at the end of the run: instances the
  /// producer wrote and instances that landed at the consumer.  Equal to
  /// the stream length on a complete run — invariant I8's raw material.
  std::vector<std::int64_t> edge_produced;
  std::vector<std::int64_t> edge_delivered;
  /// What the steady-state fast-forward did (engaged=false on full runs).
  FastForwardInfo fast_forward;

  /// Sliding-window throughput curve (the paper's Fig. 6): one sample per
  /// completed instance index multiple of `stride`, computed over the
  /// trailing `window` instances.
  std::vector<std::pair<std::size_t, double>> windowed_throughput(
      std::size_t window = 250, std::size_t stride = 100) const;
};

/// Simulate `mapping` on the analysis' graph/platform.  Throws on
/// infeasible local-store usage (when enforced) or malformed input.
SimResult simulate(const SteadyStateAnalysis& analysis, const Mapping& mapping,
                   const SimOptions& options = {});

}  // namespace cellstream::sim
