#pragma once
// Thread-pool batcher for independent simulation scenarios.
//
// A simulation run is single-threaded and deterministic, so a sweep over
// scenarios (benchmark points, fuzz cases, parameter grids) parallelizes
// trivially: each job owns its index, derives everything it needs from it
// (graph seed, mapping strategy, options), and writes its result into its
// own slot.  Results are therefore identical to a serial loop regardless
// of thread count or completion order — the property the TSan suite and
// the fuzz driver's seed-ordered reporting rely on.

#include <cstddef>
#include <functional>
#include <vector>

namespace cellstream::sim {

struct BatchOptions {
  /// Worker threads; 0 picks the hardware concurrency.  1 runs the jobs
  /// inline on the calling thread (useful to bisect scheduling issues).
  std::size_t threads = 0;
};

/// The thread count `BatchOptions::threads == 0` resolves to.
std::size_t default_batch_threads();

/// Run `job(0) .. job(count-1)`, each exactly once, across the pool.
/// Jobs must not touch shared mutable state (their index is their world).
/// If jobs throw, the batch still runs to completion and the exception of
/// the lowest-indexed failed job is rethrown — deterministic, unlike
/// first-to-fail.
void run_batch(std::size_t count, const std::function<void(std::size_t)>& job,
               const BatchOptions& options = {});

/// run_batch with one result slot per job: returns {fn(0), ..., fn(count-1)}
/// in index order.  Result must be default-constructible and movable.
template <typename Result, typename Fn>
std::vector<Result> run_batch_collect(std::size_t count, Fn&& fn,
                                      const BatchOptions& options = {}) {
  std::vector<Result> results(count);
  run_batch(
      count, [&results, &fn](std::size_t i) { results[i] = fn(i); }, options);
  return results;
}

}  // namespace cellstream::sim
