#pragma once
// Execution traces of the simulated Cell and a chrome://tracing exporter.
//
// With SimOptions::record_trace, the simulator logs every computation slot
// and every DMA transfer.  write_chrome_trace() renders them in the Trace
// Event Format, so a run can be inspected interactively in any Chromium
// browser (chrome://tracing) or in Perfetto: one row per processing
// element with its task executions, plus one row per PE for the transfers
// it received.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/task_graph.hpp"
#include "platform/cell.hpp"

namespace cellstream::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kCompute,   ///< A task instance executing on a PE.
    kTransfer,  ///< A DMA transfer (edge fetch / memory read / write).
  };
  Kind kind = Kind::kCompute;
  std::string name;       ///< Task name or transfer label.
  PeId pe = 0;            ///< Executing PE (kCompute) or receiver (kTransfer).
  double start = 0.0;     ///< Simulated seconds.
  double end = 0.0;
  std::int64_t instance = -1;  ///< Stream instance, when known.
};

/// Serialize events to the Trace Event Format (JSON array).  `platform`
/// supplies the thread names ("PPE0", "SPE3 transfers", ...).
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const CellPlatform& platform);

/// Convenience: the JSON as a string.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const CellPlatform& platform);

}  // namespace cellstream::sim
