#pragma once
// Compatibility alias: the execution-trace event type and the
// chrome://tracing writer moved to the shared observability layer
// (obs/trace.hpp) so the simulator and the host runtime emit the same
// events through one exporter.  Existing includes of "sim/trace.hpp" and
// uses of sim::TraceEvent / sim::write_chrome_trace keep working.

#include "obs/trace.hpp"

namespace cellstream::sim {

using TraceEvent = obs::TraceEvent;
using obs::chrome_trace_json;
using obs::write_chrome_trace;

}  // namespace cellstream::sim
