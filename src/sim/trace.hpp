#pragma once
// Execution traces of the simulated Cell and a chrome://tracing exporter.
//
// With SimOptions::record_trace, the simulator logs every computation slot
// and every DMA transfer.  write_chrome_trace() renders them in the Trace
// Event Format, so a run can be inspected interactively in any Chromium
// browser (chrome://tracing) or in Perfetto: one row per processing
// element with its task executions, plus one row per PE for the transfers
// it received.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/task_graph.hpp"
#include "platform/cell.hpp"

namespace cellstream::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kCompute,   ///< A task instance executing on a PE.
    kTransfer,  ///< A DMA transfer (edge fetch / memory read / write).
  };
  /// What a kTransfer event moves (kNone for kCompute events).
  enum class Payload : std::uint8_t {
    kNone,      ///< Not a transfer.
    kEdge,      ///< Remote-edge fetch (receiver reads the producer's buffer).
    kMemRead,   ///< Main-memory stream read of a task.
    kMemWrite,  ///< Main-memory stream write of a task.
  };
  Kind kind = Kind::kCompute;
  Payload payload = Payload::kNone;
  std::string name;       ///< Task name or transfer label.
  /// Executing PE (kCompute), or the PE whose communication phase issued
  /// the DMA (kTransfer) — the receiver for kEdge/kMemRead, the writer for
  /// kMemWrite.  The [start, end] window of a transfer is exactly the time
  /// the command occupies a DMA queue slot of its issuer (SPE MFC stack)
  /// or, for PPE-issued edge fetches, of the source SPE's proxy stack.
  PeId pe = 0;
  PeId src_pe = 0;        ///< Producer-side PE of a kEdge transfer; == pe
                          ///< for every other event kind.
  double start = 0.0;     ///< Simulated seconds.
  double end = 0.0;
  std::int64_t instance = -1;  ///< Stream instance, when known.
  std::int64_t edge = -1;      ///< EdgeId for Payload::kEdge.
  std::int64_t task = -1;      ///< TaskId for kCompute / kMemRead / kMemWrite.
};

/// Serialize events to the Trace Event Format (JSON array).  `platform`
/// supplies the thread names ("PPE0", "SPE3 transfers", ...).
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const CellPlatform& platform);

/// Convenience: the JSON as a string.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const CellPlatform& platform);

}  // namespace cellstream::sim
