#pragma once
// Invariant-checking oracle for simulated runs (the repo's correctness
// tooling layer; see docs/TESTING.md for the full catalogue).
//
// The paper's steady-state theory (Section 3) makes mechanically checkable
// promises about any valid execution of a mapped streaming application:
//
//   I1  throughput bound     rho_observed <= 1/T (+ tolerance), where T is
//                            the analytic period of the mapping,
//   I2  completion order     instance completion times strictly increase,
//   I3  local store          per-SPE stream buffers fit the 256 kB local
//                            store minus code (constraint 1i),
//   I4  DMA queue limits     at every trace instant, <= 16 outstanding
//                            SPE-issued DMAs per SPE and <= 8 outstanding
//                            PPE-issued DMAs per source SPE (1j/1k),
//   I5  buffer occupancy     an edge D_{k,l} never holds more than
//                            buff_{k,l} = data_{k,l} x (firstPeriod(T_l) -
//                            firstPeriod(T_k)) bytes at either endpoint,
//   I6  causality            no task instance starts before all the data
//                            it consumes (including peek look-ahead) has
//                            been produced and, for remote edges, fetched,
//   I7  occupation           no resource's observed per-instance occupation
//                            (PE compute seconds; interface bytes/bandwidth
//                            per direction) exceeds the steady-state
//                            prediction beyond tolerance, and no DMA-queue
//                            peak exceeds the hardware depth (obs::Report's
//                            predicted-vs-observed cross-check),
//   I8  stream integrity     no instance is lost or duplicated: every
//                            instance completes exactly once and every edge
//                            produces and delivers exactly one packet per
//                            instance — under fault injection included
//                            (docs/ROBUSTNESS.md),
//   I9  degraded mapping     after a failover, no task remains on a failed
//                            PE and the post-failover phase's occupation
//                            and throughput match the reduced-platform
//                            steady-state prediction.
//
// I1-I3 need only the SimResult; I4-I6 replay the execution trace
// (SimOptions::record_trace) against the analysis; I7 consumes the
// telemetry counters every simulated run carries; I8/I9 consume the
// per-edge accounting both executors export and the failover outcome of
// fault::run_with_failover.  Each checker returns the violations it found
// — an empty vector is a pass — so tests can exercise them one by one
// with hand-built traces.

#include <string>
#include <vector>

#include "core/steady_state.hpp"
#include "fault/failover.hpp"
#include "obs/recorder.hpp"
#include "runtime/host_runtime.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace cellstream::check {

/// One broken invariant, with enough context to debug the run.
struct Violation {
  std::string invariant;  ///< Stable id ("throughput-bound", "dma-queue", ...).
  std::string detail;     ///< Human-readable description.
};

struct InvariantOptions {
  /// Slack on I1: observed steady throughput may exceed 1/T by this
  /// fraction (discrete completions quantize the window edges).
  double throughput_tolerance = 0.02;
  /// Absolute slack in simulated seconds for time comparisons (I6).
  double time_epsilon = 1e-12;
  /// Slack on I7: observed per-instance occupation may exceed the model's
  /// prediction by this fraction (matches ReportOptions default).
  double occupation_tolerance = 0.05;
};

/// Aggregated result of check_invariants.
struct InvariantReport {
  std::vector<Violation> violations;
  std::size_t checks_run = 0;          ///< Invariant families evaluated.
  std::size_t trace_events_seen = 0;   ///< Events consumed by I4-I6.
  bool trace_checked = false;          ///< False when the trace was empty.

  bool ok() const { return violations.empty(); }
  /// Multi-line summary for logs and fuzz reproducers.
  std::string to_string() const;
};

// -- Individual invariants (empty result = pass) ---------------------------

/// I1: result.steady_throughput and overall_throughput must not exceed
/// (1 + tolerance) x analysis.throughput(mapping).
std::vector<Violation> check_throughput_bound(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const sim::SimResult& result, const InvariantOptions& options = {});

/// I2: completion_times strictly increase and makespan equals the last one.
std::vector<Violation> check_completion_order(const sim::SimResult& result);

/// I3: per-SPE buffer bytes of the mapping fit the local-store budget.
std::vector<Violation> check_local_store(const SteadyStateAnalysis& analysis,
                                         const Mapping& mapping);

/// I4: sweep the transfer events; at no instant may a SPE hold more than
/// platform.spe_dma_slots outstanding DMAs it issued, nor a source SPE more
/// than platform.ppe_to_spe_dma_slots outstanding PPE-issued fetches.
std::vector<Violation> check_dma_queue_limits(
    const CellPlatform& platform, const std::vector<sim::TraceEvent>& trace);

/// I5: replay produced/fetched/consumed counters per edge; occupancy must
/// never exceed the steady-state buffer depth at either endpoint.  Also
/// flags non-sequential instance numbering (a corrupted trace).
std::vector<Violation> check_buffer_occupancy(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const std::vector<sim::TraceEvent>& trace);

/// I6: every compute event must start at or after the availability of all
/// inputs it consumes: producer completions for local edges, fetch
/// completions for remote edges (instance i needs inputs up to
/// min(i + peek, last instance)), and every fetch must start at or after
/// its producer's completion.
std::vector<Violation> check_causality(const SteadyStateAnalysis& analysis,
                                       const Mapping& mapping,
                                       const std::vector<sim::TraceEvent>& trace,
                                       const InvariantOptions& options = {});

/// Executor-neutral end-to-end accounting of one run — I8's raw material.
/// Both executors export it: accounting_of() adapts either result type.
struct StreamAccounting {
  std::int64_t instances_completed = 0;  ///< Completion stamps recorded.
  std::vector<std::int64_t> edge_produced;   ///< Packets pushed per edge.
  std::vector<std::int64_t> edge_delivered;  ///< Packets retired per edge.
};

StreamAccounting accounting_of(const sim::SimResult& result);
StreamAccounting accounting_of(const runtime::RunStats& stats);

/// I8: a complete `instances`-long run must complete every instance exactly
/// once and move exactly one packet per instance along every edge — no
/// instance lost, none duplicated, even across a failover remap.
std::vector<Violation> check_stream_integrity(const TaskGraph& graph,
                                              const StreamAccounting& accounting,
                                              std::int64_t instances);

/// I9: after losing `failed_pes`, the degraded mapping must host no task on
/// a failed PE, still fit every surviving SPE's local store, and the
/// post-failover phase's observed occupation must match the steady-state
/// prediction of the degraded mapping (the reduced-platform prediction —
/// the failed PE hosts nothing).  `post_counters` are the telemetry of the
/// post-failover phase only.
std::vector<Violation> check_degraded_mapping(
    const SteadyStateAnalysis& analysis, const Mapping& post_mapping,
    const std::vector<PeId>& failed_pes, const obs::Counters& post_counters,
    const InvariantOptions& options = {});

/// I7: build the obs::Report for `counters` and flag every resource whose
/// observed occupation per instance exceeds the steady-state prediction by
/// more than options.occupation_tolerance, plus any DMA-queue peak above
/// the hardware depth.  Skipped (empty result) for wall-clock counters or
/// runs that completed no instance — the cross-check compares against
/// *modeled* time, which only the simulator produces.
std::vector<Violation> check_occupation(const SteadyStateAnalysis& analysis,
                                        const Mapping& mapping,
                                        const obs::Counters& counters,
                                        const InvariantOptions& options = {});

/// Run every invariant against a simulated run.  Trace-based checks are
/// skipped (report.trace_checked == false) when result.trace is empty; the
/// I8 self-check is skipped when the result carries no edge accounting
/// (hand-built results).
InvariantReport check_invariants(const SteadyStateAnalysis& analysis,
                                 const Mapping& mapping,
                                 const sim::SimResult& result,
                                 const InvariantOptions& options = {});

/// Run the full oracle against a fault::run_with_failover outcome: every
/// phase is checked as a self-contained run under the mapping it executed
/// (I1-I7; the phase-2 throughput bound uses the degraded mapping's
/// analysis, so it IS the I9 throughput check), I8 over the stitched
/// whole-stream accounting, and I9 on the post-failover mapping and phase
/// when a failover ran.  Phase indices are prefixed to every violation.
InvariantReport check_failover_invariants(
    const SteadyStateAnalysis& analysis, const fault::FailoverOutcome& outcome,
    const InvariantOptions& options = {});

}  // namespace cellstream::check
