#pragma once
// Invariant-checking oracle for simulated runs (the repo's correctness
// tooling layer; see docs/TESTING.md for the full catalogue).
//
// The paper's steady-state theory (Section 3) makes mechanically checkable
// promises about any valid execution of a mapped streaming application:
//
//   I1  throughput bound     rho_observed <= 1/T (+ tolerance), where T is
//                            the analytic period of the mapping,
//   I2  completion order     instance completion times strictly increase,
//   I3  local store          per-SPE stream buffers fit the 256 kB local
//                            store minus code (constraint 1i),
//   I4  DMA queue limits     at every trace instant, <= 16 outstanding
//                            SPE-issued DMAs per SPE and <= 8 outstanding
//                            PPE-issued DMAs per source SPE (1j/1k),
//   I5  buffer occupancy     an edge D_{k,l} never holds more than
//                            buff_{k,l} = data_{k,l} x (firstPeriod(T_l) -
//                            firstPeriod(T_k)) bytes at either endpoint,
//   I6  causality            no task instance starts before all the data
//                            it consumes (including peek look-ahead) has
//                            been produced and, for remote edges, fetched,
//   I7  occupation           no resource's observed per-instance occupation
//                            (PE compute seconds; interface bytes/bandwidth
//                            per direction) exceeds the steady-state
//                            prediction beyond tolerance, and no DMA-queue
//                            peak exceeds the hardware depth (obs::Report's
//                            predicted-vs-observed cross-check).
//
// I1-I3 need only the SimResult; I4-I6 replay the execution trace
// (SimOptions::record_trace) against the analysis; I7 consumes the
// telemetry counters every simulated run carries.  Each checker returns
// the violations it found — an empty vector is a pass — so tests can
// exercise them one by one with hand-built traces.

#include <string>
#include <vector>

#include "core/steady_state.hpp"
#include "obs/recorder.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace cellstream::check {

/// One broken invariant, with enough context to debug the run.
struct Violation {
  std::string invariant;  ///< Stable id ("throughput-bound", "dma-queue", ...).
  std::string detail;     ///< Human-readable description.
};

struct InvariantOptions {
  /// Slack on I1: observed steady throughput may exceed 1/T by this
  /// fraction (discrete completions quantize the window edges).
  double throughput_tolerance = 0.02;
  /// Absolute slack in simulated seconds for time comparisons (I6).
  double time_epsilon = 1e-12;
  /// Slack on I7: observed per-instance occupation may exceed the model's
  /// prediction by this fraction (matches ReportOptions default).
  double occupation_tolerance = 0.05;
};

/// Aggregated result of check_invariants.
struct InvariantReport {
  std::vector<Violation> violations;
  std::size_t checks_run = 0;          ///< Invariant families evaluated.
  std::size_t trace_events_seen = 0;   ///< Events consumed by I4-I6.
  bool trace_checked = false;          ///< False when the trace was empty.

  bool ok() const { return violations.empty(); }
  /// Multi-line summary for logs and fuzz reproducers.
  std::string to_string() const;
};

// -- Individual invariants (empty result = pass) ---------------------------

/// I1: result.steady_throughput and overall_throughput must not exceed
/// (1 + tolerance) x analysis.throughput(mapping).
std::vector<Violation> check_throughput_bound(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const sim::SimResult& result, const InvariantOptions& options = {});

/// I2: completion_times strictly increase and makespan equals the last one.
std::vector<Violation> check_completion_order(const sim::SimResult& result);

/// I3: per-SPE buffer bytes of the mapping fit the local-store budget.
std::vector<Violation> check_local_store(const SteadyStateAnalysis& analysis,
                                         const Mapping& mapping);

/// I4: sweep the transfer events; at no instant may a SPE hold more than
/// platform.spe_dma_slots outstanding DMAs it issued, nor a source SPE more
/// than platform.ppe_to_spe_dma_slots outstanding PPE-issued fetches.
std::vector<Violation> check_dma_queue_limits(
    const CellPlatform& platform, const std::vector<sim::TraceEvent>& trace);

/// I5: replay produced/fetched/consumed counters per edge; occupancy must
/// never exceed the steady-state buffer depth at either endpoint.  Also
/// flags non-sequential instance numbering (a corrupted trace).
std::vector<Violation> check_buffer_occupancy(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const std::vector<sim::TraceEvent>& trace);

/// I6: every compute event must start at or after the availability of all
/// inputs it consumes: producer completions for local edges, fetch
/// completions for remote edges (instance i needs inputs up to
/// min(i + peek, last instance)), and every fetch must start at or after
/// its producer's completion.
std::vector<Violation> check_causality(const SteadyStateAnalysis& analysis,
                                       const Mapping& mapping,
                                       const std::vector<sim::TraceEvent>& trace,
                                       const InvariantOptions& options = {});

/// I7: build the obs::Report for `counters` and flag every resource whose
/// observed occupation per instance exceeds the steady-state prediction by
/// more than options.occupation_tolerance, plus any DMA-queue peak above
/// the hardware depth.  Skipped (empty result) for wall-clock counters or
/// runs that completed no instance — the cross-check compares against
/// *modeled* time, which only the simulator produces.
std::vector<Violation> check_occupation(const SteadyStateAnalysis& analysis,
                                        const Mapping& mapping,
                                        const obs::Counters& counters,
                                        const InvariantOptions& options = {});

/// Run every invariant against a simulated run.  Trace-based checks are
/// skipped (report.trace_checked == false) when result.trace is empty.
InvariantReport check_invariants(const SteadyStateAnalysis& analysis,
                                 const Mapping& mapping,
                                 const sim::SimResult& result,
                                 const InvariantOptions& options = {});

}  // namespace cellstream::check
