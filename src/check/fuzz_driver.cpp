#include "check/fuzz_driver.hpp"

#include <ostream>
#include <sstream>

#include "fault/failover.hpp"
#include "fault/fault_plan.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "schedule/periodic_schedule.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace cellstream::check {

namespace {

const char* const kStrategies[] = {"greedy-mem", "greedy-cpu", "greedy-period",
                                   "round-robin", "ppe-only"};
const char* const kPlatforms[] = {"qs22", "qs22", "qs22", "ps3", "qs22-4spe",
                                  "qs22-dual"};

CellPlatform platform_by_name(const std::string& name) {
  if (name == "qs22") return platforms::qs22_single_cell();
  if (name == "ps3") return platforms::playstation3();
  if (name == "qs22-4spe") return platforms::qs22_with_spes(4);
  if (name == "qs22-dual") return platforms::qs22_dual_cell();
  throw Error("fuzz: unknown platform preset '" + name + "'");
}

}  // namespace

std::uint64_t case_seed_of(std::uint64_t base_seed, std::size_t index) {
  Rng rng(base_seed ^ (0x9E3779B97F4A7C15ULL *
                       (static_cast<std::uint64_t>(index) + 1)));
  return rng();
}

FuzzCase make_case(std::uint64_t case_seed, const FuzzOptions& options) {
  Rng rng(case_seed);
  FuzzCase scenario;
  scenario.case_seed = case_seed;
  scenario.differential = rng.bernoulli(options.differential_probability);
  scenario.task_count = static_cast<std::size_t>(
      scenario.differential
          ? rng.uniform_int(
                3, static_cast<std::int64_t>(options.differential_max_tasks))
          : rng.uniform_int(static_cast<std::int64_t>(options.min_tasks),
                            static_cast<std::int64_t>(options.max_tasks)));
  scenario.ccr = gen::kPaperCcrValues[rng.uniform_int(0, 5)];
  scenario.strategy =
      kStrategies[rng.uniform_int(0, std::size(kStrategies) - 1)];
  scenario.platform =
      kPlatforms[rng.uniform_int(0, std::size(kPlatforms) - 1)];
  // Fault dimension last, and only drawn when enabled: with the default
  // fault_probability of 0 the rng consumes exactly the draws it always
  // did, so historical case seeds keep reproducing byte-identically.
  if (options.fault_probability > 0.0 &&
      rng.bernoulli(options.fault_probability)) {
    scenario.with_faults = true;
    scenario.fault_seed = scenario.case_seed ^ 0xF4017F4017F401ULL;
  }
  return scenario;
}

std::string FuzzCase::to_string() const {
  std::ostringstream os;
  os << "case " << case_seed << " (" << task_count << " tasks, ccr " << ccr
     << ", " << strategy << ", " << platform
     << (differential ? ", differential" : "")
     << (with_faults ? ", faults" : "") << ")";
  return os.str();
}

std::vector<Violation> run_case(const FuzzCase& scenario,
                                const FuzzOptions& options) {
  std::vector<Violation> violations;
  const auto pipeline_error = [&violations](const std::string& stage,
                                            const std::string& what) {
    violations.push_back({"pipeline", stage + ": " + what});
  };

  // Generate.  Graph-shape knobs come from a child stream of the case
  // seed, so the one seed reproduces the whole scenario.
  Rng shape_rng(scenario.case_seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  gen::DagGenParams params;
  params.task_count = scenario.task_count;
  params.seed = scenario.case_seed;
  params.fat = shape_rng.uniform(0.2, 0.8);
  params.regularity = shape_rng.uniform(0.3, 1.0);
  params.density = shape_rng.uniform(0.2, 0.8);
  params.jump = static_cast<std::size_t>(shape_rng.uniform_int(1, 3));
  TaskGraph graph;
  try {
    graph = gen::daggen_random(params);
    gen::set_ccr(graph, scenario.ccr);
  } catch (const Error& e) {
    pipeline_error("generate", e.what());
    return violations;
  }

  const SteadyStateAnalysis analysis(graph, platform_by_name(scenario.platform));

  // Map.  Every heuristic admits tasks by local-store fit, so an overflow
  // here is a mapper bug — recorded, then the run falls back to the PPE.
  Mapping mapping;
  try {
    mapping = mapping::run_heuristic(scenario.strategy, analysis);
  } catch (const Error& e) {
    pipeline_error("map", e.what());
    return violations;
  }
  std::vector<Violation> store = check_local_store(analysis, mapping);
  if (!store.empty()) {
    for (Violation& v : store) {
      violations.push_back({"pipeline",
                            scenario.strategy + " broke its local-store "
                            "admission rule: " + v.detail});
    }
    mapping = mapping::ppe_only(analysis);
  }

  // Schedule: the periodic schedule's own validator must accept it.
  try {
    schedule::PeriodicSchedule sched(analysis, mapping);
    sched.validate();
  } catch (const Error& e) {
    pipeline_error("schedule", e.what());
  }

  // Simulate with a full trace, then run the invariant oracle.  A faulted
  // case goes through the failover coordinator instead (fail-stop, DMA
  // retry pressure, slowdowns, hangs) and the I8/I9 oracle on top.
  if (scenario.with_faults) {
    try {
      const fault::FaultPlan plan = fault::FaultPlan::random(
          scenario.fault_seed, analysis.platform(),
          static_cast<std::int64_t>(options.instances));
      fault::FailoverOptions failover;
      failover.sim.instances = options.instances;
      failover.sim.record_trace = true;
      Rng strategy_rng(scenario.fault_seed ^ 0x5EC0FDULL);
      failover.strategy =
          strategy_rng.bernoulli(0.5) ? "greedy-mem" : "greedy-cpu";
      const fault::FailoverOutcome outcome =
          fault::run_with_failover(analysis, mapping, plan, failover);
      InvariantReport report =
          check_failover_invariants(analysis, outcome, options.invariants);
      violations.insert(violations.end(),
                        std::make_move_iterator(report.violations.begin()),
                        std::make_move_iterator(report.violations.end()));
    } catch (const Error& e) {
      pipeline_error("failover", e.what());
    }
  } else {
    try {
      sim::SimOptions sim_options;
      sim_options.instances = options.instances;
      sim_options.record_trace = true;
      const sim::SimResult result =
          sim::simulate(analysis, mapping, sim_options);
      InvariantReport report =
          check_invariants(analysis, mapping, result, options.invariants);
      violations.insert(violations.end(),
                        std::make_move_iterator(report.violations.begin()),
                        std::make_move_iterator(report.violations.end()));
    } catch (const Error& e) {
      pipeline_error("simulate", e.what());
    }
  }

  // Differential oracle on small graphs.
  if (scenario.differential) {
    try {
      DifferentialOptions diff;
      diff.milp_time_limit = options.milp_time_limit;
      diff.max_tasks = options.differential_max_tasks;
      DifferentialReport report = cross_check_mappers(analysis, diff);
      violations.insert(violations.end(),
                        std::make_move_iterator(report.violations.begin()),
                        std::make_move_iterator(report.violations.end()));
    } catch (const Error& e) {
      pipeline_error("differential", e.what());
    }
  }
  return violations;
}

FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log) {
  // Cases are independent (everything derives from the case seed), so the
  // sweep fans out over the batch runner; results land in per-case slots
  // and the report below walks them in seed order, so the log and the
  // failure list are byte-identical to a serial run at any thread count.
  struct CaseResult {
    FuzzCase scenario;
    std::vector<Violation> violations;
  };
  sim::BatchOptions batch;
  batch.threads = options.threads;
  std::vector<CaseResult> results = sim::run_batch_collect<CaseResult>(
      options.cases,
      [&options](std::size_t i) {
        CaseResult r;
        r.scenario = make_case(case_seed_of(options.base_seed, i), options);
        r.violations = run_case(r.scenario, options);
        return r;
      },
      batch);

  FuzzReport report;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FuzzCase& scenario = results[i].scenario;
    std::vector<Violation>& violations = results[i].violations;
    ++report.cases_run;
    ++report.pipelines_simulated;
    if (scenario.differential) ++report.differential_checks;
    if (scenario.with_faults) ++report.fault_scenarios;
    if (!violations.empty()) {
      if (log != nullptr) {
        *log << "FAIL " << scenario.to_string() << ": "
             << violations.size() << " violation(s); reproduce with "
             << "cellstream_fuzz --case " << scenario.case_seed << "\n";
        for (const Violation& v : violations) {
          *log << "  [" << v.invariant << "] " << v.detail << "\n";
        }
      }
      report.failures.push_back({scenario, std::move(violations)});
    } else if (log != nullptr && (i + 1) % 25 == 0) {
      *log << "  " << (i + 1) << "/" << options.cases << " cases clean\n";
    }
  }
  return report;
}

std::string FuzzReport::summary() const {
  std::ostringstream os;
  os << cases_run << " cases (" << pipelines_simulated
     << " simulated pipelines, " << differential_checks
     << " differential cross-checks, " << fault_scenarios
     << " fault scenarios): ";
  if (ok()) {
    os << "all invariants held";
  } else {
    os << failures.size() << " failing case(s)";
    for (const FuzzFailure& f : failures) {
      os << "\n  " << f.scenario.to_string() << " -> "
         << f.violations.size() << " violation(s), reproduce with "
         << "cellstream_fuzz --case " << f.scenario.case_seed;
    }
  }
  return os.str();
}

}  // namespace cellstream::check
