#include "check/invariants.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/report.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace cellstream::check {

namespace {

using sim::TraceEvent;

std::string time_str(double seconds) {
  std::ostringstream os;
  os.precision(9);
  os << seconds << "s";
  return os.str();
}

void add(std::vector<Violation>& out, std::string invariant,
         std::string detail) {
  out.push_back({std::move(invariant), std::move(detail)});
}

/// Per-task compute events and per-edge fetch events, indexed by instance.
/// Built once and shared by the trace-replay checkers.  Events are placed
/// by their instance number — under fault injection a stalled DMA retry
/// legitimately lets instance i+1's fetch complete before instance i's, so
/// arrival order proves nothing — and each sequence is then verified to be
/// a gap-free, duplicate-free 0..L-1 (a checker working from a corrupted
/// trace would otherwise prove nothing).
struct TraceIndex {
  struct Window {
    double start = 0.0;
    double end = 0.0;
  };
  // computes[t][i] / fetches[e][i]: event window of instance i.
  std::vector<std::vector<Window>> computes;
  std::vector<std::vector<Window>> fetches;
  std::vector<Violation> defects;

  TraceIndex(const TaskGraph& graph, const std::vector<TraceEvent>& trace) {
    computes.resize(graph.task_count());
    fetches.resize(graph.edge_count());
    std::vector<std::vector<char>> compute_seen(graph.task_count());
    std::vector<std::vector<char>> fetch_seen(graph.edge_count());
    for (const TraceEvent& e : trace) {
      if (e.end < e.start) {
        add(defects, "trace-consistency",
            "event '" + e.name + "' ends before it starts");
        continue;
      }
      if (e.kind == TraceEvent::Kind::kCompute) {
        if (e.task < 0 ||
            static_cast<std::size_t>(e.task) >= graph.task_count()) {
          add(defects, "trace-consistency",
              "compute event '" + e.name + "' has no valid task id");
          continue;
        }
        const auto t = static_cast<std::size_t>(e.task);
        place(computes[t], compute_seen[t], e, "compute");
      } else if (e.payload == TraceEvent::Payload::kEdge) {
        if (e.edge < 0 ||
            static_cast<std::size_t>(e.edge) >= graph.edge_count()) {
          add(defects, "trace-consistency",
              "edge transfer '" + e.name + "' has no valid edge id");
          continue;
        }
        const auto edge = static_cast<std::size_t>(e.edge);
        place(fetches[edge], fetch_seen[edge], e, "fetch");
      }
    }
    for (TaskId t = 0; t < graph.task_count(); ++t) {
      report_gaps(compute_seen[t], "compute of task '" + graph.task(t).name);
    }
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const Edge& edge = graph.edge(e);
      report_gaps(fetch_seen[e], "fetch of edge '" +
                                     graph.task(edge.from).name + "->" +
                                     graph.task(edge.to).name);
    }
  }

  /// Number of stream instances witnessed by the trace.
  std::int64_t stream_length() const {
    std::size_t len = 0;
    for (const auto& seq : computes) len = std::max(len, seq.size());
    return static_cast<std::int64_t>(len);
  }

 private:
  void place(std::vector<Window>& seq, std::vector<char>& seen,
             const TraceEvent& e, const char* what) {
    if (e.instance < 0) {
      add(defects, "trace-consistency",
          std::string(what) + " '" + e.name + "' has no instance number");
      return;
    }
    const auto i = static_cast<std::size_t>(e.instance);
    if (i >= seq.size()) {
      seq.resize(i + 1);
      seen.resize(i + 1, 0);
    }
    if (seen[i]) {
      add(defects, "trace-consistency",
          std::string(what) + " '" + e.name + "' completes instance " +
              std::to_string(e.instance) + " twice (duplicated work)");
      return;
    }
    seen[i] = 1;
    seq[i] = {e.start, e.end};
  }

  void report_gaps(const std::vector<char>& seen, const std::string& what) {
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (!seen[i]) {
        add(defects, "trace-consistency",
            what + "': instance " + std::to_string(i) +
                " is missing from the trace (later instances are present)");
        return;  // one report per sequence keeps cascades readable
      }
    }
  }
};

}  // namespace

std::vector<Violation> check_throughput_bound(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const sim::SimResult& result, const InvariantOptions& options) {
  std::vector<Violation> out;
  const double bound = analysis.throughput(mapping);
  const double limit = bound * (1.0 + options.throughput_tolerance);
  if (result.steady_throughput > limit) {
    add(out, "throughput-bound",
        "steady throughput " + format_number(result.steady_throughput) +
            "/s exceeds the analytic bound 1/T = " + format_number(bound) +
            "/s (tolerance " +
            std::to_string(options.throughput_tolerance) + ")");
  }
  if (result.overall_throughput > limit) {
    add(out, "throughput-bound",
        "overall throughput " + format_number(result.overall_throughput) +
            "/s exceeds the analytic bound 1/T = " + format_number(bound) +
            "/s");
  }
  return out;
}

std::vector<Violation> check_completion_order(const sim::SimResult& result) {
  std::vector<Violation> out;
  const std::vector<double>& ct = result.completion_times;
  if (ct.empty()) {
    add(out, "completion-order", "no completion times recorded");
    return out;
  }
  if (ct.front() <= 0.0) {
    add(out, "completion-order",
        "instance 0 completed at " + time_str(ct.front()) +
            " (before the simulation started)");
  }
  for (std::size_t i = 1; i < ct.size(); ++i) {
    if (ct[i] <= ct[i - 1]) {
      add(out, "completion-order",
          "instance " + std::to_string(i) + " completed at " +
              time_str(ct[i]) + ", not after instance " +
              std::to_string(i - 1) + " at " + time_str(ct[i - 1]));
    }
  }
  if (result.makespan != ct.back()) {
    add(out, "completion-order",
        "makespan " + time_str(result.makespan) +
            " does not equal the last completion " + time_str(ct.back()));
  }
  return out;
}

std::vector<Violation> check_local_store(const SteadyStateAnalysis& analysis,
                                         const Mapping& mapping) {
  std::vector<Violation> out;
  const CellPlatform& platform = analysis.platform();
  const ResourceUsage usage = analysis.usage(mapping);
  const double budget = static_cast<double>(platform.buffer_budget());
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    if (!platform.is_spe(pe)) continue;
    if (usage.buffer_bytes[pe] > budget) {
      add(out, "local-store",
          platform.pe_name(pe) + " holds " +
              format_bytes(usage.buffer_bytes[pe]) +
              " of stream buffers, over the " + format_bytes(budget) +
              " local-store budget");
    }
  }
  return out;
}

std::vector<Violation> check_dma_queue_limits(
    const CellPlatform& platform, const std::vector<sim::TraceEvent>& trace) {
  std::vector<Violation> out;
  // Sweep-line deltas per queue: +1 when a DMA is issued, -1 when it
  // completes.  At equal times completions are applied first — that is the
  // semantics the simulator guarantees (a slot freed at time t may be
  // reused by a command issued at t).
  struct Delta {
    double time;
    int change;
    bool operator<(const Delta& other) const {
      if (time != other.time) return time < other.time;
      return change < other.change;
    }
  };
  std::vector<std::vector<Delta>> spe_queue(platform.pe_count());
  std::vector<std::vector<Delta>> proxy_queue(platform.pe_count());
  for (const TraceEvent& e : trace) {
    if (e.kind != TraceEvent::Kind::kTransfer) continue;
    // Every transfer occupies one slot of its issuer's MFC stack while in
    // flight — when the issuer is a SPE (constraint 1j's runtime analogue).
    if (platform.is_spe(e.pe)) {
      spe_queue[e.pe].push_back({e.start, +1});
      spe_queue[e.pe].push_back({e.end, -1});
    } else if (e.payload == TraceEvent::Payload::kEdge &&
               platform.is_spe(e.src_pe)) {
      // PPE-issued fetch from a SPE local store: occupies the source SPE's
      // 8-deep proxy stack (constraint 1k's runtime analogue).
      proxy_queue[e.src_pe].push_back({e.start, +1});
      proxy_queue[e.src_pe].push_back({e.end, -1});
    }
  }
  const auto sweep = [&](std::vector<Delta>& deltas, std::size_t limit,
                         const std::string& what) {
    std::sort(deltas.begin(), deltas.end());
    std::int64_t depth = 0;
    std::int64_t peak = 0;
    double peak_time = 0.0;
    for (const Delta& d : deltas) {
      depth += d.change;
      if (depth > peak) {
        peak = depth;
        peak_time = d.time;
      }
    }
    if (peak > static_cast<std::int64_t>(limit)) {
      add(out, "dma-queue",
          what + " reaches " + std::to_string(peak) +
              " outstanding DMAs at " + time_str(peak_time) + ", over the " +
              std::to_string(limit) + "-slot hardware queue");
    }
  };
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    if (!platform.is_spe(pe)) continue;
    sweep(spe_queue[pe], platform.spe_dma_slots,
          platform.pe_name(pe) + " MFC queue");
    sweep(proxy_queue[pe], platform.ppe_to_spe_dma_slots,
          platform.pe_name(pe) + " proxy queue");
  }
  return out;
}

std::vector<Violation> check_buffer_occupancy(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const std::vector<sim::TraceEvent>& trace) {
  const TaskGraph& graph = analysis.graph();
  TraceIndex index(graph, trace);
  std::vector<Violation> out = std::move(index.defects);

  // Replay each edge's produce / fetch / consume counter timeline.  At
  // equal times the slot-freeing transition is applied first (consume,
  // then fetch, then produce), matching the simulator's guarantee.
  enum : int { kConsume = 0, kFetch = 1, kProduce = 2 };
  struct Step {
    double time;
    int type;
    bool operator<(const Step& other) const {
      if (time != other.time) return time < other.time;
      return type < other.type;
    }
  };
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const bool remote = mapping.pe_of(edge.from) != mapping.pe_of(edge.to);
    const std::int64_t depth = analysis.buffer_depth(e);
    std::vector<Step> steps;
    for (const auto& w : index.computes[edge.from]) {
      steps.push_back({w.end, kProduce});
    }
    for (const auto& w : index.computes[edge.to]) {
      steps.push_back({w.end, kConsume});
    }
    for (const auto& w : index.fetches[e]) steps.push_back({w.end, kFetch});
    std::sort(steps.begin(), steps.end());

    const std::string label = graph.task(edge.from).name + "->" +
                              graph.task(edge.to).name;
    std::int64_t produced = 0, fetched = 0, consumed = 0;
    bool over_reported = false, order_reported = false;
    for (const Step& s : steps) {
      switch (s.type) {
        case kProduce: ++produced; break;
        case kFetch: ++fetched; break;
        case kConsume: ++consumed; break;
      }
      if (!order_reported &&
          (fetched > produced || consumed > (remote ? fetched : produced))) {
        order_reported = true;
        add(out, "buffer-occupancy",
            "edge " + label + ": counters out of order at " +
                time_str(s.time) + " (produced " + std::to_string(produced) +
                ", fetched " + std::to_string(fetched) + ", consumed " +
                std::to_string(consumed) + ")");
      }
      const std::int64_t producer_side =
          produced - (remote ? fetched : consumed);
      const std::int64_t consumer_side = remote ? fetched - consumed : 0;
      const std::int64_t occupancy = std::max(producer_side, consumer_side);
      if (!over_reported && occupancy > depth) {
        over_reported = true;
        add(out, "buffer-occupancy",
            "edge " + label + " holds " + std::to_string(occupancy) +
                " instances (" +
                format_bytes(static_cast<double>(occupancy) *
                             edge.data_bytes) +
                ") at " + time_str(s.time) + ", over buff = " +
                std::to_string(depth) + " instances (" +
                format_bytes(analysis.buffer_bytes(e)) + ")");
      }
    }
  }
  return out;
}

std::vector<Violation> check_causality(const SteadyStateAnalysis& analysis,
                                       const Mapping& mapping,
                                       const std::vector<sim::TraceEvent>& trace,
                                       const InvariantOptions& options) {
  const TaskGraph& graph = analysis.graph();
  const double eps = options.time_epsilon;
  TraceIndex index(graph, trace);
  std::vector<Violation> out = std::move(index.defects);
  const std::int64_t length = index.stream_length();

  // availability[...] (i): earliest time by which instances 0..i are all
  // available — a running max of completion times, since completions of
  // one sequence need not be monotone in time across instances.
  const auto prefix_max_ends = [](const std::vector<TraceIndex::Window>& seq) {
    std::vector<double> out_times(seq.size());
    double running = 0.0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      running = std::max(running, seq[i].end);
      out_times[i] = running;
    }
    return out_times;
  };
  std::vector<std::vector<double>> produced_by(graph.task_count());
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    produced_by[t] = prefix_max_ends(index.computes[t]);
  }
  std::vector<std::vector<double>> fetched_by(graph.edge_count());
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    fetched_by[e] = prefix_max_ends(index.fetches[e]);
  }

  // A remote fetch of instance i must start after its production.
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const std::string label =
        graph.task(edge.from).name + "->" + graph.task(edge.to).name;
    for (std::size_t i = 0; i < index.fetches[e].size(); ++i) {
      if (i >= index.computes[edge.from].size()) {
        add(out, "causality",
            "edge " + label + ": instance " + std::to_string(i) +
                " was fetched but its production is not in the trace");
        break;
      }
      if (index.fetches[e][i].start + eps < index.computes[edge.from][i].end) {
        add(out, "causality",
            "edge " + label + ": fetch of instance " + std::to_string(i) +
                " starts at " + time_str(index.fetches[e][i].start) +
                ", before the producer finished at " +
                time_str(index.computes[edge.from][i].end));
      }
    }
  }

  // A compute of instance i needs instances 0..min(i + peek, L-1) of every
  // input available (produced locally, or fetched when the edge is remote).
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const int peek = graph.task(t).peek;
    for (std::size_t i = 0; i < index.computes[t].size(); ++i) {
      const double start = index.computes[t][i].start;
      const std::int64_t need =
          std::min<std::int64_t>(static_cast<std::int64_t>(i) + peek,
                                 length - 1);
      for (EdgeId e : graph.in_edges(t)) {
        const Edge& edge = graph.edge(e);
        const bool remote = mapping.pe_of(edge.from) != mapping.pe_of(edge.to);
        const std::vector<double>& avail =
            remote ? fetched_by[e] : produced_by[edge.from];
        const std::string label =
            graph.task(edge.from).name + "->" + graph.task(t).name;
        if (static_cast<std::int64_t>(avail.size()) <= need) {
          add(out, "causality",
              "task " + graph.task(t).name + " ran instance " +
                  std::to_string(i) + " but input " + label +
                  " only delivered " + std::to_string(avail.size()) +
                  " instances in the trace (needs " +
                  std::to_string(need + 1) + " with peek " +
                  std::to_string(peek) + ")");
          continue;
        }
        if (avail[static_cast<std::size_t>(need)] > start + eps) {
          add(out, "causality",
              "task " + graph.task(t).name + " started instance " +
                  std::to_string(i) + " at " + time_str(start) +
                  " before input " + label + " delivered instance " +
                  std::to_string(need) + " at " +
                  time_str(avail[static_cast<std::size_t>(need)]));
        }
      }
    }
  }

  // Processing elements are serial: compute windows on one PE must not
  // overlap (the trace window excludes dispatch overhead, so any overlap
  // is a genuine double-booking).
  std::vector<std::vector<TraceIndex::Window>> per_pe(
      analysis.platform().pe_count());
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    for (const auto& w : index.computes[t]) {
      per_pe[mapping.pe_of(t)].push_back(w);
    }
  }
  for (PeId pe = 0; pe < per_pe.size(); ++pe) {
    auto& windows = per_pe[pe];
    std::sort(windows.begin(), windows.end(),
              [](const auto& a, const auto& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < windows.size(); ++i) {
      if (windows[i].start + eps < windows[i - 1].end) {
        add(out, "causality",
            analysis.platform().pe_name(pe) +
                " executes two task instances concurrently (" +
                time_str(windows[i].start) + " < " +
                time_str(windows[i - 1].end) + ")");
        break;
      }
    }
  }
  return out;
}

StreamAccounting accounting_of(const sim::SimResult& result) {
  StreamAccounting accounting;
  accounting.instances_completed =
      static_cast<std::int64_t>(result.completion_times.size());
  accounting.edge_produced = result.edge_produced;
  accounting.edge_delivered = result.edge_delivered;
  return accounting;
}

StreamAccounting accounting_of(const runtime::RunStats& stats) {
  StreamAccounting accounting;
  accounting.instances_completed =
      static_cast<std::int64_t>(stats.counters.instance_completion.size());
  accounting.edge_produced = stats.edge_produced;
  accounting.edge_delivered = stats.edge_delivered;
  return accounting;
}

std::vector<Violation> check_stream_integrity(
    const TaskGraph& graph, const StreamAccounting& accounting,
    std::int64_t instances) {
  std::vector<Violation> out;
  if (accounting.instances_completed != instances) {
    add(out, "stream-integrity",
        "stream of " + std::to_string(instances) + " instances recorded " +
            std::to_string(accounting.instances_completed) +
            " completions (" +
            (accounting.instances_completed < instances ? "lost"
                                                        : "duplicated") +
            " instances)");
  }
  if (accounting.edge_produced.size() != graph.edge_count() ||
      accounting.edge_delivered.size() != graph.edge_count()) {
    add(out, "stream-integrity",
        "edge accounting covers " +
            std::to_string(accounting.edge_produced.size()) + "/" +
            std::to_string(accounting.edge_delivered.size()) +
            " edges of a " + std::to_string(graph.edge_count()) +
            "-edge graph");
    return out;
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const std::string label =
        graph.task(edge.from).name + "->" + graph.task(edge.to).name;
    if (accounting.edge_produced[e] != instances) {
      add(out, "stream-integrity",
          "edge " + label + " produced " +
              std::to_string(accounting.edge_produced[e]) +
              " packets for " + std::to_string(instances) + " instances");
    }
    if (accounting.edge_delivered[e] != instances) {
      add(out, "stream-integrity",
          "edge " + label + " delivered " +
              std::to_string(accounting.edge_delivered[e]) +
              " packets for " + std::to_string(instances) +
              " instances (data " +
              (accounting.edge_delivered[e] < instances ? "lost"
                                                        : "duplicated") +
              ")");
    }
  }
  return out;
}

std::vector<Violation> check_degraded_mapping(
    const SteadyStateAnalysis& analysis, const Mapping& post_mapping,
    const std::vector<PeId>& failed_pes, const obs::Counters& post_counters,
    const InvariantOptions& options) {
  std::vector<Violation> out;
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  for (TaskId t = 0; t < post_mapping.task_count(); ++t) {
    for (const PeId failed : failed_pes) {
      if (post_mapping.pe_of(t) == failed) {
        add(out, "degraded-mapping",
            "task " + graph.task(t).name + " is still mapped to failed " +
                platform.pe_name(failed));
      }
    }
  }
  for (Violation& v : check_local_store(analysis, post_mapping)) {
    add(out, "degraded-mapping",
        "post-failover mapping breaks the local store: " + v.detail);
  }
  for (Violation& v :
       check_occupation(analysis, post_mapping, post_counters, options)) {
    add(out, "degraded-mapping",
        "post-failover occupation off the reduced-platform prediction: " +
            v.detail);
  }
  return out;
}

std::vector<Violation> check_occupation(const SteadyStateAnalysis& analysis,
                                        const Mapping& mapping,
                                        const obs::Counters& counters,
                                        const InvariantOptions& options) {
  std::vector<Violation> found;
  obs::ReportOptions report_options;
  report_options.occupation_tolerance = options.occupation_tolerance;
  const obs::Report report =
      obs::build_report(analysis, mapping, counters, report_options);
  if (!report.crosscheck_applicable) return found;
  for (const std::string& detail : report.flagged) {
    found.push_back({"occupation", detail});
  }
  return found;
}

InvariantReport check_invariants(const SteadyStateAnalysis& analysis,
                                 const Mapping& mapping,
                                 const sim::SimResult& result,
                                 const InvariantOptions& options) {
  InvariantReport report;
  const auto take = [&report](std::vector<Violation> found) {
    ++report.checks_run;
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(found.begin()),
                             std::make_move_iterator(found.end()));
  };
  take(check_throughput_bound(analysis, mapping, result, options));
  take(check_completion_order(result));
  take(check_local_store(analysis, mapping));
  take(check_occupation(analysis, mapping, result.counters, options));
  // I8 self-consistency: every edge moved exactly one packet per completed
  // instance.  Skipped for hand-built results without edge accounting.
  if (result.edge_produced.size() == analysis.graph().edge_count() &&
      result.edge_delivered.size() == analysis.graph().edge_count()) {
    take(check_stream_integrity(
        analysis.graph(), accounting_of(result),
        static_cast<std::int64_t>(result.completion_times.size())));
  }
  if (!result.trace.empty()) {
    report.trace_checked = true;
    report.trace_events_seen = result.trace.size();
    take(check_dma_queue_limits(analysis.platform(), result.trace));
    take(check_buffer_occupancy(analysis, mapping, result.trace));
    take(check_causality(analysis, mapping, result.trace, options));
  }
  return report;
}

InvariantReport check_failover_invariants(const SteadyStateAnalysis& analysis,
                                          const fault::FailoverOutcome& outcome,
                                          const InvariantOptions& options) {
  InvariantReport report;
  CS_ENSURE(outcome.phases.size() == outcome.phase_mappings.size() &&
                !outcome.phases.empty(),
            "check_failover_invariants: malformed outcome (phases and "
            "mappings out of step)");

  // Every phase is a complete, self-contained run under its own mapping;
  // the phase-2 throughput bound compares against the degraded mapping's
  // 1/T — exactly outcome.predicted_post_throughput.
  for (std::size_t p = 0; p < outcome.phases.size(); ++p) {
    // The steady-throughput estimate divides the middle-half completion
    // count by its time span; on a short failover phase that window holds
    // only a handful of completions, so edge quantization and pipeline
    // burstiness inflate the estimate by O(1/m).  Widen the tolerance
    // accordingly — the full-length overall-throughput bound stays sharp.
    InvariantOptions phase_options = options;
    const double middle_half =
        static_cast<double>(outcome.phases[p].completion_times.size()) / 2.0;
    phase_options.throughput_tolerance =
        std::max(options.throughput_tolerance,
                 3.0 / std::max(1.0, middle_half));
    InvariantReport phase_report = check_invariants(
        analysis, outcome.phase_mappings[p], outcome.phases[p], phase_options);
    report.checks_run += phase_report.checks_run;
    report.trace_events_seen += phase_report.trace_events_seen;
    report.trace_checked = report.trace_checked || phase_report.trace_checked;
    for (Violation& v : phase_report.violations) {
      v.detail = "phase " + std::to_string(p + 1) + ": " + v.detail;
      report.violations.push_back(std::move(v));
    }
  }

  // I8 across the whole stitched stream: the drain/remap/migrate/resume
  // protocol must not lose or duplicate a single instance or packet.
  ++report.checks_run;
  for (Violation& v :
       check_stream_integrity(analysis.graph(), accounting_of(outcome.result),
                              outcome.instances)) {
    report.violations.push_back(std::move(v));
  }

  // I9 on the post-failover phase.
  if (outcome.failover_performed) {
    ++report.checks_run;
    const PeId failed =
        static_cast<PeId>(outcome.result.faults.failed_pe);
    for (Violation& v : check_degraded_mapping(
             analysis, outcome.post_mapping, {failed},
             outcome.phases.back().counters, options)) {
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  os << checks_run << " invariant families checked, " << trace_events_seen
     << " trace events";
  if (!trace_checked) os << " (trace checks skipped: no trace)";
  os << ": " << (ok() ? "OK" : std::to_string(violations.size()) +
                                   " violation(s)");
  for (const Violation& v : violations) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  return os.str();
}

}  // namespace cellstream::check
