#pragma once
// Differential oracle over the mapping strategies (docs/TESTING.md).
//
// On graphs small enough for the exhaustive mapper, the four strategies of
// the paper's evaluation must agree with each other in precise ways:
//
//   D1  every mapper's output is feasible and its reported period matches
//       the steady-state analysis recomputation,
//   D2  mappers returning the identical mapping report identical periods,
//   D3  a mapper claiming optimality within gap g (exhaustive: g = 0;
//       MILP: the paper's 5 %) is never beaten by any other mapper by more
//       than that gap: period_opt <= period_other x (1 + g),
//   D4  a claimed lower bound (the MILP's best_bound) never exceeds the
//       exhaustive optimum,
//   D5  the parallel MILP solver is bit-identical to the sequential one:
//       re-running the branch-and-bound with milp_threads workers must
//       reproduce the exact mapping, period, best bound, node count, and
//       pivot count (the solver's determinism-by-construction guarantee),
//       checked whenever neither run was cut off by a time/node limit,
//   D6  the simulator's steady-state fast-forward is an optimization, not
//       an approximation: simulating the same (mapping, options) with
//       fast_forward on and off must produce *bit-identical* final stats —
//       every completion time, throughput, counter and per-edge total —
//       and, when a cycle was detected, its observed period must not beat
//       the analytic steady-state bound (docs/PERFORMANCE.md).
//
// check_outcomes() applies the rules to an arbitrary outcome set, so tests
// can feed fabricated results and prove the oracle actually rejects them;
// cross_check_mappers() produces the real outcome set (exhaustive, MILP,
// GREEDYMEM, GREEDYCPU) and applies the rules.

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "core/steady_state.hpp"
#include "sim/simulator.hpp"

namespace cellstream::check {

/// One mapper's claim about a (graph, platform) instance.
struct MapperOutcome {
  std::string name;          ///< "exhaustive", "milp", "greedy-mem", ...
  Mapping mapping;
  double period = 0.0;       ///< Reported steady-state period.
  bool optimal = false;      ///< Claims optimality within claimed_gap.
  double claimed_gap = 0.0;  ///< Relative gap of the optimality claim.
  bool has_lower_bound = false;
  double lower_bound = 0.0;  ///< Claimed lower bound on any period (D4).
  /// Whether the mapper promises full feasibility (all hard constraints).
  /// The greedy heuristics only guarantee the local-store constraint, so
  /// their outcomes set this false: an infeasible greedy mapping is then
  /// excluded from the dominance rule D3 instead of raising a false alarm.
  bool claims_feasible = true;
};

struct DifferentialOptions {
  /// Relative gap the MILP mapper is run with (the paper's 5 %).
  double milp_gap = 0.05;
  double milp_time_limit = 10.0;
  /// Relative numeric slack for period comparisons.
  double relative_tolerance = 1e-9;
  /// Refuse graphs larger than this (exhaustive search explodes).
  std::size_t max_tasks = 8;
  /// Skip the MILP mapper (exhaustive + greedies only).
  bool run_milp = true;
  /// D5: re-run the MILP with `milp_threads` workers and require the
  /// result to be bit-identical to the sequential run.
  bool check_parallel_milp = true;
  std::size_t milp_threads = 4;
};

struct DifferentialReport {
  std::vector<MapperOutcome> outcomes;
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Apply rules D1-D4 to `outcomes`; empty result = consistent.
std::vector<Violation> check_outcomes(
    const SteadyStateAnalysis& analysis,
    const std::vector<MapperOutcome>& outcomes,
    const DifferentialOptions& options = {});

/// Run exhaustive, MILP (optional), GREEDYMEM and GREEDYCPU on the
/// analysis' graph and cross-check them.  Throws if the graph exceeds
/// options.max_tasks.
DifferentialReport cross_check_mappers(const SteadyStateAnalysis& analysis,
                                       const DifferentialOptions& options = {});

/// D6: simulate `mapping` twice — once with fast_forward forced off, once
/// forced on — and require bit-identical results.  `base_options` supplies
/// everything else (instances, overheads, ...); record_trace and
/// fault_plan must be unset, since both auto-disable the fast-forward and
/// would make the rule vacuous.  Returns the violations (empty = ok) and,
/// via `engaged` if non-null, whether the fast-forwarded run actually
/// skipped ahead (short or aperiodic runs legitimately never engage).
std::vector<Violation> check_fast_forward_equivalence(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const sim::SimOptions& base_options, bool* engaged = nullptr);

}  // namespace cellstream::check
