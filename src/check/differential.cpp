#include "check/differential.hpp"

#include <cmath>
#include <sstream>

#include "mapping/exhaustive.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/strings.hpp"

namespace cellstream::check {

namespace {

void add(std::vector<Violation>& out, std::string detail) {
  out.push_back({"differential", std::move(detail)});
}

}  // namespace

std::vector<Violation> check_outcomes(
    const SteadyStateAnalysis& analysis,
    const std::vector<MapperOutcome>& outcomes,
    const DifferentialOptions& options) {
  std::vector<Violation> out;
  const double rel = options.relative_tolerance;

  // D1: feasibility and period consistency against the shared analysis.
  std::vector<bool> feasible(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const MapperOutcome& o = outcomes[i];
    const std::vector<std::string> problems = analysis.violations(o.mapping);
    feasible[i] = problems.empty();
    if (o.claims_feasible) {
      for (const std::string& p : problems) {
        add(out, o.name + " returned an infeasible mapping: " + p);
      }
    }
    const double recomputed = analysis.period(o.mapping);
    if (std::abs(recomputed - o.period) > rel * std::max(1.0, recomputed)) {
      add(out, o.name + " reports period " + format_number(o.period) +
                   "s but the analysis recomputes " +
                   format_number(recomputed) + "s for its mapping");
    }
  }

  // D2: identical mappings must carry identical periods.
  for (std::size_t a = 0; a < outcomes.size(); ++a) {
    for (std::size_t b = a + 1; b < outcomes.size(); ++b) {
      if (outcomes[a].mapping == outcomes[b].mapping &&
          outcomes[a].period != outcomes[b].period) {
        add(out, outcomes[a].name + " and " + outcomes[b].name +
                     " found the identical mapping but report different "
                     "periods (" +
                     format_number(outcomes[a].period) + "s vs " +
                     format_number(outcomes[b].period) + "s)");
      }
    }
  }

  // D3: optimality claims.  period_opt <= period_other * (1 + gap), for
  // every *feasible* competitor (the optimum needn't beat a mapping that
  // breaks a hard constraint).
  for (const MapperOutcome& opt : outcomes) {
    if (!opt.optimal) continue;
    for (std::size_t b = 0; b < outcomes.size(); ++b) {
      const MapperOutcome& other = outcomes[b];
      if (&other == &opt || !feasible[b]) continue;
      const double limit =
          other.period * (1.0 + opt.claimed_gap) + rel * other.period;
      if (opt.period > limit) {
        add(out, opt.name + " claims optimality within " +
                     format_number(opt.claimed_gap * 100.0) + "% but " +
                     other.name + " beats it: " +
                     format_number(opt.period) + "s vs " +
                     format_number(other.period) + "s");
      }
    }
  }

  // D4: lower bounds must not exceed any proven optimum (gap 0).
  for (const MapperOutcome& opt : outcomes) {
    if (!opt.optimal || opt.claimed_gap > 0.0) continue;
    for (const MapperOutcome& other : outcomes) {
      if (!other.has_lower_bound) continue;
      if (other.lower_bound > opt.period * (1.0 + rel)) {
        add(out, other.name + " claims lower bound " +
                     format_number(other.lower_bound) + "s above the " +
                     opt.name + " optimum " + format_number(opt.period) +
                     "s");
      }
    }
  }
  return out;
}

DifferentialReport cross_check_mappers(const SteadyStateAnalysis& analysis,
                                       const DifferentialOptions& options) {
  CS_ENSURE(analysis.graph().task_count() <= options.max_tasks,
            "cross_check_mappers: graph too large for the exhaustive "
            "reference (" +
                std::to_string(analysis.graph().task_count()) + " tasks > " +
                std::to_string(options.max_tasks) + ")");
  DifferentialReport report;

  const auto exhaustive = mapping::exhaustive_optimal_mapping(analysis);
  CS_ENSURE(exhaustive.has_value(),
            "cross_check_mappers: no feasible mapping exists");
  {
    MapperOutcome outcome;
    outcome.name = "exhaustive";
    outcome.mapping = exhaustive->mapping;
    outcome.period = exhaustive->period;
    outcome.optimal = true;
    report.outcomes.push_back(std::move(outcome));
  }

  if (options.run_milp) {
    mapping::MilpMapperOptions milp_options;
    milp_options.milp.relative_gap = options.milp_gap;
    milp_options.milp.time_limit_seconds = options.milp_time_limit;
    const mapping::MilpMapperResult milp =
        mapping::solve_optimal_mapping(analysis, milp_options);
    MapperOutcome outcome;
    outcome.name = "milp";
    outcome.mapping = milp.mapping;
    outcome.period = milp.period;
    // Only a clean kOptimal run earned its gap claim; a limit-terminated
    // run still contributes its incumbent (D1/D2) and bound (D4).
    outcome.optimal = milp.status == milp::Status::kOptimal;
    outcome.claimed_gap = options.milp_gap;
    outcome.has_lower_bound = milp.status == milp::Status::kOptimal ||
                              milp.status == milp::Status::kLimitFeasible;
    outcome.lower_bound = milp.best_bound;
    report.outcomes.push_back(std::move(outcome));

    // D5: the parallel solver must be bit-identical to the sequential one.
    // Only a time/node-limit stop (which depends on the wall clock) may
    // legitimately diverge, so the rule applies when both runs finished.
    if (options.check_parallel_milp && options.milp_threads > 1) {
      milp_options.milp.threads = options.milp_threads;
      const mapping::MilpMapperResult parallel =
          mapping::solve_optimal_mapping(analysis, milp_options);
      const bool sequential_finished = milp.status == milp::Status::kOptimal;
      const bool parallel_finished =
          parallel.status == milp::Status::kOptimal;
      if (sequential_finished && parallel_finished) {
        if (!(parallel.mapping == milp.mapping)) {
          report.violations.push_back(
              {"differential",
               "milp with " + std::to_string(options.milp_threads) +
                   " threads returned a different mapping than the "
                   "sequential solver (determinism broken)"});
        }
        if (parallel.period != milp.period ||
            parallel.best_bound != milp.best_bound) {
          report.violations.push_back(
              {"differential",
               "milp with " + std::to_string(options.milp_threads) +
                   " threads: period/bound not bit-identical (" +
                   format_number(parallel.period) + "s/" +
                   format_number(parallel.best_bound) + "s vs " +
                   format_number(milp.period) + "s/" +
                   format_number(milp.best_bound) + "s)"});
        }
        if (parallel.nodes != milp.nodes ||
            parallel.lp_iterations != milp.lp_iterations) {
          report.violations.push_back(
              {"differential",
               "milp with " + std::to_string(options.milp_threads) +
                   " threads explored a different tree (" +
                   std::to_string(parallel.nodes) + " nodes/" +
                   std::to_string(parallel.lp_iterations) + " pivots vs " +
                   std::to_string(milp.nodes) + "/" +
                   std::to_string(milp.lp_iterations) + ")"});
        }
      }
    }
  }

  for (const char* name : {"greedy-mem", "greedy-cpu"}) {
    MapperOutcome outcome;
    outcome.name = name;
    outcome.mapping = mapping::run_heuristic(name, analysis);
    outcome.period = analysis.period(outcome.mapping);
    outcome.claims_feasible = false;  // memory-feasible only (Section 6.3)
    report.outcomes.push_back(std::move(outcome));
    // The admission criterion the greedies *do* promise is the local
    // store; breaking it is a heuristic bug, not a modeling gap.
    for (const Violation& v :
         check_local_store(analysis, report.outcomes.back().mapping)) {
      report.violations.push_back(
          {"differential",
           report.outcomes.back().name + ": " + v.detail});
    }
  }

  std::vector<Violation> rule_violations =
      check_outcomes(analysis, report.outcomes, options);
  report.violations.insert(report.violations.end(),
                           std::make_move_iterator(rule_violations.begin()),
                           std::make_move_iterator(rule_violations.end()));
  return report;
}

std::vector<Violation> check_fast_forward_equivalence(
    const SteadyStateAnalysis& analysis, const Mapping& mapping,
    const sim::SimOptions& base_options, bool* engaged) {
  CS_ENSURE(!base_options.record_trace && base_options.fault_plan == nullptr,
            "check_fast_forward_equivalence: traces and fault plans disable "
            "the fast-forward; the rule would be vacuous");
  std::vector<Violation> out;
  const auto add6 = [&out](std::string detail) {
    out.push_back({"differential-d6", std::move(detail)});
  };

  sim::SimOptions full_options = base_options;
  full_options.fast_forward = false;
  sim::SimOptions ff_options = base_options;
  ff_options.fast_forward = true;
  const sim::SimResult full = sim::simulate(analysis, mapping, full_options);
  const sim::SimResult ff = sim::simulate(analysis, mapping, ff_options);
  if (engaged != nullptr) *engaged = ff.fast_forward.engaged;

  // Every comparison below is *bitwise* (operator== on doubles): the
  // fast-forward promises a translation of the exact run, not a numeric
  // approximation of it.
  if (ff.completion_times != full.completion_times) {
    std::size_t first = 0;
    while (first < full.completion_times.size() &&
           ff.completion_times.size() > first &&
           ff.completion_times[first] == full.completion_times[first]) {
      ++first;
    }
    add6("fast-forwarded completion times diverge from the full run at "
         "instance " +
         std::to_string(first) + " (" +
         format_number(first < ff.completion_times.size()
                           ? ff.completion_times[first]
                           : -1.0) +
         "s vs " +
         format_number(first < full.completion_times.size()
                           ? full.completion_times[first]
                           : -1.0) +
         "s)");
  }
  if (ff.makespan != full.makespan ||
      ff.overall_throughput != full.overall_throughput ||
      ff.steady_throughput != full.steady_throughput) {
    add6("fast-forwarded aggregate stats differ: makespan " +
         format_number(ff.makespan) + "s vs " + format_number(full.makespan) +
         "s, steady throughput " + format_number(ff.steady_throughput) +
         "/s vs " + format_number(full.steady_throughput) + "/s");
  }
  if (ff.dma_transfers != full.dma_transfers) {
    add6("fast-forwarded transfer count differs: " +
         std::to_string(ff.dma_transfers) + " vs " +
         std::to_string(full.dma_transfers));
  }
  if (ff.pe_busy_seconds != full.pe_busy_seconds ||
      ff.pe_overhead_seconds != full.pe_overhead_seconds) {
    add6("fast-forwarded per-PE busy/overhead seconds are not bit-identical "
         "to the full run");
  }
  for (std::size_t pe = 0; pe < full.counters.pe.size(); ++pe) {
    const obs::PeCounters& a = ff.counters.pe[pe];
    const obs::PeCounters& b = full.counters.pe[pe];
    if (a.tasks_executed != b.tasks_executed ||
        a.compute_seconds != b.compute_seconds ||
        a.overhead_seconds != b.overhead_seconds ||
        a.transfers_issued != b.transfers_issued ||
        a.bytes_in != b.bytes_in || a.bytes_out != b.bytes_out ||
        a.mfc_queue_peak != b.mfc_queue_peak ||
        a.proxy_queue_peak != b.proxy_queue_peak) {
      add6("fast-forwarded telemetry counters differ on PE " +
           std::to_string(pe));
    }
  }
  if (ff.edge_produced != full.edge_produced ||
      ff.edge_delivered != full.edge_delivered) {
    add6("fast-forwarded per-edge totals differ from the full run");
  }

  // The simulated period can never beat the analytic steady-state bound
  // (the simulator only adds overheads the model ignores).
  if (ff.fast_forward.engaged && ff.fast_forward.model_period > 0.0 &&
      ff.fast_forward.period_ratio < 0.999) {
    add6("detected cycle beats the analytic period bound: ratio " +
         format_number(ff.fast_forward.period_ratio) + " (cycle " +
         format_number(ff.fast_forward.cycle_seconds) + "s / " +
         std::to_string(ff.fast_forward.cycle_instances) +
         " instances vs model period " +
         format_number(ff.fast_forward.model_period) + "s)");
  }
  return out;
}

std::string DifferentialReport::to_string() const {
  std::ostringstream os;
  os << outcomes.size() << " mappers cross-checked: "
     << (ok() ? "consistent"
              : std::to_string(violations.size()) + " violation(s)");
  for (const MapperOutcome& o : outcomes) {
    os << "\n  " << o.name << ": period " << format_number(o.period) << "s"
       << (o.optimal ? " (optimal within " +
                           format_number(o.claimed_gap * 100.0) + "%)"
                     : "");
  }
  for (const Violation& v : violations) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  return os.str();
}

}  // namespace cellstream::check
