#pragma once
// Seeded differential fuzzer over the full pipeline: generate a random
// DagGen application x CCR variant, map it, build the periodic schedule,
// simulate with a full trace, and run the invariant oracle — plus the
// mapper cross-check on graphs small enough for the exhaustive reference.
//
// Every case is derived deterministically from one 64-bit case seed, so a
// failure report is a one-line reproducer:
//
//   cellstream_fuzz --case <seed>
//
// regenerates the exact graph, platform, mapping strategy and simulation,
// and prints the violations (docs/TESTING.md walks through the workflow).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/differential.hpp"
#include "check/invariants.hpp"

namespace cellstream::check {

struct FuzzOptions {
  std::uint64_t base_seed = 1;   ///< Stream seed; case i derives from it.
  std::size_t cases = 100;
  std::size_t min_tasks = 5;
  std::size_t max_tasks = 24;
  /// Stream length per simulated case (fuzz wants many short runs).
  std::size_t instances = 200;
  /// Fraction of cases drawn as small graphs that additionally run the
  /// exhaustive/MILP/greedy cross-check.
  double differential_probability = 0.25;
  std::size_t differential_max_tasks = 7;
  double milp_time_limit = 5.0;
  /// Fraction of cases that additionally run under a random FaultPlan
  /// through the failover coordinator and the I8/I9 oracle.  0 (the
  /// default) draws nothing, so pre-existing case seeds reproduce
  /// byte-identically; `cellstream_fuzz --faults` turns the dimension on.
  double fault_probability = 0.0;
  /// Worker threads for the case sweep (cases are seed-independent, so
  /// the report is byte-identical at any thread count); 0 = hardware
  /// concurrency, 1 = serial.
  std::size_t threads = 0;
  InvariantOptions invariants;
};

/// Fully derived description of one fuzz case (everything a reproduction
/// needs besides the FuzzOptions bounds).
struct FuzzCase {
  std::uint64_t case_seed = 0;
  std::size_t task_count = 0;
  double ccr = 0.0;             ///< Paper-style CCR the graph is scaled to.
  std::string strategy;         ///< Mapping heuristic driven through the sim.
  std::string platform;         ///< Platform preset name.
  bool differential = false;    ///< Also cross-check the mappers.
  bool with_faults = false;     ///< Run under a random FaultPlan (I8/I9).
  std::uint64_t fault_seed = 0; ///< Seed of FaultPlan::random when faulted.

  std::string to_string() const;
};

/// Derive case parameters from a case seed (deterministic).
FuzzCase make_case(std::uint64_t case_seed, const FuzzOptions& options);

/// The case seed of case `index` in the stream starting at `base_seed`.
std::uint64_t case_seed_of(std::uint64_t base_seed, std::size_t index);

/// Run one case end to end; returns all violations found (empty = clean).
std::vector<Violation> run_case(const FuzzCase& scenario,
                                const FuzzOptions& options);

struct FuzzFailure {
  FuzzCase scenario;
  std::vector<Violation> violations;
};

struct FuzzReport {
  std::size_t cases_run = 0;
  std::size_t pipelines_simulated = 0;
  std::size_t differential_checks = 0;
  std::size_t fault_scenarios = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
  std::string summary() const;
};

/// Run options.cases seeded cases; progress and failures go to `log` when
/// provided (one line per failure, with the reproducer seed).
FuzzReport run_fuzz(const FuzzOptions& options, std::ostream* log = nullptr);

}  // namespace cellstream::check
