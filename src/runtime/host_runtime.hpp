#pragma once
// Host execution engine for mapped streaming applications.
//
// The paper's Section 6.1 contribution is a runtime framework that
// executes a task graph on the Cell given a mapping.  src/sim reproduces
// its *timing* on the modeled hardware; this module reproduces its
// *function*: it actually runs user-provided task code, pipelined
// according to a mapping, on host threads standing in for the PEs.
//
// Semantics mirror the paper's scheduler:
//   * every PE (thread) repeatedly selects a runnable task instance —
//     all inputs present (including the peek look-ahead), all output
//     buffers with a free slot — and processes it;
//   * each edge owns a bounded ring of packets sized by the steady-state
//     analysis (firstPeriod differences), so memory use matches the
//     schedule's buffer plan and back-pressure is exactly the model's;
//   * a task with peek = p receives packets for instances i .. i+p of
//     every input (clamped at the end of the stream, where the missing
//     look-ahead is passed as null).
//
// The engine is deterministic in *values* (each task instance sees exactly
// the packets the dataflow defines) though not in interleaving.
//
// Robustness (docs/ROBUSTNESS.md): a RunOptions::fault_plan injects
// deterministic transient faults (DMA retry/backoff, compute slowdowns,
// one-shot hangs) and at most one permanent PE fail-stop.  On a fail-stop
// the runtime executes drain -> remap -> migrate -> resume: the failed
// PE's worker stops accepting instances past the fail index, every live
// worker parks at a consistent cut, the orphaned tasks are remapped onto
// the surviving PEs (fault::remap_after_failure), and the stream resumes
// — no instance is lost or duplicated (invariant I8).  Stall detection is
// a per-worker progress watchdog: the deadline rearms on every task
// selection, commit and failover step, so a slow-but-progressing run
// never times out while a genuine stream-wide stall trips after one
// quiet window.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/steady_state.hpp"
#include "fault/fault_plan.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace cellstream::runtime {

/// One unit of stream data travelling along an edge.
using Packet = std::vector<std::byte>;

/// Everything a task sees when processing one instance.
struct TaskInputs {
  std::int64_t instance = 0;      ///< Stream index being processed.
  std::int64_t stream_length = 0; ///< Total instances in this run.
  /// inputs[e][d]: packet of the task's e-th input edge (in
  /// TaskGraph::in_edges order) at instance + d, for d = 0 .. peek.
  /// Entries beyond the end of the stream are nullptr.
  std::vector<std::vector<const Packet*>> inputs;
};

/// User task body: consume the inputs, return one packet per *output*
/// edge (in TaskGraph::out_edges order; empty vector for sinks).
using TaskFunction = std::function<std::vector<Packet>(const TaskInputs&)>;

struct RunOptions {
  std::int64_t instances = 1000;
  /// Progress watchdog window: abort (throw) when NO worker makes
  /// instance-level progress — task selection, commit, or a failover
  /// step — for this many consecutive wall seconds.  The deadline rearms
  /// on every progress event, so a slow-but-live run (TSan builds, tiny
  /// machines) never trips it; a genuine stall — dataflow deadlock, hung
  /// task code — trips after one quiet window and the error names the
  /// stalled workers.
  double wall_timeout_seconds = 120.0;
  /// Record one obs::TraceEvent per task execution (wall seconds since
  /// run start) for the chrome-trace writer.  Off by default: tracing a
  /// long stream costs memory proportional to instances x tasks.
  bool record_trace = false;
  /// Optional deterministic fault scenario (see src/fault/).  Transient
  /// faults become real sleeps; a permanent fail-stop triggers the
  /// drain -> remap -> migrate -> resume protocol described in the file
  /// comment.  Borrowed, not owned; must outlive the call.
  const fault::FaultPlan* fault_plan = nullptr;
  /// Remap strategy for degraded-mode failover: "greedy-mem" or
  /// "greedy-cpu" (the fast constructive heuristics — the runtime is in
  /// the failure path, so it never waits on a solver; use the simulator
  /// coordinator's "milp" strategy to evaluate solver-quality remaps).
  std::string failover_strategy = "greedy-mem";
};

struct RunStats {
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< instances per wall second
  /// Per-edge high-water mark of buffered packets (never exceeds the
  /// analysis' buffer_depth).
  std::vector<std::int64_t> max_buffer_occupancy;
  std::uint64_t tasks_executed = 0;
  /// Telemetry in the wall-time domain (obs::TimeDomain::kWall): per-PE
  /// execution counts, measured compute seconds, packet bytes crossing
  /// each PE boundary, and per-instance completion stamps.  Each worker
  /// accumulates locally and flushes exactly once at exit — on normal
  /// completion and on first-failure shutdown alike.
  obs::Counters counters;
  /// Per-execution events (empty unless RunOptions::record_trace), wall
  /// seconds since run start; feed obs::write_chrome_trace.
  std::vector<obs::TraceEvent> trace;
  /// Fault counters of the run (all zero without a plan).
  fault::FaultStats faults;
  /// Mapping in effect when the stream finished — differs from the input
  /// mapping exactly when a failover remap ran.
  Mapping final_mapping;
  /// Per-edge end-to-end accounting: packets the producer pushed and
  /// packets the consumer retired.  Both equal `instances` on a complete
  /// run — invariant I8's raw material.
  std::vector<std::int64_t> edge_produced;
  std::vector<std::int64_t> edge_delivered;
};

/// Execute `options.instances` stream instances of the analysis' graph
/// under `mapping`, one worker thread per *used* PE (every PE when a
/// fail-stop plan is active — an idle PE may inherit remapped tasks).
/// `tasks[k]` is the body of task k; every task must be provided.  Throws
/// on malformed input, on a task returning the wrong number of packets,
/// and on a watchdog stall.
RunStats run_stream(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping,
                    const std::vector<TaskFunction>& tasks,
                    const RunOptions& options = {});

}  // namespace cellstream::runtime
