#pragma once
// Host execution engine for mapped streaming applications.
//
// The paper's Section 6.1 contribution is a runtime framework that
// executes a task graph on the Cell given a mapping.  src/sim reproduces
// its *timing* on the modeled hardware; this module reproduces its
// *function*: it actually runs user-provided task code, pipelined
// according to a mapping, on host threads standing in for the PEs.
//
// Semantics mirror the paper's scheduler:
//   * every PE (thread) repeatedly selects a runnable task instance —
//     all inputs present (including the peek look-ahead), all output
//     buffers with a free slot — and processes it;
//   * each edge owns a bounded ring of packets sized by the steady-state
//     analysis (firstPeriod differences), so memory use matches the
//     schedule's buffer plan and back-pressure is exactly the model's;
//   * a task with peek = p receives packets for instances i .. i+p of
//     every input (clamped at the end of the stream, where the missing
//     look-ahead is passed as null).
//
// The engine is deterministic in *values* (each task instance sees exactly
// the packets the dataflow defines) though not in interleaving.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/steady_state.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace cellstream::runtime {

/// One unit of stream data travelling along an edge.
using Packet = std::vector<std::byte>;

/// Everything a task sees when processing one instance.
struct TaskInputs {
  std::int64_t instance = 0;      ///< Stream index being processed.
  std::int64_t stream_length = 0; ///< Total instances in this run.
  /// inputs[e][d]: packet of the task's e-th input edge (in
  /// TaskGraph::in_edges order) at instance + d, for d = 0 .. peek.
  /// Entries beyond the end of the stream are nullptr.
  std::vector<std::vector<const Packet*>> inputs;
};

/// User task body: consume the inputs, return one packet per *output*
/// edge (in TaskGraph::out_edges order; empty vector for sinks).
using TaskFunction = std::function<std::vector<Packet>(const TaskInputs&)>;

struct RunOptions {
  std::int64_t instances = 1000;
  /// Abort (throw) if the stream has not finished after this many wall
  /// seconds — guards tests against deadlocking task code.
  double wall_timeout_seconds = 120.0;
  /// Record one obs::TraceEvent per task execution (wall seconds since
  /// run start) for the chrome-trace writer.  Off by default: tracing a
  /// long stream costs memory proportional to instances x tasks.
  bool record_trace = false;
};

struct RunStats {
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< instances per wall second
  /// Per-edge high-water mark of buffered packets (never exceeds the
  /// analysis' buffer_depth).
  std::vector<std::int64_t> max_buffer_occupancy;
  std::uint64_t tasks_executed = 0;
  /// Telemetry in the wall-time domain (obs::TimeDomain::kWall): per-PE
  /// execution counts, measured compute seconds, packet bytes crossing
  /// each PE boundary, and per-instance completion stamps.  Each worker
  /// accumulates locally and flushes exactly once at exit — on normal
  /// completion and on first-failure shutdown alike.
  obs::Counters counters;
  /// Per-execution events (empty unless RunOptions::record_trace), wall
  /// seconds since run start; feed obs::write_chrome_trace.
  std::vector<obs::TraceEvent> trace;
};

/// Execute `options.instances` stream instances of the analysis' graph
/// under `mapping`, one worker thread per *used* PE.  `tasks[k]` is the
/// body of task k; every task must be provided.  Throws on malformed
/// input, on a task returning the wrong number of packets, and on
/// timeout.
RunStats run_stream(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping,
                    const std::vector<TaskFunction>& tasks,
                    const RunOptions& options = {});

}  // namespace cellstream::runtime
