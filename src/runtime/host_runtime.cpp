#include "runtime/host_runtime.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <iomanip>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "fault/injector.hpp"
#include "fault/remap.hpp"

namespace cellstream::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

struct EdgeChannel {
  std::int64_t capacity = 0;  // packets (analysis buffer depth)
  std::int64_t base = 0;      // stream index of packets.front()
  std::int64_t produced = 0;  // total packets ever pushed
  std::int64_t consumed = 0;  // packets fully used by the consumer
  std::int64_t max_occupancy = 0;
  std::deque<Packet> packets;

  const Packet* packet_at(std::int64_t instance) const {
    if (instance < base) return nullptr;  // already discarded (bug guard)
    const auto offset = static_cast<std::size_t>(instance - base);
    return offset < packets.size() ? &packets[offset] : nullptr;
  }
};

struct TaskState {
  std::int64_t next_instance = 0;
  int peek = 0;
  std::vector<EdgeId> in_edges;   // graph order
  std::vector<EdgeId> out_edges;  // graph order
  // Telemetry attribution, recomputed on every remap: an edge whose
  // endpoints sit on different PEs crosses both interfaces (producer out,
  // consumer in); a PE-local edge touches neither.
  std::vector<bool> in_remote;
  std::vector<bool> out_remote;
};

/// Worker-thread-confined telemetry.  Workers touch only their own copy
/// while running and publish it exactly once at exit (Recorder::flush_pe
/// under the runtime mutex), so telemetry adds no contention and no
/// torn reads to the hot path.
struct WorkerLocal {
  obs::PeCounters counters;
  std::vector<obs::TraceEvent> trace;
  fault::FaultStats faults;
};

class Runtime {
 public:
  Runtime(const SteadyStateAnalysis& analysis, const Mapping& mapping,
          const std::vector<TaskFunction>& tasks, const RunOptions& options)
      : analysis_(analysis),
        graph_(analysis.graph()),
        platform_(analysis.platform()),
        mapping_(mapping),
        tasks_(tasks),
        opt_(options) {
    CS_ENSURE(opt_.instances >= 1, "run_stream: empty stream");
    CS_ENSURE(opt_.wall_timeout_seconds > 0.0, "run_stream: no time budget");
    CS_ENSURE(tasks.size() == graph_.task_count(),
              "run_stream: need one TaskFunction per task");
    for (const TaskFunction& fn : tasks) {
      CS_ENSURE(fn != nullptr, "run_stream: null TaskFunction");
    }
    mapping.validate(platform_);
    CS_ENSURE(opt_.failover_strategy == "greedy-mem" ||
                  opt_.failover_strategy == "greedy-cpu",
              "run_stream: unknown failover strategy '" +
                  opt_.failover_strategy + "'");
    if (opt_.fault_plan != nullptr && !opt_.fault_plan->empty()) {
      opt_.fault_plan->validate(platform_);
      injector_.emplace(*opt_.fault_plan);
      hang_fired_.assign(opt_.fault_plan->hangs.size(), 0);
    }

    edges_.resize(graph_.edge_count());
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      edges_[e].capacity = analysis.buffer_depth(e);
    }
    states_.resize(graph_.task_count());
    for (TaskId t : graph_.topological_order()) {
      TaskState& state = states_[t];
      state.peek = graph_.task(t).peek;
      state.in_edges = graph_.in_edges(t);
      state.out_edges = graph_.out_edges(t);
    }
    pe_dead_.assign(platform_.pe_count(), 0);
    heartbeat_.assign(platform_.pe_count(), -1.0);
    rebuild_placement_locked();
    recorder_.reset(platform_.pe_count(), obs::TimeDomain::kWall);
  }

  RunStats run() {
    start_ = Clock::now();
    last_progress_ = start_;
    watchdog_ = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(opt_.wall_timeout_seconds));
    // With a fail-stop in the plan every PE gets a worker: an idle PE may
    // inherit remapped tasks mid-stream.
    const bool spawn_all = injector_ && injector_->has_pe_failure();
    std::vector<PeId> spawn;
    for (PeId pe = 0; pe < pe_tasks_.size(); ++pe) {
      if (spawn_all || !pe_tasks_[pe].empty()) spawn.push_back(pe);
    }
    active_workers_ = spawn.size();
    std::vector<std::thread> workers;
    workers.reserve(spawn.size());
    try {
      for (PeId pe : spawn) {
        workers.emplace_back([this, pe] { worker(pe); });
      }
    } catch (...) {
      // Thread spawn failed mid-way.  Flag the error so already-running
      // workers drain, then fall through to the joins below; letting the
      // exception unwind past a vector of joinable threads would call
      // std::terminate.
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
      cv_.notify_all();
    }
    for (std::thread& w : workers) w.join();
    if (failure_) std::rethrow_exception(failure_);
    CS_ENSURE(!timed_out_,
              "run_stream: watchdog — no progress for " +
                  std::to_string(opt_.wall_timeout_seconds) +
                  " s (dataflow deadlock or hung task code); " +
                  stall_detail_);

    RunStats stats;
    stats.wall_seconds = seconds_between(start_, Clock::now());
    stats.throughput =
        static_cast<double>(opt_.instances) / stats.wall_seconds;
    stats.max_buffer_occupancy.reserve(edges_.size());
    stats.edge_produced.reserve(edges_.size());
    stats.edge_delivered.reserve(edges_.size());
    for (const EdgeChannel& edge : edges_) {
      stats.max_buffer_occupancy.push_back(edge.max_occupancy);
      stats.edge_produced.push_back(edge.produced);
      stats.edge_delivered.push_back(edge.consumed);
    }
    stats.tasks_executed = tasks_executed_;
    // All workers have joined, so every flush has happened; no lock needed.
    recorder_.set_elapsed(stats.wall_seconds);
    stats.counters = recorder_.take();
    stats.trace = std::move(trace_);
    stats.faults = faults_;
    stats.final_mapping = mapping_;
    return stats;
  }

 private:
  bool runnable_locked(TaskId t) const {
    const TaskState& state = states_[t];
    const std::int64_t i = state.next_instance;
    if (i >= opt_.instances) return false;
    const std::int64_t need = std::min<std::int64_t>(
        i + state.peek + 1, opt_.instances);
    for (EdgeId e : state.in_edges) {
      if (edges_[e].produced < need) return false;
    }
    for (EdgeId e : state.out_edges) {
      const EdgeChannel& edge = edges_[e];
      if (edge.produced - edge.consumed >= edge.capacity) return false;
    }
    return true;
  }

  // Build the peek window of input packet pointers; valid without the lock
  // while this task runs because only the consumer advances `consumed`
  // (std::deque::push_back does not invalidate element references).
  TaskInputs gather_locked(TaskId t) const {
    const TaskState& state = states_[t];
    TaskInputs in;
    in.instance = state.next_instance;
    in.stream_length = opt_.instances;
    in.inputs.resize(state.in_edges.size());
    for (std::size_t k = 0; k < state.in_edges.size(); ++k) {
      const EdgeChannel& edge = edges_[state.in_edges[k]];
      in.inputs[k].resize(static_cast<std::size_t>(state.peek) + 1);
      for (int d = 0; d <= state.peek; ++d) {
        in.inputs[k][d] = edge.packet_at(in.instance + d);
      }
    }
    return in;
  }

  double wall_now_locked() const {
    return seconds_between(start_, Clock::now());
  }

  /// Rearm the watchdog and stamp this worker's heartbeat.  Called on
  /// every task selection, commit and failover step — the progress events
  /// that distinguish a live stream from a stalled one.
  void progress_locked(PeId pe) {
    last_progress_ = Clock::now();
    heartbeat_[pe] = wall_now_locked();
  }

  /// (Re)derive placement state from mapping_: per-PE task lists in
  /// topological order and the remote flags of every task's edges.  Used
  /// at construction and again after a failover remap.
  void rebuild_placement_locked() {
    pe_tasks_.assign(platform_.pe_count(), {});
    for (TaskId t : graph_.topological_order()) {
      TaskState& state = states_[t];
      state.in_remote.clear();
      state.in_remote.reserve(state.in_edges.size());
      for (EdgeId e : state.in_edges) {
        state.in_remote.push_back(mapping_.pe_of(graph_.edge(e).from) !=
                                  mapping_.pe_of(t));
      }
      state.out_remote.clear();
      state.out_remote.reserve(state.out_edges.size());
      for (EdgeId e : state.out_edges) {
        state.out_remote.push_back(mapping_.pe_of(graph_.edge(e).to) !=
                                   mapping_.pe_of(t));
      }
      pe_tasks_[mapping_.pe_of(t)].push_back(t);
    }
  }

  std::string stall_diagnostics_locked() const {
    std::ostringstream out;
    out << done_count_ << "/" << opt_.instances
        << " instances complete; heartbeats:";
    const double now = wall_now_locked();
    for (PeId pe = 0; pe < heartbeat_.size(); ++pe) {
      if (heartbeat_[pe] < 0.0) continue;  // worker never progressed
      out << " " << platform_.pe_name(pe) << "=" << std::fixed
          << std::setprecision(2) << (now - heartbeat_[pe]) << "s-ago";
    }
    if (remap_pending_) {
      out << "; failover drain in progress (failed "
          << platform_.pe_name(dead_pe_) << ", " << parked_ << "/"
          << (active_workers_ == 0 ? 0 : active_workers_ - 1)
          << " workers parked)";
    }
    return out.str();
  }

  /// Park-or-trip wait: sleeps until notified or the watchdog window past
  /// the last progress event elapses.  On a genuine quiet window (no
  /// progress since the deadline was computed) flags the stall for every
  /// worker and captures the diagnostics.
  void wait_watchdog(std::unique_lock<std::mutex>& lock) {
    const Clock::time_point deadline = last_progress_ + watchdog_;
    if (cv_.wait_until(lock, deadline) != std::cv_status::timeout) return;
    if (timed_out_ || failure_ != nullptr) return;
    if (done_count_ >= opt_.instances) return;
    // The wait timing out is not enough: a peer may have progressed (and
    // rearmed the deadline) while this worker slept through its own stale
    // deadline.  Only a window with NO progress anywhere is a stall.
    if (Clock::now() < last_progress_ + watchdog_) return;
    timed_out_ = true;
    stall_detail_ = stall_diagnostics_locked();
    cv_.notify_all();
  }

  void commit_locked(PeId pe, TaskId t, std::vector<Packet>&& outputs,
                     WorkerLocal& local) {
    TaskState& state = states_[t];
    CS_ENSURE(outputs.size() == state.out_edges.size(),
              "run_stream: task '" + graph_.task(t).name + "' returned " +
                  std::to_string(outputs.size()) + " packets for " +
                  std::to_string(state.out_edges.size()) + " output edges");
    for (std::size_t k = 0; k < state.out_edges.size(); ++k) {
      EdgeChannel& edge = edges_[state.out_edges[k]];
      // A cross-PE packet leaves through the producer's out interface.
      if (state.out_remote[k]) {
        local.counters.bytes_out += static_cast<double>(outputs[k].size());
      }
      edge.packets.push_back(std::move(outputs[k]));
      ++edge.produced;
      edge.max_occupancy =
          std::max(edge.max_occupancy, edge.produced - edge.consumed);
    }
    const std::int64_t i = state.next_instance;
    // The instance-i packet of every cross-PE input just arrived through
    // this (consumer) PE's in interface; in the receiver-reads protocol
    // the consumer also issued the transfer.
    for (std::size_t k = 0; k < state.in_edges.size(); ++k) {
      if (!state.in_remote[k]) continue;
      const Packet* packet = edges_[state.in_edges[k]].packet_at(i);
      if (packet != nullptr) {
        local.counters.bytes_in += static_cast<double>(packet->size());
      }
      ++local.counters.transfers_issued;
    }
    ++state.next_instance;
    ++tasks_executed_;
    // Instances <= i of every input are no longer needed: retire them,
    // keeping the peek window [i+1, i+peek] alive.
    for (EdgeId e : state.in_edges) {
      EdgeChannel& edge = edges_[e];
      edge.consumed = i + 1;
      while (edge.base < edge.consumed && !edge.packets.empty()) {
        edge.packets.pop_front();
        ++edge.base;
      }
    }
    // Instance stamps: instance i is complete once every task has moved
    // past it.  Only a commit can advance that frontier, so stepping it
    // here (under the lock) stamps each instance exactly once.
    while (done_count_ < opt_.instances) {
      bool complete = true;
      for (const TaskState& s : states_) {
        if (s.next_instance <= done_count_) {
          complete = false;
          break;
        }
      }
      if (!complete) break;
      recorder_.on_instance_complete(wall_now_locked());
      ++done_count_;
    }
    progress_locked(pe);
  }

  /// Fail-stop trigger (runs on the dying PE's worker, under the lock):
  /// mark the PE dead and open the drain barrier.  The trigger worker
  /// becomes the failover coordinator.
  void begin_failover_locked(PeId pe) {
    pe_dead_[pe] = 1;
    dead_pe_ = pe;
    remap_pending_ = true;
    drain_start_ = Clock::now();
    cv_.notify_all();
  }

  /// Coordinator body, entered once every other live worker is parked:
  /// remap the orphans, account the migration, resume the stream.  The
  /// caller still holds the lock; peers are woken by the caller.
  void perform_failover_locked() {
    Mapping post;
    try {
      post = fault::remap_after_failure(analysis_, mapping_, {dead_pe_},
                                        opt_.failover_strategy);
    } catch (...) {
      // Unsurvivable loss (e.g. the only PPE).  Clear the barrier so
      // parked peers drain via the failure flag the worker frame sets.
      remap_pending_ = false;
      throw;
    }
    // Migration volume: every moved task's buffer region must be
    // re-established at its new host, and the packets currently buffered
    // on edges with a moved endpoint cross the interface once more.
    for (TaskId t = 0; t < mapping_.task_count(); ++t) {
      if (post.pe_of(t) != mapping_.pe_of(t)) {
        ++faults_.migrated_tasks;
        faults_.migrated_bytes += analysis_.task_buffer_bytes(t);
      }
    }
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      const Edge& edge = graph_.edge(e);
      if (post.pe_of(edge.from) == mapping_.pe_of(edge.from) &&
          post.pe_of(edge.to) == mapping_.pe_of(edge.to)) {
        continue;
      }
      for (const Packet& packet : edges_[e].packets) {
        faults_.migrated_bytes += static_cast<double>(packet.size());
      }
    }
    mapping_ = std::move(post);
    rebuild_placement_locked();
    ++faults_.failovers;
    faults_.failed_pe = static_cast<std::int64_t>(dead_pe_);
    faults_.fail_instance = injector_->fail_instance();
    faults_.downtime_seconds +=
        seconds_between(drain_start_, Clock::now());
    failover_done_ = true;
    remap_pending_ = false;
    progress_locked(dead_pe_);
  }

  // Top-level worker frame: nothing may escape a std::thread body, so any
  // exception the loop leaks (task code, packet gathering under memory
  // pressure, even the wait itself) is recorded as the run's first failure
  // and every peer is woken to drain.  run() joins all workers and then
  // rethrows that first failure.
  //
  // This frame is also the worker's single exit point, so the telemetry
  // flush below runs exactly once per worker whether the loop completed
  // the stream, drained after a peer's failure, or threw itself —
  // Recorder::flush_pe asserts that exactly-once contract.
  void worker(PeId pe) {
    WorkerLocal local;
    try {
      worker_loop(pe, local);
    } catch (...) {
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
      cv_.notify_all();
    }
    std::lock_guard<std::mutex> guard(mutex_);
    --active_workers_;
    cv_.notify_all();  // drain-barrier arithmetic may have changed
    faults_.merge(local.faults);
    recorder_.flush_pe(pe, local.counters);
    trace_.insert(trace_.end(), local.trace.begin(), local.trace.end());
  }

  void worker_loop(PeId pe, WorkerLocal& local) {
    std::size_t cursor = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      if (timed_out_ || failure_ != nullptr) return;
      if (done_count_ >= opt_.instances) return;

      if (remap_pending_) {
        if (pe == dead_pe_) {
          // Coordinator: wait for every other live worker to park at the
          // drain barrier, then execute the remap.
          if (parked_ + 1 >= active_workers_) {
            perform_failover_locked();
            cv_.notify_all();
            continue;  // next iteration sees pe_dead_ and exits
          }
          wait_watchdog(lock);
          continue;
        }
        // Peer: park until the coordinator finishes (or the run aborts).
        // Parking is NOT progress — a drain stuck behind a hung body
        // still trips the watchdog.
        ++parked_;
        cv_.notify_all();  // the coordinator recounts the barrier
        while (remap_pending_ && !timed_out_ && failure_ == nullptr) {
          wait_watchdog(lock);
        }
        --parked_;
        continue;
      }

      if (pe_dead_[pe]) return;

      // Find a runnable task, round-robin for fairness.  pe_tasks_ is
      // re-read every iteration: a failover remap may have changed it.
      const std::vector<TaskId>& assigned = pe_tasks_[pe];
      TaskId chosen = 0;
      bool found = false;
      for (std::size_t probe = 0; probe < assigned.size(); ++probe) {
        const TaskId t = assigned[(cursor + probe) % assigned.size()];
        if (runnable_locked(t)) {
          chosen = t;
          cursor = (cursor + probe + 1) % assigned.size();
          found = true;
          break;
        }
      }
      if (!found) {
        wait_watchdog(lock);
        continue;
      }

      const std::int64_t instance = states_[chosen].next_instance;

      // Permanent fail-stop: this PE refuses every instance past the fail
      // index; instances below it (pipeline stragglers) still complete so
      // the drain cut stays consistent.
      if (injector_ && !failover_done_ &&
          injector_->fail_stop(pe, instance)) {
        begin_failover_locked(pe);
        continue;
      }

      progress_locked(pe);

      // Deterministic transient faults for this execution, drawn under
      // the lock (the hang latch is shared state), served after unlock.
      double dma_backoff = 0.0;
      double hang_stall = 0.0;
      double slow_factor = 1.0;
      if (injector_) {
        const TaskState& state = states_[chosen];
        for (std::size_t k = 0; k < state.in_edges.size(); ++k) {
          if (!state.in_remote[k]) continue;
          dma_backoff += injector_->dma_delay(
              fault::FaultInjector::TransferKind::kEdge, state.in_edges[k],
              instance, &local.faults.dma_retries);
        }
        slow_factor = injector_->compute_factor(pe, instance);
        const std::size_t hang = injector_->hang_index(pe, instance);
        if (hang != fault::FaultInjector::npos && !hang_fired_[hang]) {
          hang_fired_[hang] = 1;
          hang_stall = injector_->hang_seconds(hang);
        }
      }

      TaskInputs inputs = gather_locked(chosen);
      lock.unlock();
      // If the task (or the re-lock) throws, the unique_lock is released
      // by unwinding and worker() records the failure (and still flushes
      // whatever `local` accumulated so far).
      if (dma_backoff > 0.0) {
        // The consumer-side fetch of this instance's remote inputs hit
        // the plan's retry/backoff sequence; data is delayed, never lost.
        local.faults.backoff_seconds += dma_backoff;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(dma_backoff));
      }
      const auto body_start = Clock::now();
      std::vector<Packet> outputs = tasks_[chosen](inputs);
      const auto body_end = Clock::now();
      const double body_seconds = seconds_between(body_start, body_end);
      double injected = hang_stall;
      if (slow_factor > 1.0) {
        const double slow = (slow_factor - 1.0) * body_seconds;
        injected += slow;
        local.faults.slowdown_seconds += slow;
      }
      if (hang_stall > 0.0) {
        ++local.faults.hangs;
        local.faults.hang_seconds += hang_stall;
      }
      if (injected > 0.0) {
        // Injected stall is overhead, not compute: the occupation
        // cross-check compares nominal work against the model.
        local.counters.overhead_seconds += injected;
        std::this_thread::sleep_for(std::chrono::duration<double>(injected));
      }
      ++local.counters.tasks_executed;
      local.counters.compute_seconds += body_seconds;
      if (opt_.record_trace) {
        obs::TraceEvent event;
        event.kind = obs::TraceEvent::Kind::kCompute;
        event.name = graph_.task(chosen).name;
        event.pe = pe;
        event.src_pe = pe;
        event.start = seconds_between(start_, body_start);
        event.end = seconds_between(start_, body_end);
        event.instance = inputs.instance;
        event.task = static_cast<std::int64_t>(chosen);
        local.trace.push_back(std::move(event));
      }
      lock.lock();
      commit_locked(pe, chosen, std::move(outputs), local);
      cv_.notify_all();
    }
  }

  const SteadyStateAnalysis& analysis_;
  const TaskGraph& graph_;
  const CellPlatform& platform_;
  Mapping mapping_;  // by value: a failover remap rewrites it mid-run
  const std::vector<TaskFunction>& tasks_;
  RunOptions opt_;

  std::vector<EdgeChannel> edges_;
  std::vector<TaskState> states_;
  std::vector<std::vector<TaskId>> pe_tasks_;

  std::mutex mutex_;
  std::condition_variable cv_;
  Clock::time_point start_{};
  Clock::time_point last_progress_{};
  Clock::duration watchdog_{};
  bool timed_out_ = false;
  std::string stall_detail_;
  std::exception_ptr failure_ = nullptr;
  std::uint64_t tasks_executed_ = 0;
  std::int64_t done_count_ = 0;
  obs::Recorder recorder_;              // flushed into under mutex_
  std::vector<obs::TraceEvent> trace_;  // merged under mutex_ at flush
  std::vector<double> heartbeat_;       // wall stamp of last progress per PE

  // Fault machinery (all shared fields guarded by mutex_).
  std::optional<fault::FaultInjector> injector_;
  std::vector<char> hang_fired_;  // one-shot latch per hang spec
  fault::FaultStats faults_;
  std::vector<char> pe_dead_;
  PeId dead_pe_ = 0;
  bool remap_pending_ = false;
  bool failover_done_ = false;
  std::size_t parked_ = 0;
  std::size_t active_workers_ = 0;
  Clock::time_point drain_start_{};
};

}  // namespace

RunStats run_stream(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping,
                    const std::vector<TaskFunction>& tasks,
                    const RunOptions& options) {
  Runtime runtime(analysis, mapping, tasks, options);
  return runtime.run();
}

}  // namespace cellstream::runtime
