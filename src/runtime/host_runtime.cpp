#include "runtime/host_runtime.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace cellstream::runtime {

namespace {

using Clock = std::chrono::steady_clock;

struct EdgeChannel {
  std::int64_t capacity = 0;  // packets (analysis buffer depth)
  std::int64_t base = 0;      // stream index of packets.front()
  std::int64_t produced = 0;  // total packets ever pushed
  std::int64_t consumed = 0;  // packets fully used by the consumer
  std::int64_t max_occupancy = 0;
  std::deque<Packet> packets;

  const Packet* packet_at(std::int64_t instance) const {
    if (instance < base) return nullptr;  // already discarded (bug guard)
    const auto offset = static_cast<std::size_t>(instance - base);
    return offset < packets.size() ? &packets[offset] : nullptr;
  }
};

struct TaskState {
  std::int64_t next_instance = 0;
  int peek = 0;
  std::vector<EdgeId> in_edges;   // graph order
  std::vector<EdgeId> out_edges;  // graph order
  // Telemetry attribution, precomputed: an edge whose endpoints sit on
  // different PEs crosses both interfaces (producer out, consumer in);
  // a PE-local edge touches neither.
  std::vector<bool> in_remote;
  std::vector<bool> out_remote;
};

/// Worker-thread-confined telemetry.  Workers touch only their own copy
/// while running and publish it exactly once at exit (Recorder::flush_pe
/// under the runtime mutex), so telemetry adds no contention and no
/// torn reads to the hot path.
struct WorkerLocal {
  obs::PeCounters counters;
  std::vector<obs::TraceEvent> trace;
};

class Runtime {
 public:
  Runtime(const SteadyStateAnalysis& analysis, const Mapping& mapping,
          const std::vector<TaskFunction>& tasks, const RunOptions& options)
      : graph_(analysis.graph()),
        mapping_(mapping),
        tasks_(tasks),
        opt_(options) {
    CS_ENSURE(opt_.instances >= 1, "run_stream: empty stream");
    CS_ENSURE(opt_.wall_timeout_seconds > 0.0, "run_stream: no time budget");
    CS_ENSURE(tasks.size() == graph_.task_count(),
              "run_stream: need one TaskFunction per task");
    for (const TaskFunction& fn : tasks) {
      CS_ENSURE(fn != nullptr, "run_stream: null TaskFunction");
    }
    mapping.validate(analysis.platform());

    edges_.resize(graph_.edge_count());
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      edges_[e].capacity = analysis.buffer_depth(e);
    }
    states_.resize(graph_.task_count());
    pe_tasks_.resize(analysis.platform().pe_count());
    for (TaskId t : graph_.topological_order()) {
      TaskState& state = states_[t];
      state.peek = graph_.task(t).peek;
      state.in_edges = graph_.in_edges(t);
      state.out_edges = graph_.out_edges(t);
      state.in_remote.reserve(state.in_edges.size());
      for (EdgeId e : state.in_edges) {
        state.in_remote.push_back(mapping.pe_of(graph_.edge(e).from) !=
                                  mapping.pe_of(t));
      }
      state.out_remote.reserve(state.out_edges.size());
      for (EdgeId e : state.out_edges) {
        state.out_remote.push_back(mapping.pe_of(graph_.edge(e).to) !=
                                   mapping.pe_of(t));
      }
      pe_tasks_[mapping.pe_of(t)].push_back(t);
    }
    recorder_.reset(analysis.platform().pe_count(), obs::TimeDomain::kWall);
  }

  RunStats run() {
    const auto start = Clock::now();
    start_ = start;
    deadline_ = start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                opt_.wall_timeout_seconds));
    std::vector<std::thread> workers;
    workers.reserve(pe_tasks_.size());
    try {
      for (PeId pe = 0; pe < pe_tasks_.size(); ++pe) {
        const auto& assigned = pe_tasks_[pe];
        if (assigned.empty()) continue;
        workers.emplace_back([this, pe, &assigned] { worker(pe, assigned); });
      }
    } catch (...) {
      // Thread spawn failed mid-way.  Flag the error so already-running
      // workers drain, then fall through to the joins below; letting the
      // exception unwind past a vector of joinable threads would call
      // std::terminate.
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
      cv_.notify_all();
    }
    for (std::thread& w : workers) w.join();
    if (failure_) std::rethrow_exception(failure_);
    CS_ENSURE(!timed_out_, "run_stream: wall timeout — dataflow deadlock or "
                           "task code hung");

    RunStats stats;
    stats.wall_seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    stats.throughput =
        static_cast<double>(opt_.instances) / stats.wall_seconds;
    stats.max_buffer_occupancy.reserve(edges_.size());
    for (const EdgeChannel& edge : edges_) {
      stats.max_buffer_occupancy.push_back(edge.max_occupancy);
    }
    stats.tasks_executed = tasks_executed_;
    // All workers have joined, so every flush has happened; no lock needed.
    recorder_.set_elapsed(stats.wall_seconds);
    stats.counters = recorder_.take();
    stats.trace = std::move(trace_);
    return stats;
  }

 private:
  bool runnable_locked(TaskId t) const {
    const TaskState& state = states_[t];
    const std::int64_t i = state.next_instance;
    if (i >= opt_.instances) return false;
    const std::int64_t need = std::min<std::int64_t>(
        i + state.peek + 1, opt_.instances);
    for (EdgeId e : state.in_edges) {
      if (edges_[e].produced < need) return false;
    }
    for (EdgeId e : state.out_edges) {
      const EdgeChannel& edge = edges_[e];
      if (edge.produced - edge.consumed >= edge.capacity) return false;
    }
    return true;
  }

  // Build the peek window of input packet pointers; valid without the lock
  // while this task runs because only the consumer advances `consumed`
  // (std::deque::push_back does not invalidate element references).
  TaskInputs gather_locked(TaskId t) const {
    const TaskState& state = states_[t];
    TaskInputs in;
    in.instance = state.next_instance;
    in.stream_length = opt_.instances;
    in.inputs.resize(state.in_edges.size());
    for (std::size_t k = 0; k < state.in_edges.size(); ++k) {
      const EdgeChannel& edge = edges_[state.in_edges[k]];
      in.inputs[k].resize(static_cast<std::size_t>(state.peek) + 1);
      for (int d = 0; d <= state.peek; ++d) {
        in.inputs[k][d] = edge.packet_at(in.instance + d);
      }
    }
    return in;
  }

  double wall_now_locked() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void commit_locked(TaskId t, std::vector<Packet>&& outputs,
                     WorkerLocal& local) {
    TaskState& state = states_[t];
    CS_ENSURE(outputs.size() == state.out_edges.size(),
              "run_stream: task '" + graph_.task(t).name + "' returned " +
                  std::to_string(outputs.size()) + " packets for " +
                  std::to_string(state.out_edges.size()) + " output edges");
    for (std::size_t k = 0; k < state.out_edges.size(); ++k) {
      EdgeChannel& edge = edges_[state.out_edges[k]];
      // A cross-PE packet leaves through the producer's out interface.
      if (state.out_remote[k]) {
        local.counters.bytes_out += static_cast<double>(outputs[k].size());
      }
      edge.packets.push_back(std::move(outputs[k]));
      ++edge.produced;
      edge.max_occupancy =
          std::max(edge.max_occupancy, edge.produced - edge.consumed);
    }
    const std::int64_t i = state.next_instance;
    // The instance-i packet of every cross-PE input just arrived through
    // this (consumer) PE's in interface; in the receiver-reads protocol
    // the consumer also issued the transfer.
    for (std::size_t k = 0; k < state.in_edges.size(); ++k) {
      if (!state.in_remote[k]) continue;
      const Packet* packet = edges_[state.in_edges[k]].packet_at(i);
      if (packet != nullptr) {
        local.counters.bytes_in += static_cast<double>(packet->size());
      }
      ++local.counters.transfers_issued;
    }
    ++state.next_instance;
    ++tasks_executed_;
    // Instances <= i of every input are no longer needed: retire them,
    // keeping the peek window [i+1, i+peek] alive.
    for (EdgeId e : state.in_edges) {
      EdgeChannel& edge = edges_[e];
      edge.consumed = i + 1;
      while (edge.base < edge.consumed && !edge.packets.empty()) {
        edge.packets.pop_front();
        ++edge.base;
      }
    }
    // Instance stamps: instance i is complete once every task has moved
    // past it.  Only a commit can advance that frontier, so stepping it
    // here (under the lock) stamps each instance exactly once.
    while (done_count_ < opt_.instances) {
      bool complete = true;
      for (const TaskState& s : states_) {
        if (s.next_instance <= done_count_) {
          complete = false;
          break;
        }
      }
      if (!complete) break;
      recorder_.on_instance_complete(wall_now_locked());
      ++done_count_;
    }
  }

  // Top-level worker frame: nothing may escape a std::thread body, so any
  // exception the loop leaks (task code, packet gathering under memory
  // pressure, even the wait itself) is recorded as the run's first failure
  // and every peer is woken to drain.  run() joins all workers and then
  // rethrows that first failure.
  //
  // This frame is also the worker's single exit point, so the telemetry
  // flush below runs exactly once per worker whether the loop completed
  // the stream, drained after a peer's failure, or threw itself —
  // Recorder::flush_pe asserts that exactly-once contract.
  void worker(PeId pe, const std::vector<TaskId>& assigned) {
    WorkerLocal local;
    try {
      worker_loop(pe, assigned, local);
    } catch (...) {
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (failure_ == nullptr) failure_ = std::current_exception();
      }
      cv_.notify_all();
    }
    std::lock_guard<std::mutex> guard(mutex_);
    recorder_.flush_pe(pe, local.counters);
    trace_.insert(trace_.end(), local.trace.begin(), local.trace.end());
  }

  void worker_loop(PeId pe, const std::vector<TaskId>& assigned,
                   WorkerLocal& local) {
    std::size_t cursor = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (!timed_out_ && failure_ == nullptr) {
      // Find a runnable task, round-robin for fairness.
      TaskId chosen = 0;
      bool found = false;
      bool all_done = true;
      for (std::size_t probe = 0; probe < assigned.size(); ++probe) {
        const TaskId t = assigned[(cursor + probe) % assigned.size()];
        if (states_[t].next_instance < opt_.instances) all_done = false;
        if (runnable_locked(t)) {
          chosen = t;
          cursor = (cursor + probe + 1) % assigned.size();
          found = true;
          break;
        }
      }
      if (all_done) return;
      if (!found) {
        if (cv_.wait_until(lock, deadline_) == std::cv_status::timeout) {
          timed_out_ = true;
          cv_.notify_all();
          return;
        }
        continue;
      }

      TaskInputs inputs = gather_locked(chosen);
      lock.unlock();
      // If the task (or the re-lock) throws, the unique_lock is released
      // by unwinding and worker() records the failure (and still flushes
      // whatever `local` accumulated so far).
      const auto body_start = Clock::now();
      std::vector<Packet> outputs = tasks_[chosen](inputs);
      const auto body_end = Clock::now();
      ++local.counters.tasks_executed;
      local.counters.compute_seconds +=
          std::chrono::duration<double>(body_end - body_start).count();
      if (opt_.record_trace) {
        obs::TraceEvent event;
        event.kind = obs::TraceEvent::Kind::kCompute;
        event.name = graph_.task(chosen).name;
        event.pe = pe;
        event.src_pe = pe;
        event.start =
            std::chrono::duration<double>(body_start - start_).count();
        event.end = std::chrono::duration<double>(body_end - start_).count();
        event.instance = inputs.instance;
        event.task = static_cast<std::int64_t>(chosen);
        local.trace.push_back(std::move(event));
      }
      lock.lock();
      commit_locked(chosen, std::move(outputs), local);
      cv_.notify_all();
    }
  }

  const TaskGraph& graph_;
  const Mapping& mapping_;
  const std::vector<TaskFunction>& tasks_;
  RunOptions opt_;

  std::vector<EdgeChannel> edges_;
  std::vector<TaskState> states_;
  std::vector<std::vector<TaskId>> pe_tasks_;

  std::mutex mutex_;
  std::condition_variable cv_;
  Clock::time_point start_{};
  Clock::time_point deadline_{};
  bool timed_out_ = false;
  std::exception_ptr failure_ = nullptr;
  std::uint64_t tasks_executed_ = 0;
  std::int64_t done_count_ = 0;
  obs::Recorder recorder_;              // flushed into under mutex_
  std::vector<obs::TraceEvent> trace_;  // merged under mutex_ at flush
};

}  // namespace

RunStats run_stream(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping,
                    const std::vector<TaskFunction>& tasks,
                    const RunOptions& options) {
  Runtime runtime(analysis, mapping, tasks, options);
  return runtime.run();
}

}  // namespace cellstream::runtime
