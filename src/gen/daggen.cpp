#include "gen/daggen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cellstream::gen {

namespace {

Task random_task(const DagGenParams& params, Rng& rng) {
  Task t;
  t.wppe = rng.uniform(params.wppe_min, params.wppe_max);
  const double speedup =
      rng.uniform(params.spe_speedup_min, params.spe_speedup_max);
  t.wspe = t.wppe / speedup;
  const double peek_draw = rng.uniform();
  if (peek_draw < params.peek2_probability) {
    t.peek = 2;
  } else if (peek_draw < params.peek2_probability + params.peek1_probability) {
    t.peek = 1;
  }
  t.stateful = rng.bernoulli(params.stateful_probability);
  return t;
}

double random_data(const DagGenParams& params, Rng& rng) {
  return rng.uniform(params.data_min, params.data_max);
}

void add_stream_io(TaskGraph& graph, const DagGenParams& params) {
  for (TaskId t : graph.sources()) graph.task(t).read_bytes = params.io_bytes;
  for (TaskId t : graph.sinks()) graph.task(t).write_bytes = params.io_bytes;
}

}  // namespace

TaskGraph daggen_random(const DagGenParams& params) {
  CS_ENSURE(params.task_count >= 1, "daggen: empty graph requested");
  CS_ENSURE(params.fat >= 0.0 && params.fat <= 1.0, "daggen: fat not in [0,1]");
  Rng rng(params.seed);
  TaskGraph graph("daggen_" + std::to_string(params.task_count) + "_s" +
                  std::to_string(params.seed));

  // Layer structure: `fat` interpolates between a chain (depth = n) and a
  // two-level graph.  Mean width = 1 + fat * (sqrt(n) * 2 - 1).
  const double n = static_cast<double>(params.task_count);
  const double mean_width =
      1.0 + params.fat * (2.0 * std::sqrt(n) - 1.0);
  std::vector<std::size_t> layer_of;  // per task
  std::vector<std::vector<TaskId>> layers;
  std::size_t created = 0;
  while (created < params.task_count) {
    const double spread = (1.0 - params.regularity) * mean_width;
    double w = mean_width + rng.uniform(-spread, spread);
    std::size_t width = static_cast<std::size_t>(std::max(1.0, std::round(w)));
    width = std::min(width, params.task_count - created);
    layers.emplace_back();
    for (std::size_t i = 0; i < width; ++i) {
      const TaskId id = graph.add_task(random_task(params, rng));
      layers.back().push_back(id);
      layer_of.push_back(layers.size() - 1);
      ++created;
    }
  }

  // Mandatory connectivity: every non-first-layer task gets one parent in
  // the previous layer; every non-last-layer task gets at least one child.
  std::vector<bool> has_child(params.task_count, false);
  for (std::size_t l = 1; l < layers.size(); ++l) {
    for (TaskId task : layers[l]) {
      const auto& prev = layers[l - 1];
      const TaskId parent = prev[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))];
      graph.add_edge(parent, task, random_data(params, rng));
      has_child[parent] = true;
    }
  }
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TaskId task : layers[l]) {
      if (has_child[task]) continue;
      const auto& next = layers[l + 1];
      const TaskId child = next[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(next.size()) - 1))];
      // A duplicate is possible only if `task` already had a child.
      graph.add_edge(task, child, random_data(params, rng));
      has_child[task] = true;
    }
  }

  // Extra edges: forward jumps of up to `jump` layers, gated by density.
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TaskId from : layers[l]) {
      const std::size_t max_target =
          std::min(layers.size() - 1, l + std::max<std::size_t>(params.jump, 1));
      for (std::size_t lt = l + 1; lt <= max_target; ++lt) {
        for (TaskId to : layers[lt]) {
          if (!rng.bernoulli(params.density / mean_width)) continue;
          bool duplicate = false;
          for (EdgeId e : graph.out_edges(from)) {
            if (graph.edge(e).to == to) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) graph.add_edge(from, to, random_data(params, rng));
        }
      }
    }
  }

  add_stream_io(graph, params);
  graph.validate();
  return graph;
}

TaskGraph chain_graph(std::size_t task_count, const DagGenParams& params) {
  CS_ENSURE(task_count >= 1, "chain_graph: empty chain");
  Rng rng(params.seed);
  TaskGraph graph("chain_" + std::to_string(task_count));
  for (std::size_t i = 0; i < task_count; ++i) {
    graph.add_task(random_task(params, rng));
  }
  for (std::size_t i = 0; i + 1 < task_count; ++i) {
    graph.add_edge(i, i + 1, random_data(params, rng));
  }
  add_stream_io(graph, params);
  graph.validate();
  return graph;
}

TaskGraph fork_join_graph(std::size_t width, std::size_t branch_length,
                          const DagGenParams& params) {
  CS_ENSURE(width >= 1 && branch_length >= 1, "fork_join_graph: bad shape");
  Rng rng(params.seed);
  TaskGraph graph("forkjoin_" + std::to_string(width) + "x" +
                  std::to_string(branch_length));
  const TaskId source = graph.add_task(random_task(params, rng));
  std::vector<TaskId> tails;
  for (std::size_t b = 0; b < width; ++b) {
    TaskId prev = source;
    for (std::size_t i = 0; i < branch_length; ++i) {
      const TaskId t = graph.add_task(random_task(params, rng));
      graph.add_edge(prev, t, random_data(params, rng));
      prev = t;
    }
    tails.push_back(prev);
  }
  const TaskId sink = graph.add_task(random_task(params, rng));
  for (TaskId tail : tails) {
    graph.add_edge(tail, sink, random_data(params, rng));
  }
  add_stream_io(graph, params);
  graph.validate();
  return graph;
}

TaskGraph diamond_graph(std::size_t levels, const DagGenParams& params) {
  CS_ENSURE(levels >= 1 && levels % 2 == 1,
            "diamond_graph: levels must be odd (1, 3, 5, ...)");
  Rng rng(params.seed);
  TaskGraph graph("diamond_" + std::to_string(levels));
  const std::size_t peak = levels / 2;  // widths 1..peak+1..1
  std::vector<std::vector<TaskId>> rows;
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t width = 1 + (l <= peak ? l : levels - 1 - l);
    rows.emplace_back();
    for (std::size_t i = 0; i < width; ++i) {
      rows.back().push_back(graph.add_task(random_task(params, rng)));
    }
  }
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    const auto& from = rows[l];
    const auto& to = rows[l + 1];
    for (std::size_t i = 0; i < from.size(); ++i) {
      if (to.size() > from.size()) {
        // Widening: from[i] splits into to[i] and to[i+1].
        graph.add_edge(from[i], to[i], random_data(params, rng));
        graph.add_edge(from[i], to[i + 1], random_data(params, rng));
      } else {
        // Narrowing: from[i] merges into to[i-1] and to[i] (clamped).
        const std::size_t lo_j = i == 0 ? 0 : i - 1;
        const std::size_t hi_j = std::min(i, to.size() - 1);
        for (std::size_t j = std::min(lo_j, hi_j); j <= hi_j; ++j) {
          graph.add_edge(from[i], to[j], random_data(params, rng));
        }
      }
    }
  }
  add_stream_io(graph, params);
  graph.validate();
  return graph;
}

TaskGraph paper_graph(int index) {
  DagGenParams params;
  switch (index) {
    case 0: {  // random graph 1: 50 tasks, narrow and deep
      params.task_count = 50;
      params.fat = 0.15;
      params.density = 0.3;
      params.seed = 101;
      TaskGraph g = daggen_random(params);
      g.set_name("paper_graph1");
      return g;
    }
    case 1: {  // random graph 2: 94 tasks, wider
      params.task_count = 94;
      params.fat = 0.35;
      params.density = 0.25;
      params.jump = 2;
      params.seed = 202;
      TaskGraph g = daggen_random(params);
      g.set_name("paper_graph2");
      return g;
    }
    case 2: {  // random graph 3: simple chain with 50 tasks
      params.seed = 303;
      TaskGraph g = chain_graph(50, params);
      g.set_name("paper_graph3");
      return g;
    }
    default:
      throw Error("paper_graph: index must be 0, 1 or 2");
  }
}

void set_ccr(TaskGraph& graph, double target, double ops_rate) {
  graph.scale_to_ccr(target, ops_rate);
}

}  // namespace cellstream::gen
