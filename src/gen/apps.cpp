#include "gen/apps.hpp"

#include <string>

namespace cellstream::gen {

namespace {

Task make(const std::string& name, double wppe_ms, double spe_speedup,
          int peek = 0, bool stateful = false) {
  Task t;
  t.name = name;
  t.wppe = wppe_ms * 1e-3;
  t.wspe = t.wppe / spe_speedup;
  t.peek = peek;
  t.stateful = stateful;
  return t;
}

}  // namespace

TaskGraph audio_encoder_graph(std::size_t subband_groups) {
  CS_ENSURE(subband_groups >= 1 && subband_groups <= 32,
            "audio_encoder_graph: 1..32 subband groups");
  TaskGraph g("audio_encoder");

  // One frame: 1152 samples * 2 channels * 2 bytes = 4608 bytes.
  constexpr double kFrameBytes = 1152.0 * 2 * 2;

  // Framing is pointer chasing and I/O — faster on the PPE.
  const TaskId reader = g.add_task(make("frame_reader", 0.05, 0.4, 0, true));
  g.task(reader).read_bytes = kFrameBytes;

  // Windowing + FFT-ish analysis: SIMD heaven.
  const TaskId window = g.add_task(make("analysis_window", 0.6, 5.0));
  g.add_edge(reader, window, kFrameBytes);

  // Psychoacoustic model peeks one frame ahead (bit-reservoir lookahead).
  const TaskId psycho = g.add_task(make("psychoacoustic", 1.2, 3.0, 1));
  g.add_edge(window, psycho, kFrameBytes);

  // Polyphase filterbank, split into SIMD-friendly groups.
  std::vector<TaskId> filters, quantizers;
  const double group_bytes = kFrameBytes / static_cast<double>(subband_groups);
  for (std::size_t i = 0; i < subband_groups; ++i) {
    const TaskId filt = g.add_task(
        make("filterbank_" + std::to_string(i), 0.8, 6.0));
    g.add_edge(window, filt, group_bytes);
    filters.push_back(filt);
  }

  // Bit allocation consumes the psychoacoustic masks and subband energies.
  const TaskId bitalloc = g.add_task(make("bit_alloc", 0.5, 1.2, 0, true));
  g.add_edge(psycho, bitalloc, 512.0);
  for (TaskId filt : filters) g.add_edge(filt, bitalloc, 128.0);

  // Quantization per group (needs both the samples and the allocation).
  for (std::size_t i = 0; i < subband_groups; ++i) {
    const TaskId quant = g.add_task(
        make("quantize_" + std::to_string(i), 0.4, 4.0));
    g.add_edge(filters[i], quant, group_bytes);
    g.add_edge(bitalloc, quant, 64.0);
    quantizers.push_back(quant);
  }

  // Bitstream packing is branchy bit twiddling — better on the PPE.
  const TaskId pack = g.add_task(make("bitstream_pack", 0.7, 0.5, 0, true));
  for (TaskId quant : quantizers) {
    g.add_edge(quant, pack, group_bytes / 4.0);  // ~4:1 compression
  }
  g.task(pack).write_bytes = kFrameBytes / 4.0;

  g.validate();
  return g;
}

TaskGraph video_pipeline_graph(std::size_t tiles) {
  CS_ENSURE(tiles >= 1 && tiles <= 16, "video_pipeline_graph: 1..16 tiles");
  TaskGraph g("video_pipeline");

  // One frame: 320x240 YUV420 = 115200 bytes.
  constexpr double kFrameBytes = 320.0 * 240.0 * 1.5;
  const double tile_bytes = kFrameBytes / static_cast<double>(tiles);

  const TaskId capture = g.add_task(make("capture", 0.2, 0.8, 0, true));
  g.task(capture).read_bytes = kFrameBytes;

  const TaskId denoise = g.add_task(make("denoise", 2.5, 6.0));
  g.add_edge(capture, denoise, kFrameBytes);

  // Motion estimation compares against two future frames (peek 2).
  const TaskId motion = g.add_task(make("motion_estimation", 4.0, 5.0, 2));
  g.add_edge(denoise, motion, kFrameBytes);

  std::vector<TaskId> encoders;
  for (std::size_t i = 0; i < tiles; ++i) {
    const TaskId enc = g.add_task(
        make("tile_encode_" + std::to_string(i), 1.5, 5.5));
    g.add_edge(denoise, enc, tile_bytes);
    g.add_edge(motion, enc, 1024.0);  // motion vectors
    encoders.push_back(enc);
  }

  const TaskId entropy = g.add_task(make("entropy_coder", 1.8, 0.6, 0, true));
  for (TaskId enc : encoders) {
    g.add_edge(enc, entropy, tile_bytes / 8.0);
  }

  const TaskId mux = g.add_task(make("muxer", 0.3, 0.5, 0, true));
  g.add_edge(entropy, mux, kFrameBytes / 8.0);
  g.task(mux).write_bytes = kFrameBytes / 8.0;

  g.validate();
  return g;
}

}  // namespace cellstream::gen
