#pragma once
// Random streaming-application generator in the style of DagGen (Suter),
// which the paper uses for its three evaluation graphs (Section 6.2), plus
// deterministic generators for classic shapes.
//
// The generator is layered: `fat` controls the width/depth trade-off,
// `regularity` the variation of layer widths, `density` the number of
// extra inter-layer edges and `jump` how many layers an edge may skip.
// Costs follow the unrelated-machine model: every task draws a PPE cost
// and an independent SPE speedup factor (SIMD-friendly tasks are several
// times faster on a SPE, control-heavy tasks slower).

#include <cstdint>

#include "core/task_graph.hpp"
#include "support/rng.hpp"

namespace cellstream::gen {

struct DagGenParams {
  std::size_t task_count = 50;
  double fat = 0.4;         ///< 0: chain-like; 1: maximally wide.
  double regularity = 0.7;  ///< 1: equal layer widths; 0: erratic widths.
  double density = 0.4;     ///< Probability scale for extra edges.
  std::size_t jump = 2;     ///< Max layers skipped by an edge.

  // Cost model (seconds / bytes, paper-scale: a 50-task graph on the PPE
  // alone runs at a few tens of instances per second).
  double wppe_min = 0.2e-3;
  double wppe_max = 2.0e-3;
  // SPEs are several times faster on SIMD-friendly tasks and slower on
  // control-heavy ones (the unrelated-machine model).  The wide spread is
  // what separates the mapping strategies: a scheduler that ignores *which*
  // tasks are SPE-friendly (the greedy heuristics) pays up to ~3x per
  // misplaced task, while the LP optimizes the assignment; whole-graph
  // speed-ups then land in the paper's 2-3x band with 8 SPEs.
  double spe_speedup_min = 0.3;  ///< wspe = wppe / speedup.
  double spe_speedup_max = 3.0;
  double data_min = 2.0 * 1024;  ///< Edge payload bytes per instance.
  double data_max = 16.0 * 1024;

  double peek1_probability = 0.3;  ///< P(peek = 1).
  double peek2_probability = 0.1;  ///< P(peek = 2).
  double stateful_probability = 0.25;

  /// Sources read / sinks write this many bytes per instance from/to main
  /// memory (the stream enters and leaves the Cell through memory).
  double io_bytes = 4.0 * 1024;

  std::uint64_t seed = 1;
};

/// Generate a random layered DAG; validated before returning.
TaskGraph daggen_random(const DagGenParams& params);

/// Linear chain of `task_count` tasks with randomized costs — the paper's
/// third evaluation graph is such a 50-task chain.
TaskGraph chain_graph(std::size_t task_count, const DagGenParams& params);

/// Fork-join: source -> `width` parallel branches of `branch_length`
/// tasks -> sink.  Used by the ablation benches.
TaskGraph fork_join_graph(std::size_t width, std::size_t branch_length,
                          const DagGenParams& params);

/// Diamond lattice of `levels` levels: widths 1, 2, ..., peak, ..., 2, 1
/// with every task feeding its neighbours in the next level.  A dense
/// synchronization-heavy shape for stress tests.
TaskGraph diamond_graph(std::size_t levels, const DagGenParams& params);

/// The three evaluation graphs of the paper's Section 6.2 at its scales:
/// index 0 -> random graph 1 (50 tasks, narrow), 1 -> random graph 2
/// (94 tasks, wide), 2 -> random graph 3 (50-task chain).
TaskGraph paper_graph(int index);

/// Calibration constant turning SPE seconds into "operations" for the
/// paper's CCR = transferred-elements / operations.  The value is chosen
/// so the paper's CCR band [0.775, 4.6] sweeps edge payloads from the
/// memory-comfortable few-kB regime (buffers of roughly half the graph fit
/// into the eight 256 kB local stores) to the memory-starved tens-of-kB
/// regime where almost nothing fits and every mapping collapses onto the
/// PPE — reproducing the speed-up collapse of the paper's Fig. 8.  In the
/// paper's own experiments the SPE local store, not the 25 GB/s interface
/// bandwidth, is the dominant communication-related constraint
/// (Section 6.3: "memory limitation of the SPEs is one of the most
/// significant factors for performance").
inline constexpr double kPaperOpsRate = 2.5e7;

/// Rescale a graph's data volumes so its communication-to-computation
/// ratio equals `target` under `ops_rate` (see kPaperOpsRate).  The
/// paper's six CCR variants span 0.775 .. 4.6.
void set_ccr(TaskGraph& graph, double target, double ops_rate = kPaperOpsRate);

/// The six CCR values used across the paper's Section 6 experiments.
inline constexpr double kPaperCcrValues[6] = {0.775, 1.0, 1.5, 2.3, 3.4, 4.6};

}  // namespace cellstream::gen
