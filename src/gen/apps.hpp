#pragma once
// Hand-built realistic streaming applications.
//
// The paper's evaluation mentions "a real audio encoder" among the mapped
// applications; the original binary is unavailable, so audio_encoder_graph
// reconstructs an MPEG-1 Layer II-style subband encoder as a task graph
// with costs in the same ballpark (see DESIGN.md, substitution table).
// video_pipeline_graph models the motivating video-filter use case of the
// paper's introduction (peek > 0 models inter-frame prediction).

#include "core/task_graph.hpp"

namespace cellstream::gen {

/// MP2-style audio encoder: frame reader -> analysis window -> polyphase
/// filterbank (grouped into `subband_groups` SIMD-friendly tasks) ->
/// psychoacoustic model (peeks one frame ahead) -> bit allocation ->
/// per-group quantizers -> bitstream packer.  One instance = one audio
/// frame (1152 samples, 16-bit stereo).
TaskGraph audio_encoder_graph(std::size_t subband_groups = 8);

/// Video filter/encode pipeline: capture -> denoise -> motion estimation
/// (peek 2 frames) -> `tiles` parallel tile encoders -> entropy coder ->
/// muxer.  One instance = one 320x240 YUV420 frame.
TaskGraph video_pipeline_graph(std::size_t tiles = 4);

}  // namespace cellstream::gen
