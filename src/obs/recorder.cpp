#include "obs/recorder.hpp"

#include <algorithm>

namespace cellstream::obs {

const char* to_string(TimeDomain domain) {
  switch (domain) {
    case TimeDomain::kSimulated: return "simulated";
    case TimeDomain::kWall: return "wall";
  }
  return "unknown";
}

void PeCounters::merge(const PeCounters& other) {
  tasks_executed += other.tasks_executed;
  compute_seconds += other.compute_seconds;
  overhead_seconds += other.overhead_seconds;
  transfers_issued += other.transfers_issued;
  bytes_in += other.bytes_in;
  bytes_out += other.bytes_out;
  mfc_queue_peak = std::max(mfc_queue_peak, other.mfc_queue_peak);
  proxy_queue_peak = std::max(proxy_queue_peak, other.proxy_queue_peak);
}

std::uint64_t Counters::total_executions() const {
  std::uint64_t total = 0;
  for (const PeCounters& c : pe) total += c.tasks_executed;
  return total;
}

std::uint64_t Counters::total_transfers() const {
  std::uint64_t total = 0;
  for (const PeCounters& c : pe) total += c.transfers_issued;
  return total;
}

double Counters::observed_throughput() const {
  if (instance_completion.empty() || elapsed_seconds <= 0.0) return 0.0;
  return static_cast<double>(instance_completion.size()) / elapsed_seconds;
}

double Counters::steady_throughput() const {
  // Middle half of the stream: the first quarter excludes the pipeline
  // fill, the last quarter the drain (same convention as sim::SimResult).
  const std::size_t n = instance_completion.size();
  const std::size_t lo = n / 4;
  const std::size_t hi = (3 * n) / 4;
  if (lo >= 1 && hi > lo &&
      instance_completion[hi - 1] > instance_completion[lo - 1]) {
    return static_cast<double>(hi - lo) /
           (instance_completion[hi - 1] - instance_completion[lo - 1]);
  }
  return observed_throughput();
}

std::vector<std::pair<std::size_t, double>> Counters::windowed_throughput(
    std::size_t window, std::size_t stride) const {
  CS_ENSURE(window >= 1 && stride >= 1, "windowed_throughput: bad window");
  std::vector<std::pair<std::size_t, double>> out;
  for (std::size_t i = window; i < instance_completion.size(); i += stride) {
    const double dt = instance_completion[i] - instance_completion[i - window];
    if (dt > 0.0) {
      out.emplace_back(i, static_cast<double>(window) / dt);
    }
  }
  return out;
}

void Recorder::reset(std::size_t pe_count, TimeDomain domain) {
  counters_ = Counters{};
  counters_.domain = domain;
  counters_.pe.assign(pe_count, PeCounters{});
  flushed_.assign(pe_count, false);
}

void Recorder::flush_pe(PeId pe, const PeCounters& delta) {
  CS_ENSURE(pe < counters_.pe.size(), "obs::Recorder: PE out of range");
  CS_ASSERT(!flushed_[pe],
            "obs::Recorder: PE " + std::to_string(pe) +
                " flushed twice in one run");
  flushed_[pe] = true;
  counters_.pe[pe].merge(delta);
}

Counters Recorder::take() {
  Counters out = std::move(counters_);
  counters_ = Counters{};
  flushed_.clear();
  return out;
}

}  // namespace cellstream::obs
