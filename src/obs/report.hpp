#pragma once
// Predicted-vs-observed occupation report.
//
// The steady-state model (core/steady_state.hpp, the MILP's constraints
// 1a-1k) predicts each resource's occupation per stream instance: compute
// seconds per PE, and transfer seconds per PE interface direction
// (bytes / interface_bandwidth).  The telemetry counters observe the same
// quantities from an actual run.  This report lines the two up per
// resource and flags any resource whose *observed* occupation exceeds the
// *prediction* beyond tolerance — such an excess means either the engine
// used a resource the model does not account for, or the accounting
// misattributed traffic (both have been real bugs).  The check is
// invariant I7 (check/invariants.hpp wires it into the oracle and the
// fuzz driver); `cellstream_cli stats` exports the report as JSON/CSV
// through src/report/stats_io.

#include <string>
#include <utility>
#include <vector>

#include "core/steady_state.hpp"
#include "obs/recorder.hpp"

namespace cellstream::obs {

/// One resource's predicted and observed per-instance occupation, both in
/// seconds (transfer bytes are converted through the interface bandwidth,
/// matching the period terms of the model).
struct ResourceSample {
  enum class Kind : std::uint8_t { kCompute, kIn, kOut };
  std::string resource;  ///< "SPE3 compute", "SPE3 in", "SPE3 out".
  PeId pe = 0;
  Kind kind = Kind::kCompute;
  double predicted = 0.0;
  double observed = 0.0;

  /// observed / predicted; 0 when the prediction is zero.
  double ratio() const { return predicted > 0.0 ? observed / predicted : 0.0; }
};

const char* to_string(ResourceSample::Kind kind);

struct ReportOptions {
  /// Observed occupation may exceed prediction by this fraction before
  /// the cross-check flags the resource (invariant I7's tolerance).
  double occupation_tolerance = 0.05;
  /// Fig.-6-style convergence sampling (see Counters::windowed_throughput).
  std::size_t convergence_window = 250;
  std::size_t convergence_stride = 100;
};

/// Fault-injection and failover counters of one run, schema-neutral so
/// the observability layer needs no dependency on src/fault (which sits
/// above it in the link graph).  fault::fault_summary() converts a
/// fault::FaultStats; `present` distinguishes "ran without a fault plan"
/// from "ran under a plan that happened to inject nothing".
struct FaultSummary {
  bool present = false;
  std::int64_t dma_retries = 0;
  double backoff_seconds = 0.0;
  std::int64_t hangs = 0;
  double hang_seconds = 0.0;
  double slowdown_seconds = 0.0;
  std::int64_t failovers = 0;
  double downtime_seconds = 0.0;
  std::int64_t migrated_tasks = 0;
  double migrated_bytes = 0.0;
  std::int64_t failed_pe = -1;
  std::int64_t fail_instance = -1;
  /// Reduced-platform steady-state prediction of the post-failover
  /// mapping (0 when no failover ran) — invariant I9's bound.
  double predicted_post_throughput = 0.0;
};

/// Everything `cellstream_cli stats` exports for one run.
struct Report {
  // Identity.
  std::string graph;
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t ppes = 0;
  std::size_t spes = 0;

  // Run summary.
  TimeDomain domain = TimeDomain::kSimulated;
  std::uint64_t instances = 0;
  double elapsed_seconds = 0.0;
  std::uint64_t executions = 0;
  std::uint64_t transfers = 0;

  // Model prediction.
  double predicted_period = 0.0;
  double predicted_throughput = 0.0;
  std::string bottleneck;

  // Observation.
  double observed_throughput = 0.0;
  double steady_throughput = 0.0;

  // Per-resource occupation and the cross-check verdict.
  std::vector<ResourceSample> resources;
  double tolerance = 0.0;
  /// True when the cross-check applies (simulated domain, >= 1 instance).
  bool crosscheck_applicable = false;
  /// Human-readable description of each flagged resource; empty = I7 green.
  std::vector<std::string> flagged;

  /// Fig.-6 convergence curve: (instance index, instances/s) samples.
  std::vector<std::pair<std::size_t, double>> convergence;

  /// MILP search statistics when the mapping came from the exact solver.
  SolverStats solver;

  /// Fault/failover counters when the run executed under a FaultPlan.
  /// build_report cannot derive these from the telemetry counters — the
  /// executor's caller assigns them (fault::fault_summary adapts a
  /// fault::FaultStats).
  FaultSummary faults;

  bool crosscheck_ok() const { return flagged.empty(); }
};

/// Build the report for one run.  The counters must belong to a run of
/// `mapping` on the analysis' graph/platform (PE count is validated).
Report build_report(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping, const Counters& counters,
                    const ReportOptions& options = {});

}  // namespace cellstream::obs
