#pragma once
// Unified runtime telemetry: low-overhead per-PE counters recorded by
// both execution engines (sim::Simulator in simulated time,
// runtime::HostRuntime in wall time) behind one Recorder interface, plus
// the solver search statistics the MILP mapper exports.
//
// The Recorder itself is a plain, unsynchronized accumulator — the
// single-threaded simulator records directly into it on every event.
// Multi-threaded producers (host-runtime workers) accumulate into a
// worker-local PeCounters and publish it through flush_pe() exactly once
// at worker exit, under the caller's lock; flush_pe() enforces the
// exactly-once contract so a double flush (or a torn read concurrent
// with one) is a caught bug, not silently doubled numbers.
//
// The resulting Counters feed obs::Report (predicted-vs-observed
// occupation cross-check, invariant I7) and the JSON/CSV stats exports
// (src/report/stats_io).

#include <cstdint>
#include <string>
#include <vector>

#include "platform/cell.hpp"

namespace cellstream::obs {

/// Which clock the counters were recorded against.  Occupation
/// cross-checks against the steady-state model only apply to simulated
/// time (host wall time measures the host machine, not the modeled Cell).
enum class TimeDomain : std::uint8_t {
  kSimulated,  ///< sim::Simulator — seconds of modeled Cell time.
  kWall,       ///< runtime::HostRuntime — wall seconds since run start.
};

const char* to_string(TimeDomain domain);

/// Counters of one processing element.
struct PeCounters {
  std::uint64_t tasks_executed = 0;  ///< Task instances completed here.
  double compute_seconds = 0.0;      ///< Time inside task bodies.
  double overhead_seconds = 0.0;     ///< Dispatch + DMA-issue time.
  std::uint64_t transfers_issued = 0;  ///< DMAs this PE initiated.
  /// Bytes crossing this PE's communication interface, per direction.
  /// Memory reads land on the reader's *in* interface, memory writes on
  /// the writer's *out* interface (the paper's bounded-multiport model);
  /// a remote edge counts on the producer's out and the consumer's in.
  double bytes_in = 0.0;
  double bytes_out = 0.0;
  /// Peak outstanding DMA-queue occupancy observed (self-issued MFC
  /// stack, and the 8-deep proxy stack PPEs use to read this SPE).
  std::size_t mfc_queue_peak = 0;
  std::size_t proxy_queue_peak = 0;

  void merge(const PeCounters& other);
};

/// One engine run's telemetry.
struct Counters {
  TimeDomain domain = TimeDomain::kSimulated;
  std::vector<PeCounters> pe;
  /// Period timestamps: completion time of each stream instance (the
  /// moment it left the last task), in the run's time domain.
  std::vector<double> instance_completion;
  double elapsed_seconds = 0.0;  ///< Makespan (sim) or wall time (runtime).

  std::uint64_t instances_completed() const {
    return static_cast<std::uint64_t>(instance_completion.size());
  }
  std::uint64_t total_executions() const;
  std::uint64_t total_transfers() const;

  /// Instances per second over the whole run (0 when nothing ran).
  double observed_throughput() const;
  /// Instances per second over the middle half of the stream (pipeline
  /// fill and drain excluded) — the paper's steady-state measurement.
  double steady_throughput() const;

  /// Sliding-window throughput samples (the paper's Fig. 6): one
  /// (instance, instances/s) pair per completed index multiple of
  /// `stride`, over the trailing `window` instances.
  std::vector<std::pair<std::size_t, double>> windowed_throughput(
      std::size_t window = 250, std::size_t stride = 100) const;
};

/// Accumulates Counters.  See the file comment for the threading model.
class Recorder {
 public:
  Recorder() = default;
  Recorder(std::size_t pe_count, TimeDomain domain) { reset(pe_count, domain); }

  void reset(std::size_t pe_count, TimeDomain domain);

  std::size_t pe_count() const { return counters_.pe.size(); }

  // -- Single-writer event API (simulator, or a worker-local recorder) ---
  void on_execution(PeId pe, double compute_seconds) {
    PeCounters& c = slot(pe);
    ++c.tasks_executed;
    c.compute_seconds += compute_seconds;
  }
  void on_overhead(PeId pe, double seconds) { slot(pe).overhead_seconds += seconds; }
  void on_transfer_issued(PeId pe) { ++slot(pe).transfers_issued; }
  void on_bytes_in(PeId pe, double bytes) { slot(pe).bytes_in += bytes; }
  void on_bytes_out(PeId pe, double bytes) { slot(pe).bytes_out += bytes; }
  void on_mfc_queue_depth(PeId pe, std::size_t outstanding) {
    PeCounters& c = slot(pe);
    if (outstanding > c.mfc_queue_peak) c.mfc_queue_peak = outstanding;
  }
  void on_proxy_queue_depth(PeId pe, std::size_t outstanding) {
    PeCounters& c = slot(pe);
    if (outstanding > c.proxy_queue_peak) c.proxy_queue_peak = outstanding;
  }
  /// Instances complete in stream order; `time` is in the run's domain.
  void on_instance_complete(double time) {
    counters_.instance_completion.push_back(time);
  }
  void set_elapsed(double seconds) { counters_.elapsed_seconds = seconds; }

  // -- Multi-threaded publication (host runtime) -------------------------
  /// Merge a worker's counters into PE `pe`'s slot.  Callers serialize
  /// flushes with their own lock; the recorder additionally enforces that
  /// each PE is flushed at most once per run (the runtime's stop/drain
  /// contract — a retried flush would double every counter).
  void flush_pe(PeId pe, const PeCounters& delta);

  const Counters& counters() const { return counters_; }
  /// Move the counters out (the recorder is empty afterwards).
  Counters take();

 private:
  PeCounters& slot(PeId pe) {
    CS_ENSURE(pe < counters_.pe.size(), "obs::Recorder: PE out of range");
    return counters_.pe[pe];
  }

  Counters counters_;
  std::vector<bool> flushed_;
};

/// Search statistics of one MILP mapper solve, in obs vocabulary so the
/// report layer does not depend on the solver (mapping::solver_stats
/// converts milp::SearchStats).
struct SolverStats {
  bool present = false;   ///< False when the mapping came from a heuristic.
  std::string status;     ///< "optimal", "limit-feasible", ...
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  std::size_t lp_iterations = 0;
  std::size_t threads = 0;
  double objective = 0.0;
  double best_bound = 0.0;
  double gap = 0.0;
  double solve_seconds = 0.0;
  /// Incumbent trajectory: each improvement of the best known objective,
  /// stamped with the deterministic search position it was committed at.
  struct Incumbent {
    std::size_t round = 0;  ///< 0 = initial incumbent, before any round.
    std::size_t nodes = 0;  ///< Nodes committed when it was accepted.
    double objective = 0.0;
  };
  std::vector<Incumbent> incumbents;
};

}  // namespace cellstream::obs
