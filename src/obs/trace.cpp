#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cellstream::obs {

namespace {

// Full JSON string escape: quotes, backslashes and *every* control
// character (task names come from user graph files and from fuzzers —
// a raw 0x01 or an embedded quote used to produce an unloadable trace).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const CellPlatform& platform) {
  out << "[\n";
  // Thread-name metadata: one lane per PE for compute, one for transfers.
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << "  " << line;
  };
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(pe) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(platform.pe_name(pe)) + "\"}}");
    emit("{\"ph\":\"M\",\"pid\":0,\"tid\":" +
         std::to_string(platform.pe_count() + pe) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(platform.pe_name(pe)) + " transfers\"}}");
  }
  for (const TraceEvent& e : events) {
    // Defensive window handling: a non-finite timestamp would render as
    // "nan"/"inf" (not JSON), so the event is dropped; a negative
    // duration (end < start) is clamped to a zero-length marker at the
    // start time.  Either way the file stays loadable.
    if (!std::isfinite(e.start) || !std::isfinite(e.end)) continue;
    const double duration = e.end >= e.start ? e.end - e.start : 0.0;
    const std::size_t lane =
        e.kind == TraceEvent::Kind::kCompute ? e.pe
                                             : platform.pe_count() + e.pe;
    std::ostringstream line;
    line << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << lane << ",\"name\":\""
         << json_escape(e.name) << "\",\"ts\":" << e.start * 1e6
         << ",\"dur\":" << duration * 1e6
         << ",\"cat\":\""
         << (e.kind == TraceEvent::Kind::kCompute ? "compute" : "transfer")
         << "\"";
    if (e.instance >= 0) {
      line << ",\"args\":{\"instance\":" << e.instance << "}";
    }
    line << "}";
    emit(line.str());
  }
  out << "\n]\n";
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const CellPlatform& platform) {
  std::ostringstream os;
  write_chrome_trace(os, events, platform);
  return os.str();
}

}  // namespace cellstream::obs
