#include "obs/report.hpp"

#include <sstream>

#include "support/strings.hpp"

namespace cellstream::obs {

namespace {

std::string flag_text(const ResourceSample& sample, double tolerance) {
  std::ostringstream os;
  os << sample.resource << ": observed occupation "
     << format_number(sample.observed) << " s/instance exceeds predicted "
     << format_number(sample.predicted) << " s/instance (x"
     << format_number(sample.ratio()) << ", tolerance "
     << format_number(tolerance) << ")";
  return os.str();
}

}  // namespace

const char* to_string(ResourceSample::Kind kind) {
  switch (kind) {
    case ResourceSample::Kind::kCompute: return "compute";
    case ResourceSample::Kind::kIn: return "in";
    case ResourceSample::Kind::kOut: return "out";
  }
  return "unknown";
}

Report build_report(const SteadyStateAnalysis& analysis,
                    const Mapping& mapping, const Counters& counters,
                    const ReportOptions& options) {
  const CellPlatform& platform = analysis.platform();
  const TaskGraph& graph = analysis.graph();
  CS_ENSURE(counters.pe.size() == platform.pe_count(),
            "build_report: counters cover " +
                std::to_string(counters.pe.size()) + " PEs, platform has " +
                std::to_string(platform.pe_count()));

  Report report;
  report.graph = graph.name();
  report.tasks = graph.task_count();
  report.edges = graph.edge_count();
  report.ppes = platform.ppe_count;
  report.spes = platform.spe_count;

  report.domain = counters.domain;
  report.instances = counters.instances_completed();
  report.elapsed_seconds = counters.elapsed_seconds;
  report.executions = counters.total_executions();
  report.transfers = counters.total_transfers();

  const ResourceUsage usage = analysis.usage(mapping);
  report.predicted_period = usage.period;
  report.predicted_throughput = analysis.throughput(mapping);
  report.bottleneck = usage.bottleneck;

  report.observed_throughput = counters.observed_throughput();
  report.steady_throughput = counters.steady_throughput();

  report.tolerance = options.occupation_tolerance;
  report.crosscheck_applicable =
      counters.domain == TimeDomain::kSimulated && report.instances > 0;

  const double instances =
      report.instances > 0 ? static_cast<double>(report.instances) : 1.0;
  const double bw = platform.interface_bandwidth;
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    const PeCounters& c = counters.pe[pe];
    const ResourceSample samples[] = {
        {platform.pe_name(pe) + " compute", pe, ResourceSample::Kind::kCompute,
         usage.compute_seconds[pe], c.compute_seconds / instances},
        {platform.pe_name(pe) + " in", pe, ResourceSample::Kind::kIn,
         usage.incoming_bytes[pe] / bw, c.bytes_in / instances / bw},
        {platform.pe_name(pe) + " out", pe, ResourceSample::Kind::kOut,
         usage.outgoing_bytes[pe] / bw, c.bytes_out / instances / bw},
    };
    for (const ResourceSample& sample : samples) {
      report.resources.push_back(sample);
      // The cross-check direction is one-sided: an execution may use
      // *less* than the model (it finished the stream early, overlapped
      // better, ...), but using more than predicted means the model
      // missed real load — exactly what invariant I7 exists to catch.
      if (report.crosscheck_applicable &&
          sample.observed >
              sample.predicted * (1.0 + options.occupation_tolerance) +
                  1e-12) {
        report.flagged.push_back(flag_text(sample, options.occupation_tolerance));
      }
    }
    // DMA-queue telemetry rides along: the peaks are recorded per run and
    // must respect the hardware stacks the model budgets (1j/1k).
    if (report.crosscheck_applicable && platform.is_spe(pe)) {
      if (c.mfc_queue_peak > platform.spe_dma_slots) {
        report.flagged.push_back(
            platform.pe_name(pe) + ": MFC queue peak " +
            std::to_string(c.mfc_queue_peak) + " exceeds the " +
            std::to_string(platform.spe_dma_slots) + "-slot hardware stack");
      }
      if (c.proxy_queue_peak > platform.ppe_to_spe_dma_slots) {
        report.flagged.push_back(
            platform.pe_name(pe) + ": proxy queue peak " +
            std::to_string(c.proxy_queue_peak) + " exceeds the " +
            std::to_string(platform.ppe_to_spe_dma_slots) +
            "-slot hardware stack");
      }
    }
  }

  report.convergence = counters.windowed_throughput(
      options.convergence_window, options.convergence_stride);
  return report;
}

}  // namespace cellstream::obs
