#pragma once
// Execution trace events shared by the simulator and the host runtime,
// plus the chrome://tracing exporter.
//
// Historically the trace lived in src/sim; the observability layer hoists
// it here so both execution engines emit the same event type and one
// writer serves both (sim/trace.hpp remains as a compatibility alias).
// A simulated run stamps events in simulated seconds, a host-runtime run
// in wall seconds since the run started; the Trace Event Format does not
// care — open either in chrome://tracing or Perfetto (one row per
// processing element with its task executions, plus one row per PE for
// the transfers it received; see docs/OBSERVABILITY.md).

#include <iosfwd>
#include <string>
#include <vector>

#include "platform/cell.hpp"

namespace cellstream::obs {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kCompute,   ///< A task instance executing on a PE.
    kTransfer,  ///< A DMA transfer (edge fetch / memory read / write).
  };
  /// What a kTransfer event moves (kNone for kCompute events).
  enum class Payload : std::uint8_t {
    kNone,      ///< Not a transfer.
    kEdge,      ///< Remote-edge fetch (receiver reads the producer's buffer).
    kMemRead,   ///< Main-memory stream read of a task.
    kMemWrite,  ///< Main-memory stream write of a task.
  };
  Kind kind = Kind::kCompute;
  Payload payload = Payload::kNone;
  std::string name;       ///< Task name or transfer label.
  /// Executing PE (kCompute), or the PE whose communication phase issued
  /// the DMA (kTransfer) — the receiver for kEdge/kMemRead, the writer for
  /// kMemWrite.  The [start, end] window of a transfer is exactly the time
  /// the command occupies a DMA queue slot of its issuer (SPE MFC stack)
  /// or, for PPE-issued edge fetches, of the source SPE's proxy stack.
  PeId pe = 0;
  PeId src_pe = 0;        ///< Producer-side PE of a kEdge transfer; == pe
                          ///< for every other event kind.
  double start = 0.0;     ///< Seconds (simulated or wall-since-run-start).
  double end = 0.0;
  std::int64_t instance = -1;  ///< Stream instance, when known.
  std::int64_t edge = -1;      ///< EdgeId for Payload::kEdge.
  std::int64_t task = -1;      ///< TaskId for kCompute / kMemRead / kMemWrite.
};

/// Serialize events to the Trace Event Format (JSON array).  `platform`
/// supplies the thread names ("PPE0", "SPE3 transfers", ...).
///
/// The writer is defensive about its input so a corrupted trace still
/// yields a loadable file: names are fully JSON-escaped (quotes,
/// backslashes, all control characters), events with a non-finite start
/// or end are skipped, and negative-duration windows are clamped to
/// zero-length at their start time.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const CellPlatform& platform);

/// Convenience: the JSON as a string.
std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const CellPlatform& platform);

}  // namespace cellstream::obs
