#pragma once
// Plain-text table / series rendering for the benchmark harnesses.
// Every figure-reproduction bench prints its data through these helpers so
// output is uniform, diffable and trivially machine-readable (CSV).

#include <string>
#include <utility>
#include <vector>

#include "support/strings.hpp"  // format_number, used by every report site

namespace cellstream::report {

/// Column-aligned text table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format arbitrary cell types via format_number for
  /// doubles and to_string otherwise.
  void add_numeric_row(const std::vector<double>& cells, int digits = 5);

  std::size_t row_count() const { return rows_.size(); }

  /// Human-readable aligned rendering.
  std::string to_string() const;

  /// RFC-4180-ish CSV (no quoting needed for our content).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One named line of an x/y plot.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Render several series sharing an x axis as one table: column 0 is x,
/// one column per series (blank where a series has no sample at that x).
std::string render_series(const std::string& x_label,
                          const std::vector<Series>& series, int digits = 5);

/// Basic descriptive statistics.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

Summary summarize(const std::vector<double>& values);

}  // namespace cellstream::report
