#include "report/stats_io.hpp"

#include <sstream>

namespace cellstream::report {

namespace {

json::Value convergence_to_json(const obs::Report& report) {
  json::Value samples = json::Value::array();
  for (const auto& [instance, throughput] : report.convergence) {
    json::Value sample = json::Value::object();
    sample.set("instance", json::Value(static_cast<std::uint64_t>(instance)));
    sample.set("throughput", json::Value(throughput));
    samples.push_back(std::move(sample));
  }
  return samples;
}

json::Value solver_to_json(const obs::SolverStats& solver) {
  if (!solver.present) return json::Value();  // null: heuristic mapping
  json::Value v = json::Value::object();
  v.set("status", json::Value(solver.status));
  v.set("nodes", json::Value(static_cast<std::uint64_t>(solver.nodes)));
  v.set("rounds", json::Value(static_cast<std::uint64_t>(solver.rounds)));
  v.set("lp_iterations",
        json::Value(static_cast<std::uint64_t>(solver.lp_iterations)));
  v.set("threads", json::Value(static_cast<std::uint64_t>(solver.threads)));
  v.set("objective", json::Value(solver.objective));
  v.set("best_bound", json::Value(solver.best_bound));
  v.set("gap", json::Value(solver.gap));
  v.set("solve_seconds", json::Value(solver.solve_seconds));
  json::Value trajectory = json::Value::array();
  for (const auto& point : solver.incumbents) {
    json::Value p = json::Value::object();
    p.set("round", json::Value(static_cast<std::uint64_t>(point.round)));
    p.set("nodes", json::Value(static_cast<std::uint64_t>(point.nodes)));
    p.set("objective", json::Value(point.objective));
    trajectory.push_back(std::move(p));
  }
  v.set("incumbents", std::move(trajectory));
  return v;
}

json::Value faults_to_json(const obs::FaultSummary& faults) {
  if (!faults.present) return json::Value();  // null: no fault plan
  json::Value v = json::Value::object();
  v.set("dma_retries",
        json::Value(static_cast<std::int64_t>(faults.dma_retries)));
  v.set("backoff_seconds", json::Value(faults.backoff_seconds));
  v.set("hangs", json::Value(static_cast<std::int64_t>(faults.hangs)));
  v.set("hang_seconds", json::Value(faults.hang_seconds));
  v.set("slowdown_seconds", json::Value(faults.slowdown_seconds));
  v.set("failovers", json::Value(static_cast<std::int64_t>(faults.failovers)));
  v.set("downtime_seconds", json::Value(faults.downtime_seconds));
  v.set("migrated_tasks",
        json::Value(static_cast<std::int64_t>(faults.migrated_tasks)));
  v.set("migrated_bytes", json::Value(faults.migrated_bytes));
  v.set("failed_pe", json::Value(static_cast<std::int64_t>(faults.failed_pe)));
  v.set("fail_instance",
        json::Value(static_cast<std::int64_t>(faults.fail_instance)));
  v.set("predicted_post_throughput",
        json::Value(faults.predicted_post_throughput));
  return v;
}

}  // namespace

json::Value stats_to_json(const obs::Report& report) {
  json::Value doc = json::Value::object();
  doc.set("schema", json::Value(kStatsSchema));

  json::Value graph = json::Value::object();
  graph.set("name", json::Value(report.graph));
  graph.set("tasks", json::Value(static_cast<std::uint64_t>(report.tasks)));
  graph.set("edges", json::Value(static_cast<std::uint64_t>(report.edges)));
  doc.set("graph", std::move(graph));

  json::Value platform = json::Value::object();
  platform.set("ppes", json::Value(static_cast<std::uint64_t>(report.ppes)));
  platform.set("spes", json::Value(static_cast<std::uint64_t>(report.spes)));
  doc.set("platform", std::move(platform));

  json::Value run = json::Value::object();
  run.set("domain", json::Value(obs::to_string(report.domain)));
  run.set("instances", json::Value(report.instances));
  run.set("elapsed_seconds", json::Value(report.elapsed_seconds));
  run.set("executions", json::Value(report.executions));
  run.set("transfers", json::Value(report.transfers));
  doc.set("run", std::move(run));

  json::Value predicted = json::Value::object();
  predicted.set("period", json::Value(report.predicted_period));
  predicted.set("throughput", json::Value(report.predicted_throughput));
  predicted.set("bottleneck", json::Value(report.bottleneck));
  doc.set("predicted", std::move(predicted));

  json::Value observed = json::Value::object();
  observed.set("throughput", json::Value(report.observed_throughput));
  observed.set("steady_throughput", json::Value(report.steady_throughput));
  doc.set("observed", std::move(observed));

  json::Value crosscheck = json::Value::object();
  crosscheck.set("applicable", json::Value(report.crosscheck_applicable));
  crosscheck.set("tolerance", json::Value(report.tolerance));
  crosscheck.set("ok", json::Value(report.crosscheck_ok()));
  json::Value flagged = json::Value::array();
  for (const std::string& detail : report.flagged) {
    flagged.push_back(json::Value(detail));
  }
  crosscheck.set("flagged", std::move(flagged));
  doc.set("crosscheck", std::move(crosscheck));

  json::Value resources = json::Value::array();
  for (const obs::ResourceSample& sample : report.resources) {
    json::Value r = json::Value::object();
    r.set("resource", json::Value(sample.resource));
    r.set("pe", json::Value(static_cast<std::uint64_t>(sample.pe)));
    r.set("kind", json::Value(obs::to_string(sample.kind)));
    r.set("predicted_seconds", json::Value(sample.predicted));
    r.set("observed_seconds", json::Value(sample.observed));
    r.set("ratio", json::Value(sample.ratio()));
    resources.push_back(std::move(r));
  }
  doc.set("resources", std::move(resources));

  doc.set("convergence", convergence_to_json(report));
  doc.set("solver", solver_to_json(report.solver));
  doc.set("faults", faults_to_json(report.faults));
  return doc;
}

std::string stats_json(const obs::Report& report) {
  return stats_to_json(report).dump(2) + "\n";
}

std::string stats_csv(const obs::Report& report) {
  std::ostringstream os;
  os << "resource,pe,kind,predicted_seconds,observed_seconds,ratio\n";
  os.precision(17);
  for (const obs::ResourceSample& sample : report.resources) {
    os << sample.resource << "," << sample.pe << ","
       << obs::to_string(sample.kind) << "," << sample.predicted << ","
       << sample.observed << "," << sample.ratio() << "\n";
  }
  return os.str();
}

namespace {

/// Append "prefix: missing/expected..." diagnostics for a member of the
/// given kind; returns the member or nullptr.
const json::Value* expect(const json::Value& object, const std::string& key,
                          json::Value::Kind kind, const std::string& prefix,
                          std::vector<std::string>& problems) {
  if (!object.is_object()) {
    problems.push_back(prefix + ": not an object");
    return nullptr;
  }
  if (!object.has(key)) {
    problems.push_back(prefix + "." + key + ": missing");
    return nullptr;
  }
  const json::Value& member = object.at(key);
  if (member.kind() != kind) {
    problems.push_back(prefix + "." + key + ": wrong type");
    return nullptr;
  }
  return &member;
}

}  // namespace

std::vector<std::string> validate_stats_json(const json::Value& document) {
  std::vector<std::string> problems;
  if (!document.is_object()) {
    problems.push_back("document: not a JSON object");
    return problems;
  }
  using Kind = json::Value::Kind;
  bool legacy_v1 = false;
  if (const json::Value* schema =
          expect(document, "schema", Kind::kString, "document", problems)) {
    const std::string& tag = schema->as_string();
    if (tag == kStatsSchemaV1) {
      legacy_v1 = true;
    } else if (tag != kStatsSchema) {
      problems.push_back("schema: got '" + tag + "', want '" +
                         std::string(kStatsSchema) + "' (or legacy '" +
                         std::string(kStatsSchemaV1) + "')");
    }
  }

  if (const json::Value* graph =
          expect(document, "graph", Kind::kObject, "document", problems)) {
    expect(*graph, "name", Kind::kString, "graph", problems);
    expect(*graph, "tasks", Kind::kNumber, "graph", problems);
    expect(*graph, "edges", Kind::kNumber, "graph", problems);
  }
  if (const json::Value* platform =
          expect(document, "platform", Kind::kObject, "document", problems)) {
    expect(*platform, "ppes", Kind::kNumber, "platform", problems);
    expect(*platform, "spes", Kind::kNumber, "platform", problems);
  }
  if (const json::Value* run =
          expect(document, "run", Kind::kObject, "document", problems)) {
    if (const json::Value* domain =
            expect(*run, "domain", Kind::kString, "run", problems)) {
      const std::string& d = domain->as_string();
      if (d != "simulated" && d != "wall") {
        problems.push_back("run.domain: got '" + d +
                           "', want 'simulated' or 'wall'");
      }
    }
    expect(*run, "instances", Kind::kNumber, "run", problems);
    expect(*run, "elapsed_seconds", Kind::kNumber, "run", problems);
    expect(*run, "executions", Kind::kNumber, "run", problems);
    expect(*run, "transfers", Kind::kNumber, "run", problems);
  }
  if (const json::Value* predicted =
          expect(document, "predicted", Kind::kObject, "document", problems)) {
    expect(*predicted, "period", Kind::kNumber, "predicted", problems);
    expect(*predicted, "throughput", Kind::kNumber, "predicted", problems);
    expect(*predicted, "bottleneck", Kind::kString, "predicted", problems);
  }
  if (const json::Value* observed =
          expect(document, "observed", Kind::kObject, "document", problems)) {
    expect(*observed, "throughput", Kind::kNumber, "observed", problems);
    expect(*observed, "steady_throughput", Kind::kNumber, "observed",
           problems);
  }

  if (const json::Value* crosscheck =
          expect(document, "crosscheck", Kind::kObject, "document",
                 problems)) {
    expect(*crosscheck, "applicable", Kind::kBool, "crosscheck", problems);
    expect(*crosscheck, "tolerance", Kind::kNumber, "crosscheck", problems);
    const json::Value* ok =
        expect(*crosscheck, "ok", Kind::kBool, "crosscheck", problems);
    const json::Value* flagged =
        expect(*crosscheck, "flagged", Kind::kArray, "crosscheck", problems);
    if (ok != nullptr && flagged != nullptr &&
        ok->as_bool() != (flagged->size() == 0)) {
      problems.push_back(
          "crosscheck: 'ok' inconsistent with 'flagged' contents");
    }
  }

  if (const json::Value* resources =
          expect(document, "resources", Kind::kArray, "document", problems)) {
    for (std::size_t i = 0; i < resources->size(); ++i) {
      const std::string prefix = "resources[" + std::to_string(i) + "]";
      const json::Value& r = resources->at(i);
      if (!r.is_object()) {
        problems.push_back(prefix + ": not an object");
        continue;
      }
      expect(r, "resource", Kind::kString, prefix, problems);
      expect(r, "pe", Kind::kNumber, prefix, problems);
      if (const json::Value* kind =
              expect(r, "kind", Kind::kString, prefix, problems)) {
        const std::string& k = kind->as_string();
        if (k != "compute" && k != "in" && k != "out") {
          problems.push_back(prefix + ".kind: got '" + k + "'");
        }
      }
      expect(r, "predicted_seconds", Kind::kNumber, prefix, problems);
      expect(r, "observed_seconds", Kind::kNumber, prefix, problems);
      expect(r, "ratio", Kind::kNumber, prefix, problems);
    }
  }

  if (const json::Value* convergence =
          expect(document, "convergence", Kind::kArray, "document",
                 problems)) {
    for (std::size_t i = 0; i < convergence->size(); ++i) {
      const std::string prefix = "convergence[" + std::to_string(i) + "]";
      const json::Value& sample = convergence->at(i);
      if (!sample.is_object()) {
        problems.push_back(prefix + ": not an object");
        continue;
      }
      expect(sample, "instance", Kind::kNumber, prefix, problems);
      expect(sample, "throughput", Kind::kNumber, prefix, problems);
    }
  }

  if (!document.has("solver")) {
    problems.push_back("document.solver: missing (null allowed)");
  } else if (const json::Value& solver = document.at("solver");
             !solver.is_null()) {
    if (!solver.is_object()) {
      problems.push_back("solver: wrong type (object or null)");
    } else {
      expect(solver, "status", Kind::kString, "solver", problems);
      expect(solver, "nodes", Kind::kNumber, "solver", problems);
      expect(solver, "rounds", Kind::kNumber, "solver", problems);
      expect(solver, "lp_iterations", Kind::kNumber, "solver", problems);
      expect(solver, "threads", Kind::kNumber, "solver", problems);
      expect(solver, "objective", Kind::kNumber, "solver", problems);
      expect(solver, "best_bound", Kind::kNumber, "solver", problems);
      expect(solver, "gap", Kind::kNumber, "solver", problems);
      expect(solver, "solve_seconds", Kind::kNumber, "solver", problems);
      if (const json::Value* incumbents = expect(
              solver, "incumbents", Kind::kArray, "solver", problems)) {
        for (std::size_t i = 0; i < incumbents->size(); ++i) {
          const std::string prefix = "solver.incumbents[" +
                                     std::to_string(i) + "]";
          const json::Value& point = incumbents->at(i);
          if (!point.is_object()) {
            problems.push_back(prefix + ": not an object");
            continue;
          }
          expect(point, "round", Kind::kNumber, prefix, problems);
          expect(point, "nodes", Kind::kNumber, prefix, problems);
          expect(point, "objective", Kind::kNumber, prefix, problems);
        }
      }
    }
  }

  // The faults section is what v2 adds: required there (null when the run
  // had no fault plan), and must not appear in a legacy v1 document.
  if (legacy_v1) {
    if (document.has("faults")) {
      problems.push_back(
          "document.faults: present in a v1 document (v2 section)");
    }
  } else if (!document.has("faults")) {
    problems.push_back("document.faults: missing (null allowed)");
  } else if (const json::Value& faults = document.at("faults");
             !faults.is_null()) {
    if (!faults.is_object()) {
      problems.push_back("faults: wrong type (object or null)");
    } else {
      expect(faults, "dma_retries", Kind::kNumber, "faults", problems);
      expect(faults, "backoff_seconds", Kind::kNumber, "faults", problems);
      expect(faults, "hangs", Kind::kNumber, "faults", problems);
      expect(faults, "hang_seconds", Kind::kNumber, "faults", problems);
      expect(faults, "slowdown_seconds", Kind::kNumber, "faults", problems);
      expect(faults, "failovers", Kind::kNumber, "faults", problems);
      expect(faults, "downtime_seconds", Kind::kNumber, "faults", problems);
      expect(faults, "migrated_tasks", Kind::kNumber, "faults", problems);
      expect(faults, "migrated_bytes", Kind::kNumber, "faults", problems);
      const json::Value* failed_pe =
          expect(faults, "failed_pe", Kind::kNumber, "faults", problems);
      const json::Value* failovers = faults.has("failovers") &&
                                             faults.at("failovers").is_number()
                                         ? &faults.at("failovers")
                                         : nullptr;
      expect(faults, "fail_instance", Kind::kNumber, "faults", problems);
      expect(faults, "predicted_post_throughput", Kind::kNumber, "faults",
             problems);
      if (failed_pe != nullptr && failovers != nullptr &&
          (failovers->as_number() > 0.0) != (failed_pe->as_number() >= 0.0)) {
        problems.push_back(
            "faults: 'failovers' inconsistent with 'failed_pe'");
      }
    }
  }

  return problems;
}

}  // namespace cellstream::report
