#include "report/table.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace cellstream::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CS_ENSURE(!headers_.empty(), "Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  CS_ENSURE(cells.size() == headers_.size(),
            "Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int digits) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double value : cells) row.push_back(format_number(value, digits));
  add_row(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(width[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = headers_.size() * 2 - 2;
  for (std::size_t w : width) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  os << join(headers_, ",") << "\n";
  for (const auto& row : rows_) os << join(row, ",") << "\n";
  return os.str();
}

std::string render_series(const std::string& x_label,
                          const std::vector<Series>& series, int digits) {
  std::vector<std::string> headers = {x_label};
  for (const Series& s : series) headers.push_back(s.name);
  Table table(std::move(headers));

  // Merge the x values of all series.
  std::map<double, std::vector<std::string>> rows;
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (const auto& [x, y] : series[s].points) {
      auto& row = rows[x];
      row.resize(series.size());
      row[s] = format_number(y, digits);
    }
  }
  for (const auto& [x, cells] : rows) {
    std::vector<std::string> row = {format_number(x, digits)};
    for (std::size_t s = 0; s < series.size(); ++s) {
      row.push_back(s < cells.size() && !cells[s].empty() ? cells[s] : "-");
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(var / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace cellstream::report
