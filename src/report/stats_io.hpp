#pragma once
// JSON / CSV serialization of the telemetry report (obs::Report).
//
// `cellstream_cli stats` and the tests speak these formats; the JSON
// document carries a schema tag ("cellstream-stats-v1") and
// validate_stats_json checks a parsed document against that schema, so a
// consumer can fail fast on version or shape drift instead of reading
// garbage fields.  The CSV export is the per-resource occupation table
// only (one row per PE interface direction / compute resource) — handy
// for spreadsheets and plotting, while JSON is the complete document.

#include <string>
#include <vector>

#include "obs/report.hpp"
#include "support/json.hpp"

namespace cellstream::report {

/// Schema tag stamped into (and required from) every stats document.
inline constexpr const char* kStatsSchema = "cellstream-stats-v1";

/// Build the full JSON document for one run report.
json::Value stats_to_json(const obs::Report& report);

/// stats_to_json rendered pretty (2-space indent, trailing newline).
std::string stats_json(const obs::Report& report);

/// Per-resource occupation table as CSV:
/// resource,pe,kind,predicted_seconds,observed_seconds,ratio
std::string stats_csv(const obs::Report& report);

/// Check a parsed stats document against the "cellstream-stats-v1"
/// schema: tag, required sections, field types, and internal consistency
/// (crosscheck.ok must match crosscheck.flagged).  Returns the problems
/// found; an empty vector means the document validates.
std::vector<std::string> validate_stats_json(const json::Value& document);

}  // namespace cellstream::report
