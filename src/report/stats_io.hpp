#pragma once
// JSON / CSV serialization of the telemetry report (obs::Report).
//
// `cellstream_cli stats` and the tests speak these formats; the JSON
// document carries a schema tag and validate_stats_json checks a parsed
// document against that schema, so a consumer can fail fast on version or
// shape drift instead of reading garbage fields.  Writers emit
// "cellstream-stats-v2", which adds the `faults` section (fault-injection
// and failover counters, null for runs without a fault plan); the
// validator also accepts "cellstream-stats-v1" documents, where `faults`
// does not exist.  The CSV export is the per-resource occupation table
// only (one row per PE interface direction / compute resource) — handy
// for spreadsheets and plotting, while JSON is the complete document.

#include <string>
#include <vector>

#include "obs/report.hpp"
#include "support/json.hpp"

namespace cellstream::report {

/// Schema tag stamped into every stats document this writer produces.
inline constexpr const char* kStatsSchema = "cellstream-stats-v2";
/// Previous tag, still accepted by validate_stats_json (documents written
/// before the `faults` section existed).
inline constexpr const char* kStatsSchemaV1 = "cellstream-stats-v1";

/// Build the full JSON document for one run report.
json::Value stats_to_json(const obs::Report& report);

/// stats_to_json rendered pretty (2-space indent, trailing newline).
std::string stats_json(const obs::Report& report);

/// Per-resource occupation table as CSV:
/// resource,pe,kind,predicted_seconds,observed_seconds,ratio
std::string stats_csv(const obs::Report& report);

/// Check a parsed stats document against its schema (v2 or the legacy
/// v1): tag, required sections, field types, and internal consistency
/// (crosscheck.ok must match crosscheck.flagged; a v1 document must not
/// carry a `faults` section, a v2 document must — null for fault-free
/// runs).  Returns the problems found; an empty vector means the document
/// validates.
std::vector<std::string> validate_stats_json(const json::Value& document);

}  // namespace cellstream::report
