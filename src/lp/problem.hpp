#pragma once
// Linear-program container shared by the simplex solver and the MILP
// branch-and-bound.
//
// The canonical form is
//
//     minimize    c' x
//     subject to  row_lo <= A x <= row_up        (ranged rows)
//                 lo     <=   x <= up            (variable bounds)
//
// <=, >=, = rows are all expressed through the ranged form with infinite /
// equal bounds.  Infinity is represented by +-kInfinity.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cellstream::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

using VarId = std::size_t;
using RowId = std::size_t;

/// One nonzero coefficient of a row.
struct Coefficient {
  VarId var;
  double value;
};

/// Linear program in ranged-row form.  Append-only builder.
class Problem {
 public:
  /// Add a variable with bounds [lo, up] and objective coefficient `cost`.
  VarId add_variable(double lo, double up, double cost,
                     std::string name = {});

  /// Add a ranged row  lo <= sum coef_i * x_i <= up.  Coefficients with
  /// duplicate variables are summed.
  RowId add_row(double lo, double up, std::vector<Coefficient> coefs,
                std::string name = {});

  std::size_t variable_count() const { return cost_.size(); }
  std::size_t row_count() const { return row_lo_.size(); }

  double cost(VarId v) const { return cost_[v]; }
  double var_lo(VarId v) const { return var_lo_[v]; }
  double var_up(VarId v) const { return var_up_[v]; }
  double row_lo(RowId r) const { return row_lo_[r]; }
  double row_up(RowId r) const { return row_up_[r]; }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::string& row_name(RowId r) const { return row_names_[r]; }
  const std::vector<Coefficient>& row(RowId r) const { return rows_[r]; }

  /// Tighten the bounds of a variable (used by branch-and-bound to fix
  /// binaries).  The new interval need not be contained in the old one.
  void set_variable_bounds(VarId v, double lo, double up) {
    CS_ENSURE(v < variable_count(), "set_variable_bounds: bad variable");
    CS_ENSURE(lo <= up, "set_variable_bounds: empty interval");
    var_lo_[v] = lo;
    var_up_[v] = up;
  }

  /// Evaluate the objective at a point.
  double objective_value(const std::vector<double>& x) const;

  /// Largest violation of any row or variable bound at `x` (0 = feasible).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<double> cost_;
  std::vector<double> var_lo_;
  std::vector<double> var_up_;
  std::vector<std::string> var_names_;

  std::vector<double> row_lo_;
  std::vector<double> row_up_;
  std::vector<std::vector<Coefficient>> rows_;
  std::vector<std::string> row_names_;
};

}  // namespace cellstream::lp
