#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>

namespace cellstream::lp {

VarId Problem::add_variable(double lo, double up, double cost,
                            std::string name) {
  CS_ENSURE(lo <= up, "add_variable: empty bound interval");
  CS_ENSURE(!std::isnan(lo) && !std::isnan(up) && !std::isnan(cost),
            "add_variable: NaN parameter");
  if (name.empty()) name = "x" + std::to_string(cost_.size());
  cost_.push_back(cost);
  var_lo_.push_back(lo);
  var_up_.push_back(up);
  var_names_.push_back(std::move(name));
  return cost_.size() - 1;
}

RowId Problem::add_row(double lo, double up, std::vector<Coefficient> coefs,
                       std::string name) {
  CS_ENSURE(lo <= up, "add_row: empty bound interval");
  for (const Coefficient& c : coefs) {
    CS_ENSURE(c.var < variable_count(), "add_row: unknown variable");
    CS_ENSURE(std::isfinite(c.value), "add_row: non-finite coefficient");
  }
  // Merge duplicates so solver columns are well-formed.
  std::sort(coefs.begin(), coefs.end(),
            [](const Coefficient& a, const Coefficient& b) {
              return a.var < b.var;
            });
  std::vector<Coefficient> merged;
  merged.reserve(coefs.size());
  for (const Coefficient& c : coefs) {
    if (!merged.empty() && merged.back().var == c.var) {
      merged.back().value += c.value;
    } else {
      merged.push_back(c);
    }
  }
  std::erase_if(merged, [](const Coefficient& c) { return c.value == 0.0; });

  if (name.empty()) name = "r" + std::to_string(row_lo_.size());
  row_lo_.push_back(lo);
  row_up_.push_back(up);
  rows_.push_back(std::move(merged));
  row_names_.push_back(std::move(name));
  return row_lo_.size() - 1;
}

double Problem::objective_value(const std::vector<double>& x) const {
  CS_ENSURE(x.size() == variable_count(), "objective_value: size mismatch");
  double obj = 0.0;
  for (VarId v = 0; v < x.size(); ++v) obj += cost_[v] * x[v];
  return obj;
}

double Problem::max_violation(const std::vector<double>& x) const {
  CS_ENSURE(x.size() == variable_count(), "max_violation: size mismatch");
  double worst = 0.0;
  for (VarId v = 0; v < x.size(); ++v) {
    worst = std::max(worst, var_lo_[v] - x[v]);
    worst = std::max(worst, x[v] - var_up_[v]);
  }
  for (RowId r = 0; r < row_count(); ++r) {
    double activity = 0.0;
    for (const Coefficient& c : rows_[r]) activity += c.value * x[c.var];
    worst = std::max(worst, row_lo_[r] - activity);
    worst = std::max(worst, activity - row_up_[r]);
  }
  return worst;
}

}  // namespace cellstream::lp
