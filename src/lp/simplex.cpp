#include "lp/simplex.hpp"

#include "lp/sparse_lu.hpp"

#include <algorithm>
#include <memory>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace cellstream::lp {

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "unknown";
}

namespace {

constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

struct SparseEntry {
  std::size_t row;
  double value;
};

}  // namespace

// ---------------------------------------------------------------------------
// Implementation state.  Columns 0..n_struct-1 are structural variables;
// column n_struct + r is the slack of row r with the single entry
// (r, -1), so every row reads  a.x - s = 0  and the RHS is zero.

struct IncrementalSimplex::Impl {
  SimplexOptions opts;
  std::size_t n_struct = 0;
  std::size_t m = 0;       // rows
  std::size_t ncols = 0;   // n_struct + m

  std::vector<std::vector<SparseEntry>> cols;
  std::vector<double> lo, up, cost;  // per column
  std::vector<VarStatus> status;     // per column
  std::vector<std::size_t> basic_col;   // per row: which column is basic
  std::vector<std::size_t> basis_row;   // per column: row if basic, else kNoRow
  std::vector<double> x;                // per column value

  // Basis factorization: sparse LU of B refreshed periodically, bridged by
  // product-form (eta) updates in between.  B_k^{-1} = E_k ... E_1 B_0^{-1}.
  SparseLu lu;
  struct Eta {
    std::size_t r;                 // pivot row of this update
    double wr;                     // w[r]
    std::vector<MatrixEntry> w;    // sparse copy of w = B^{-1} a_entering
  };
  std::vector<Eta> etas;
  std::size_t eta_nnz = 0;

  // Scratch buffers reused across iterations.
  std::vector<double> w, y, v;
  std::vector<double> grad;  // phase-1 gradient per row (-1/0/+1)

  bool basis_ready = false;

  explicit Impl(const Problem& p, SimplexOptions options) : opts(options) {
    n_struct = p.variable_count();
    m = p.row_count();
    ncols = n_struct + m;
    cols.resize(ncols);
    lo.resize(ncols);
    up.resize(ncols);
    cost.assign(ncols, 0.0);
    for (VarId j = 0; j < n_struct; ++j) {
      lo[j] = p.var_lo(j);
      up[j] = p.var_up(j);
      cost[j] = p.cost(j);
    }
    for (RowId r = 0; r < m; ++r) {
      for (const Coefficient& c : p.row(r)) {
        cols[c.var].push_back({r, c.value});
      }
      const std::size_t slack = n_struct + r;
      cols[slack].push_back({r, -1.0});
      lo[slack] = p.row_lo(r);
      up[slack] = p.row_up(r);
    }
    w.resize(m);
    y.resize(m);
    v.resize(m);
    grad.resize(m);
    reset_basis();
  }

  // Nonbasic resting value for a column given its status.
  double nonbasic_value(std::size_t j, VarStatus s) const {
    switch (s) {
      case VarStatus::kAtLower: return lo[j];
      case VarStatus::kAtUpper: return up[j];
      case VarStatus::kFree: return 0.0;
      case VarStatus::kBasic: break;
    }
    CS_ASSERT(false, "nonbasic_value on a basic column");
    return 0.0;
  }

  VarStatus natural_status(std::size_t j) const {
    if (std::isfinite(lo[j])) return VarStatus::kAtLower;
    if (std::isfinite(up[j])) return VarStatus::kAtUpper;
    return VarStatus::kFree;
  }

  void reset_basis() {
    status.assign(ncols, VarStatus::kAtLower);
    basis_row.assign(ncols, kNoRow);
    basic_col.resize(m);
    x.assign(ncols, 0.0);
    for (std::size_t j = 0; j < n_struct; ++j) {
      status[j] = natural_status(j);
      x[j] = nonbasic_value(j, status[j]);
    }
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t slack = n_struct + r;
      status[slack] = VarStatus::kBasic;
      basic_col[r] = slack;
      basis_row[slack] = r;
    }
    // B consists of the slack columns (-I), trivially factorizable.
    const bool factored = refactor();
    CS_ASSERT(factored, "slack basis must factor");
    basis_ready = true;
  }

  // out = B^{-1} * out (dense in/out): LU solve plus the eta file.
  void apply_inverse(std::vector<double>& out) const {
    lu.solve(out);
    for (const Eta& e : etas) {
      const double t = out[e.r] / e.wr;
      if (t == 0.0) {
        out[e.r] = 0.0;
        continue;
      }
      for (const MatrixEntry& entry : e.w) {
        out[entry.row] -= t * entry.value;
      }
      out[e.r] = t;
    }
  }

  // w = B^{-1} * column(j).
  void ftran(std::size_t j, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    for (const SparseEntry& e : cols[j]) out[e.row] += e.value;
    apply_inverse(out);
  }

  // y^T = g^T B^{-1}: apply eta transposes in reverse, then the LU.
  void btran(const std::vector<double>& g, std::vector<double>& out) const {
    out = g;
    for (auto it = etas.rbegin(); it != etas.rend(); ++it) {
      double dot = 0.0;
      for (const MatrixEntry& entry : it->w) {
        dot += entry.value * out[entry.row];
      }
      out[it->r] -= (dot - out[it->r]) / it->wr;
    }
    lu.solve_transpose(out);
  }

  // Recompute basic values exactly: x_B = -B^{-1} (sum of nonbasic columns
  // times their resting values).
  void recompute_basics() {
    std::fill(v.begin(), v.end(), 0.0);
    for (std::size_t j = 0; j < ncols; ++j) {
      if (status[j] == VarStatus::kBasic) continue;
      x[j] = nonbasic_value(j, status[j]);
      if (x[j] == 0.0) continue;
      for (const SparseEntry& e : cols[j]) v[e.row] += e.value * x[j];
    }
    apply_inverse(v);
    for (std::size_t i = 0; i < m; ++i) x[basic_col[i]] = -v[i];
  }

  // Re-factorize the basis from scratch, dropping the eta file.  Returns
  // false (leaving the object on the all-slack basis) if singular.
  bool refactor() {
    SparseColumns basis(m);
    for (std::size_t r = 0; r < m; ++r) {
      basis[r].reserve(cols[basic_col[r]].size());
      for (const SparseEntry& e : cols[basic_col[r]]) {
        basis[r].push_back({e.row, e.value});
      }
    }
    etas.clear();
    eta_nnz = 0;
    if (lu.factor(basis)) return true;
    // Singular: fall back to the always-valid slack basis.
    status.assign(ncols, VarStatus::kAtLower);
    basis_row.assign(ncols, kNoRow);
    for (std::size_t j = 0; j < n_struct; ++j) {
      status[j] = natural_status(j);
      x[j] = nonbasic_value(j, status[j]);
    }
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t slack = n_struct + r;
      status[slack] = VarStatus::kBasic;
      basic_col[r] = slack;
      basis_row[slack] = r;
    }
    SparseColumns slack_basis(m);
    for (std::size_t r = 0; r < m; ++r) slack_basis[r] = {{r, -1.0}};
    const bool ok = lu.factor(slack_basis);
    CS_ASSERT(ok, "slack basis is singular?");
    return false;
  }

  // Phase-1 gradient over rows: grad[i] = d(infeasibility)/d(x_basic_i);
  // returns the total infeasibility.
  double infeasibility() {
    const double tol = opts.feasibility_tol;
    double total = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::size_t j = basic_col[i];
      double g = 0.0;
      if (x[j] < lo[j] - tol) {
        g = -1.0;
        total += lo[j] - x[j];
      } else if (x[j] > up[j] + tol) {
        g = 1.0;
        total += x[j] - up[j];
      }
      grad[i] = g;
    }
    return total;
  }

  double reduced_cost(std::size_t j, bool phase1) const {
    double d = phase1 ? 0.0 : cost[j];
    for (const SparseEntry& e : cols[j]) d -= y[e.row] * e.value;
    return d;
  }

  struct Entering {
    std::size_t col = kNoRow;
    int dir = +1;  // +1: increase from lower/free, -1: decrease from upper.
    double score = 0.0;
  };

  Entering price(bool phase1, bool bland) const {
    Entering best;
    const double tol = opts.optimality_tol;
    for (std::size_t j = 0; j < ncols; ++j) {
      const VarStatus s = status[j];
      if (s == VarStatus::kBasic) continue;
      if (lo[j] == up[j]) continue;  // fixed, never enters
      const double d = reduced_cost(j, phase1);
      double score = 0.0;
      int dir = 0;
      if (s == VarStatus::kAtLower && d < -tol) {
        score = -d;
        dir = +1;
      } else if (s == VarStatus::kAtUpper && d > tol) {
        score = d;
        dir = -1;
      } else if (s == VarStatus::kFree && std::abs(d) > tol) {
        score = std::abs(d);
        dir = d < 0 ? +1 : -1;
      } else {
        continue;
      }
      if (bland) return {j, dir, score};  // lowest index wins
      if (score > best.score) best = {j, dir, score};
    }
    return best;
  }

  struct Ratio {
    double t = std::numeric_limits<double>::infinity();
    std::size_t row = kNoRow;       // blocking basic row, or kNoRow
    bool entering_flip = false;     // entering hits its own far bound
    double leave_at = 0.0;          // bound value the leaving basic lands on
    bool leave_upper = false;
  };

  // Max step for entering column `q` moving in direction `dir`, with basic
  // deltas w = B^{-1} a_q (x_B changes by -dir*t*w).  In phase 1 an
  // infeasible basic blocks when it *reaches* the bound it violates.
  Ratio ratio_test(std::size_t q, int dir, bool phase1, bool bland) const {
    Ratio best;
    // Entering variable's own range.
    if (std::isfinite(lo[q]) && std::isfinite(up[q])) {
      best.t = up[q] - lo[q];
      best.entering_flip = true;
    }
    const double ptol = opts.pivot_tol;
    const double ftol = opts.feasibility_tol;
    double best_pivot_mag = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double wi = w[i];
      if (std::abs(wi) < ptol) continue;
      const std::size_t j = basic_col[i];
      const double delta = -static_cast<double>(dir) * wi;  // dx_j/dt
      double bound = 0.0;
      bool towards_upper = false;
      if (phase1 && grad[i] != 0.0) {
        // Infeasible basic: blocks only while moving toward feasibility.
        if (grad[i] < 0.0) {  // below lower bound
          if (delta <= 0.0) continue;
          bound = lo[j];
          towards_upper = false;
        } else {  // above upper bound
          if (delta >= 0.0) continue;
          bound = up[j];
          towards_upper = true;
        }
      } else {
        if (delta > 0.0) {
          if (!std::isfinite(up[j])) continue;
          bound = up[j];
          towards_upper = true;
        } else {
          if (!std::isfinite(lo[j])) continue;
          bound = lo[j];
          towards_upper = false;
        }
      }
      double t = (bound - x[j]) / delta;
      if (t < 0.0) t = 0.0;  // degenerate (already at/over the bound)

      bool take = false;
      if (t < best.t - ftol) {
        take = true;  // strictly smaller step
      } else if (t < best.t + ftol) {
        // Near-tie.  Bland's rule: lowest leaving column index.  Normal
        // mode: largest pivot magnitude, for numerical stability.
        if (bland) {
          take = best.row == kNoRow || j < basic_col[best.row];
        } else {
          take = std::abs(wi) > best_pivot_mag;
        }
      }
      if (take) {
        best.t = t;
        best.row = i;
        best.entering_flip = false;
        best.leave_at = bound;
        best.leave_upper = towards_upper;
        best_pivot_mag = std::abs(wi);
      }
    }
    return best;
  }

  // Apply a pivot: entering q (direction dir) replaces the basic of row r.
  void pivot(std::size_t q, int dir, const Ratio& ratio) {
    const double t = ratio.t;
    // Move all basics.
    for (std::size_t i = 0; i < m; ++i) {
      if (w[i] == 0.0) continue;
      x[basic_col[i]] -= static_cast<double>(dir) * t * w[i];
    }
    const double enter_val = x[q] + static_cast<double>(dir) * t;

    if (ratio.entering_flip) {
      x[q] = dir > 0 ? up[q] : lo[q];
      status[q] = dir > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
      return;
    }

    const std::size_t r = ratio.row;
    const std::size_t leaving = basic_col[r];
    x[leaving] = ratio.leave_at;
    status[leaving] =
        ratio.leave_upper ? VarStatus::kAtUpper : VarStatus::kAtLower;
    if (!std::isfinite(ratio.leave_at)) {
      // Can only happen through numerical noise; park the var at zero.
      x[leaving] = 0.0;
      status[leaving] = VarStatus::kFree;
    }
    basis_row[leaving] = kNoRow;

    x[q] = enter_val;
    status[q] = VarStatus::kBasic;
    basic_col[r] = q;
    basis_row[q] = r;

    // Record the product-form update: B_new^{-1} = E * B^{-1} with E
    // built from w = B^{-1} a_entering and the leaving row r.
    Eta eta;
    eta.r = r;
    eta.wr = w[r];
    eta.w.reserve(32);
    for (std::size_t i = 0; i < m; ++i) {
      if (w[i] != 0.0) eta.w.push_back({i, w[i]});
    }
    eta_nnz += eta.w.size();
    etas.push_back(std::move(eta));
  }

  SimplexResult run() {
    SimplexResult result;
    // Sync nonbasic resting values with (possibly updated) bounds, then
    // compute basics exactly.
    for (std::size_t j = 0; j < ncols; ++j) {
      if (status[j] == VarStatus::kBasic) continue;
      // A bound may have vanished (e.g. un-fixing a binary): repair status.
      if (status[j] == VarStatus::kAtLower && !std::isfinite(lo[j])) {
        status[j] = natural_status(j);
      } else if (status[j] == VarStatus::kAtUpper && !std::isfinite(up[j])) {
        status[j] = natural_status(j);
      }
      x[j] = nonbasic_value(j, status[j]);
    }
    recompute_basics();

    // Anti-cycling: Bland's rule engages after `stall_limit` pivots without
    // *merit* progress (phase-1 infeasibility, phase-2 objective) relative
    // to the last reference point.  Counting degenerate steps instead (the
    // old scheme) was evadable: alternating degenerate and tiny-but-nonzero
    // steps reset the counter every other pivot and could cycle forever.
    // The reference only advances on measurable progress, so a long run of
    // sub-tolerance steps still trips the counter, while genuine cumulative
    // progress (many tiny steps adding up) resets it.
    std::size_t stalled_run = 0;
    double merit_ref = std::numeric_limits<double>::infinity();
    bool merit_ref_phase1 = true;
    for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
      if (etas.size() >= opts.refactor_interval || eta_nnz > 16 * m + 1024) {
        refactor();
        recompute_basics();
      }
      const double infeas = infeasibility();
      const bool phase1 = infeas > opts.feasibility_tol * 10.0;
      if (phase1) ++result.phase1_iterations;
      ++result.iterations;

      double merit = infeas;
      if (!phase1) {
        merit = 0.0;
        for (std::size_t j = 0; j < n_struct; ++j) merit += cost[j] * x[j];
      }
      if (phase1 != merit_ref_phase1 ||
          merit_ref - merit >
              opts.stall_progress_tol * (1.0 + std::abs(merit_ref))) {
        stalled_run = 0;
        merit_ref = merit;
        merit_ref_phase1 = phase1;
      } else {
        ++stalled_run;
      }

      // Gradient for BTRAN: phase 1 uses the infeasibility gradient, phase
      // 2 the objective coefficients of the basics.
      if (!phase1) {
        for (std::size_t i = 0; i < m; ++i) grad[i] = cost[basic_col[i]];
      }
      btran(grad, y);

      const bool bland = stalled_run > opts.stall_limit;
      const Entering enter = price(phase1, bland);
      if (enter.col == kNoRow) {
        if (phase1) {
          result.status = SolveStatus::kInfeasible;
          return finish(result);
        }
        result.status = SolveStatus::kOptimal;
        return finish(result);
      }

      ftran(enter.col, w);
      const Ratio ratio = ratio_test(enter.col, enter.dir, phase1, bland);
      if (!std::isfinite(ratio.t)) {
        if (phase1) {
          // Gradient says improving but nothing blocks: numerical trouble.
          if (refactor()) {
            recompute_basics();
            continue;
          }
          result.status = SolveStatus::kInfeasible;
          return finish(result);
        }
        result.status = SolveStatus::kUnbounded;
        return finish(result);
      }
      pivot(enter.col, enter.dir, ratio);

      if ((iter + 1) % 128 == 0) recompute_basics();
    }
    result.status = SolveStatus::kIterationLimit;
    return finish(result);
  }

  SimplexResult finish(SimplexResult result) {
    recompute_basics();
    result.x.assign(x.begin(), x.begin() + static_cast<long>(n_struct));
    result.objective = 0.0;
    for (std::size_t j = 0; j < n_struct; ++j) {
      result.objective += cost[j] * x[j];
    }
    if (opts.collect_basis) {
      result.basis.status = status;
      result.basis.basic_col = basic_col;
    }
    return result;
  }

  bool load_warm(const Basis& warm) {
    if (warm.status.size() != ncols || warm.basic_col.size() != m) {
      // A dimensionally stale basis (saved from a different problem shape)
      // must leave the instance in the documented all-slack state, not
      // whatever basis a previous solve left behind.
      reset_basis();
      return false;
    }
    status = warm.status;
    basic_col = warm.basic_col;
    basis_row.assign(ncols, kNoRow);
    for (std::size_t r = 0; r < m; ++r) {
      if (basic_col[r] >= ncols || basis_row[basic_col[r]] != kNoRow ||
          status[basic_col[r]] != VarStatus::kBasic) {
        reset_basis();
        return false;
      }
      basis_row[basic_col[r]] = r;
    }
    if (!refactor()) return false;
    basis_ready = true;
    return true;
  }
};

IncrementalSimplex::IncrementalSimplex(const Problem& problem,
                                       SimplexOptions options)
    : impl_(std::make_unique<Impl>(problem, options)) {}

IncrementalSimplex::~IncrementalSimplex() = default;

void IncrementalSimplex::set_variable_bounds(VarId var, double lo, double up) {
  CS_ENSURE(var < impl_->n_struct, "set_variable_bounds: not structural");
  CS_ENSURE(lo <= up, "set_variable_bounds: empty interval");
  impl_->lo[var] = lo;
  impl_->up[var] = up;
}

SimplexResult IncrementalSimplex::solve() { return impl_->run(); }

void IncrementalSimplex::reset_basis() { impl_->reset_basis(); }

bool IncrementalSimplex::load_basis(const Basis& basis) {
  return impl_->load_warm(basis);
}

Basis IncrementalSimplex::save_basis() const {
  Basis basis;
  basis.status = impl_->status;
  basis.basic_col = impl_->basic_col;
  return basis;
}

std::size_t IncrementalSimplex::structural_count() const {
  return impl_->n_struct;
}

SimplexResult solve_lp(const Problem& problem, const SimplexOptions& options,
                       const Basis* warm) {
  IncrementalSimplex solver(problem, options);
  if (warm != nullptr && !warm->empty()) {
    // Best effort: an unusable warm basis falls back to all-slack
    // (load_basis resets internally on failure).
    (void)solver.load_basis(*warm);
  }
  return solver.solve();
}

}  // namespace cellstream::lp
