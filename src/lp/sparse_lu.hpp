#pragma once
// Sparse LU factorization for simplex basis matrices.
//
// Gilbert-Peierls left-looking LU with threshold partial pivoting: each
// column of the factor is produced by a sparse triangular solve whose
// nonzero pattern is discovered by depth-first reachability, so the cost
// is proportional to the arithmetic actually performed — the property the
// simplex engine needs, since Cell-mapping bases are extremely sparse
// (a handful of nonzeros per column at thousands of rows).
//
// The factorization is  L U = A[p, q]  with unit-diagonal L, row
// permutation p chosen by threshold pivoting and column order q supplied
// by the caller (the solver passes columns sorted by sparsity, a cheap
// fill-reducing heuristic).

#include <cstddef>
#include <vector>

namespace cellstream::lp {

struct MatrixEntry {
  std::size_t row;
  double value;
};

/// One m x m sparse matrix given as columns of (row, value) entries.
using SparseColumns = std::vector<std::vector<MatrixEntry>>;

class SparseLu {
 public:
  /// Factor the matrix; returns false if (numerically) singular.
  /// `pivot_threshold` in (0, 1]: a pivot must be at least this fraction
  /// of the largest eligible magnitude in its column (1.0 = strict
  /// partial pivoting, smaller values trade stability for sparsity).
  bool factor(const SparseColumns& columns, double pivot_threshold = 0.1);

  bool ok() const { return ok_; }
  std::size_t dimension() const { return n_; }

  /// Number of stored nonzeros in L and U together (diagnostics).
  std::size_t fill() const;

  /// Solve A x = b in place (b enters dense, leaves as x).
  void solve(std::vector<double>& b) const;

  /// Solve A^T y = c in place.
  void solve_transpose(std::vector<double>& c) const;

 private:
  std::size_t n_ = 0;
  bool ok_ = false;

  // Column-compressed L (strictly below diagonal, unit diagonal implied)
  // and U (diagonal stored separately), both in *pivotal* coordinates:
  // entry rows refer to elimination positions, not original rows.
  std::vector<std::vector<MatrixEntry>> lower_;  // per elimination step
  std::vector<std::vector<MatrixEntry>> upper_;  // per column, rows < col
  std::vector<double> diag_;                     // U diagonal

  // perm_row_[original_row] = pivotal position; inverse_row_ is the
  // inverse map.  Columns are processed in caller order via perm_col_.
  std::vector<std::size_t> perm_row_;
  std::vector<std::size_t> inv_row_;
  std::vector<std::size_t> perm_col_;  // pivotal position -> original col
};

}  // namespace cellstream::lp
