#pragma once
// Bounded-variable primal revised simplex.
//
// This is the LP engine underneath the MILP branch-and-bound that replaces
// the paper's use of CPLEX.  Design choices, sized for the mapping LPs this
// repository generates (a few thousand rows/columns, very sparse):
//
//  * Ranged rows `lo <= a.x <= up` become `a.x - s = 0` with a slack
//    variable `s` bounded by the row range, so the right-hand side is the
//    zero vector and an all-slack basis always exists.
//  * The basis is factorized by the sparse Gilbert-Peierls LU in
//    sparse_lu.hpp; pivots are applied as product-form (eta) updates, with
//    periodic refactorization for numerical hygiene, so FTRAN/BTRAN cost
//    scales with the factor's fill instead of m^2.
//  * Phase 1 minimizes the sum of bound violations of basic variables
//    (composite / infeasibility-gradient method, no artificial columns),
//    which makes warm starts from a parent branch-and-bound node cheap.
//  * Dantzig pricing with a Bland's-rule fallback after a run of degenerate
//    pivots guarantees termination.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lp/problem.hpp"

namespace cellstream::lp {

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* to_string(SolveStatus status);

/// Nonbasic/basic state of one column (structural variables first, then one
/// slack per row).
enum class VarStatus : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFree,  ///< Nonbasic at value 0 with no finite bound.
};

/// Snapshot of a simplex basis, reusable as a warm start (e.g. for the
/// child nodes of a branch-and-bound tree).
struct Basis {
  std::vector<VarStatus> status;       ///< Per column (structural + slack).
  std::vector<std::size_t> basic_col;  ///< Basis column of each row.

  bool empty() const { return status.empty(); }
};

struct SimplexOptions {
  double feasibility_tol = 1e-7;  ///< Bound violation considered zero.
  double optimality_tol = 1e-7;   ///< Reduced-cost threshold.
  double pivot_tol = 1e-8;        ///< Smallest acceptable pivot magnitude.
  std::size_t max_iterations = 200000;
  std::size_t refactor_interval = 120;  ///< Pivots between refactorizations.
  /// Consecutive pivots without measurable merit progress (phase-1
  /// infeasibility or phase-2 objective) before Bland's rule engages.  The
  /// counter is progress-based, not step-size-based, so alternating
  /// degenerate / tiny-step pivot patterns cannot evade it.
  std::size_t stall_limit = 60;
  /// Relative merit decrease per pivot that counts as progress (resets the
  /// stall counter and leaves Bland mode).
  double stall_progress_tol = 1e-10;
  /// Copy the final basis into SimplexResult::basis.  Branch-and-bound
  /// workers turn this off and snapshot explicitly (save_basis) only for
  /// the nodes that actually branch, avoiding one O(cols + rows) copy per
  /// node solve.
  bool collect_basis = true;
};

struct SimplexResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  ///< Structural variable values (empty if infeasible).
  Basis basis;  ///< Final basis (valid for kOptimal; empty if collect_basis off).
  std::size_t iterations = 0;
  std::size_t phase1_iterations = 0;
};

/// Solve `problem` to optimality.  `warm` (if provided and dimensionally
/// consistent) seeds the initial basis; an unusable warm basis silently
/// falls back to the all-slack basis.
SimplexResult solve_lp(const Problem& problem,
                       const SimplexOptions& options = {},
                       const Basis* warm = nullptr);

/// Re-solvable simplex instance.
///
/// Branch-and-bound repeatedly re-solves the same LP with different
/// variable bounds.  IncrementalSimplex keeps the factorized basis across
/// solves: after a bound change only primal feasibility is lost, which
/// phase 1 repairs in a handful of pivots, instead of re-solving from the
/// all-slack basis every node.
class IncrementalSimplex {
 public:
  IncrementalSimplex(const Problem& problem, SimplexOptions options = {});
  ~IncrementalSimplex();  // out of line: Impl is incomplete here
  IncrementalSimplex(const IncrementalSimplex&) = delete;
  IncrementalSimplex& operator=(const IncrementalSimplex&) = delete;

  /// Change the bounds of a structural variable (branching).  Takes effect
  /// at the next solve().
  void set_variable_bounds(VarId var, double lo, double up);

  /// Solve from the current basis; returns status/objective/solution.
  SimplexResult solve();

  /// Reset the basis to all-slack (used if numerical trouble is detected).
  void reset_basis();

  /// Install an externally saved basis; returns false (and resets to the
  /// all-slack basis) if it is dimensionally wrong or singular.  The basis
  /// is refactorized from scratch, so the subsequent solve trajectory is a
  /// pure function of (problem, bounds, basis) — independent of any solves
  /// this instance ran before.  Branch-and-bound relies on that for its
  /// thread-count-invariant determinism (docs/FORMULATION.md).
  bool load_basis(const Basis& basis);

  /// Snapshot the current basis (statuses + basic columns), reloadable via
  /// load_basis on any instance of the same problem shape.
  Basis save_basis() const;

  std::size_t structural_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cellstream::lp
