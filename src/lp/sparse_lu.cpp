#include "lp/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hpp"

namespace cellstream::lp {

namespace {
constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);
}

bool SparseLu::factor(const SparseColumns& columns, double pivot_threshold) {
  n_ = columns.size();
  ok_ = false;
  CS_ENSURE(pivot_threshold > 0.0 && pivot_threshold <= 1.0,
            "SparseLu: threshold outside (0, 1]");

  lower_.assign(n_, {});
  upper_.assign(n_, {});
  diag_.assign(n_, 0.0);
  perm_row_.assign(n_, kUnassigned);   // original row -> pivotal position
  inv_row_.assign(n_, kUnassigned);    // pivotal position -> original row

  // Cheap fill-reducing column order: sparsest columns first.
  perm_col_.resize(n_);
  std::iota(perm_col_.begin(), perm_col_.end(), 0);
  std::stable_sort(perm_col_.begin(), perm_col_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return columns[a].size() < columns[b].size();
                   });

  std::vector<double> work(n_, 0.0);      // by original row index
  std::vector<std::size_t> touched;       // nonzero original rows in work
  touched.reserve(64);

  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t col = perm_col_[k];
    CS_ENSURE(col < n_, "SparseLu: bad column index");

    // Scatter A(:, col).
    touched.clear();
    for (const MatrixEntry& e : columns[col]) {
      CS_ENSURE(e.row < n_, "SparseLu: entry row out of range");
      if (work[e.row] == 0.0 && e.value != 0.0) touched.push_back(e.row);
      work[e.row] += e.value;
    }

    // Sparse-ish lower solve: apply previous L columns in pivotal order.
    // (A linear scan over earlier steps is O(n) per column; arithmetic is
    // only done where the work vector is nonzero.)
    for (std::size_t t = 0; t < k; ++t) {
      const double alpha = work[inv_row_[t]];
      if (alpha == 0.0) continue;
      for (const MatrixEntry& e : lower_[t]) {
        // lower_ entries use original row ids during factorization.
        if (work[e.row] == 0.0) touched.push_back(e.row);
        work[e.row] -= alpha * e.value;
      }
    }

    // Pivot selection among not-yet-pivoted rows (threshold pivoting
    // degenerates to strict partial pivoting at threshold 1).
    double max_mag = 0.0;
    for (std::size_t r : touched) {
      if (perm_row_[r] != kUnassigned) continue;
      max_mag = std::max(max_mag, std::abs(work[r]));
    }
    if (max_mag < 1e-12) {
      for (std::size_t r : touched) work[r] = 0.0;
      return false;  // structurally or numerically singular
    }
    std::size_t pivot = kUnassigned;
    double pivot_mag = -1.0;
    for (std::size_t r : touched) {
      if (perm_row_[r] != kUnassigned) continue;
      const double mag = std::abs(work[r]);
      if (mag >= pivot_threshold * max_mag && mag > pivot_mag) {
        pivot = r;
        pivot_mag = mag;
      }
    }
    CS_ASSERT(pivot != kUnassigned, "SparseLu: no pivot above threshold");

    diag_[k] = work[pivot];
    perm_row_[pivot] = k;
    inv_row_[k] = pivot;

    // Split the worked column into U (pivoted rows) and L (the rest).
    auto& lcol = lower_[k];
    auto& ucol = upper_[k];
    for (std::size_t r : touched) {
      const double v = work[r];
      work[r] = 0.0;
      if (v == 0.0 || r == pivot) continue;
      const std::size_t pos = perm_row_[r];
      if (pos != kUnassigned && pos < k) {
        ucol.push_back({pos, v});  // U(pos, k), pivotal row index
      } else if (pos == kUnassigned) {
        lcol.push_back({r, v / diag_[k]});  // original row id (for now)
      }
    }
  }

  // Convert L's row ids to pivotal positions (every row is assigned now).
  for (auto& col : lower_) {
    for (MatrixEntry& e : col) e.row = perm_row_[e.row];
  }

  ok_ = true;
  return true;
}

std::size_t SparseLu::fill() const {
  std::size_t total = diag_.size();
  for (const auto& col : lower_) total += col.size();
  for (const auto& col : upper_) total += col.size();
  return total;
}

void SparseLu::solve(std::vector<double>& b) const {
  CS_ENSURE(ok_, "SparseLu::solve before successful factor");
  CS_ENSURE(b.size() == n_, "SparseLu::solve: size mismatch");
  // y = P b (pivotal order).
  std::vector<double> y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[inv_row_[k]];
  // Forward: L y = y (unit diagonal).
  for (std::size_t k = 0; k < n_; ++k) {
    const double alpha = y[k];
    if (alpha == 0.0) continue;
    for (const MatrixEntry& e : lower_[k]) y[e.row] -= alpha * e.value;
  }
  // Backward: U z = y.
  for (std::size_t k = n_; k-- > 0;) {
    const double z = y[k] / diag_[k];
    y[k] = z;
    if (z == 0.0) continue;
    for (const MatrixEntry& e : upper_[k]) y[e.row] -= z * e.value;
  }
  // x[q[k]] = z[k].
  for (std::size_t k = 0; k < n_; ++k) b[perm_col_[k]] = y[k];
}

void SparseLu::solve_transpose(std::vector<double>& c) const {
  CS_ENSURE(ok_, "SparseLu::solve_transpose before successful factor");
  CS_ENSURE(c.size() == n_, "SparseLu::solve_transpose: size mismatch");
  // w solves U^T w = Q^T c (forward substitution, U^T lower).
  std::vector<double> w(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    double acc = c[perm_col_[k]];
    for (const MatrixEntry& e : upper_[k]) acc -= e.value * w[e.row];
    w[k] = acc / diag_[k];
  }
  // v solves L^T v = w (backward, unit diagonal).
  for (std::size_t k = n_; k-- > 0;) {
    double acc = w[k];
    for (const MatrixEntry& e : lower_[k]) acc -= e.value * w[e.row];
    w[k] = acc;
  }
  // y = P^T v: y[original_row] = v[pivotal position of that row].
  for (std::size_t k = 0; k < n_; ++k) c[inv_row_[k]] = w[k];
}

}  // namespace cellstream::lp
