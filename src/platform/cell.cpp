#include "platform/cell.hpp"

#include <algorithm>
#include <string>

namespace cellstream {

std::size_t CellPlatform::chip_of(PeId pe) const {
  CS_ENSURE(pe < pe_count(), "chip_of: PE index out of range");
  if (chip_count <= 1) return 0;
  if (pe < ppe_count) return pe * chip_count / ppe_count;
  const std::size_t spe = pe - ppe_count;
  return spe * chip_count / std::max<std::size_t>(spe_count, 1);
}

std::string CellPlatform::pe_name(PeId pe) const {
  CS_ENSURE(pe < pe_count(), "pe_name: PE index out of range");
  if (pe < ppe_count) return "PPE" + std::to_string(pe);
  return "SPE" + std::to_string(pe - ppe_count);
}

void CellPlatform::validate() const {
  CS_ENSURE(ppe_count >= 1, "platform: at least one PPE is required");
  CS_ENSURE(pe_count() >= 1, "platform: no processing elements");
  CS_ENSURE(interface_bandwidth > 0.0, "platform: interface bandwidth <= 0");
  CS_ENSURE(eib_bandwidth > 0.0, "platform: EIB bandwidth <= 0");
  CS_ENSURE(code_bytes <= local_store_bytes,
            "platform: code larger than the local store");
  if (spe_count > 0) {
    CS_ENSURE(spe_dma_slots >= 1, "platform: SPE DMA stack empty");
    CS_ENSURE(ppe_to_spe_dma_slots >= 1, "platform: PPE->SPE DMA stack empty");
  }
  CS_ENSURE(chip_count >= 1, "platform: zero chips");
  if (chip_count > 1) {
    CS_ENSURE(cross_chip_bandwidth > 0.0,
              "platform: cross-chip bandwidth <= 0");
    CS_ENSURE(ppe_count >= chip_count,
              "platform: fewer PPEs than chips (each chip needs its PPE)");
  }
}

namespace platforms {

CellPlatform playstation3() {
  CellPlatform p;
  p.ppe_count = 1;
  p.spe_count = 6;
  return p;
}

CellPlatform qs22_single_cell() {
  CellPlatform p;
  p.ppe_count = 1;
  p.spe_count = 8;
  return p;
}

CellPlatform qs22_dual_cell() {
  CellPlatform p;
  p.ppe_count = 2;
  p.spe_count = 16;
  p.chip_count = 2;
  return p;
}

CellPlatform qs22_with_spes(std::size_t spe_count) {
  CS_ENSURE(spe_count <= 8, "qs22_with_spes: a QS22 Cell has at most 8 SPEs");
  CellPlatform p = qs22_single_cell();
  p.spe_count = spe_count;
  return p;
}

}  // namespace platforms
}  // namespace cellstream
