#pragma once
// Model of the STI Cell Broadband Engine used throughout cellstream.
//
// The platform is the "theoretical view" of the paper's Fig. 1(b): a set of
// processing elements (PEs), each with a dedicated bidirectional
// communication interface of bandwidth `bw` in each direction, connected by
// the Element Interconnect Bus which is assumed contention-free (its
// aggregate bandwidth equals the sum of all interface bandwidths).
//
// PEs are indexed 0..n-1 with the paper's convention: indices
// [0, ppe_count) are PPEs, [ppe_count, n) are SPEs.  Compute costs follow
// the unrelated-machine model: a task has independent wPPE and wSPE values.

#include <cstddef>
#include <cstdint>
#include <string>

#include "support/error.hpp"

namespace cellstream {

/// Kind of processing element.
enum class PeKind : std::uint8_t {
  kPpe,  ///< Power Processing Element: transparent main-memory access.
  kSpe,  ///< Synergistic Processing Element: 256 kB local store, DMA only.
};

/// Index of a processing element on a platform (0-based, PPEs first).
using PeId = std::size_t;

/// Parameters of a Cell-like platform.  All defaults follow the paper
/// (Section 2.1).  Bandwidths are in bytes/second, sizes in bytes, compute
/// costs in seconds.
struct CellPlatform {
  std::size_t ppe_count = 1;  ///< nP: number of PPE cores.
  std::size_t spe_count = 8;  ///< nS: number of SPE cores.

  /// Per-interface bandwidth in each direction (bw = 25 GB/s).
  double interface_bandwidth = 25.0e9;
  /// Aggregate EIB bandwidth (BW = 200 GB/s); informational only — the
  /// model assumes the ring never constrains (Section 2.1).
  double eib_bandwidth = 200.0e9;

  /// SPE local-store size (LS = 256 kB).
  std::size_t local_store_bytes = 256 * 1024;
  /// Bytes of the replicated application code resident in each local
  /// store; buffers must fit in local_store_bytes - code_bytes.
  std::size_t code_bytes = 64 * 1024;

  /// Max simultaneous DMA calls a SPE may issue (its own 16-deep stack).
  std::size_t spe_dma_slots = 16;
  /// Max simultaneous DMA calls PPEs may have outstanding toward one SPE
  /// (the separate 8-deep proxy stack).
  std::size_t ppe_to_spe_dma_slots = 8;

  /// Number of Cell chips this platform spans (a dual-Cell QS22 has 2).
  /// PPEs and SPEs are distributed across chips in contiguous blocks.
  /// With more than one chip, transfers between PEs on different chips
  /// additionally share the inter-chip link (the QS22's BIF) in each
  /// direction — the paper's Section 7 extension.
  std::size_t chip_count = 1;
  /// Inter-chip link bandwidth per direction (QS22 BIF: ~20 GB/s).
  double cross_chip_bandwidth = 20.0e9;

  /// Total number of processing elements n = nP + nS.
  std::size_t pe_count() const { return ppe_count + spe_count; }

  /// Kind of PE `pe` (PPEs occupy the low indices).
  PeKind kind(PeId pe) const {
    CS_ENSURE(pe < pe_count(), "kind: PE index out of range");
    return pe < ppe_count ? PeKind::kPpe : PeKind::kSpe;
  }

  bool is_ppe(PeId pe) const { return kind(pe) == PeKind::kPpe; }
  bool is_spe(PeId pe) const { return kind(pe) == PeKind::kSpe; }

  /// Local-store bytes available for stream buffers on each SPE.
  std::size_t buffer_budget() const {
    CS_ENSURE(code_bytes <= local_store_bytes,
              "buffer_budget: code does not fit in the local store");
    return local_store_bytes - code_bytes;
  }

  /// Chip hosting PE `pe` (block distribution of PPEs and SPEs).
  std::size_t chip_of(PeId pe) const;

  /// True if a transfer between the two PEs crosses the inter-chip link.
  bool crosses_chips(PeId a, PeId b) const {
    return chip_of(a) != chip_of(b);
  }

  /// Human-readable PE name ("PPE0", "SPE3", ...).
  std::string pe_name(PeId pe) const;

  /// Validate all parameters; throws Error on nonsense values.
  void validate() const;
};

/// Platform presets used in the paper's evaluation.
namespace platforms {

/// Sony PlayStation 3: one Cell with only 6 usable SPEs and one PPE.
CellPlatform playstation3();

/// IBM QS22 restricted to a single Cell processor (1 PPE + 8 SPEs) — the
/// configuration of all experiments in the paper.
CellPlatform qs22_single_cell();

/// IBM QS22 with both Cell processors (2 PPEs + 16 SPEs).  The paper lists
/// this as future work; we expose it for the extension benches.
CellPlatform qs22_dual_cell();

/// qs22_single_cell with the SPE count overridden (0..8) — the x-axis of
/// the paper's Fig. 7.
CellPlatform qs22_with_spes(std::size_t spe_count);

}  // namespace platforms

}  // namespace cellstream
