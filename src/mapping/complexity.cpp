#include "mapping/complexity.hpp"

#include "core/steady_state.hpp"

namespace cellstream::mapping {

TaskGraph reduce_to_cell_mapping(const TwoMachineInstance& instance) {
  CS_ENSURE(!instance.lengths.empty(), "reduction: empty instance");
  CS_ENSURE(instance.bound > 0.0, "reduction: non-positive bound");
  TaskGraph graph("theorem1_reduction");
  for (std::size_t k = 0; k < instance.lengths.size(); ++k) {
    Task t;
    t.name = "T" + std::to_string(k + 1);
    t.wppe = instance.lengths[k][0];
    t.wspe = instance.lengths[k][1];
    graph.add_task(t);
  }
  // A simple chain with neglected communication: data_{k,k+1} = 0.
  for (std::size_t k = 0; k + 1 < instance.lengths.size(); ++k) {
    graph.add_edge(k, k + 1, 0.0);
  }
  graph.validate();
  return graph;
}

CellPlatform reduction_platform() {
  CellPlatform p;
  p.ppe_count = 1;
  p.spe_count = 1;
  // The proof ignores memory and DMA constraints; make them vacuous so the
  // equivalence is exact (Section 3.2 drops them explicitly).
  p.local_store_bytes = static_cast<std::size_t>(1) << 40;
  p.code_bytes = 0;
  p.spe_dma_slots = static_cast<std::size_t>(-1) / 2;
  p.ppe_to_spe_dma_slots = static_cast<std::size_t>(-1) / 2;
  return p;
}

bool two_machine_schedulable(const TwoMachineInstance& instance) {
  const std::size_t n = instance.lengths.size();
  CS_ENSURE(n <= 24, "two_machine_schedulable: instance too large");
  for (std::size_t mask = 0; mask < (static_cast<std::size_t>(1) << n);
       ++mask) {
    double load0 = 0.0, load1 = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (mask & (static_cast<std::size_t>(1) << k)) {
        load1 += instance.lengths[k][1];
      } else {
        load0 += instance.lengths[k][0];
      }
    }
    if (load0 <= instance.bound + 1e-12 && load1 <= instance.bound + 1e-12) {
      return true;
    }
  }
  return false;
}

bool cell_mapping_reaches_bound(const TwoMachineInstance& instance) {
  const TaskGraph graph = reduce_to_cell_mapping(instance);
  const CellPlatform platform = reduction_platform();
  const SteadyStateAnalysis analysis(graph, platform);
  const std::size_t n = graph.task_count();
  CS_ENSURE(n <= 24, "cell_mapping_reaches_bound: instance too large");
  for (std::size_t mask = 0; mask < (static_cast<std::size_t>(1) << n);
       ++mask) {
    Mapping mapping(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
      if (mask & (static_cast<std::size_t>(1) << k)) mapping.assign(k, 1);
    }
    if (!analysis.feasible(mapping)) continue;
    // Throughput >= 1/B  <=>  period <= B.
    if (analysis.period(mapping) <= instance.bound + 1e-12) return true;
  }
  return false;
}

}  // namespace cellstream::mapping
