#pragma once
// Reference mapping heuristics (paper Section 6.3) plus simple baselines.
//
// Both paper heuristics walk the tasks in topological order and never
// revisit a decision.  Memory feasibility (task buffers fitting in the
// SPE local store) is the admission criterion; the PPE is the fallback
// host since its main memory is unconstrained.

#include <string>

#include "core/steady_state.hpp"

namespace cellstream::mapping {

/// GREEDYMEM: among the SPEs with enough free local store for the task's
/// buffers, pick the one with the least loaded memory; fall back to PPE0.
Mapping greedy_mem(const SteadyStateAnalysis& analysis);

/// GREEDYCPU: among all PEs (SPEs with enough free memory, plus the PPE),
/// pick the one with the smallest accumulated computation load.
Mapping greedy_cpu(const SteadyStateAnalysis& analysis);

/// Everything on PPE0 — the paper's speed-up baseline.
Mapping ppe_only(const SteadyStateAnalysis& analysis);

/// Round-robin over all PEs in topological order, skipping SPEs whose
/// local store cannot take the task.  A deliberately naive extra baseline
/// for the ablation benches.
Mapping round_robin(const SteadyStateAnalysis& analysis);

/// Communication-aware greedy (our extension, the paper's future-work
/// "involved heuristic"): like GREEDYCPU but evaluates the candidate PE by
/// the resulting steady-state period (compute + interface occupation),
/// keeping memory feasibility as a hard filter.
Mapping greedy_period(const SteadyStateAnalysis& analysis);

/// Dispatch by name ("greedy-mem", "greedy-cpu", "ppe-only",
/// "round-robin", "greedy-period"); throws on unknown names.
Mapping run_heuristic(const std::string& name,
                      const SteadyStateAnalysis& analysis);

}  // namespace cellstream::mapping
