#pragma once
// Exhaustive optimal mapper for tiny instances.
//
// Enumerates all assignments (with symmetry reduction over identical idle
// SPEs of the same chip) and returns the feasible mapping with the
// smallest steady-state period.  Exponential — intended for
// cross-validating the MILP mapper in tests and for very small production
// graphs.

#include <optional>

#include "core/steady_state.hpp"

namespace cellstream::mapping {

struct ExhaustiveResult {
  Mapping mapping;
  double period;
};

/// Search every mapping; returns nullopt only if no feasible mapping
/// exists (impossible on platforms with a PPE).  Throws if the search
/// space (after symmetry reduction) exceeds `max_states`.
std::optional<ExhaustiveResult> exhaustive_optimal_mapping(
    const SteadyStateAnalysis& analysis, std::size_t max_states = 50'000'000);

}  // namespace cellstream::mapping
