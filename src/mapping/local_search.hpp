#pragma once
// Local-search improvement of a mapping (our implementation of the paper's
// future-work item: "design involved mapping heuristics which approach the
// optimal throughput").
//
// Hill climbing over two neighbourhoods — move one task to another PE, and
// swap the PEs of two tasks — accepting only feasibility-preserving steps
// that strictly shorten the steady-state period.  Also used inside the
// MILP mapper to turn LP roundings into strong incumbents.

#include "core/steady_state.hpp"

namespace cellstream::mapping {

struct LocalSearchOptions {
  std::size_t max_passes = 8;  ///< Full sweeps over the neighbourhoods.
  bool use_swaps = true;       ///< Enable the (more expensive) swap moves.
};

/// Improve `mapping` in place; returns the resulting period.  The input
/// must be feasible; the output stays feasible.
double improve_mapping(const SteadyStateAnalysis& analysis, Mapping& mapping,
                       const LocalSearchOptions& options = {});

/// Convenience: greedy-cpu start + local search.
Mapping local_search_heuristic(const SteadyStateAnalysis& analysis,
                               const LocalSearchOptions& options = {});

}  // namespace cellstream::mapping
