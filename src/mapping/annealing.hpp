#pragma once
// Simulated-annealing mapper (our second "involved heuristic", paper
// Section 7 future work).
//
// Random single-task reassignments, accepted when they shorten the
// steady-state period or with Boltzmann probability exp(-delta/T)
// otherwise; the temperature follows a geometric cooling schedule scaled
// to the starting period.  Infeasible neighbours are always rejected, so
// every intermediate state is a valid mapping and the best state seen is
// returned.  Deterministic for a fixed seed.

#include <cstdint>

#include "core/steady_state.hpp"

namespace cellstream::mapping {

struct AnnealingOptions {
  std::size_t iterations = 20000;
  /// Initial temperature as a fraction of the starting period (controls
  /// how bad an uphill move can be and still get accepted early).
  double start_temperature = 0.2;
  /// Final temperature fraction (effectively greedy by the end).
  double end_temperature = 1e-4;
  std::uint64_t seed = 1;
};

/// Anneal from `start` (must be feasible); returns the best mapping seen.
Mapping anneal_mapping(const SteadyStateAnalysis& analysis,
                       const Mapping& start,
                       const AnnealingOptions& options = {});

/// Convenience: greedy-cpu (or PPE-only) start + annealing.
Mapping annealing_heuristic(const SteadyStateAnalysis& analysis,
                            const AnnealingOptions& options = {});

}  // namespace cellstream::mapping
