#include "mapping/milp_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "mapping/heuristics.hpp"
#include "mapping/local_search.hpp"

namespace cellstream::mapping {

Formulation build_formulation(const SteadyStateAnalysis& analysis) {
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  const std::size_t n = platform.pe_count();
  const std::size_t K = graph.task_count();
  const double bw = platform.interface_bandwidth;
  const double budget = static_cast<double>(platform.buffer_budget());

  Formulation f;
  lp::Problem& p = f.problem;

  // Objective: minimize the period T.
  f.period_var = p.add_variable(0.0, lp::kInfinity, 1.0, "T");

  // (1a) alpha and beta domains.
  f.alpha.assign(K, {});
  for (TaskId k = 0; k < K; ++k) {
    f.alpha[k].reserve(n);
    for (PeId i = 0; i < n; ++i) {
      f.alpha[k].push_back(p.add_variable(
          0.0, 1.0, 0.0, "a_" + std::to_string(k) + "_" + std::to_string(i)));
    }
  }
  f.beta.assign(graph.edge_count(), {});
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    f.beta[e].reserve(n * n);
    for (PeId i = 0; i < n; ++i) {
      for (PeId j = 0; j < n; ++j) {
        f.beta[e].push_back(p.add_variable(
            0.0, 1.0, 0.0,
            "b_" + std::to_string(e) + "_" + std::to_string(i) + "_" +
                std::to_string(j)));
      }
    }
  }

  // (1b) every task on exactly one PE.
  for (TaskId k = 0; k < K; ++k) {
    std::vector<lp::Coefficient> row;
    for (PeId i = 0; i < n; ++i) row.push_back({f.alpha[k][i], 1.0});
    p.add_row(1.0, 1.0, row, "assign_" + std::to_string(k));
  }

  // (1c) the PE computing T_l receives each D_{k,l}:
  //      sum_i beta[e][i][j] >= alpha[l][j].
  // (1d) only the PE computing T_k may send D_{k,l}:
  //      sum_j beta[e][i][j] <= alpha[k][i].
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    for (PeId j = 0; j < n; ++j) {
      std::vector<lp::Coefficient> row;
      for (PeId i = 0; i < n; ++i) row.push_back({f.beta[e][i * n + j], 1.0});
      row.push_back({f.alpha[edge.to][j], -1.0});
      p.add_row(0.0, lp::kInfinity, row,
                "recv_" + std::to_string(e) + "_" + std::to_string(j));
    }
    for (PeId i = 0; i < n; ++i) {
      std::vector<lp::Coefficient> row;
      for (PeId j = 0; j < n; ++j) row.push_back({f.beta[e][i * n + j], 1.0});
      row.push_back({f.alpha[edge.from][i], -1.0});
      p.add_row(-lp::kInfinity, 0.0, row,
                "send_" + std::to_string(e) + "_" + std::to_string(i));
    }
  }

  // (1e)/(1f) compute occupation below T on every PE.
  for (PeId i = 0; i < n; ++i) {
    std::vector<lp::Coefficient> row;
    for (TaskId k = 0; k < K; ++k) {
      const Task& task = graph.task(k);
      const double w = platform.is_ppe(i) ? task.wppe : task.wspe;
      if (w != 0.0) row.push_back({f.alpha[k][i], w});
    }
    row.push_back({f.period_var, -1.0});
    p.add_row(-lp::kInfinity, 0.0, row, "compute_" + std::to_string(i));
  }

  // (1g)/(1h) interface occupation below T (rows scaled by 1/bw so every
  // coefficient is in seconds).
  for (PeId i = 0; i < n; ++i) {
    std::vector<lp::Coefficient> in_row, out_row;
    for (TaskId k = 0; k < K; ++k) {
      const Task& task = graph.task(k);
      if (task.read_bytes != 0.0) {
        in_row.push_back({f.alpha[k][i], task.read_bytes / bw});
      }
      if (task.write_bytes != 0.0) {
        out_row.push_back({f.alpha[k][i], task.write_bytes / bw});
      }
    }
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      const double secs = graph.edge(e).data_bytes / bw;
      if (secs == 0.0) continue;
      for (PeId other = 0; other < n; ++other) {
        if (other == i) continue;
        in_row.push_back({f.beta[e][other * n + i], secs});
        out_row.push_back({f.beta[e][i * n + other], secs});
      }
    }
    in_row.push_back({f.period_var, -1.0});
    out_row.push_back({f.period_var, -1.0});
    p.add_row(-lp::kInfinity, 0.0, in_row, "bw_in_" + std::to_string(i));
    p.add_row(-lp::kInfinity, 0.0, out_row, "bw_out_" + std::to_string(i));
  }

  // Section 7 extension: on multi-chip platforms the inter-chip link is a
  // shared resource in each direction (rows analogous to (1g)/(1h)).
  if (platform.chip_count > 1) {
    for (std::size_t chip = 0; chip < platform.chip_count; ++chip) {
      std::vector<lp::Coefficient> out_row, in_row;
      for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const double secs =
            graph.edge(e).data_bytes / platform.cross_chip_bandwidth;
        if (secs == 0.0) continue;
        for (PeId i = 0; i < n; ++i) {
          for (PeId j = 0; j < n; ++j) {
            if (!platform.crosses_chips(i, j)) continue;
            if (platform.chip_of(i) == chip) {
              out_row.push_back({f.beta[e][i * n + j], secs});
            }
            if (platform.chip_of(j) == chip) {
              in_row.push_back({f.beta[e][i * n + j], secs});
            }
          }
        }
      }
      if (out_row.empty() && in_row.empty()) continue;
      out_row.push_back({f.period_var, -1.0});
      in_row.push_back({f.period_var, -1.0});
      p.add_row(-lp::kInfinity, 0.0, out_row,
                "xchip_out_" + std::to_string(chip));
      p.add_row(-lp::kInfinity, 0.0, in_row,
                "xchip_in_" + std::to_string(chip));
    }
  }

  // (1i) buffers of tasks on a SPE fit in its local store (scaled to 1).
  // Under the shared-buffer policy (the Section 4.2 optimization), an edge
  // whose endpoints are co-located on the SPE needs its buffer only once:
  // the relief is linear in beta[e][i][i], which equals 1 exactly when
  // both endpoints sit on PE i.
  const bool shared =
      analysis.buffer_policy() == BufferPolicy::kSharedColocated;
  for (PeId i = platform.ppe_count; i < n; ++i) {
    std::vector<lp::Coefficient> row;
    for (TaskId k = 0; k < K; ++k) {
      const double buf = analysis.task_buffer_bytes(k);
      if (buf != 0.0) row.push_back({f.alpha[k][i], buf / budget});
    }
    if (shared) {
      for (EdgeId e = 0; e < graph.edge_count(); ++e) {
        const double relief = analysis.buffer_bytes(e) / budget;
        if (relief != 0.0) {
          row.push_back({f.beta[e][i * n + i], -relief});
        }
      }
    }
    if (row.empty()) continue;
    p.add_row(-lp::kInfinity, 1.0, row, "mem_" + std::to_string(i));
  }

  // Strengthening of (1i), both implied by it for integral alpha but much
  // tighter in the LP relaxation (they close most of the branch-and-bound
  // gap on memory-tight instances):
  //  * a task whose buffers exceed the local store can never sit on a SPE;
  //  * two tasks whose buffers jointly exceed it cannot share one.
  for (TaskId k = 0; k < K; ++k) {
    double min_need = analysis.task_buffer_bytes(k);
    if (shared) {
      // Best case: every incident edge is co-located and shared (its
      // partner task contributes the other copy).
      for (EdgeId e : graph.in_edges(k)) {
        min_need -= analysis.buffer_bytes(e) / 2.0;
      }
      for (EdgeId e : graph.out_edges(k)) {
        min_need -= analysis.buffer_bytes(e) / 2.0;
      }
    }
    if (min_need > budget) {
      for (PeId i = platform.ppe_count; i < n; ++i) {
        p.set_variable_bounds(f.alpha[k][i], 0.0, 0.0);
      }
    }
  }
  std::size_t conflict_rows = 0;
  const std::size_t kMaxConflictPairs = shared ? 0 : 400;
  for (TaskId k = 0; k < K && conflict_rows < kMaxConflictPairs; ++k) {
    const double buf_k = analysis.task_buffer_bytes(k);
    if (buf_k == 0.0 || buf_k > budget) continue;
    for (TaskId l = k + 1; l < K && conflict_rows < kMaxConflictPairs; ++l) {
      const double buf_l = analysis.task_buffer_bytes(l);
      if (buf_l == 0.0 || buf_l > budget) continue;
      if (buf_k + buf_l <= budget) continue;
      ++conflict_rows;
      for (PeId i = platform.ppe_count; i < n; ++i) {
        p.add_row(-lp::kInfinity, 1.0,
                  {{f.alpha[k][i], 1.0}, {f.alpha[l][i], 1.0}},
                  "conflict_" + std::to_string(k) + "_" + std::to_string(l) +
                      "_" + std::to_string(i));
      }
    }
  }

  // (1j) at most spe_dma_slots distinct incoming transfers per SPE.
  for (PeId j = platform.ppe_count; j < n; ++j) {
    std::vector<lp::Coefficient> row;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      for (PeId i = 0; i < n; ++i) {
        if (i == j) continue;
        row.push_back({f.beta[e][i * n + j], 1.0});
      }
    }
    if (row.empty()) continue;
    p.add_row(-lp::kInfinity, static_cast<double>(platform.spe_dma_slots),
              row, "dma_in_" + std::to_string(j));
  }

  // (1k) at most ppe_to_spe_dma_slots transfers from each SPE to PPEs.
  for (PeId i = platform.ppe_count; i < n; ++i) {
    std::vector<lp::Coefficient> row;
    for (EdgeId e = 0; e < graph.edge_count(); ++e) {
      for (PeId j = 0; j < platform.ppe_count; ++j) {
        row.push_back({f.beta[e][i * n + j], 1.0});
      }
    }
    if (row.empty()) continue;
    p.add_row(-lp::kInfinity,
              static_cast<double>(platform.ppe_to_spe_dma_slots), row,
              "dma_ppe_" + std::to_string(i));
  }

  return f;
}

Mapping extract_mapping(const Formulation& formulation,
                        const std::vector<double>& x) {
  const std::size_t K = formulation.alpha.size();
  Mapping mapping(K, 0);
  for (TaskId k = 0; k < K; ++k) {
    PeId best = 0;
    double best_value = -1.0;
    for (PeId i = 0; i < formulation.alpha[k].size(); ++i) {
      const double value = x[formulation.alpha[k][i]];
      if (value > best_value) {
        best_value = value;
        best = i;
      }
    }
    mapping.assign(k, best);
  }
  return mapping;
}

std::vector<double> encode_mapping(const Formulation& formulation,
                                   const SteadyStateAnalysis& analysis,
                                   const Mapping& mapping) {
  std::vector<double> x(formulation.problem.variable_count(), 0.0);
  const TaskGraph& graph = analysis.graph();
  const std::size_t n = analysis.platform().pe_count();
  for (TaskId k = 0; k < graph.task_count(); ++k) {
    x[formulation.alpha[k][mapping.pe_of(k)]] = 1.0;
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const PeId i = mapping.pe_of(edge.from);
    const PeId j = mapping.pe_of(edge.to);
    x[formulation.beta[e][i * n + j]] = 1.0;
  }
  x[formulation.period_var] = analysis.period(mapping);
  return x;
}

namespace {

/// Make a rounded mapping feasible by evicting tasks from violating SPEs
/// to the PPE.  Terminates: each step strictly shrinks some SPE's task
/// set, and the PPE-only mapping is always feasible.
bool repair_mapping(const SteadyStateAnalysis& analysis, Mapping& mapping) {
  const CellPlatform& platform = analysis.platform();
  for (std::size_t round = 0; round <= mapping.task_count(); ++round) {
    const ResourceUsage u = analysis.usage(mapping);
    const double budget = static_cast<double>(platform.buffer_budget());
    PeId violating = platform.pe_count();
    for (PeId pe = platform.ppe_count; pe < platform.pe_count(); ++pe) {
      if (u.buffer_bytes[pe] > budget ||
          u.incoming_transfers[pe] > platform.spe_dma_slots ||
          u.to_ppe_transfers[pe] > platform.ppe_to_spe_dma_slots) {
        violating = pe;
        break;
      }
    }
    if (violating == platform.pe_count()) return true;  // feasible
    const std::vector<TaskId> tasks = mapping.tasks_on(violating);
    if (tasks.empty()) return false;  // cannot happen; defensive
    TaskId evict = tasks.front();
    double heaviest = -1.0;
    for (TaskId t : tasks) {
      if (analysis.task_buffer_bytes(t) > heaviest) {
        heaviest = analysis.task_buffer_bytes(t);
        evict = t;
      }
    }
    mapping.assign(evict, 0);
  }
  return false;
}

}  // namespace

MilpMapperResult solve_optimal_mapping(const SteadyStateAnalysis& analysis,
                                       const MilpMapperOptions& options) {
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  const std::size_t n = platform.pe_count();

  Formulation formulation = build_formulation(analysis);

  std::vector<lp::VarId> integer_vars;
  for (const auto& row : formulation.alpha) {
    integer_vars.insert(integer_vars.end(), row.begin(), row.end());
  }
  milp::Solver solver(formulation.problem, integer_vars, options.milp);

  for (TaskId k = 0; k < graph.task_count(); ++k) {
    solver.add_exactly_one_group(formulation.alpha[k]);
    // Branch heavy tasks first: their placement moves the bound most.
    const double weight =
        std::max(graph.task(k).wppe, graph.task(k).wspe);
    for (PeId i = 0; i < n; ++i) {
      solver.set_branch_priority(formulation.alpha[k][i], weight);
    }
  }

  if (options.seed_with_heuristics) {
    for (const char* name :
         {"ppe-only", "greedy-mem", "greedy-cpu", "greedy-period"}) {
      Mapping m = run_heuristic(name, analysis);
      if (!analysis.feasible(m)) continue;
      // Polish every seed with local search: strong incumbents let the
      // branch-and-bound prune aggressively from the root.
      const double period = improve_mapping(analysis, m);
      solver.add_initial_incumbent(
          {period, encode_mapping(formulation, analysis, m)});
    }
  }

  for (const Mapping& warm : options.extra_incumbents) {
    CS_ENSURE(warm.task_count() == graph.task_count(),
              "solve_optimal_mapping: extra incumbent does not match graph");
    if (!analysis.feasible(warm)) continue;
    Mapping m = warm;
    const double period = improve_mapping(analysis, m);
    solver.add_initial_incumbent(
        {period, encode_mapping(formulation, analysis, m)});
  }

  if (options.rounding_heuristic) {
    solver.set_rounding_callback(
        [&formulation, &analysis](const std::vector<double>& x)
            -> std::optional<milp::Candidate> {
          Mapping rounded = extract_mapping(formulation, x);
          if (!repair_mapping(analysis, rounded)) return std::nullopt;
          LocalSearchOptions polish;
          polish.max_passes = 2;
          polish.use_swaps = false;  // keep per-node cost low
          const double period = improve_mapping(analysis, rounded, polish);
          return milp::Candidate{
              period, encode_mapping(formulation, analysis, rounded)};
        });
  }

  const milp::Result result = solver.solve();
  CS_ENSURE(result.status == milp::Status::kOptimal ||
                result.status == milp::Status::kLimitFeasible,
            "solve_optimal_mapping: no feasible mapping found (status " +
                std::string(milp::to_string(result.status)) + ")");

  MilpMapperResult out;
  out.mapping = extract_mapping(formulation, result.x);
  out.period = analysis.period(out.mapping);
  out.throughput = 1.0 / out.period;
  out.status = result.status;
  out.gap = result.gap;
  out.best_bound = result.best_bound;
  out.nodes = result.nodes;
  out.lp_iterations = result.lp_iterations;
  out.solve_seconds = result.solve_seconds;
  out.stats = result.stats;
  return out;
}

obs::SolverStats solver_stats(const MilpMapperResult& result) {
  obs::SolverStats out;
  out.present = true;
  out.status = milp::to_string(result.status);
  out.nodes = result.nodes;
  out.rounds = result.stats.rounds;
  out.lp_iterations = result.lp_iterations;
  out.threads = result.stats.threads_used;
  out.objective = result.period;
  out.best_bound = result.best_bound;
  out.gap = result.gap;
  out.solve_seconds = result.solve_seconds;
  out.incumbents.reserve(result.stats.incumbents.size());
  for (const auto& p : result.stats.incumbents)
    out.incumbents.push_back({p.round, p.nodes, p.objective});
  return out;
}

}  // namespace cellstream::mapping
