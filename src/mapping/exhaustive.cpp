#include "mapping/exhaustive.hpp"

#include <algorithm>
#include <vector>

namespace cellstream::mapping {

namespace {

void search(const SteadyStateAnalysis& analysis, Mapping& mapping, TaskId next,
            std::optional<ExhaustiveResult>& best) {
  const TaskGraph& graph = analysis.graph();
  if (next == graph.task_count()) {
    if (!analysis.feasible(mapping)) return;
    const double period = analysis.period(mapping);
    if (!best || period < best->period) best = ExhaustiveResult{mapping, period};
    return;
  }
  const CellPlatform& platform = analysis.platform();
  const std::size_t n = platform.pe_count();
  // Symmetry reduction: SPEs are interchangeable only *within a chip*
  // (cross-chip transfers additionally pay the BIF link, so an SPE's chip
  // is part of the mapping's cost).  Canonical form: task `next` may go on
  // any PPE, any already-used SPE, or the first untouched SPE of each chip.
  const std::size_t first_spe = platform.ppe_count;
  std::vector<bool> used(n, false);
  for (TaskId t = 0; t < next; ++t) used[mapping.pe_of(t)] = true;
  std::vector<bool> chip_has_untouched(platform.chip_count, false);
  for (PeId pe = 0; pe < n; ++pe) {
    if (pe >= first_spe && !used[pe]) {
      std::vector<bool>::reference untouched =
          chip_has_untouched[platform.chip_of(pe)];
      if (untouched) continue;  // symmetric duplicate of the chip's first
      untouched = true;
    }
    mapping.assign(next, pe);
    search(analysis, mapping, next + 1, best);
  }
  mapping.assign(next, 0);
}

}  // namespace

std::optional<ExhaustiveResult> exhaustive_optimal_mapping(
    const SteadyStateAnalysis& analysis, std::size_t max_states) {
  // Upper bound on explored states under the canonical form: task t has at
  // most ppe_count + chip_count + t choices (each earlier task opens at
  // most one SPE), never more than pe_count.
  const CellPlatform& platform = analysis.platform();
  double states = 1.0;
  for (std::size_t t = 0; t < analysis.graph().task_count(); ++t) {
    states *= static_cast<double>(
        std::min(platform.ppe_count + platform.chip_count + t,
                 platform.pe_count()));
  }
  CS_ENSURE(states <= static_cast<double>(max_states),
            "exhaustive_optimal_mapping: search space too large");
  Mapping mapping(analysis.graph().task_count(), 0);
  std::optional<ExhaustiveResult> best;
  search(analysis, mapping, 0, best);
  return best;
}

}  // namespace cellstream::mapping
