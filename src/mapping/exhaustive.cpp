#include "mapping/exhaustive.hpp"

#include <cmath>

namespace cellstream::mapping {

namespace {

void search(const SteadyStateAnalysis& analysis, Mapping& mapping, TaskId next,
            std::optional<ExhaustiveResult>& best) {
  const TaskGraph& graph = analysis.graph();
  if (next == graph.task_count()) {
    if (!analysis.feasible(mapping)) return;
    const double period = analysis.period(mapping);
    if (!best || period < best->period) best = ExhaustiveResult{mapping, period};
    return;
  }
  const std::size_t n = analysis.platform().pe_count();
  // Symmetry reduction: SPEs are identical, so only allow task `next` on
  // the first SPE index not yet used plus all used ones (canonical form).
  const std::size_t first_spe = analysis.platform().ppe_count;
  PeId max_used_spe = first_spe;  // first untouched SPE allowed
  for (TaskId t = 0; t < next; ++t) {
    if (mapping.pe_of(t) >= first_spe) {
      max_used_spe = std::max<PeId>(max_used_spe, mapping.pe_of(t) + 1);
    }
  }
  for (PeId pe = 0; pe < n; ++pe) {
    if (pe >= first_spe && pe > max_used_spe) break;  // symmetric duplicate
    mapping.assign(next, pe);
    search(analysis, mapping, next + 1, best);
  }
  mapping.assign(next, 0);
}

}  // namespace

std::optional<ExhaustiveResult> exhaustive_optimal_mapping(
    const SteadyStateAnalysis& analysis, std::size_t max_states) {
  const double states =
      std::pow(static_cast<double>(analysis.platform().pe_count()),
               static_cast<double>(analysis.graph().task_count()));
  CS_ENSURE(states <= static_cast<double>(max_states),
            "exhaustive_optimal_mapping: search space too large");
  Mapping mapping(analysis.graph().task_count(), 0);
  std::optional<ExhaustiveResult> best;
  search(analysis, mapping, 0, best);
  return best;
}

}  // namespace cellstream::mapping
