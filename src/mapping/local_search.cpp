#include "mapping/local_search.hpp"

#include "mapping/heuristics.hpp"

namespace cellstream::mapping {

namespace {

/// Try every single-task move; apply the first strict improvement found
/// per task (first-improvement keeps a pass linear in K * n).
bool move_pass(const SteadyStateAnalysis& analysis, Mapping& mapping,
               double& period) {
  const std::size_t n = analysis.platform().pe_count();
  bool improved = false;
  for (TaskId t = 0; t < mapping.task_count(); ++t) {
    const PeId original = mapping.pe_of(t);
    PeId best_pe = original;
    double best_period = period;
    for (PeId pe = 0; pe < n; ++pe) {
      if (pe == original) continue;
      mapping.assign(t, pe);
      if (analysis.feasible(mapping)) {
        const double candidate = analysis.period(mapping);
        if (candidate < best_period - 1e-15) {
          best_period = candidate;
          best_pe = pe;
        }
      }
    }
    mapping.assign(t, best_pe);
    if (best_pe != original) {
      period = best_period;
      improved = true;
    }
  }
  return improved;
}

/// Try swapping the hosts of every task pair on distinct PEs.
bool swap_pass(const SteadyStateAnalysis& analysis, Mapping& mapping,
               double& period) {
  bool improved = false;
  for (TaskId a = 0; a < mapping.task_count(); ++a) {
    for (TaskId b = a + 1; b < mapping.task_count(); ++b) {
      const PeId pa = mapping.pe_of(a);
      const PeId pb = mapping.pe_of(b);
      if (pa == pb) continue;
      mapping.assign(a, pb);
      mapping.assign(b, pa);
      if (analysis.feasible(mapping)) {
        const double candidate = analysis.period(mapping);
        if (candidate < period - 1e-15) {
          period = candidate;
          improved = true;
          continue;  // keep the swap
        }
      }
      mapping.assign(a, pa);
      mapping.assign(b, pb);
    }
  }
  return improved;
}

}  // namespace

double improve_mapping(const SteadyStateAnalysis& analysis, Mapping& mapping,
                       const LocalSearchOptions& options) {
  CS_ENSURE(analysis.feasible(mapping),
            "improve_mapping: starting mapping is infeasible");
  double period = analysis.period(mapping);
  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool improved = move_pass(analysis, mapping, period);
    if (options.use_swaps) {
      improved = swap_pass(analysis, mapping, period) || improved;
    }
    if (!improved) break;
  }
  return period;
}

Mapping local_search_heuristic(const SteadyStateAnalysis& analysis,
                               const LocalSearchOptions& options) {
  Mapping mapping = greedy_cpu(analysis);
  if (!analysis.feasible(mapping)) mapping = ppe_only(analysis);
  improve_mapping(analysis, mapping, options);
  return mapping;
}

}  // namespace cellstream::mapping
