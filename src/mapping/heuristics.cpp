#include "mapping/heuristics.hpp"

#include <algorithm>
#include <limits>

namespace cellstream::mapping {

namespace {

/// Incremental per-PE accounting shared by the greedy strategies.
struct GreedyState {
  const SteadyStateAnalysis& ss;
  const CellPlatform& platform;
  std::vector<double> memory_used;   // local-store bytes per PE (SPE only)
  std::vector<double> compute_load;  // seconds per instance per PE

  explicit GreedyState(const SteadyStateAnalysis& analysis)
      : ss(analysis),
        platform(analysis.platform()),
        memory_used(analysis.platform().pe_count(), 0.0),
        compute_load(analysis.platform().pe_count(), 0.0) {}

  double task_cost(TaskId t, PeId pe) const {
    const Task& task = ss.graph().task(t);
    return platform.is_ppe(pe) ? task.wppe : task.wspe;
  }

  bool fits(TaskId t, PeId pe) const {
    if (platform.is_ppe(pe)) return true;  // main memory unconstrained
    return memory_used[pe] + ss.task_buffer_bytes(t) <=
           static_cast<double>(platform.buffer_budget());
  }

  void place(TaskId t, PeId pe, Mapping& mapping) {
    mapping.assign(t, pe);
    compute_load[pe] += task_cost(t, pe);
    if (platform.is_spe(pe)) memory_used[pe] += ss.task_buffer_bytes(t);
  }
};

}  // namespace

Mapping greedy_mem(const SteadyStateAnalysis& analysis) {
  GreedyState state(analysis);
  const TaskGraph& graph = analysis.graph();
  Mapping mapping(graph.task_count(), 0);
  for (TaskId t : graph.topological_order()) {
    PeId best = 0;  // PPE fallback
    double least_memory = std::numeric_limits<double>::infinity();
    for (PeId pe = state.platform.ppe_count; pe < state.platform.pe_count();
         ++pe) {
      if (!state.fits(t, pe)) continue;
      if (state.memory_used[pe] < least_memory) {
        least_memory = state.memory_used[pe];
        best = pe;
      }
    }
    state.place(t, best, mapping);
  }
  return mapping;
}

Mapping greedy_cpu(const SteadyStateAnalysis& analysis) {
  GreedyState state(analysis);
  const TaskGraph& graph = analysis.graph();
  Mapping mapping(graph.task_count(), 0);
  for (TaskId t : graph.topological_order()) {
    PeId best = 0;
    double least_load = std::numeric_limits<double>::infinity();
    for (PeId pe = 0; pe < state.platform.pe_count(); ++pe) {
      if (!state.fits(t, pe)) continue;
      if (state.compute_load[pe] < least_load) {
        least_load = state.compute_load[pe];
        best = pe;
      }
    }
    state.place(t, best, mapping);
  }
  return mapping;
}

Mapping ppe_only(const SteadyStateAnalysis& analysis) {
  return ppe_only_mapping(analysis.graph());
}

Mapping round_robin(const SteadyStateAnalysis& analysis) {
  GreedyState state(analysis);
  const TaskGraph& graph = analysis.graph();
  Mapping mapping(graph.task_count(), 0);
  PeId next = 0;
  for (TaskId t : graph.topological_order()) {
    const std::size_t n = state.platform.pe_count();
    PeId chosen = 0;  // PPE fallback always fits
    for (std::size_t probe = 0; probe < n; ++probe) {
      const PeId pe = (next + probe) % n;
      if (state.fits(t, pe)) {
        chosen = pe;
        next = (pe + 1) % n;
        break;
      }
    }
    state.place(t, chosen, mapping);
  }
  return mapping;
}

Mapping greedy_period(const SteadyStateAnalysis& analysis) {
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  GreedyState state(analysis);
  Mapping mapping(graph.task_count(), 0);
  for (TaskId t : graph.topological_order()) {
    PeId best = 0;
    double best_period = std::numeric_limits<double>::infinity();
    for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
      if (!state.fits(t, pe)) continue;
      mapping.assign(t, pe);
      // Evaluate the partial mapping: tasks not yet placed sit on PPE0,
      // which biases toward spreading early, exactly what we want from a
      // constructive heuristic.
      const double period = analysis.period(mapping);
      if (period < best_period) {
        best_period = period;
        best = pe;
      }
    }
    state.place(t, best, mapping);
  }
  return mapping;
}

Mapping run_heuristic(const std::string& name,
                      const SteadyStateAnalysis& analysis) {
  if (name == "greedy-mem") return greedy_mem(analysis);
  if (name == "greedy-cpu") return greedy_cpu(analysis);
  if (name == "ppe-only") return ppe_only(analysis);
  if (name == "round-robin") return round_robin(analysis);
  if (name == "greedy-period") return greedy_period(analysis);
  throw Error("run_heuristic: unknown heuristic '" + name + "'");
}

}  // namespace cellstream::mapping
