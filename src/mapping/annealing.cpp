#include "mapping/annealing.hpp"

#include <cmath>

#include "mapping/heuristics.hpp"
#include "support/rng.hpp"

namespace cellstream::mapping {

Mapping anneal_mapping(const SteadyStateAnalysis& analysis,
                       const Mapping& start,
                       const AnnealingOptions& options) {
  CS_ENSURE(analysis.feasible(start), "anneal_mapping: infeasible start");
  CS_ENSURE(options.iterations >= 1, "anneal_mapping: zero iterations");
  CS_ENSURE(options.start_temperature > 0.0 &&
                options.end_temperature > 0.0 &&
                options.end_temperature <= options.start_temperature,
            "anneal_mapping: bad temperature schedule");

  const std::size_t n = analysis.platform().pe_count();
  const std::size_t tasks = start.task_count();
  if (n <= 1 || tasks == 0) return start;

  Rng rng(options.seed);
  Mapping current = start;
  double current_period = analysis.period(current);
  Mapping best = current;
  double best_period = current_period;

  const double t0 = options.start_temperature * current_period;
  const double t1 = options.end_temperature * current_period;
  const double cooling =
      std::pow(t1 / t0, 1.0 / static_cast<double>(options.iterations));

  double temperature = t0;
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    temperature *= cooling;
    const TaskId task = static_cast<TaskId>(
        rng.uniform_int(0, static_cast<std::int64_t>(tasks) - 1));
    const PeId old_pe = current.pe_of(task);
    const PeId new_pe = static_cast<PeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    if (new_pe == old_pe) continue;

    current.assign(task, new_pe);
    if (!analysis.feasible(current)) {
      current.assign(task, old_pe);
      continue;
    }
    const double candidate_period = analysis.period(current);
    const double delta = candidate_period - current_period;
    const bool accept =
        delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
    if (!accept) {
      current.assign(task, old_pe);
      continue;
    }
    current_period = candidate_period;
    if (current_period < best_period) {
      best_period = current_period;
      best = current;
    }
  }
  return best;
}

Mapping annealing_heuristic(const SteadyStateAnalysis& analysis,
                            const AnnealingOptions& options) {
  Mapping start = greedy_cpu(analysis);
  if (!analysis.feasible(start)) start = ppe_only(analysis);
  return anneal_mapping(analysis, start, options);
}

}  // namespace cellstream::mapping
