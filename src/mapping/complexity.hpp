#pragma once
// The paper's NP-completeness reduction (Section 3.2, Theorem 1),
// executable: Minimum Multiprocessor Scheduling on two machines reduces to
// Cell-Mapping on a 1 PPE + 1 SPE platform.
//
// An instance of the scheduling problem is a set of tasks with a length
// l(k, m) on each machine m in {0, 1} and a bound B; the question is
// whether an assignment exists with per-machine total length <= B.  The
// reduction builds a chain streaming application with wPPE = l(k, 0),
// wSPE = l(k, 1) and zero-size data, so a mapping with throughput >= 1/B
// exists iff the scheduling instance is a yes-instance.
//
// This module exists to make the theory section testable: the tests
// enumerate small instances on both sides and verify the equivalence.

#include <array>
#include <vector>

#include "core/task_graph.hpp"
#include "platform/cell.hpp"

namespace cellstream::mapping {

/// Minimum Multiprocessor Scheduling instance on two machines.
struct TwoMachineInstance {
  /// lengths[k][m]: processing time of task k on machine m (m in {0, 1}).
  std::vector<std::array<double, 2>> lengths;
  double bound = 0.0;  ///< B: the makespan to beat.
};

/// The reduction of the paper's Theorem 1: chain graph with unrelated
/// costs and zero-size dependencies.
TaskGraph reduce_to_cell_mapping(const TwoMachineInstance& instance);

/// The matching platform: one PPE (machine 0) and one SPE (machine 1).
CellPlatform reduction_platform();

/// Decide the scheduling instance exactly (exhaustive over 2^n
/// assignments; the reduction's tests only need small n).
bool two_machine_schedulable(const TwoMachineInstance& instance);

/// Decide Cell-Mapping for the reduced instance: does a mapping with
/// throughput >= 1/bound exist?  (Exhaustive over the two machines.)
bool cell_mapping_reaches_bound(const TwoMachineInstance& instance);

}  // namespace cellstream::mapping
