#pragma once
// The paper's optimal mapping via mixed linear programming (Section 5).
//
// Variables:
//   alpha[k][i]  in {0,1} : task T_k runs on PE_i,
//   beta[k,l][i][j] in [0,1] : data D_{k,l} is transferred from PE_i to
//                              PE_j (continuous: once every alpha is
//                              integral, constraints (1c)/(1d) force beta
//                              to the product alpha_i^k * alpha_j^l, so
//                              branching on alpha alone is exact — see
//                              DESIGN.md and the tests),
//   T >= 0 : period length (seconds); the objective minimizes T.
//
// Constraints are the paper's (1b)-(1k), with bandwidth rows divided by bw
// and the local-store row divided by the buffer budget so every
// coefficient is well-scaled (seconds / dimensionless).

#include <vector>

#include "core/steady_state.hpp"
#include "lp/problem.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/recorder.hpp"

namespace cellstream::mapping {

/// The assembled MILP and the variable ids needed to interpret solutions.
struct Formulation {
  lp::Problem problem;
  /// alpha[k][i]: assignment binaries.
  std::vector<std::vector<lp::VarId>> alpha;
  /// beta[e][i * n + j]: routing variables of edge e.
  std::vector<std::vector<lp::VarId>> beta;
  lp::VarId period_var = 0;
};

/// Build the paper's linear program (1) for `analysis`'s graph/platform.
Formulation build_formulation(const SteadyStateAnalysis& analysis);

/// Extract the mapping encoded by the alpha block of a MILP solution.
Mapping extract_mapping(const Formulation& formulation,
                        const std::vector<double>& x);

/// Construct the full variable vector (alpha, beta = products, T = period)
/// corresponding to a concrete mapping; used to inject heuristic solutions
/// as incumbents and in tests.
std::vector<double> encode_mapping(const Formulation& formulation,
                                   const SteadyStateAnalysis& analysis,
                                   const Mapping& mapping);

struct MilpMapperOptions {
  milp::Options milp;  ///< relative_gap defaults to the paper's 5 %.
  /// Seed the search with GreedyMem / GreedyCpu / PPE-only incumbents.
  bool seed_with_heuristics = true;
  /// Attach the LP-rounding incumbent callback.
  bool rounding_heuristic = true;
  /// Additional caller-supplied warm starts, injected as incumbents when
  /// they are feasible (each is local-search-polished first).  Degraded-
  /// mode remapping passes the surviving assignment here so the B&B
  /// starts from the running configuration instead of from scratch.
  std::vector<Mapping> extra_incumbents;

  MilpMapperOptions() {
    milp.relative_gap = 0.05;
    milp.time_limit_seconds = 60.0;
  }

  /// Solve node LPs on `n` worker threads (0 = one per hardware thread).
  /// The resulting mapping, period, bound, and node count are bit-identical
  /// for every thread count — only the wall clock changes.
  MilpMapperOptions& with_threads(std::size_t n) {
    milp.threads = n;
    return *this;
  }
};

struct MilpMapperResult {
  Mapping mapping;
  double period = 0.0;      ///< Steady-state period of `mapping` (analysis).
  double throughput = 0.0;  ///< 1 / period.
  milp::Status status = milp::Status::kLimitNoSolution;
  double gap = 0.0;         ///< Proven optimality gap.
  double best_bound = 0.0;  ///< Lower bound on any mapping's period.
  std::size_t nodes = 0;
  std::size_t lp_iterations = 0;
  double solve_seconds = 0.0;
  /// Solver observability: rounds, warm-start hit rate, prune counts,
  /// callback accept/reject counts, peak open list, threads used.
  milp::SearchStats stats;
};

/// Compute a throughput-optimal (within the configured gap) mapping of the
/// analysis' graph onto its platform.  Throws if no feasible mapping
/// exists within the limits (with >= 1 PPE there is always the PPE-only
/// mapping, so this only happens on pathological limit settings).
MilpMapperResult solve_optimal_mapping(const SteadyStateAnalysis& analysis,
                                       const MilpMapperOptions& options = {});

/// Repackage a mapper result's search statistics for the telemetry layer
/// (obs::Report / `cellstream_cli stats`).  milp itself stays independent
/// of obs; this adapter is the only coupling point.
obs::SolverStats solver_stats(const MilpMapperResult& result);

}  // namespace cellstream::mapping
