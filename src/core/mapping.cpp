#include "core/mapping.hpp"

#include <sstream>

namespace cellstream {

std::vector<TaskId> Mapping::tasks_on(PeId pe) const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < pe_of_.size(); ++t) {
    if (pe_of_[t] == pe) out.push_back(t);
  }
  return out;
}

bool Mapping::is_remote(const TaskGraph& graph, EdgeId edge) const {
  const Edge& e = graph.edge(edge);
  return pe_of(e.from) != pe_of(e.to);
}

void Mapping::validate(const CellPlatform& platform) const {
  for (TaskId t = 0; t < pe_of_.size(); ++t) {
    CS_ENSURE(pe_of_[t] < platform.pe_count(),
              "mapping: task " + std::to_string(t) + " on unknown PE");
  }
}

std::string Mapping::to_string(const CellPlatform& platform) const {
  std::ostringstream os;
  for (TaskId t = 0; t < pe_of_.size(); ++t) {
    if (t != 0) os << ' ';
    os << 'T' << t << "->" << platform.pe_name(pe_of_[t]);
  }
  return os.str();
}

std::string Mapping::to_text() const {
  std::ostringstream os;
  os << "mapping " << pe_of_.size() << "\n";
  for (std::size_t i = 0; i < pe_of_.size(); ++i) {
    os << pe_of_[i] << (i + 1 == pe_of_.size() ? "\n" : " ");
  }
  return os.str();
}

Mapping Mapping::from_text(const std::string& text) {
  std::istringstream is(text);
  std::string keyword;
  std::size_t count = 0;
  is >> keyword >> count;
  CS_ENSURE(!is.fail() && keyword == "mapping",
            "Mapping::from_text: expected 'mapping <count>' header");
  std::vector<PeId> pes(count);
  for (std::size_t i = 0; i < count; ++i) {
    is >> pes[i];
    CS_ENSURE(!is.fail(), "Mapping::from_text: truncated assignment list");
  }
  return Mapping(std::move(pes));
}

Mapping ppe_only_mapping(const TaskGraph& graph) {
  return Mapping(graph.task_count(), /*initial=*/0);
}

}  // namespace cellstream
