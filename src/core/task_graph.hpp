#pragma once
// Streaming-application model (paper Section 2.2).
//
// An application is a directed acyclic graph G_A = (V_A, E_A).  Nodes are
// tasks T_k; every instance of the stream traverses every task.  An edge
// D_{k,l} carries data_{k,l} bytes per instance from T_k to T_l.  A task
// T_k may additionally *peek* at the next peek_k instances of each of its
// inputs before processing instance i (video codecs encode deltas between
// frames), and reads/writes bytes from/to main memory each instance.
//
// Compute costs follow the unrelated-machine model: wppe(T_k) and
// wspe(T_k) are independent (a task can be faster on either core kind).

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cellstream {

using TaskId = std::size_t;
using EdgeId = std::size_t;

/// One node of the application graph.
struct Task {
  std::string name;        ///< Human-readable label ("T7").
  double wppe = 0.0;       ///< Seconds per instance on a PPE.
  double wspe = 0.0;       ///< Seconds per instance on a SPE.
  int peek = 0;            ///< Extra future instances of each input needed.
  double read_bytes = 0.0;   ///< Main-memory bytes read per instance.
  double write_bytes = 0.0;  ///< Main-memory bytes written per instance.
  bool stateful = false;   ///< Carries state across instances (informational;
                           ///< single-PE mappings always respect it).
};

/// One dependency edge D_{k,l} of the application graph.
struct Edge {
  TaskId from = 0;          ///< Producer task T_k.
  TaskId to = 0;            ///< Consumer task T_l.
  double data_bytes = 0.0;  ///< Bytes produced per instance.
};

/// Directed acyclic task graph of a streaming application.
///
/// Tasks and edges are referred to by dense indices (TaskId / EdgeId)
/// assigned in insertion order.  The graph is append-only; structural
/// queries (adjacency, topological order) are recomputed lazily and cached.
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Append a task; returns its id.
  TaskId add_task(Task task);

  /// Append a dependency edge; both endpoints must exist, self-loops and
  /// duplicate (from, to) pairs are rejected.  Returns the edge id.
  EdgeId add_edge(TaskId from, TaskId to, double data_bytes);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Task& task(TaskId id) const {
    CS_ENSURE(id < tasks_.size(), "task: id out of range");
    return tasks_[id];
  }
  Task& task(TaskId id) {
    CS_ENSURE(id < tasks_.size(), "task: id out of range");
    return tasks_[id];
  }
  const Edge& edge(EdgeId id) const {
    CS_ENSURE(id < edges_.size(), "edge: id out of range");
    return edges_[id];
  }

  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge ids leaving / entering a task.
  const std::vector<EdgeId>& out_edges(TaskId id) const;
  const std::vector<EdgeId>& in_edges(TaskId id) const;

  /// Tasks with no predecessors / successors.
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

  /// One topological order of all tasks; throws if the graph has a cycle.
  std::vector<TaskId> topological_order() const;

  /// True iff the graph is acyclic (add_edge does not check, so generators
  /// building from random wiring validate once at the end).
  bool is_acyclic() const;

  /// Throws Error describing the first problem found (cycle, negative
  /// cost, negative data size, ...).  A valid graph has is_acyclic() true
  /// and all numeric attributes non-negative.
  void validate() const;

  /// Longest path length in edges (depth of the DAG); 0 for a single task.
  std::size_t depth() const;

  // -- Aggregate measures -------------------------------------------------

  /// Sum over tasks of wppe / wspe (seconds of work per stream instance).
  double total_wppe() const;
  double total_wspe() const;

  /// Total bytes moved per instance: all edge data plus memory reads and
  /// writes of every task.
  double total_data_bytes() const;

  /// Communication-to-computation ratio (paper Section 6.2): total bytes
  /// transferred per instance divided by total computation work, where
  /// work is measured as SPE-seconds scaled by `ops_per_second` so the
  /// ratio is the paper's elements-per-operation.  With the default scale
  /// of 1, this is bytes per SPE-second.
  double ccr(double ops_per_second = 1.0) const;

  /// Uniformly scale all edge data sizes and memory reads/writes so that
  /// ccr(ops_per_second) == target.  Computation costs are untouched.
  void scale_to_ccr(double target, double ops_per_second = 1.0);

  // -- Serialization ------------------------------------------------------

  /// Plain-text serialization (stable, line-oriented; see task_graph.cpp
  /// for the grammar).  Round-trips exactly.
  std::string to_text() const;
  static TaskGraph from_text(const std::string& text);

  /// Graphviz DOT rendering in the style of the paper's Fig. 5.
  std::string to_dot() const;

 private:
  void invalidate_cache() const;
  void build_adjacency() const;

  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;

  // Lazily built adjacency (mutable cache).
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::vector<EdgeId>> out_edges_;
  mutable std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace cellstream
