#pragma once
// A mapping assigns every task of a streaming application to one processing
// element of a Cell platform (paper Section 3.1).  The mapping alone
// determines the periodic steady-state schedule and hence the throughput.

#include <string>
#include <vector>

#include "core/task_graph.hpp"
#include "platform/cell.hpp"

namespace cellstream {

/// Task -> PE assignment.  Immutable size (one entry per task).
class Mapping {
 public:
  Mapping() = default;

  /// Mapping for `task_count` tasks, all initially on PE `initial`.
  explicit Mapping(std::size_t task_count, PeId initial = 0)
      : pe_of_(task_count, initial) {}

  /// Construct from an explicit assignment vector.
  explicit Mapping(std::vector<PeId> pe_of) : pe_of_(std::move(pe_of)) {}

  std::size_t task_count() const { return pe_of_.size(); }

  PeId pe_of(TaskId task) const {
    CS_ENSURE(task < pe_of_.size(), "pe_of: task out of range");
    return pe_of_[task];
  }

  void assign(TaskId task, PeId pe) {
    CS_ENSURE(task < pe_of_.size(), "assign: task out of range");
    pe_of_[task] = pe;
  }

  /// Tasks assigned to `pe`, in task-id order.
  std::vector<TaskId> tasks_on(PeId pe) const;

  /// True if the producer and consumer of `edge` sit on different PEs, in
  /// which case the edge is an actual data transfer.
  bool is_remote(const TaskGraph& graph, EdgeId edge) const;

  /// All PE indices referenced must be < platform.pe_count().
  void validate(const CellPlatform& platform) const;

  /// "T0->PPE0 T1->SPE2 ..." — for logs and test failure messages.
  std::string to_string(const CellPlatform& platform) const;

  /// Line-oriented serialization ("mapping <K>" then one PE index per
  /// task); round-trips exactly.
  std::string to_text() const;
  static Mapping from_text(const std::string& text);

  bool operator==(const Mapping& other) const = default;

  const std::vector<PeId>& raw() const { return pe_of_; }

 private:
  std::vector<PeId> pe_of_;
};

/// The paper's speed-up baseline: every task on PPE0.
Mapping ppe_only_mapping(const TaskGraph& graph);

}  // namespace cellstream
