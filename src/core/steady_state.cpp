#include "core/steady_state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "support/strings.hpp"

namespace cellstream {

std::vector<std::int64_t> compute_first_periods(const TaskGraph& graph) {
  std::vector<std::int64_t> fp(graph.task_count(), 0);
  for (TaskId t : graph.topological_order()) {
    const auto& in = graph.in_edges(t);
    if (in.empty()) {
      fp[t] = 0;
      continue;
    }
    std::int64_t latest_pred = 0;
    for (EdgeId e : in) {
      latest_pred = std::max(latest_pred, fp[graph.edge(e).from]);
    }
    fp[t] = latest_pred + graph.task(t).peek + 2;
  }
  return fp;
}

SteadyStateAnalysis::SteadyStateAnalysis(TaskGraph graph,
                                         CellPlatform platform,
                                         BufferPolicy buffer_policy)
    : graph_(std::move(graph)),
      platform_(std::move(platform)),
      buffer_policy_(buffer_policy) {
  graph_.validate();
  platform_.validate();
  first_periods_ = compute_first_periods(graph_);

  edge_buffer_depth_.resize(graph_.edge_count());
  edge_buffer_bytes_.resize(graph_.edge_count());
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const Edge& edge = graph_.edge(e);
    const std::int64_t depth =
        first_periods_[edge.to] - first_periods_[edge.from];
    CS_ASSERT(depth >= 2, "buffer depth below 2 contradicts the recurrence");
    edge_buffer_depth_[e] = depth;
    edge_buffer_bytes_[e] = edge.data_bytes * static_cast<double>(depth);
  }

  task_buffer_bytes_.assign(graph_.task_count(), 0.0);
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const Edge& edge = graph_.edge(e);
    // Both endpoints allocate the buffer (paper Section 4.2: buffers are
    // duplicated even for co-located neighbours).
    task_buffer_bytes_[edge.from] += edge_buffer_bytes_[e];
    task_buffer_bytes_[edge.to] += edge_buffer_bytes_[e];
  }
}

ResourceUsage SteadyStateAnalysis::usage(const Mapping& mapping) const {
  CS_ENSURE(mapping.task_count() == graph_.task_count(),
            "usage: mapping size does not match the graph");
  mapping.validate(platform_);

  const std::size_t n = platform_.pe_count();
  ResourceUsage u;
  u.compute_seconds.assign(n, 0.0);
  u.incoming_bytes.assign(n, 0.0);
  u.outgoing_bytes.assign(n, 0.0);
  u.buffer_bytes.assign(n, 0.0);
  u.incoming_transfers.assign(n, 0);
  u.to_ppe_transfers.assign(n, 0);
  u.cross_chip_out_bytes.assign(platform_.chip_count, 0.0);
  u.cross_chip_in_bytes.assign(platform_.chip_count, 0.0);

  for (TaskId t = 0; t < graph_.task_count(); ++t) {
    const Task& task = graph_.task(t);
    const PeId pe = mapping.pe_of(t);
    u.compute_seconds[pe] +=
        platform_.is_ppe(pe) ? task.wppe : task.wspe;
    // Memory traffic crosses the hosting PE's interface (constraints 1g/1h).
    u.incoming_bytes[pe] += task.read_bytes;
    u.outgoing_bytes[pe] += task.write_bytes;
    if (platform_.is_spe(pe)) {
      u.buffer_bytes[pe] += task_buffer_bytes_[t];
    }
  }
  if (buffer_policy_ == BufferPolicy::kSharedColocated) {
    // Co-located neighbours share one buffer: remove the duplicate copy
    // charged above (task_buffer_bytes_ counts it at both endpoints).
    for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
      const Edge& edge = graph_.edge(e);
      const PeId src = mapping.pe_of(edge.from);
      if (src == mapping.pe_of(edge.to) && platform_.is_spe(src)) {
        u.buffer_bytes[src] -= edge_buffer_bytes_[e];
      }
    }
  }

  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    const Edge& edge = graph_.edge(e);
    const PeId src = mapping.pe_of(edge.from);
    const PeId dst = mapping.pe_of(edge.to);
    if (src == dst) continue;  // co-located: no transfer
    u.outgoing_bytes[src] += edge.data_bytes;
    u.incoming_bytes[dst] += edge.data_bytes;
    u.incoming_transfers[dst] += 1;
    if (platform_.is_spe(src) && platform_.is_ppe(dst)) {
      // SPE -> PPE transfers go through the SPE's 8-deep proxy DMA stack.
      u.to_ppe_transfers[src] += 1;
    }
    if (platform_.crosses_chips(src, dst)) {
      u.cross_chip_out_bytes[platform_.chip_of(src)] += edge.data_bytes;
      u.cross_chip_in_bytes[platform_.chip_of(dst)] += edge.data_bytes;
    }
  }

  const double bw = platform_.interface_bandwidth;
  u.period = 0.0;
  for (PeId pe = 0; pe < n; ++pe) {
    struct Candidate {
      double value;
      const char* what;
    };
    const Candidate candidates[] = {
        {u.compute_seconds[pe], "compute"},
        {u.incoming_bytes[pe] / bw, "incoming"},
        {u.outgoing_bytes[pe] / bw, "outgoing"},
    };
    for (const Candidate& c : candidates) {
      if (c.value > u.period) {
        u.period = c.value;
        u.bottleneck = platform_.pe_name(pe) + " " + c.what;
      }
    }
  }
  for (std::size_t chip = 0; chip < platform_.chip_count; ++chip) {
    const double xbw = platform_.cross_chip_bandwidth;
    const double out_time = u.cross_chip_out_bytes[chip] / xbw;
    const double in_time = u.cross_chip_in_bytes[chip] / xbw;
    if (out_time > u.period) {
      u.period = out_time;
      u.bottleneck = "chip" + std::to_string(chip) + " link out";
    }
    if (in_time > u.period) {
      u.period = in_time;
      u.bottleneck = "chip" + std::to_string(chip) + " link in";
    }
  }
  return u;
}

double SteadyStateAnalysis::throughput(const Mapping& mapping) const {
  const double t = period(mapping);
  if (t <= 0.0) return std::numeric_limits<double>::infinity();
  return 1.0 / t;
}

std::vector<std::string> SteadyStateAnalysis::violations(
    const Mapping& mapping) const {
  const ResourceUsage u = usage(mapping);
  std::vector<std::string> out;
  const double budget = static_cast<double>(platform_.buffer_budget());
  for (PeId pe = 0; pe < platform_.pe_count(); ++pe) {
    if (!platform_.is_spe(pe)) continue;
    if (u.buffer_bytes[pe] > budget) {
      std::ostringstream os;
      os << platform_.pe_name(pe) << ": buffers "
         << format_bytes(u.buffer_bytes[pe]) << " exceed local-store budget "
         << format_bytes(budget);
      out.push_back(os.str());
    }
    if (u.incoming_transfers[pe] > platform_.spe_dma_slots) {
      std::ostringstream os;
      os << platform_.pe_name(pe) << ": " << u.incoming_transfers[pe]
         << " incoming transfers exceed " << platform_.spe_dma_slots
         << " DMA slots";
      out.push_back(os.str());
    }
    if (u.to_ppe_transfers[pe] > platform_.ppe_to_spe_dma_slots) {
      std::ostringstream os;
      os << platform_.pe_name(pe) << ": " << u.to_ppe_transfers[pe]
         << " transfers to PPEs exceed " << platform_.ppe_to_spe_dma_slots
         << " proxy DMA slots";
      out.push_back(os.str());
    }
  }
  return out;
}

}  // namespace cellstream
