#pragma once
// Steady-state analysis of a mapped streaming application (paper Sections
// 3.1, 4.2 and the constraint system of Section 5).
//
// Given a task graph, the *first period* of each task — the index of the
// schedule period in which its first instance is processed — is defined by
// the paper's recurrence (Section 4.2):
//
//   firstPeriod(T_k) = 0                                  if T_k has no pred,
//   firstPeriod(T_k) = max_{D_{j,k}} firstPeriod(T_j) + peek_k + 2  otherwise
//
// (+1 period for the predecessor's processing, +1 for communicating the
// result, +peek_k to accumulate the look-ahead instances).  firstPeriod is
// deliberately mapping-independent: the paper forgoes the optimization of
// skipping the communication period for co-located tasks, so buffer sizes
//
//   buff_{k,l} = data_{k,l} * (firstPeriod(T_l) - firstPeriod(T_k))
//
// are constants of the graph, shared by the MILP, the heuristics, the
// feasibility checker and the simulator.
//
// Given additionally a mapping, the steady-state period T is the largest
// per-instance occupation over all resources — PE compute time, and each
// PE interface's incoming and outgoing transfer time (memory reads/writes
// included) — and the throughput is rho = 1/T.

#include <cstdint>
#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/task_graph.hpp"
#include "platform/cell.hpp"

namespace cellstream {

/// How stream buffers of an edge are accounted when both endpoints share a
/// processing element.
enum class BufferPolicy : std::uint8_t {
  /// The paper's implementation (Section 4.2): the buffer is allocated at
  /// both endpoints even when they are co-located.
  kDuplicated,
  /// The optimization the paper leaves as future work: co-located
  /// neighbours share one buffer, so a SPE hosting both endpoints of an
  /// edge charges its local store once instead of twice.
  kSharedColocated,
};

/// Per-resource occupation of one steady-state period, per stream instance.
struct ResourceUsage {
  /// Seconds of computation per instance on each PE.
  std::vector<double> compute_seconds;
  /// Bytes entering each PE's interface per instance (remote edge data in
  /// plus memory reads of the tasks it hosts).
  std::vector<double> incoming_bytes;
  /// Bytes leaving each PE's interface per instance (remote edge data out
  /// plus memory writes).
  std::vector<double> outgoing_bytes;
  /// Stream-buffer bytes resident in each PE's local store (0 for PPEs,
  /// whose main memory is unconstrained).
  std::vector<double> buffer_bytes;
  /// Number of distinct remote data received by each PE per period; limited
  /// to spe_dma_slots on SPEs (constraint 1j).
  std::vector<std::size_t> incoming_transfers;
  /// Number of distinct data each SPE sends to PPEs per period; limited to
  /// ppe_to_spe_dma_slots (constraint 1k).
  std::vector<std::size_t> to_ppe_transfers;
  /// Bytes leaving / entering each chip over the inter-chip link per
  /// instance (empty on single-chip platforms) — the Section 7 extension.
  std::vector<double> cross_chip_out_bytes;
  std::vector<double> cross_chip_in_bytes;

  /// Steady-state period: max over PEs of compute and transfer times.
  double period = 0.0;
  /// The resource that determines the period ("SPE3 compute", ...).
  std::string bottleneck;
};

/// Precomputed steady-state quantities for one (graph, platform) pair.
///
/// Owns copies of the graph and platform (both cheap), so the analysis can
/// outlive its constructor arguments; the mapping varies per query so one
/// analysis serves many candidate mappings (the heuristics and the B&B
/// incumbent checks evaluate thousands).
class SteadyStateAnalysis {
 public:
  SteadyStateAnalysis(TaskGraph graph, CellPlatform platform,
                      BufferPolicy buffer_policy = BufferPolicy::kDuplicated);

  BufferPolicy buffer_policy() const { return buffer_policy_; }

  const TaskGraph& graph() const { return graph_; }
  const CellPlatform& platform() const { return platform_; }

  /// firstPeriod(T_k) for every task (paper Section 4.2).
  const std::vector<std::int64_t>& first_periods() const {
    return first_periods_;
  }

  /// buff_{k,l} in bytes for every edge.
  double buffer_bytes(EdgeId edge) const {
    CS_ENSURE(edge < edge_buffer_bytes_.size(), "buffer_bytes: bad edge");
    return edge_buffer_bytes_[edge];
  }

  /// Number of instances the buffer of `edge` holds:
  /// firstPeriod(to) - firstPeriod(from).
  std::int64_t buffer_depth(EdgeId edge) const {
    CS_ENSURE(edge < edge_buffer_depth_.size(), "buffer_depth: bad edge");
    return edge_buffer_depth_[edge];
  }

  /// Local-store bytes task `t` requires when placed on a SPE: the buffers
  /// of all its incoming and outgoing edges (both allocated even when the
  /// neighbour is co-located — paper Section 4.2).
  double task_buffer_bytes(TaskId t) const {
    CS_ENSURE(t < task_buffer_bytes_.size(), "task_buffer_bytes: bad task");
    return task_buffer_bytes_[t];
  }

  /// Full per-resource accounting for `mapping`.
  ResourceUsage usage(const Mapping& mapping) const;

  /// Steady-state period of `mapping` (max resource occupation); ignores
  /// feasibility of memory/DMA constraints — check those separately.
  double period(const Mapping& mapping) const { return usage(mapping).period; }

  /// Throughput rho = 1/period, in instances per second.
  double throughput(const Mapping& mapping) const;

  /// All hard-constraint violations of `mapping`: SPE local-store
  /// overflow (1i), incoming DMA slots (1j), SPE->PPE DMA slots (1k).
  /// Empty result means the mapping is feasible.
  std::vector<std::string> violations(const Mapping& mapping) const;

  bool feasible(const Mapping& mapping) const {
    return violations(mapping).empty();
  }

 private:
  TaskGraph graph_;
  CellPlatform platform_;
  BufferPolicy buffer_policy_ = BufferPolicy::kDuplicated;
  std::vector<std::int64_t> first_periods_;
  std::vector<std::int64_t> edge_buffer_depth_;
  std::vector<double> edge_buffer_bytes_;
  std::vector<double> task_buffer_bytes_;
};

/// Standalone firstPeriod computation (exposed for tests and the simulator).
std::vector<std::int64_t> compute_first_periods(const TaskGraph& graph);

}  // namespace cellstream
