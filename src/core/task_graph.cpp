#include "core/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>
#include <unordered_set>

#include "support/strings.hpp"

namespace cellstream {

TaskId TaskGraph::add_task(Task task) {
  if (task.name.empty()) task.name = "T" + std::to_string(tasks_.size());
  tasks_.push_back(std::move(task));
  invalidate_cache();
  return tasks_.size() - 1;
}

EdgeId TaskGraph::add_edge(TaskId from, TaskId to, double data_bytes) {
  CS_ENSURE(from < tasks_.size(), "add_edge: unknown source task");
  CS_ENSURE(to < tasks_.size(), "add_edge: unknown target task");
  CS_ENSURE(from != to, "add_edge: self loop");
  CS_ENSURE(data_bytes >= 0.0, "add_edge: negative data size");
  for (const Edge& e : edges_) {
    CS_ENSURE(!(e.from == from && e.to == to), "add_edge: duplicate edge");
  }
  edges_.push_back(Edge{from, to, data_bytes});
  invalidate_cache();
  return edges_.size() - 1;
}

void TaskGraph::invalidate_cache() const { adjacency_valid_ = false; }

void TaskGraph::build_adjacency() const {
  if (adjacency_valid_) return;
  out_edges_.assign(tasks_.size(), {});
  in_edges_.assign(tasks_.size(), {});
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    out_edges_[edges_[id].from].push_back(id);
    in_edges_[edges_[id].to].push_back(id);
  }
  adjacency_valid_ = true;
}

const std::vector<EdgeId>& TaskGraph::out_edges(TaskId id) const {
  CS_ENSURE(id < tasks_.size(), "out_edges: id out of range");
  build_adjacency();
  return out_edges_[id];
}

const std::vector<EdgeId>& TaskGraph::in_edges(TaskId id) const {
  CS_ENSURE(id < tasks_.size(), "in_edges: id out of range");
  build_adjacency();
  return in_edges_[id];
}

std::vector<TaskId> TaskGraph::sources() const {
  build_adjacency();
  std::vector<TaskId> out;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (in_edges_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  build_adjacency();
  std::vector<TaskId> out;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (out_edges_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  build_adjacency();
  std::vector<std::size_t> in_degree(tasks_.size());
  for (TaskId t = 0; t < tasks_.size(); ++t) in_degree[t] = in_edges_[t].size();

  // Kahn's algorithm with a min-heap so the order is deterministic and
  // respects task ids among ready tasks.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (in_degree[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    order.push_back(t);
    for (EdgeId e : out_edges_[t]) {
      if (--in_degree[edges_[e].to] == 0) ready.push(edges_[e].to);
    }
  }
  CS_ENSURE(order.size() == tasks_.size(), "topological_order: graph has a cycle");
  return order;
}

bool TaskGraph::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const Error&) {
    return false;
  }
}

void TaskGraph::validate() const {
  CS_ENSURE(!tasks_.empty(), "validate: empty graph");
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const Task& task = tasks_[t];
    CS_ENSURE(task.wppe >= 0.0, "validate: negative wppe on " + task.name);
    CS_ENSURE(task.wspe >= 0.0, "validate: negative wspe on " + task.name);
    CS_ENSURE(task.peek >= 0, "validate: negative peek on " + task.name);
    CS_ENSURE(task.read_bytes >= 0.0, "validate: negative reads on " + task.name);
    CS_ENSURE(task.write_bytes >= 0.0, "validate: negative writes on " + task.name);
  }
  for (const Edge& e : edges_) {
    CS_ENSURE(e.data_bytes >= 0.0, "validate: negative edge data size");
  }
  CS_ENSURE(is_acyclic(), "validate: graph has a cycle");
}

std::size_t TaskGraph::depth() const {
  const std::vector<TaskId> order = topological_order();
  std::vector<std::size_t> level(tasks_.size(), 0);
  std::size_t max_level = 0;
  for (TaskId t : order) {
    for (EdgeId e : in_edges(t)) {
      level[t] = std::max(level[t], level[edges_[e].from] + 1);
    }
    max_level = std::max(max_level, level[t]);
  }
  return max_level;
}

double TaskGraph::total_wppe() const {
  double sum = 0.0;
  for (const Task& t : tasks_) sum += t.wppe;
  return sum;
}

double TaskGraph::total_wspe() const {
  double sum = 0.0;
  for (const Task& t : tasks_) sum += t.wspe;
  return sum;
}

double TaskGraph::total_data_bytes() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.data_bytes;
  for (const Task& t : tasks_) sum += t.read_bytes + t.write_bytes;
  return sum;
}

double TaskGraph::ccr(double ops_per_second) const {
  CS_ENSURE(ops_per_second > 0.0, "ccr: non-positive operation rate");
  const double work_ops = total_wspe() * ops_per_second;
  CS_ENSURE(work_ops > 0.0, "ccr: graph has no computation");
  return total_data_bytes() / work_ops;
}

void TaskGraph::scale_to_ccr(double target, double ops_per_second) {
  CS_ENSURE(target > 0.0, "scale_to_ccr: non-positive target");
  const double current = ccr(ops_per_second);
  CS_ENSURE(current > 0.0, "scale_to_ccr: graph moves no data");
  const double factor = target / current;
  for (Edge& e : edges_) e.data_bytes *= factor;
  for (Task& t : tasks_) {
    t.read_bytes *= factor;
    t.write_bytes *= factor;
  }
}

// --------------------------------------------------------------------------
// Serialization.
//
// Grammar (line oriented, '#' comments):
//   graph <name>
//   task <name> wppe=<f> wspe=<f> peek=<i> read=<f> write=<f> stateful=<0|1>
//   edge <from-index> <to-index> data=<f>

std::string TaskGraph::to_text() const {
  std::ostringstream os;
  os << "graph " << (name_.empty() ? "unnamed" : name_) << "\n";
  for (const Task& t : tasks_) {
    os << "task " << t.name << " wppe=" << format_number(t.wppe, 17)
       << " wspe=" << format_number(t.wspe, 17) << " peek=" << t.peek
       << " read=" << format_number(t.read_bytes, 17)
       << " write=" << format_number(t.write_bytes, 17)
       << " stateful=" << (t.stateful ? 1 : 0) << "\n";
  }
  for (const Edge& e : edges_) {
    os << "edge " << e.from << " " << e.to
       << " data=" << format_number(e.data_bytes, 17) << "\n";
  }
  return os.str();
}

namespace {

double parse_field(const std::string& token, std::string_view key) {
  CS_ENSURE(starts_with(token, key) && token.size() > key.size() &&
                token[key.size()] == '=',
            "from_text: expected field '" + std::string(key) + "', got '" +
                token + "'");
  return std::stod(token.substr(key.size() + 1));
}

}  // namespace

TaskGraph TaskGraph::from_text(const std::string& text) {
  TaskGraph graph;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::string_view stripped = trim(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    std::istringstream ls{std::string(stripped)};
    std::string kind;
    ls >> kind;
    if (kind == "graph") {
      std::string name;
      ls >> name;
      graph.set_name(name);
    } else if (kind == "task") {
      Task t;
      std::string f1, f2, f3, f4, f5, f6;
      ls >> t.name >> f1 >> f2 >> f3 >> f4 >> f5 >> f6;
      CS_ENSURE(!ls.fail(), "from_text: malformed task line: " + line);
      t.wppe = parse_field(f1, "wppe");
      t.wspe = parse_field(f2, "wspe");
      t.peek = static_cast<int>(parse_field(f3, "peek"));
      t.read_bytes = parse_field(f4, "read");
      t.write_bytes = parse_field(f5, "write");
      t.stateful = parse_field(f6, "stateful") != 0.0;
      graph.add_task(std::move(t));
    } else if (kind == "edge") {
      std::size_t from = 0, to = 0;
      std::string data;
      ls >> from >> to >> data;
      CS_ENSURE(!ls.fail(), "from_text: malformed edge line: " + line);
      graph.add_edge(from, to, parse_field(data, "data"));
    } else {
      throw Error("from_text: unknown record '" + kind + "'");
    }
  }
  graph.validate();
  return graph;
}

std::string TaskGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << (name_.empty() ? "app" : name_) << "\" {\n";
  os << "  node [shape=box];\n";
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    const Task& task = tasks_[t];
    os << "  t" << t << " [label=\"" << task.name
       << "\\nppe=" << format_number(task.wppe, 4)
       << " spe=" << format_number(task.wspe, 4) << "\\npeek=" << task.peek
       << (task.stateful ? " stateful" : " stateless") << "\"];\n";
  }
  for (const Edge& e : edges_) {
    os << "  t" << e.from << " -> t" << e.to << " [label=\""
       << format_bytes(e.data_bytes) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cellstream
