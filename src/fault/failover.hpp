#pragma once
// Simulated drain -> remap -> migrate -> resume protocol for permanent PE
// loss (the simulator-side twin of the host runtime's failover path).
//
// The stream is split at the fail-stop instance k into two complete
// simulated phases.  Phase 1 runs the original mapping for instances
// [0, k): when it completes, every edge has produced == consumed == k, so
// the drain frontier is a consistent firstPeriod cut with empty buffers
// by construction.  The coordinator then remaps the orphaned tasks
// (greedy fast path, or the MILP warm-started from the surviving
// assignment), charges a downtime of the remap overhead plus the buffer
// bytes that must be re-established over the interface, and runs phase 2
// — instances [k, N) on the post-failover mapping, with the instance
// offset threaded through so instance-keyed transient faults stay aligned
// with the global stream position.  The two phases are stitched into one
// whole-stream SimResult for reporting and the I8/I9 oracle.

#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/steady_state.hpp"
#include "fault/fault_plan.hpp"
#include "obs/report.hpp"
#include "sim/simulator.hpp"

namespace cellstream::fault {

struct FailoverOptions {
  /// Base simulator configuration (instances, overheads, trace, ...).
  /// fault_plan and instance_offset are managed by the coordinator.
  sim::SimOptions sim;
  /// Remap strategy: "greedy-mem", "greedy-cpu" (fast failover) or "milp"
  /// (reduced-platform solve warm-started from the surviving assignment).
  std::string strategy = "greedy-mem";
  /// Time budget of the "milp" strategy.
  double milp_time_limit_seconds = 2.0;
  /// Fixed protocol cost per failover (detection, drain barrier, control
  /// traffic), charged to the downtime in simulated seconds.
  double remap_overhead_seconds = 1.0e-3;
};

struct FailoverOutcome {
  Mapping pre_mapping;
  Mapping post_mapping;  ///< == pre_mapping when no failover ran.
  std::int64_t instances = 0;  ///< Stream length the run was asked for.
  bool failover_performed = false;
  double downtime_seconds = 0.0;
  /// Reduced-platform steady-state prediction 1/T of post_mapping (the
  /// failed PE hosts nothing, so the full-platform analysis of the post
  /// mapping IS the reduced-platform prediction) — invariant I9's bound.
  double predicted_post_throughput = 0.0;
  /// Whole-stream view: completion times, counters, trace and fault
  /// counters of both phases stitched together (phase 2 shifted by phase
  /// 1's makespan plus the downtime).
  sim::SimResult result;
  /// The underlying complete per-phase runs (1 entry when no failover,
  /// 2 otherwise) with the mapping each phase executed — the oracle
  /// checks every phase as a self-contained run.
  std::vector<sim::SimResult> phases;
  std::vector<Mapping> phase_mappings;
};

/// Execute `plan` against the mapped stream.  Plans without a permanent
/// failure (or whose failure instance lies outside the stream) degenerate
/// to a single transient-faults-only simulation.  The fail instance is
/// clamped to [1, instances - 1] so both phases are non-empty.  Throws
/// when no PPE survives the failure.
FailoverOutcome run_with_failover(const SteadyStateAnalysis& analysis,
                                  const Mapping& mapping,
                                  const FaultPlan& plan,
                                  const FailoverOptions& options = {});

/// Adapt an executor's fault counters to the schema-neutral summary the
/// observability layer exports (obs::Report::faults, stats schema v2).
/// `predicted_post_throughput` is the reduced-platform prediction when a
/// failover ran (FailoverOutcome::predicted_post_throughput); pass 0 for
/// transient-only runs.
obs::FaultSummary fault_summary(const FaultStats& stats,
                                double predicted_post_throughput = 0.0);

}  // namespace cellstream::fault
