#include "fault/failover.hpp"

#include <algorithm>

#include "fault/milp_remap.hpp"
#include "fault/remap.hpp"
#include "support/error.hpp"

namespace cellstream::fault {

namespace {

/// Combine two complete phase runs into one whole-stream view.  Phase 2
/// is shifted by phase 1's makespan plus the failover downtime; its
/// instance indices are shifted by the drain frontier `k`.
sim::SimResult stitch(const sim::SimResult& a, const sim::SimResult& b,
                      double downtime, std::int64_t k) {
  sim::SimResult s;
  const double offset = a.makespan + downtime;
  s.completion_times = a.completion_times;
  s.completion_times.reserve(a.completion_times.size() +
                             b.completion_times.size());
  for (const double t : b.completion_times) {
    s.completion_times.push_back(t + offset);
  }
  s.makespan = s.completion_times.back();
  const std::size_t n = s.completion_times.size();
  s.overall_throughput = static_cast<double>(n) / s.makespan;
  // Middle-half throughput of the stitched stream.  With a failover in
  // the window this spans the degradation — it reports what the stream
  // actually delivered, not either phase's plateau.
  const std::size_t lo = n / 4;
  const std::size_t hi = (3 * n) / 4;
  if (lo >= 1 && hi > lo &&
      s.completion_times[hi - 1] > s.completion_times[lo - 1]) {
    s.steady_throughput =
        static_cast<double>(hi - lo) /
        (s.completion_times[hi - 1] - s.completion_times[lo - 1]);
  } else {
    s.steady_throughput = s.overall_throughput;
  }

  s.pe_busy_seconds = a.pe_busy_seconds;
  s.pe_overhead_seconds = a.pe_overhead_seconds;
  for (std::size_t pe = 0; pe < s.pe_busy_seconds.size(); ++pe) {
    s.pe_busy_seconds[pe] += b.pe_busy_seconds[pe];
    s.pe_overhead_seconds[pe] += b.pe_overhead_seconds[pe];
  }
  s.dma_transfers = a.dma_transfers + b.dma_transfers;

  s.counters.domain = a.counters.domain;
  s.counters.pe = a.counters.pe;
  for (std::size_t pe = 0; pe < s.counters.pe.size(); ++pe) {
    s.counters.pe[pe].merge(b.counters.pe[pe]);
  }
  s.counters.instance_completion = s.completion_times;
  s.counters.elapsed_seconds = s.makespan;

  s.trace = a.trace;
  s.trace.reserve(a.trace.size() + b.trace.size());
  for (sim::TraceEvent ev : b.trace) {
    ev.start += offset;
    ev.end += offset;
    if (ev.instance >= 0) ev.instance += k;
    s.trace.push_back(std::move(ev));
  }

  s.faults = a.faults;
  s.faults.merge(b.faults);

  s.edge_produced = a.edge_produced;
  s.edge_delivered = a.edge_delivered;
  for (std::size_t e = 0; e < s.edge_produced.size(); ++e) {
    s.edge_produced[e] += b.edge_produced[e];
    s.edge_delivered[e] += b.edge_delivered[e];
  }
  return s;
}

}  // namespace

obs::FaultSummary fault_summary(const FaultStats& stats,
                                double predicted_post_throughput) {
  obs::FaultSummary summary;
  summary.present = true;
  summary.dma_retries = stats.dma_retries;
  summary.backoff_seconds = stats.backoff_seconds;
  summary.hangs = stats.hangs;
  summary.hang_seconds = stats.hang_seconds;
  summary.slowdown_seconds = stats.slowdown_seconds;
  summary.failovers = stats.failovers;
  summary.downtime_seconds = stats.downtime_seconds;
  summary.migrated_tasks = stats.migrated_tasks;
  summary.migrated_bytes = stats.migrated_bytes;
  summary.failed_pe = stats.failed_pe;
  summary.fail_instance = stats.fail_instance;
  summary.predicted_post_throughput = predicted_post_throughput;
  return summary;
}

FailoverOutcome run_with_failover(const SteadyStateAnalysis& analysis,
                                  const Mapping& mapping,
                                  const FaultPlan& plan,
                                  const FailoverOptions& options) {
  const CellPlatform& platform = analysis.platform();
  plan.validate(platform);
  CS_ENSURE(options.sim.instances >= 1, "run_with_failover: empty stream");
  const std::int64_t n = static_cast<std::int64_t>(options.sim.instances);

  // The executors only ever see the transient slice of the plan; the
  // permanent failure is realized here, by splitting the stream.
  FaultPlan transient = plan;
  transient.pe_failure.reset();
  const FaultPlan* transient_ptr = transient.empty() ? nullptr : &transient;

  FailoverOutcome out;
  out.pre_mapping = mapping;
  out.post_mapping = mapping;
  out.instances = n;

  const bool split =
      plan.pe_failure.has_value() && plan.pe_failure->at_instance < n && n >= 2;
  if (!split) {
    sim::SimOptions single = options.sim;
    single.fault_plan = transient_ptr;
    single.instance_offset = 0;
    // Failover scenarios must replay every event (fault windows and the
    // drain frontier are instance-exact); never skip ahead.
    single.fast_forward = false;
    out.result = sim::simulate(analysis, mapping, single);
    out.phases.push_back(out.result);
    out.phase_mappings.push_back(mapping);
    out.predicted_post_throughput = analysis.throughput(mapping);
    return out;
  }

  const std::int64_t k =
      std::clamp<std::int64_t>(plan.pe_failure->at_instance, 1, n - 1);
  const PeId failed = plan.pe_failure->pe;

  // Phase 1: drain to the frontier.  A complete k-instance run ends with
  // every edge at produced == consumed == k — empty buffers, so the
  // migration below only re-establishes buffer *regions*, never data.
  sim::SimOptions phase1 = options.sim;
  phase1.instances = static_cast<std::size_t>(k);
  phase1.fault_plan = transient_ptr;
  phase1.instance_offset = 0;
  phase1.fast_forward = false;  // replay every event around the failure
  sim::SimResult r1 = sim::simulate(analysis, mapping, phase1);

  // Remap on the reduced platform.
  if (options.strategy == "milp") {
    out.post_mapping = milp_remap_after_failure(
        analysis, mapping, failed, options.milp_time_limit_seconds);
  } else {
    out.post_mapping =
        remap_after_failure(analysis, mapping, {failed}, options.strategy);
  }

  // Migrate: every moved task's stream-buffer region crosses the
  // interface once to be re-established at its new host.
  std::int64_t migrated_tasks = 0;
  double migrated_bytes = 0.0;
  for (TaskId t = 0; t < mapping.task_count(); ++t) {
    if (out.post_mapping.pe_of(t) != mapping.pe_of(t)) {
      ++migrated_tasks;
      migrated_bytes += analysis.task_buffer_bytes(t);
    }
  }
  out.failover_performed = true;
  out.downtime_seconds = options.remap_overhead_seconds +
                         migrated_bytes / platform.interface_bandwidth;
  out.predicted_post_throughput = analysis.throughput(out.post_mapping);

  // Phase 2: resume instances [k, n) on the degraded mapping.  The failed
  // PE hosts nothing, so the full-platform simulation IS the reduced
  // platform; the instance offset keys transient faults to the global
  // stream position (replay determinism across the split).
  sim::SimOptions phase2 = options.sim;
  phase2.instances = static_cast<std::size_t>(n - k);
  phase2.fault_plan = transient_ptr;
  phase2.instance_offset = k;
  phase2.fast_forward = false;  // replay every event around the failure
  sim::SimResult r2 = sim::simulate(analysis, out.post_mapping, phase2);

  out.result = stitch(r1, r2, out.downtime_seconds, k);
  out.result.faults.failovers += 1;
  out.result.faults.downtime_seconds += out.downtime_seconds;
  out.result.faults.migrated_tasks += migrated_tasks;
  out.result.faults.migrated_bytes += migrated_bytes;
  out.result.faults.failed_pe = static_cast<std::int64_t>(failed);
  out.result.faults.fail_instance = k;
  out.phases.push_back(std::move(r1));
  out.phases.push_back(std::move(r2));
  out.phase_mappings.push_back(mapping);
  out.phase_mappings.push_back(out.post_mapping);
  return out;
}

}  // namespace cellstream::fault
