#pragma once
// Deterministic fault model for the scheduler/simulator/runtime pipeline.
//
// A FaultPlan is a seeded, serializable description of every fault a run
// will experience: at most one permanent fail-stop of a PE at a given
// stream instance, transient compute slowdown windows, one-shot worker
// hangs, and a transfer-level DMA failure process with bounded retry and
// exponential backoff.  The plan is pure data — the deterministic oracle
// that answers "does THIS transfer fail?" lives in fault/injector.hpp and
// is shared verbatim by sim::Simulator and runtime::Runtime, so a fuzz
// case that fails in one executor replays bit-identically in the other.
//
// Design rule: every draw is keyed by (plan seed, object, instance), never
// by call order or wall clock, so injection is independent of thread
// interleaving and of how many times a hook happens to be evaluated.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "platform/cell.hpp"

namespace cellstream::fault {

/// Permanent fail-stop: `pe` refuses to start any stream instance with
/// index >= `at_instance` (0-based).  The executor must drain, remap the
/// orphaned tasks onto the surviving PEs and resume.
struct PeFailure {
  PeId pe = 0;
  std::int64_t at_instance = 0;
};

/// Transient degradation: computations of instances in
/// [from_instance, to_instance] on `pe` take `factor` times their nominal
/// cost (factor >= 1).  The excess is accounted as overhead, not work, so
/// the steady-state occupation cross-check (I7/I9) stays exact.
struct Slowdown {
  PeId pe = 0;
  std::int64_t from_instance = 0;
  std::int64_t to_instance = 0;
  double factor = 1.0;
};

/// One-shot worker hang: the first computation of instance `at_instance`
/// on `pe` stalls for `seconds` before completing.  Long hangs are what
/// the runtime's progress watchdog exists to catch.
struct Hang {
  PeId pe = 0;
  std::int64_t at_instance = 0;
  double seconds = 0.0;
};

/// Transfer-level DMA failure process.  Each DMA command independently
/// fails with probability `rate` per attempt (geometric, clamped to
/// `max_retries`); attempt a waits backoff_seconds * 2^a, jittered by a
/// seeded uniform draw in [0, jitter].  A command that exhausts its
/// retries still completes (the hardware raises an interrupt and the
/// driver re-issues it out of band) — the plan bounds the *delay*, it
/// never loses data, so I8 is a property the executors must uphold even
/// under maximum fault pressure.
struct DmaFaults {
  double rate = 0.0;
  int max_retries = 4;
  double backoff_seconds = 2.0e-5;
  double jitter = 0.5;
};

/// A complete, deterministic fault scenario for one run.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::optional<PeFailure> pe_failure;
  std::vector<Slowdown> slowdowns;
  std::vector<Hang> hangs;
  DmaFaults dma;

  /// True when the plan injects nothing at all.
  bool empty() const {
    return !pe_failure && slowdowns.empty() && hangs.empty() &&
           dma.rate <= 0.0;
  }

  /// Throws Error on nonsense values (factor < 1, negative rate, PE index
  /// out of range for `platform`, ...).
  void validate(const CellPlatform& platform) const;

  /// Line-oriented text serialization; round-trips exactly.
  std::string to_text() const;
  static FaultPlan from_text(const std::string& text);

  /// Derive a random-but-reproducible plan from a 64-bit seed: usually one
  /// SPE fail-stop in the middle half of the stream, a moderate DMA
  /// failure rate, zero to two slowdown windows and an occasional
  /// sub-millisecond hang.  Only SPEs fail permanently — losing the last
  /// PPE is unsurvivable by construction (the remap needs a PE with
  /// transparent main-memory access) and is tested separately.
  static FaultPlan random(std::uint64_t seed, const CellPlatform& platform,
                          std::int64_t instances);
};

/// Counters accumulated by an executor while a plan is active.  Merged
/// into sim::SimResult / runtime::RunStats and surfaced through
/// obs::Report and the stats schema (v2).
struct FaultStats {
  std::int64_t dma_retries = 0;       ///< Failed DMA attempts re-issued.
  double backoff_seconds = 0.0;       ///< Total retry backoff served.
  std::int64_t hangs = 0;             ///< Hang specs that fired.
  double hang_seconds = 0.0;          ///< Total hang stall injected.
  double slowdown_seconds = 0.0;      ///< Extra compute time injected.
  std::int64_t failovers = 0;         ///< Drain->remap->resume executions.
  double downtime_seconds = 0.0;      ///< Time the stream was paused.
  std::int64_t migrated_tasks = 0;    ///< Tasks moved off failed PEs.
  double migrated_bytes = 0.0;        ///< Buffer bytes re-established.
  std::int64_t failed_pe = -1;        ///< PE lost permanently (-1: none).
  std::int64_t fail_instance = -1;    ///< Instance index of the loss.

  /// True when any fault actually manifested.
  bool any() const {
    return dma_retries > 0 || hangs > 0 || slowdown_seconds > 0.0 ||
           failovers > 0;
  }

  /// Accumulate another executor's counters (phase stitching).
  void merge(const FaultStats& other);
};

}  // namespace cellstream::fault
