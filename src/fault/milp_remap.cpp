#include "fault/milp_remap.hpp"

#include "fault/remap.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/error.hpp"

namespace cellstream::fault {

namespace {

/// PE id translation for a platform with `failed_pe` removed.  PPEs keep
/// the low indices in both numberings, so removing any single PE is a
/// simple shift (only valid on single-chip platforms).
PeId to_reduced(PeId pe, PeId failed_pe) {
  return pe > failed_pe ? pe - 1 : pe;
}
PeId to_original(PeId pe, PeId failed_pe) {
  return pe >= failed_pe ? pe + 1 : pe;
}

}  // namespace

Mapping milp_remap_after_failure(const SteadyStateAnalysis& analysis,
                                 const Mapping& mapping, PeId failed_pe,
                                 double time_limit_seconds) {
  const CellPlatform& platform = analysis.platform();
  CS_ENSURE(failed_pe < platform.pe_count(),
            "milp_remap_after_failure: failed PE out of range");

  // The greedy failover mapping doubles as the MILP warm start and as the
  // fallback whenever the reduced formulation is unavailable.
  const Mapping greedy =
      remap_after_failure(analysis, mapping, {failed_pe}, "greedy-mem");
  if (platform.chip_count > 1) return greedy;

  CellPlatform reduced = platform;
  if (platform.is_ppe(failed_pe)) {
    CS_ENSURE(platform.ppe_count > 1,
              "milp_remap_after_failure: no surviving PPE");
    --reduced.ppe_count;
  } else {
    --reduced.spe_count;
  }

  SteadyStateAnalysis reduced_analysis(analysis.graph(), reduced,
                                       analysis.buffer_policy());
  Mapping warm(mapping.task_count(), 0);
  for (TaskId t = 0; t < greedy.task_count(); ++t) {
    warm.assign(t, to_reduced(greedy.pe_of(t), failed_pe));
  }

  mapping::MilpMapperOptions options;
  options.milp.time_limit_seconds = time_limit_seconds;
  options.extra_incumbents.push_back(std::move(warm));
  const mapping::MilpMapperResult solved =
      mapping::solve_optimal_mapping(reduced_analysis, options);

  Mapping result(mapping.task_count(), 0);
  for (TaskId t = 0; t < solved.mapping.task_count(); ++t) {
    result.assign(t, to_original(solved.mapping.pe_of(t), failed_pe));
  }
  return result;
}

}  // namespace cellstream::fault
