#include "fault/remap.hpp"

#include <limits>

#include "support/error.hpp"

namespace cellstream::fault {

Mapping remap_after_failure(const SteadyStateAnalysis& analysis,
                            const Mapping& mapping,
                            const std::vector<PeId>& failed_pes,
                            const std::string& strategy) {
  CS_ENSURE(strategy == "greedy-mem" || strategy == "greedy-cpu",
            "remap_after_failure: unknown strategy '" + strategy + "'");
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  CS_ENSURE(mapping.task_count() == graph.task_count(),
            "remap_after_failure: mapping/graph size mismatch");

  std::vector<char> dead(platform.pe_count(), 0);
  for (PeId pe : failed_pes) {
    CS_ENSURE(pe < platform.pe_count(),
              "remap_after_failure: failed PE out of range");
    dead[pe] = 1;
  }
  bool ppe_survives = false;
  for (PeId pe = 0; pe < platform.ppe_count; ++pe) {
    if (!dead[pe]) ppe_survives = true;
  }
  CS_ENSURE(ppe_survives,
            "remap_after_failure: no surviving PPE — the stream cannot be "
            "hosted without main-memory access");

  // Load accounting over the surviving assignment.
  std::vector<double> memory_used(platform.pe_count(), 0.0);
  std::vector<double> compute_load(platform.pe_count(), 0.0);
  Mapping result = mapping;
  std::vector<TaskId> orphans;
  for (TaskId t : graph.topological_order()) {
    const PeId pe = mapping.pe_of(t);
    if (dead[pe]) {
      orphans.push_back(t);
      continue;
    }
    const Task& task = graph.task(t);
    compute_load[pe] += platform.is_ppe(pe) ? task.wppe : task.wspe;
    if (platform.is_spe(pe)) memory_used[pe] += analysis.task_buffer_bytes(t);
  }

  const double budget = static_cast<double>(platform.buffer_budget());
  const auto fits = [&](TaskId t, PeId pe) {
    if (dead[pe]) return false;
    if (platform.is_ppe(pe)) return true;
    return memory_used[pe] + analysis.task_buffer_bytes(t) <= budget;
  };
  const auto place = [&](TaskId t, PeId pe) {
    result.assign(t, pe);
    const Task& task = graph.task(t);
    compute_load[pe] += platform.is_ppe(pe) ? task.wppe : task.wspe;
    if (platform.is_spe(pe)) memory_used[pe] += analysis.task_buffer_bytes(t);
  };

  for (TaskId t : orphans) {
    PeId best = platform.pe_count();  // sentinel: nothing chosen yet
    if (strategy == "greedy-mem") {
      // Least-occupied surviving SPE local store; surviving PPE fallback.
      double least_memory = std::numeric_limits<double>::infinity();
      for (PeId pe = platform.ppe_count; pe < platform.pe_count(); ++pe) {
        if (!fits(t, pe)) continue;
        if (memory_used[pe] < least_memory) {
          least_memory = memory_used[pe];
          best = pe;
        }
      }
    }
    if (best == platform.pe_count()) {
      // greedy-cpu, or greedy-mem with no SPE able to take the buffers:
      // least compute load over every surviving PE that fits.
      double least_load = std::numeric_limits<double>::infinity();
      for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
        if (!fits(t, pe)) continue;
        if (compute_load[pe] < least_load) {
          least_load = compute_load[pe];
          best = pe;
        }
      }
    }
    CS_ENSURE(best != platform.pe_count(),
              "remap_after_failure: no surviving PE can host task " +
                  graph.task(t).name);
    place(t, best);
  }
  return result;
}

}  // namespace cellstream::fault
