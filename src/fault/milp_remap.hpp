#pragma once
// Quality remap after a permanent PE loss: re-solve the paper's MILP on
// the reduced platform, warm-started from the surviving assignment.

#include "core/mapping.hpp"
#include "core/steady_state.hpp"

namespace cellstream::fault {

/// Solve the mapping MILP on `analysis`'s platform minus `failed_pe`,
/// seeding the branch-and-bound with the greedy failover mapping (the
/// surviving assignment with orphans re-placed) translated to the reduced
/// PE numbering — so the solver starts from the configuration the stream
/// could resume on immediately and only searches for improvements.  The
/// result is translated back to the ORIGINAL platform's PE ids (the
/// failed PE simply hosts nothing).
///
/// Multi-chip platforms fall back to the greedy remap: deleting one PE
/// from a chip-block numbering would silently re-partition the chips, so
/// the reduced formulation would model the wrong cross-chip link.
Mapping milp_remap_after_failure(const SteadyStateAnalysis& analysis,
                                 const Mapping& mapping, PeId failed_pe,
                                 double time_limit_seconds = 2.0);

}  // namespace cellstream::fault
