#include "fault/injector.hpp"

#include "support/rng.hpp"

namespace cellstream::fault {

namespace {

/// splitmix64 finalizer — the same mix Rng::reseed applies per word, used
/// here to fold a composite key into one well-distributed 64-bit seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kFailureSalt = 0xD3A1;
constexpr std::uint64_t kJitterSalt = 0xBAC0FF;

}  // namespace

std::uint64_t FaultInjector::key(std::uint64_t salt, std::uint64_t kind,
                                 std::uint64_t object,
                                 std::int64_t instance) const {
  std::uint64_t h = mix(plan_.seed ^ salt);
  h = mix(h ^ kind);
  h = mix(h ^ object);
  h = mix(h ^ static_cast<std::uint64_t>(instance));
  return h;
}

double FaultInjector::compute_factor(PeId pe, std::int64_t instance) const {
  double factor = 1.0;
  for (const Slowdown& s : plan_.slowdowns) {
    if (s.pe == pe && instance >= s.from_instance &&
        instance <= s.to_instance) {
      factor *= s.factor;
    }
  }
  return factor;
}

std::size_t FaultInjector::hang_index(PeId pe, std::int64_t instance) const {
  for (std::size_t i = 0; i < plan_.hangs.size(); ++i) {
    if (plan_.hangs[i].pe == pe && plan_.hangs[i].at_instance == instance) {
      return i;
    }
  }
  return npos;
}

int FaultInjector::dma_failures(TransferKind kind, std::uint64_t object,
                                std::int64_t instance) const {
  if (plan_.dma.rate <= 0.0 || plan_.dma.max_retries <= 0) return 0;
  Rng rng(key(kFailureSalt, static_cast<std::uint64_t>(kind), object,
              instance));
  int failures = 0;
  while (failures < plan_.dma.max_retries && rng.bernoulli(plan_.dma.rate)) {
    ++failures;
  }
  return failures;
}

double FaultInjector::dma_backoff(TransferKind kind, std::uint64_t object,
                                  std::int64_t instance, int failures) const {
  if (failures <= 0) return 0.0;
  Rng rng(
      key(kJitterSalt, static_cast<std::uint64_t>(kind), object, instance));
  double delay = 0.0;
  double window = plan_.dma.backoff_seconds;
  for (int attempt = 0; attempt < failures; ++attempt) {
    delay += window * (1.0 + plan_.dma.jitter * rng.uniform());
    window *= 2.0;
  }
  return delay;
}

double FaultInjector::dma_delay(TransferKind kind, std::uint64_t object,
                                std::int64_t instance,
                                std::int64_t* retries) const {
  const int failures = dma_failures(kind, object, instance);
  if (failures <= 0) return 0.0;
  if (retries != nullptr) *retries += failures;
  return dma_backoff(kind, object, instance, failures);
}

}  // namespace cellstream::fault
