#pragma once
// Deterministic fault oracle shared by the simulator and the host runtime.
//
// Every answer is a pure function of (plan seed, fault kind, object id,
// stream instance): the injector hashes the key into a private Rng, draws,
// and discards the generator.  No internal mutable state, no wall clock,
// no dependence on evaluation order — so the oracle is thread-safe by
// construction, the simulator replays bit-identically, and the host
// runtime observes the *same* fault sequence as the simulator for the same
// plan (the satellite determinism requirement).
//
// The only stateful fault is the one-shot Hang: firing is tracked by the
// executor (one flag per spec, under its own synchronization), because
// "first computation to reach the instance" is an executor-level event.

#include <cstddef>
#include <cstdint>

#include "fault/fault_plan.hpp"

namespace cellstream::fault {

/// Stateless deterministic oracle over a FaultPlan.
class FaultInjector {
 public:
  /// Transfer kinds keyed independently so an edge fetch and a memory
  /// read of the same ids draw from different streams.
  enum class TransferKind : std::uint64_t {
    kEdge = 1,
    kMemRead = 2,
    kMemWrite = 3,
  };

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  const FaultPlan& plan() const { return plan_; }

  // -- Permanent failure --------------------------------------------------

  bool has_pe_failure() const { return plan_.pe_failure.has_value(); }
  PeId failed_pe() const { return plan_.pe_failure->pe; }
  std::int64_t fail_instance() const { return plan_.pe_failure->at_instance; }

  /// True when `pe` is fail-stopped for stream instance `instance`: the
  /// PE must not start this computation and the executor has to run the
  /// drain -> remap -> resume protocol.
  bool fail_stop(PeId pe, std::int64_t instance) const {
    return plan_.pe_failure && plan_.pe_failure->pe == pe &&
           instance >= plan_.pe_failure->at_instance;
  }

  // -- Transient compute faults -------------------------------------------

  /// Multiplicative compute cost of instance `instance` on `pe` (>= 1;
  /// overlapping slowdown windows compose multiplicatively).
  double compute_factor(PeId pe, std::int64_t instance) const;

  /// Index of the hang spec triggered by (pe, instance), or npos.  The
  /// executor is responsible for firing each spec at most once.
  std::size_t hang_index(PeId pe, std::int64_t instance) const;

  double hang_seconds(std::size_t index) const {
    return plan_.hangs[index].seconds;
  }

  // -- Transient DMA faults -----------------------------------------------

  /// Number of failed attempts (0..max_retries) for the transfer of
  /// `object` (edge id or task id, per kind) at stream `instance`.
  int dma_failures(TransferKind kind, std::uint64_t object,
                   std::int64_t instance) const;

  /// Total backoff delay in seconds served before attempt `failures`
  /// succeeds: sum over failed attempts a of
  /// backoff_seconds * 2^a * (1 + jitter * u_a) with seeded jitter draws.
  double dma_backoff(TransferKind kind, std::uint64_t object,
                     std::int64_t instance, int failures) const;

  /// Convenience: failures + backoff in one call; returns the delay and
  /// adds the retry count to *retries.
  double dma_delay(TransferKind kind, std::uint64_t object,
                   std::int64_t instance, std::int64_t* retries) const;

 private:
  std::uint64_t key(std::uint64_t salt, std::uint64_t kind,
                    std::uint64_t object, std::int64_t instance) const;

  FaultPlan plan_;
};

}  // namespace cellstream::fault
