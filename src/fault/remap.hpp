#pragma once
// Degraded-mode remapping: recompute a feasible assignment after one or
// more PEs fail permanently.
//
// The fast path reuses the paper's constructive heuristics (GREEDYMEM /
// GREEDYCPU, Section 6.3) restricted to the surviving PEs, keeping every
// surviving task in place when it fits — minimizing migration volume is
// what bounds failover downtime.  A higher-quality MILP remap (reduced
// platform, warm-started from the surviving assignment) lives in
// fault/milp_remap.hpp so this header stays free of solver dependencies.

#include <string>
#include <vector>

#include "core/mapping.hpp"
#include "core/steady_state.hpp"

namespace cellstream::fault {

/// Remap the tasks hosted by `failed_pes` onto the surviving PEs.
///
/// Surviving assignments are kept untouched; orphaned tasks are placed in
/// topological order by `strategy` ("greedy-mem": least-loaded surviving
/// SPE local store with PPE fallback; "greedy-cpu": least compute load
/// over all surviving PEs).  Throws Error when no PPE survives (the
/// protocol needs at least one PE with transparent main-memory access) or
/// the strategy is unknown.  The result is local-store feasible by
/// construction; DMA-slot feasibility is re-checked by the caller (I9).
Mapping remap_after_failure(const SteadyStateAnalysis& analysis,
                            const Mapping& mapping,
                            const std::vector<PeId>& failed_pes,
                            const std::string& strategy = "greedy-mem");

}  // namespace cellstream::fault
