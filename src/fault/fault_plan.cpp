#include "fault/fault_plan.hpp"

#include <iomanip>
#include <sstream>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace cellstream::fault {

namespace {

void put_double(std::ostream& out, double v) {
  out << std::setprecision(17) << v;
}

}  // namespace

void FaultPlan::validate(const CellPlatform& platform) const {
  const std::size_t n = platform.pe_count();
  if (pe_failure) {
    CS_ENSURE(pe_failure->pe < n, "FaultPlan: fail-stop PE out of range");
    CS_ENSURE(pe_failure->at_instance >= 0,
              "FaultPlan: fail-stop instance must be >= 0");
  }
  for (const Slowdown& s : slowdowns) {
    CS_ENSURE(s.pe < n, "FaultPlan: slowdown PE out of range");
    CS_ENSURE(s.from_instance >= 0 && s.to_instance >= s.from_instance,
              "FaultPlan: slowdown window is empty or negative");
    CS_ENSURE(s.factor >= 1.0, "FaultPlan: slowdown factor must be >= 1");
  }
  for (const Hang& h : hangs) {
    CS_ENSURE(h.pe < n, "FaultPlan: hang PE out of range");
    CS_ENSURE(h.at_instance >= 0, "FaultPlan: hang instance must be >= 0");
    CS_ENSURE(h.seconds >= 0.0, "FaultPlan: hang duration must be >= 0");
  }
  CS_ENSURE(dma.rate >= 0.0 && dma.rate < 1.0,
            "FaultPlan: DMA failure rate must be in [0, 1)");
  CS_ENSURE(dma.max_retries >= 0, "FaultPlan: max_retries must be >= 0");
  CS_ENSURE(dma.backoff_seconds >= 0.0,
            "FaultPlan: backoff must be >= 0 seconds");
  CS_ENSURE(dma.jitter >= 0.0, "FaultPlan: jitter must be >= 0");
}

std::string FaultPlan::to_text() const {
  std::ostringstream out;
  out << "faultplan v1\n";
  out << "seed " << seed << "\n";
  if (dma.rate > 0.0) {
    out << "dma ";
    put_double(out, dma.rate);
    out << " " << dma.max_retries << " ";
    put_double(out, dma.backoff_seconds);
    out << " ";
    put_double(out, dma.jitter);
    out << "\n";
  }
  if (pe_failure) {
    out << "fail-pe " << pe_failure->pe << " " << pe_failure->at_instance
        << "\n";
  }
  for (const Slowdown& s : slowdowns) {
    out << "slowdown " << s.pe << " " << s.from_instance << " "
        << s.to_instance << " ";
    put_double(out, s.factor);
    out << "\n";
  }
  for (const Hang& h : hangs) {
    out << "hang " << h.pe << " " << h.at_instance << " ";
    put_double(out, h.seconds);
    out << "\n";
  }
  return out.str();
}

FaultPlan FaultPlan::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  CS_ENSURE(header == "faultplan v1",
            "FaultPlan::from_text: bad header '" + header + "'");
  FaultPlan plan;
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    bool ok = true;
    if (keyword == "seed") {
      ok = static_cast<bool>(fields >> plan.seed);
    } else if (keyword == "dma") {
      ok = static_cast<bool>(fields >> plan.dma.rate >> plan.dma.max_retries >>
                             plan.dma.backoff_seconds >> plan.dma.jitter);
    } else if (keyword == "fail-pe") {
      PeFailure f;
      ok = static_cast<bool>(fields >> f.pe >> f.at_instance);
      CS_ENSURE(!plan.pe_failure,
                "FaultPlan::from_text: more than one fail-pe line");
      plan.pe_failure = f;
    } else if (keyword == "slowdown") {
      Slowdown s;
      ok = static_cast<bool>(fields >> s.pe >> s.from_instance >>
                             s.to_instance >> s.factor);
      plan.slowdowns.push_back(s);
    } else if (keyword == "hang") {
      Hang h;
      ok = static_cast<bool>(fields >> h.pe >> h.at_instance >> h.seconds);
      plan.hangs.push_back(h);
    } else {
      throw Error("FaultPlan::from_text: unknown keyword '" + keyword +
                  "' on line " + std::to_string(line_no));
    }
    CS_ENSURE(ok, "FaultPlan::from_text: malformed '" + keyword +
                      "' line " + std::to_string(line_no));
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const CellPlatform& platform,
                            std::int64_t instances) {
  CS_ENSURE(instances > 0, "FaultPlan::random: need a positive stream");
  Rng rng(seed ^ 0xFA017D0C5EEDULL);
  FaultPlan plan;
  plan.seed = seed;

  const auto any_pe = [&] {
    return static_cast<PeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(platform.pe_count()) - 1));
  };

  // Fail-stop of one SPE somewhere in the middle half of the stream, so
  // both phases of the failover see real steady-state traffic.  Skipped
  // when the platform has no SPEs (PPE-only runs have nothing safe to
  // kill) or the stream is too short to split.
  if (platform.spe_count > 0 && instances >= 4 && rng.bernoulli(0.6)) {
    PeFailure f;
    f.pe = static_cast<PeId>(
        platform.ppe_count +
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(platform.spe_count) - 1)));
    f.at_instance = rng.uniform_int(instances / 4, (3 * instances) / 4);
    plan.pe_failure = f;
  }

  if (rng.bernoulli(0.7)) {
    plan.dma.rate = rng.uniform(0.002, 0.05);
    plan.dma.max_retries = static_cast<int>(rng.uniform_int(3, 8));
    plan.dma.backoff_seconds = rng.uniform(1.0e-5, 1.0e-4);
    plan.dma.jitter = rng.uniform(0.0, 1.0);
  }

  const std::int64_t windows = rng.uniform_int(0, 2);
  for (std::int64_t i = 0; i < windows; ++i) {
    Slowdown s;
    s.pe = any_pe();
    s.from_instance = rng.uniform_int(0, instances - 1);
    s.to_instance =
        s.from_instance + rng.uniform_int(0, instances - 1 - s.from_instance);
    s.factor = rng.uniform(1.5, 4.0);
    plan.slowdowns.push_back(s);
  }

  if (rng.bernoulli(0.3)) {
    Hang h;
    h.pe = any_pe();
    h.at_instance = rng.uniform_int(0, instances - 1);
    h.seconds = rng.uniform(1.0e-4, 1.0e-3);
    plan.hangs.push_back(h);
  }

  plan.validate(platform);
  return plan;
}

void FaultStats::merge(const FaultStats& other) {
  dma_retries += other.dma_retries;
  backoff_seconds += other.backoff_seconds;
  hangs += other.hangs;
  hang_seconds += other.hang_seconds;
  slowdown_seconds += other.slowdown_seconds;
  failovers += other.failovers;
  downtime_seconds += other.downtime_seconds;
  migrated_tasks += other.migrated_tasks;
  migrated_bytes += other.migrated_bytes;
  if (other.failed_pe >= 0) failed_pe = other.failed_pe;
  if (other.fail_instance >= 0) fail_instance = other.fail_instance;
}

}  // namespace cellstream::fault
