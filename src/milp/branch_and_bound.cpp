#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

namespace cellstream::milp {

namespace {

constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kLimitFeasible: return "limit-feasible";
    case Status::kLimitNoSolution: return "limit-no-solution";
  }
  return "unknown";
}

Solver::Solver(lp::Problem problem, std::vector<lp::VarId> integer_vars,
               Options options)
    : problem_(std::move(problem)),
      integer_vars_(std::move(integer_vars)),
      options_(options) {
  is_integer_.assign(problem_.variable_count(), false);
  priority_.assign(problem_.variable_count(), 0.0);
  group_of_.assign(problem_.variable_count(), kNoGroup);
  for (lp::VarId v : integer_vars_) {
    CS_ENSURE(v < problem_.variable_count(), "Solver: bad integer variable");
    CS_ENSURE(problem_.var_lo(v) >= -1e-9 && problem_.var_up(v) <= 1.0 + 1e-9,
              "Solver: integer variables must be binary");
    is_integer_[v] = true;
  }
}

void Solver::add_exactly_one_group(std::vector<lp::VarId> group) {
  // Validate the whole group before mutating any state, so a rejected
  // call leaves the solver unchanged.
  for (lp::VarId v : group) {
    CS_ENSURE(v < problem_.variable_count(), "group: bad variable");
    CS_ENSURE(is_integer_[v], "group: variable is not integer");
    CS_ENSURE(group_of_[v] == kNoGroup, "group: variable in two groups");
  }
  for (lp::VarId v : group) group_of_[v] = groups_.size();
  groups_.push_back(std::move(group));
}

void Solver::set_branch_priority(lp::VarId var, double priority) {
  CS_ENSURE(var < problem_.variable_count(), "priority: bad variable");
  priority_[var] = priority;
}

void Solver::add_initial_incumbent(const Candidate& candidate) {
  (void)try_incumbent(candidate);
}

double Solver::prune_threshold() const {
  CS_ASSERT(has_incumbent_, "prune_threshold without incumbent");
  const double slack = std::max(options_.absolute_gap,
                                options_.relative_gap * std::abs(incumbent_obj_));
  return incumbent_obj_ - slack;
}

bool Solver::out_of_budget() const {
  return nodes_ >= options_.max_nodes || now_seconds() >= deadline_;
}

bool Solver::try_incumbent(const Candidate& candidate) {
  if (candidate.x.size() != problem_.variable_count()) return false;
  if (has_incumbent_ && candidate.objective >= incumbent_obj_) return false;
  for (lp::VarId v : integer_vars_) {
    const double frac = std::abs(candidate.x[v] - std::round(candidate.x[v]));
    if (frac > options_.integrality_tol) return false;
  }
  if (problem_.max_violation(candidate.x) > 1e-6) return false;
  const double true_obj = problem_.objective_value(candidate.x);
  if (std::abs(true_obj - candidate.objective) > 1e-6 * (1.0 + std::abs(true_obj))) {
    // Callback lied about the objective; trust the recomputation.
  }
  if (has_incumbent_ && true_obj >= incumbent_obj_) return false;
  has_incumbent_ = true;
  incumbent_obj_ = true_obj;
  incumbent_x_ = candidate.x;
  return true;
}

void Solver::fix_variable(lp::VarId var, double value,
                          std::vector<BoundChange>& undo) {
  undo.push_back({var, cur_lo_[var], cur_up_[var]});
  cur_lo_[var] = value;
  cur_up_[var] = value;
  simplex_->set_variable_bounds(var, value, value);
  if (value > 0.5 && group_of_[var] != kNoGroup) {
    for (lp::VarId other : groups_[group_of_[var]]) {
      if (other == var) continue;
      if (cur_lo_[other] == 0.0 && cur_up_[other] == 0.0) continue;
      undo.push_back({other, cur_lo_[other], cur_up_[other]});
      cur_lo_[other] = 0.0;
      cur_up_[other] = 0.0;
      simplex_->set_variable_bounds(other, 0.0, 0.0);
    }
  }
}

void Solver::dive(std::size_t depth) {
  if (stopped_) return;
  if (out_of_budget()) {
    stopped_ = true;
    return;
  }
  ++nodes_;

  const lp::SimplexResult res = simplex_->solve();
  lp_iterations_ += res.iterations;

  if (res.status == lp::SolveStatus::kInfeasible) return;
  const bool bound_valid = res.status == lp::SolveStatus::kOptimal;
  const double bound = bound_valid ? res.objective : -kInf;
  if (nodes_ == 1 && bound_valid) {
    root_bound_ = bound;  // valid global lower bound even if we stop early
    have_root_bound_ = true;
  }

  if (has_incumbent_ && bound >= prune_threshold()) {
    frontier_bound_ = frontier_seen_ ? std::min(frontier_bound_, bound) : bound;
    frontier_seen_ = true;
    return;
  }

  // Locate the branching variable: fractional integer var with the highest
  // (priority, fractionality) pair.
  lp::VarId branch_var = 0;
  bool found_fractional = false;
  double best_priority = -kInf;
  double best_frac = -1.0;
  if (bound_valid) {
    for (lp::VarId v : integer_vars_) {
      const double val = res.x[v];
      const double frac = std::min(val - std::floor(val), std::ceil(val) - val);
      if (frac <= options_.integrality_tol) continue;
      const bool better = !found_fractional || priority_[v] > best_priority ||
                          (priority_[v] == best_priority && frac > best_frac);
      if (better) {
        branch_var = v;
        best_priority = priority_[v];
        best_frac = frac;
      }
      found_fractional = true;
    }
  }

  if (bound_valid && !found_fractional) {
    // Integral LP optimum: a leaf.
    (void)try_incumbent({res.objective, res.x});
    frontier_bound_ =
        frontier_seen_ ? std::min(frontier_bound_, res.objective) : res.objective;
    frontier_seen_ = true;
    return;
  }

  if (bound_valid && rounding_) {
    if (std::optional<Candidate> candidate = rounding_(res.x)) {
      if (try_incumbent(*candidate) && bound >= prune_threshold()) {
        frontier_bound_ =
            frontier_seen_ ? std::min(frontier_bound_, bound) : bound;
        frontier_seen_ = true;
        return;
      }
    }
  }

  if (!bound_valid) {
    // The LP did not converge; pick any unfixed integer var to keep making
    // progress (bound stays -inf so nothing is pruned below).
    for (lp::VarId v : integer_vars_) {
      if (cur_lo_[v] < cur_up_[v]) {
        branch_var = v;
        found_fractional = true;
        break;
      }
    }
    if (!found_fractional) return;  // everything fixed yet unsolved: give up
  }

  const double lp_val = bound_valid ? res.x[branch_var] : 0.5;
  const double first = lp_val >= 0.5 ? 1.0 : 0.0;
  for (int child = 0; child < 2; ++child) {
    const double value = child == 0 ? first : 1.0 - first;
    std::vector<BoundChange> undo;
    fix_variable(branch_var, value, undo);
    dive(depth + 1);
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      cur_lo_[it->var] = it->lo;
      cur_up_[it->var] = it->up;
      simplex_->set_variable_bounds(it->var, it->lo, it->up);
    }
    if (stopped_) return;
  }
}

Result Solver::solve() {
  const double start = now_seconds();
  deadline_ = start + options_.time_limit_seconds;
  nodes_ = 0;
  lp_iterations_ = 0;
  stopped_ = false;
  frontier_seen_ = false;
  frontier_bound_ = 0.0;
  have_root_bound_ = false;
  root_bound_ = 0.0;

  cur_lo_.resize(problem_.variable_count());
  cur_up_.resize(problem_.variable_count());
  for (lp::VarId v = 0; v < problem_.variable_count(); ++v) {
    cur_lo_[v] = problem_.var_lo(v);
    cur_up_[v] = problem_.var_up(v);
  }
  simplex_ = std::make_unique<lp::IncrementalSimplex>(problem_, options_.lp);

  dive(0);

  Result result;
  result.nodes = nodes_;
  result.lp_iterations = lp_iterations_;
  result.solve_seconds = now_seconds() - start;
  if (has_incumbent_) {
    result.objective = incumbent_obj_;
    result.x = incumbent_x_;
    if (stopped_) {
      result.status = Status::kLimitFeasible;
      result.best_bound = have_root_bound_ ? root_bound_ : -kInf;
      result.gap = have_root_bound_ && incumbent_obj_ != 0.0
                       ? (incumbent_obj_ - root_bound_) /
                             std::abs(incumbent_obj_)
                       : kInf;
    } else {
      result.status = Status::kOptimal;
      result.best_bound = frontier_seen_
                              ? std::min(incumbent_obj_, frontier_bound_)
                              : incumbent_obj_;
      result.gap = incumbent_obj_ == 0.0
                       ? 0.0
                       : (incumbent_obj_ - result.best_bound) /
                             std::abs(incumbent_obj_);
    }
  } else {
    result.status = stopped_ ? Status::kLimitNoSolution : Status::kInfeasible;
    result.best_bound = -kInf;
    result.gap = kInf;
  }
  return result;
}

}  // namespace cellstream::milp
