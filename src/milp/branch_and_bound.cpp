#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <iterator>
#include <limits>
#include <memory>
#include <thread>
#include <utility>

namespace cellstream::milp {

namespace {

constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);
constexpr double kInf = std::numeric_limits<double>::infinity();

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(Status status) {
  switch (status) {
    case Status::kOptimal: return "optimal";
    case Status::kInfeasible: return "infeasible";
    case Status::kLimitFeasible: return "limit-feasible";
    case Status::kLimitNoSolution: return "limit-no-solution";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Search-tree data structures.
//
// A node is identified by its chain of variable fixings (a persistent
// linked list shared between siblings, root fixes applied last) plus the
// basis snapshot of its parent's LP optimum.  Nothing else is needed to
// solve it, which is what makes a node solve a pure function: any worker,
// on any thread, in any round, produces bit-identical results for the
// same node.

struct Solver::Fixing {
  std::shared_ptr<const Fixing> parent;
  /// The branch fix first, then any group-propagated zero fixes.  A
  /// variable may reappear deeper in the chain, but only ever with the
  /// same value (a 0-fixed variable is never fractional, so it is never
  /// branched on again), so application order does not matter.
  std::vector<std::pair<lp::VarId, double>> fixes;
};

struct Solver::Node {
  std::shared_ptr<const Fixing> fixings;  // null for the root
  std::shared_ptr<const lp::Basis> warm;  // parent basis; null = all-slack
  double bound = -kInf;  // parent LP objective: lower bound for the subtree
  std::uint32_t depth = 0;
  std::uint64_t seq = 0;  // unique creation index: deterministic tiebreak
};

struct Solver::NodeOutcome {
  enum class Kind : std::uint8_t {
    kInfeasible,  ///< LP infeasible: subtree closed.
    kPruned,      ///< LP bound met the frozen round threshold.
    kLeaf,        ///< Integral LP optimum.
    kBranch,      ///< Fractional (or unresolved) node: two children.
    kAbandoned,   ///< LP unresolved with every integer variable fixed.
  };
  Kind kind = Kind::kAbandoned;
  bool bound_valid = false;
  double bound = -kInf;  ///< Node LP objective when bound_valid.
  std::size_t lp_iterations = 0;
  std::size_t phase1_iterations = 0;
  bool warm_hit = false;
  Candidate leaf{0.0, {}};            ///< kLeaf only.
  std::optional<Candidate> rounded;   ///< Rounding-callback proposal.
  lp::VarId branch_var = 0;           ///< kBranch only.
  double branch_first = 1.0;          ///< Value of the first child.
  std::shared_ptr<const lp::Basis> child_warm;
  std::exception_ptr error;  ///< Set instead of the above if the solve threw.
};

/// One thread's solver context.  Workers are reused across rounds and
/// across solve() calls; solve_node fully reverts the bound changes of the
/// previous node, so no state leaks between nodes.
struct Solver::Worker {
  lp::IncrementalSimplex simplex;
  std::vector<double> cur_lo, cur_up;  // current structural bounds
  std::vector<lp::VarId> touched;      // vars diverging from problem bounds

  Worker(const lp::Problem& problem, const lp::SimplexOptions& lp_options)
      : simplex(problem, lp_options) {
    cur_lo.resize(problem.variable_count());
    cur_up.resize(problem.variable_count());
    for (lp::VarId v = 0; v < problem.variable_count(); ++v) {
      cur_lo[v] = problem.var_lo(v);
      cur_up[v] = problem.var_up(v);
    }
  }
};

Solver::Solver(lp::Problem problem, std::vector<lp::VarId> integer_vars,
               Options options)
    : problem_(std::move(problem)),
      integer_vars_(std::move(integer_vars)),
      options_(options) {
  is_integer_.assign(problem_.variable_count(), false);
  priority_.assign(problem_.variable_count(), 0.0);
  group_of_.assign(problem_.variable_count(), kNoGroup);
  for (lp::VarId v : integer_vars_) {
    CS_ENSURE(v < problem_.variable_count(), "Solver: bad integer variable");
    CS_ENSURE(problem_.var_lo(v) >= -1e-9 && problem_.var_up(v) <= 1.0 + 1e-9,
              "Solver: integer variables must be binary");
    is_integer_[v] = true;
  }
}

Solver::~Solver() = default;

void Solver::add_exactly_one_group(std::vector<lp::VarId> group) {
  // Validate the whole group before mutating any state, so a rejected
  // call leaves the solver unchanged.
  for (lp::VarId v : group) {
    CS_ENSURE(v < problem_.variable_count(), "group: bad variable");
    CS_ENSURE(is_integer_[v], "group: variable is not integer");
    CS_ENSURE(group_of_[v] == kNoGroup, "group: variable in two groups");
  }
  for (lp::VarId v : group) group_of_[v] = groups_.size();
  groups_.push_back(std::move(group));
}

void Solver::set_branch_priority(lp::VarId var, double priority) {
  CS_ENSURE(var < problem_.variable_count(), "priority: bad variable");
  priority_[var] = priority;
}

void Solver::add_initial_incumbent(const Candidate& candidate) {
  (void)try_incumbent(candidate);
}

double Solver::prune_threshold() const {
  CS_ASSERT(has_incumbent_, "prune_threshold without incumbent");
  const double slack = std::max(options_.absolute_gap,
                                options_.relative_gap * std::abs(incumbent_obj_));
  return incumbent_obj_ - slack;
}

bool Solver::out_of_budget() const {
  return nodes_ >= options_.max_nodes || now_seconds() >= deadline_;
}

void Solver::note_closed_bound(double bound) {
  frontier_bound_ = frontier_seen_ ? std::min(frontier_bound_, bound) : bound;
  frontier_seen_ = true;
}

bool Solver::try_incumbent(const Candidate& candidate) {
  if (candidate.x.size() != problem_.variable_count()) return false;
  // Distrust the candidate wholesale.  Non-finite entries must be caught
  // explicitly: a NaN coordinate makes every downstream comparison
  // (fractionality > tol, violation > tol) silently false, which used to
  // let a fabricated candidate through.
  if (!std::isfinite(candidate.objective)) return false;
  for (double value : candidate.x) {
    if (!std::isfinite(value)) return false;
  }
  if (has_incumbent_ && candidate.objective >= incumbent_obj_) return false;
  for (lp::VarId v : integer_vars_) {
    const double frac = std::abs(candidate.x[v] - std::round(candidate.x[v]));
    if (frac > options_.integrality_tol) return false;
  }
  if (problem_.max_violation(candidate.x) > 1e-6) return false;
  const double true_obj = problem_.objective_value(candidate.x);
  if (!std::isfinite(true_obj)) return false;
  if (std::abs(true_obj - candidate.objective) >
      1e-6 * (1.0 + std::abs(true_obj))) {
    // The claimed objective is inconsistent with the recomputed one.  Do
    // NOT silently substitute the recomputation: a callback that lies
    // about the objective cannot be trusted about anything else, and
    // accepting it here would prune the node that produced it.  Reject the
    // candidate and let the search re-expand normally.
    return false;
  }
  if (has_incumbent_ && true_obj >= incumbent_obj_) return false;
  has_incumbent_ = true;
  incumbent_obj_ = true_obj;
  incumbent_x_ = candidate.x;
  // Trajectory point for the telemetry layer.  try_incumbent only runs on
  // the sequential commit thread (or before solve(), for the initial
  // incumbent), so the stamp is deterministic for every thread count.
  stats_.incumbents.push_back({stats_.rounds, nodes_, true_obj});
  return true;
}

Solver::NodeOutcome Solver::solve_node(Worker& worker, const Node& node,
                                       double prune_bound,
                                       bool have_prune_bound) const {
  NodeOutcome out;

  // Revert the previous node's bounds, then apply this node's chain.
  for (lp::VarId v : worker.touched) {
    worker.cur_lo[v] = problem_.var_lo(v);
    worker.cur_up[v] = problem_.var_up(v);
    worker.simplex.set_variable_bounds(v, worker.cur_lo[v], worker.cur_up[v]);
  }
  worker.touched.clear();
  for (const Fixing* f = node.fixings.get(); f != nullptr;
       f = f->parent.get()) {
    for (const auto& [var, value] : f->fixes) {
      worker.cur_lo[var] = value;
      worker.cur_up[var] = value;
      worker.simplex.set_variable_bounds(var, value, value);
      worker.touched.push_back(var);
    }
  }

  // Load the parent basis (refactorized from scratch inside load_basis) or
  // fall back to all-slack.  Either way the solve trajectory depends only
  // on (problem, chain, parent basis) — never on the worker's history.
  out.warm_hit = node.warm != nullptr && worker.simplex.load_basis(*node.warm);
  if (!out.warm_hit) worker.simplex.reset_basis();

  const lp::SimplexResult res = worker.simplex.solve();
  out.lp_iterations = res.iterations;
  out.phase1_iterations = res.phase1_iterations;

  if (res.status == lp::SolveStatus::kInfeasible) {
    out.kind = NodeOutcome::Kind::kInfeasible;
    return out;
  }
  out.bound_valid = res.status == lp::SolveStatus::kOptimal;
  out.bound = out.bound_valid ? res.objective : -kInf;

  // Prune against the round's frozen threshold.  The commit-time threshold
  // can only be tighter (the incumbent only improves), so a worker-side
  // prune is always still valid when committed.
  if (have_prune_bound && out.bound_valid && out.bound >= prune_bound) {
    out.kind = NodeOutcome::Kind::kPruned;
    return out;
  }

  // Locate the branching variable: fractional integer var with the highest
  // (priority, fractionality) pair.
  lp::VarId branch_var = 0;
  bool found_fractional = false;
  double best_priority = -kInf;
  double best_frac = -1.0;
  if (out.bound_valid) {
    for (lp::VarId v : integer_vars_) {
      const double val = res.x[v];
      const double frac = std::min(val - std::floor(val), std::ceil(val) - val);
      if (frac <= options_.integrality_tol) continue;
      const bool better = !found_fractional || priority_[v] > best_priority ||
                          (priority_[v] == best_priority && frac > best_frac);
      if (better) {
        branch_var = v;
        best_priority = priority_[v];
        best_frac = frac;
      }
      found_fractional = true;
    }
  }

  if (out.bound_valid && !found_fractional) {
    // Integral LP optimum: a leaf.
    out.kind = NodeOutcome::Kind::kLeaf;
    out.leaf = {res.objective, res.x};
    return out;
  }

  if (out.bound_valid && rounding_) {
    // The proposal is validated (and the incumbent updated) at commit
    // time, on the main thread, in canonical order.
    out.rounded = rounding_(res.x);
  }

  if (!out.bound_valid) {
    // The LP did not converge; pick any unfixed integer var to keep making
    // progress (bound stays -inf so nothing is pruned below).
    for (lp::VarId v : integer_vars_) {
      if (worker.cur_lo[v] < worker.cur_up[v]) {
        branch_var = v;
        found_fractional = true;
        break;
      }
    }
    if (!found_fractional) return out;  // everything fixed yet unsolved
    out.kind = NodeOutcome::Kind::kBranch;
    out.branch_var = branch_var;
    out.branch_first = 1.0;
    return out;
  }

  out.kind = NodeOutcome::Kind::kBranch;
  out.branch_var = branch_var;
  out.branch_first = res.x[branch_var] >= 0.5 ? 1.0 : 0.0;
  out.child_warm = std::make_shared<lp::Basis>(worker.simplex.save_basis());
  return out;
}

void Solver::push_children(const Node& node, const NodeOutcome& outcome) {
  for (int child = 0; child < 2; ++child) {
    const double value =
        child == 0 ? outcome.branch_first : 1.0 - outcome.branch_first;
    auto fixing = std::make_shared<Fixing>();
    fixing->parent = node.fixings;
    fixing->fixes.emplace_back(outcome.branch_var, value);
    if (value > 0.5 && group_of_[outcome.branch_var] != kNoGroup) {
      // Exactly-one group: fixing one member to 1 fixes the others to 0.
      for (lp::VarId other : groups_[group_of_[outcome.branch_var]]) {
        if (other != outcome.branch_var) fixing->fixes.emplace_back(other, 0.0);
      }
    }
    Node n;
    n.fixings = std::move(fixing);
    n.warm = outcome.child_warm;
    n.bound = outcome.bound;
    n.depth = node.depth + 1;
    n.seq = next_seq_++;
    open_.push_back(std::move(n));
  }
  stats_.max_open_size = std::max(stats_.max_open_size, open_.size());
}

void Solver::commit_outcome(const Node& node, NodeOutcome& outcome) {
  ++nodes_;
  ++stats_.nodes;
  lp_iterations_ += outcome.lp_iterations;
  stats_.lp_iterations += outcome.lp_iterations;
  stats_.phase1_iterations += outcome.phase1_iterations;
  if (outcome.warm_hit) {
    ++stats_.warm_start_hits;
  } else {
    ++stats_.warm_start_misses;
  }
  if (nodes_ == 1 && outcome.bound_valid) {
    root_bound_ = outcome.bound;  // valid global LB even if we stop early
    have_root_bound_ = true;
  }

  switch (outcome.kind) {
    case NodeOutcome::Kind::kInfeasible:
      ++stats_.infeasible_nodes;
      return;
    case NodeOutcome::Kind::kAbandoned:
      return;
    case NodeOutcome::Kind::kPruned:
      ++stats_.pruned_by_bound;
      note_closed_bound(outcome.bound);
      return;
    case NodeOutcome::Kind::kLeaf:
      ++stats_.integral_leaves;
      (void)try_incumbent(outcome.leaf);
      note_closed_bound(outcome.bound);
      return;
    case NodeOutcome::Kind::kBranch:
      break;
  }

  if (outcome.rounded) {
    ++stats_.callback_candidates;
    if (try_incumbent(*outcome.rounded)) {
      ++stats_.callback_accepted;
      if (outcome.bound_valid && outcome.bound >= prune_threshold()) {
        ++stats_.pruned_by_bound;
        note_closed_bound(outcome.bound);
        return;
      }
    } else {
      ++stats_.callback_rejected;
    }
  }
  push_children(node, outcome);
}

Result Solver::solve() {
  const double start = now_seconds();
  deadline_ = start + options_.time_limit_seconds;
  nodes_ = 0;
  lp_iterations_ = 0;
  stopped_ = false;
  frontier_seen_ = false;
  frontier_bound_ = 0.0;
  have_root_bound_ = false;
  root_bound_ = 0.0;
  stats_ = SearchStats{};
  // An incumbent seeded before solve() (add_initial_incumbent, or a
  // previous solve) is the trajectory's origin; restore it after the reset.
  if (has_incumbent_) stats_.incumbents.push_back({0, 0, incumbent_obj_});
  next_seq_ = 0;
  open_.clear();

  Node root;
  root.seq = next_seq_++;
  open_.push_back(std::move(root));
  stats_.max_open_size = 1;

  const std::size_t round_size = std::max<std::size_t>(1, options_.round_size);
  std::size_t threads = options_.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Workers turn off the per-solve basis copy; basis snapshots are taken
  // explicitly (save_basis) only for nodes that actually branch.
  lp::SimplexOptions worker_lp = options_.lp;
  worker_lp.collect_basis = false;

  std::vector<Node> round_nodes;
  std::vector<NodeOutcome> outcomes;

  while (!open_.empty()) {
    if (out_of_budget()) {
      stopped_ = true;
      break;
    }
    ++stats_.rounds;

    // Freeze the prune threshold for the round.  It is a pure function of
    // the incumbent (committed sequentially last round), so it is
    // identical for every thread count.
    const bool have_threshold = has_incumbent_;
    const double threshold = have_threshold ? prune_threshold() : kInf;

    // Sweep: close open nodes whose subtree bound already meets the gap.
    if (have_threshold) {
      auto keep = open_.begin();
      for (auto it = open_.begin(); it != open_.end(); ++it) {
        if (it->bound >= threshold) {
          ++stats_.pruned_by_bound;
          note_closed_bound(it->bound);
        } else {
          if (keep != it) *keep = std::move(*it);
          ++keep;
        }
      }
      open_.erase(keep, open_.end());
      if (open_.empty()) break;
    }

    // Hybrid selection: best-first while the open list is small, then
    // depth-first to bound memory.  seq makes the order a strict total
    // order, so selection is deterministic however open_ is laid out.
    const bool dfs = open_.size() > options_.dfs_open_threshold;
    const auto better = [dfs](const Node& a, const Node& b) {
      if (dfs) {
        if (a.depth != b.depth) return a.depth > b.depth;
        if (a.bound != b.bound) return a.bound < b.bound;
      } else {
        if (a.bound != b.bound) return a.bound < b.bound;
        if (a.depth != b.depth) return a.depth > b.depth;
      }
      return a.seq < b.seq;
    };
    std::size_t k = std::min(round_size, open_.size());
    k = std::min(k, options_.max_nodes - nodes_);  // nodes_ < max_nodes here
    if (k < open_.size()) {
      std::nth_element(open_.begin(),
                       open_.begin() + static_cast<std::ptrdiff_t>(k),
                       open_.end(), better);
    }
    std::sort(open_.begin(), open_.begin() + static_cast<std::ptrdiff_t>(k),
              better);
    round_nodes.assign(std::make_move_iterator(open_.begin()),
                       std::make_move_iterator(
                           open_.begin() + static_cast<std::ptrdiff_t>(k)));
    open_.erase(open_.begin(), open_.begin() + static_cast<std::ptrdiff_t>(k));

    outcomes.clear();
    outcomes.resize(k);

    const std::size_t nthreads = std::min(threads, k);
    while (workers_.size() < std::max<std::size_t>(nthreads, 1)) {
      workers_.push_back(std::make_unique<Worker>(problem_, worker_lp));
    }
    stats_.threads_used = std::max(stats_.threads_used, nthreads);

    const auto solve_guarded = [&](Worker& worker, const Node& node,
                                   NodeOutcome& out) {
      try {
        out = solve_node(worker, node, threshold, have_threshold);
      } catch (...) {
        out = NodeOutcome{};
        out.error = std::current_exception();
      }
    };

    if (nthreads <= 1) {
      for (std::size_t i = 0; i < k; ++i) {
        solve_guarded(*workers_[0], round_nodes[i], outcomes[i]);
        // Later outcomes are never observed once one node throws (the
        // commit loop rethrows in canonical order), so stop early.
        if (outcomes[i].error) break;
      }
    } else {
      std::atomic<std::size_t> cursor{0};
      const auto body = [&](std::size_t slot) {
        Worker& worker = *workers_[slot];
        for (;;) {
          const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= k) return;
          solve_guarded(worker, round_nodes[i], outcomes[i]);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(nthreads - 1);
      try {
        for (std::size_t slot = 1; slot < nthreads; ++slot) {
          pool.emplace_back(body, slot);
        }
      } catch (...) {
        cursor.store(k);  // drain the queue so joins return quickly
        for (std::thread& t : pool) t.join();
        throw;
      }
      body(0);
      for (std::thread& t : pool) t.join();
    }

    // Sequential commit in selection order: incumbent updates, frontier
    // bookkeeping, and child creation all happen here, on one thread, in
    // an order independent of which worker solved what.
    for (std::size_t i = 0; i < k; ++i) {
      if (outcomes[i].error) std::rethrow_exception(outcomes[i].error);
      commit_outcome(round_nodes[i], outcomes[i]);
    }
  }

  Result result;
  result.nodes = nodes_;
  result.lp_iterations = lp_iterations_;
  result.solve_seconds = now_seconds() - start;
  if (has_incumbent_) {
    result.objective = incumbent_obj_;
    result.x = incumbent_x_;
    if (stopped_) {
      result.status = Status::kLimitFeasible;
      // Global lower bound: the weakest of the still-open subtree bounds
      // and the closed frontier, improved by the root bound.
      double open_lb = kInf;
      bool have_open_lb = false;
      if (frontier_seen_) {
        open_lb = frontier_bound_;
        have_open_lb = true;
      }
      for (const Node& n : open_) {
        open_lb = std::min(open_lb, n.bound);
        have_open_lb = true;
      }
      double bb = have_root_bound_ ? root_bound_ : -kInf;
      if (have_open_lb) bb = std::max(bb, open_lb);
      result.best_bound = std::min(bb, incumbent_obj_);
      result.gap = std::isfinite(result.best_bound) && incumbent_obj_ != 0.0
                       ? (incumbent_obj_ - result.best_bound) /
                             std::abs(incumbent_obj_)
                       : kInf;
    } else {
      result.status = Status::kOptimal;
      result.best_bound = frontier_seen_
                              ? std::min(incumbent_obj_, frontier_bound_)
                              : incumbent_obj_;
      result.gap = incumbent_obj_ == 0.0
                       ? 0.0
                       : (incumbent_obj_ - result.best_bound) /
                             std::abs(incumbent_obj_);
    }
  } else {
    result.status = stopped_ ? Status::kLimitNoSolution : Status::kInfeasible;
    result.best_bound = -kInf;
    result.gap = kInf;
  }
  result.stats = stats_;
  return result;
}

}  // namespace cellstream::milp
