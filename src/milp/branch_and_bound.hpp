#pragma once
// Mixed-integer linear programming by branch-and-bound.
//
// The paper solves its mapping program with CPLEX, stopping at a 5 %
// optimality gap; this module provides the same service on top of the
// bounded-variable simplex in src/lp.  It is a general binary-MILP solver
// (variables declared integer must have bounds within [0, 1] here), with
// the features the mapping problem benefits from:
//
//  * depth-first diving so the incremental simplex warm-starts every node
//    from its parent's basis (a handful of phase-1 pivots per node),
//  * exactly-one groups (the assignment rows sum_i alpha_i^k = 1) used to
//    propagate fixings when branching,
//  * an application-provided rounding callback that turns fractional LP
//    points into feasible incumbents, giving early pruning,
//  * relative-gap termination identical to the paper's CPLEX usage.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace cellstream::milp {

struct Options {
  /// Accept any incumbent within this fraction of the optimum (the paper
  /// uses 0.05 with CPLEX).
  double relative_gap = 0.05;
  double absolute_gap = 1e-9;
  double integrality_tol = 1e-6;
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 120.0;
  lp::SimplexOptions lp;
};

enum class Status : std::uint8_t {
  kOptimal,        ///< Proven optimal within the requested gap.
  kInfeasible,     ///< No integer-feasible point exists.
  kLimitFeasible,  ///< Node/time limit hit; best incumbent returned.
  kLimitNoSolution ///< Node/time limit hit with no incumbent found.
};

const char* to_string(Status status);

struct Result {
  Status status = Status::kLimitNoSolution;
  double objective = 0.0;          ///< Incumbent objective (minimization).
  std::vector<double> x;           ///< Incumbent point (structural vars).
  double best_bound = 0.0;         ///< Proven lower bound.
  double gap = 0.0;                ///< (objective - best_bound)/objective.
  std::size_t nodes = 0;
  std::size_t lp_iterations = 0;
  double solve_seconds = 0.0;
};

/// Candidate integer solution produced by a rounding heuristic: true
/// objective value plus the full variable vector.  The solver re-verifies
/// feasibility against the problem before accepting it.
struct Candidate {
  double objective;
  std::vector<double> x;
};

/// Callback invoked with each node's fractional LP point; may return a
/// feasible integer candidate derived from it (or nullopt).
using RoundingCallback =
    std::function<std::optional<Candidate>(const std::vector<double>&)>;

class Solver {
 public:
  /// `problem` is copied; `integer_vars` lists the binary variables.
  Solver(lp::Problem problem, std::vector<lp::VarId> integer_vars,
         Options options = {});

  /// Declare that exactly one variable of `group` equals 1 in any feasible
  /// solution (the problem must already contain the corresponding row);
  /// enables fixing propagation when branching.
  void add_exactly_one_group(std::vector<lp::VarId> group);

  /// Branching priority per problem variable (higher = branch earlier);
  /// unset variables default to 0.
  void set_branch_priority(lp::VarId var, double priority);

  void set_rounding_callback(RoundingCallback callback) {
    rounding_ = std::move(callback);
  }

  /// Seed an incumbent known a priori (e.g. a greedy heuristic mapping).
  /// Verified against the problem before use.
  void add_initial_incumbent(const Candidate& candidate);

  Result solve();

 private:
  struct BoundChange {
    lp::VarId var;
    double lo, up;
  };

  void dive(std::size_t depth);
  bool try_incumbent(const Candidate& candidate);
  void fix_variable(lp::VarId var, double value,
                    std::vector<BoundChange>& undo);
  double prune_threshold() const;
  bool out_of_budget() const;

  lp::Problem problem_;
  std::vector<lp::VarId> integer_vars_;
  std::vector<bool> is_integer_;
  std::vector<double> priority_;
  std::vector<std::vector<lp::VarId>> groups_;
  std::vector<std::size_t> group_of_;  // per var; SIZE_MAX if none
  Options options_;
  RoundingCallback rounding_;

  // Solve-time state.
  std::unique_ptr<lp::IncrementalSimplex> simplex_;
  std::vector<double> cur_lo_, cur_up_;
  bool has_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_x_;
  double frontier_bound_ = 0.0;  // min bound among pruned/closed subtrees
  bool frontier_seen_ = false;
  double root_bound_ = 0.0;      // LP bound of the root node (global LB)
  bool have_root_bound_ = false;
  std::size_t nodes_ = 0;
  std::size_t lp_iterations_ = 0;
  double deadline_ = 0.0;
  bool stopped_ = false;
};

}  // namespace cellstream::milp
