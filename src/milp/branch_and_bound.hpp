#pragma once
// Mixed-integer linear programming by parallel branch-and-bound.
//
// The paper solves its mapping program with CPLEX, stopping at a 5 %
// optimality gap; this module provides the same service on top of the
// bounded-variable simplex in src/lp.  It is a general binary-MILP solver
// (variables declared integer must have bounds within [0, 1] here), with
// the features the mapping problem benefits from:
//
//  * a round-based parallel tree search: every round a deterministic
//    selection rule picks up to `round_size` open nodes, their LPs are
//    solved concurrently by worker threads (each owning a thread-confined
//    IncrementalSimplex warm-started from the parent's saved Basis), and
//    the outcomes are committed sequentially in the selection order,
//  * determinism by construction: the schedule (selection, pruning
//    threshold, commit order) depends only on `round_size`, never on
//    `threads`, and every node LP is a pure function of (problem, fixing
//    chain, parent basis) because the basis is refactorized on load — so
//    the returned mapping, objective, bound, and node count are
//    bit-identical for every thread count, including threads == 1,
//  * best-first selection (strongest bound first) that switches to
//    depth-first once the open list outgrows `dfs_open_threshold`, keeping
//    memory bounded while preserving warm-start locality,
//  * exactly-one groups (the assignment rows sum_i alpha_i^k = 1) used to
//    propagate fixings when branching,
//  * an application-provided rounding callback that turns fractional LP
//    points into feasible incumbents, giving early pruning,
//  * relative-gap termination identical to the paper's CPLEX usage.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace cellstream::milp {

struct Options {
  /// Accept any incumbent within this fraction of the optimum (the paper
  /// uses 0.05 with CPLEX).
  double relative_gap = 0.05;
  double absolute_gap = 1e-9;
  double integrality_tol = 1e-6;
  std::size_t max_nodes = 200000;
  double time_limit_seconds = 120.0;
  /// Worker threads solving node LPs concurrently; 0 means one per
  /// hardware thread.  The result is bit-identical for every value — only
  /// wall-clock time changes (see the determinism notes above and
  /// docs/FORMULATION.md).
  std::size_t threads = 1;
  /// Nodes selected (and solved concurrently) per round.  This is part of
  /// the deterministic schedule: changing it changes the search
  /// trajectory; changing `threads` does not.
  std::size_t round_size = 16;
  /// Open-list size beyond which selection switches from best-first to
  /// depth-first, bounding memory on hard instances.
  std::size_t dfs_open_threshold = 256;
  lp::SimplexOptions lp;
};

enum class Status : std::uint8_t {
  kOptimal,        ///< Proven optimal within the requested gap.
  kInfeasible,     ///< No integer-feasible point exists.
  kLimitFeasible,  ///< Node/time limit hit; best incumbent returned.
  kLimitNoSolution ///< Node/time limit hit with no incumbent found.
};

const char* to_string(Status status);

/// Observability counters for one solve() call, exported through the
/// mapping layer and `cellstream_cli solve`.
struct SearchStats {
  std::size_t rounds = 0;             ///< Bulk-synchronous rounds executed.
  std::size_t nodes = 0;              ///< Nodes whose LP was committed.
  std::size_t lp_iterations = 0;      ///< Simplex pivots across all nodes.
  std::size_t phase1_iterations = 0;  ///< Feasibility-restoring pivots.
  std::size_t warm_start_hits = 0;    ///< Node LPs seeded by a parent basis.
  std::size_t warm_start_misses = 0;  ///< All-slack starts (root or fallback).
  std::size_t pruned_by_bound = 0;    ///< Subtrees closed by the incumbent.
  std::size_t integral_leaves = 0;    ///< Nodes with an integral LP optimum.
  std::size_t infeasible_nodes = 0;
  std::size_t callback_candidates = 0;  ///< Rounding-callback proposals.
  std::size_t callback_accepted = 0;
  std::size_t callback_rejected = 0;  ///< Invalid / distrusted proposals.
  std::size_t max_open_size = 0;
  std::size_t threads_used = 1;  ///< Peak concurrent node solvers.

  /// One accepted incumbent improvement.  Stamped with the search
  /// position (round / committed nodes) rather than wall time so the
  /// trajectory is bit-identical for every thread count, like the rest
  /// of the round-based search.
  struct Incumbent {
    std::size_t round = 0;   ///< 0: initial incumbent, before round 1.
    std::size_t nodes = 0;   ///< Nodes committed when it was accepted.
    double objective = 0.0;  ///< The improved (minimization) objective.
  };
  /// Incumbent trajectory, strictly improving in objective.
  std::vector<Incumbent> incumbents;
};

struct Result {
  Status status = Status::kLimitNoSolution;
  double objective = 0.0;          ///< Incumbent objective (minimization).
  std::vector<double> x;           ///< Incumbent point (structural vars).
  double best_bound = 0.0;         ///< Proven lower bound.
  double gap = 0.0;                ///< (objective - best_bound)/objective.
  std::size_t nodes = 0;
  std::size_t lp_iterations = 0;
  double solve_seconds = 0.0;
  SearchStats stats;
};

/// Candidate integer solution produced by a rounding heuristic: true
/// objective value plus the full variable vector.  The solver re-verifies
/// finiteness, integrality, feasibility, and the claimed objective before
/// accepting it; any mismatch rejects the candidate outright.
struct Candidate {
  double objective;
  std::vector<double> x;
};

/// Callback invoked with each node's fractional LP point; may return a
/// feasible integer candidate derived from it (or nullopt).  With
/// Options::threads > 1 the callback runs concurrently from worker
/// threads, so it must be thread-safe; it must also be a pure function of
/// its argument or the deterministic-result guarantee is forfeit.
using RoundingCallback =
    std::function<std::optional<Candidate>(const std::vector<double>&)>;

class Solver {
 public:
  /// `problem` is copied; `integer_vars` lists the binary variables.
  Solver(lp::Problem problem, std::vector<lp::VarId> integer_vars,
         Options options = {});
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Declare that exactly one variable of `group` equals 1 in any feasible
  /// solution (the problem must already contain the corresponding row);
  /// enables fixing propagation when branching.
  void add_exactly_one_group(std::vector<lp::VarId> group);

  /// Branching priority per problem variable (higher = branch earlier);
  /// unset variables default to 0.
  void set_branch_priority(lp::VarId var, double priority);

  void set_rounding_callback(RoundingCallback callback) {
    rounding_ = std::move(callback);
  }

  /// Seed an incumbent known a priori (e.g. a greedy heuristic mapping).
  /// Verified against the problem before use.
  void add_initial_incumbent(const Candidate& candidate);

  Result solve();

 private:
  struct Fixing;       // persistent link of a node's fixing chain
  struct Node;         // open-list entry
  struct NodeOutcome;  // pure result of solving one node's LP
  struct Worker;       // thread-confined simplex + bound scratch

  /// Solve one node.  Pure function of (problem, node) given the frozen
  /// round threshold: the worker's bounds are fully reverted and the basis
  /// reloaded from the parent snapshot, so the result is independent of
  /// whatever the worker solved before.  Safe to call concurrently on
  /// distinct workers.
  NodeOutcome solve_node(Worker& worker, const Node& node,
                         double prune_bound, bool have_prune_bound) const;
  void commit_outcome(const Node& node, NodeOutcome& outcome);
  void push_children(const Node& node, const NodeOutcome& outcome);
  bool try_incumbent(const Candidate& candidate);
  double prune_threshold() const;
  bool out_of_budget() const;
  void note_closed_bound(double bound);

  lp::Problem problem_;
  std::vector<lp::VarId> integer_vars_;
  std::vector<bool> is_integer_;
  std::vector<double> priority_;
  std::vector<std::vector<lp::VarId>> groups_;
  std::vector<std::size_t> group_of_;  // per var; SIZE_MAX if none
  Options options_;
  RoundingCallback rounding_;

  // Solve-time state.  The incumbent intentionally persists across solve()
  // calls (an earlier solution primes the next solve's pruning).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Node> open_;
  std::uint64_t next_seq_ = 0;
  bool has_incumbent_ = false;
  double incumbent_obj_ = 0.0;
  std::vector<double> incumbent_x_;
  double frontier_bound_ = 0.0;  // min bound among pruned/closed subtrees
  bool frontier_seen_ = false;
  double root_bound_ = 0.0;      // LP bound of the root node (global LB)
  bool have_root_bound_ = false;
  std::size_t nodes_ = 0;
  std::size_t lp_iterations_ = 0;
  SearchStats stats_;
  double deadline_ = 0.0;
  bool stopped_ = false;
};

}  // namespace cellstream::milp
