#pragma once
// Deterministic random number generation.
//
// All randomized components of cellstream (graph generation, cost sampling,
// tie-breaking) take an explicit Rng so results are reproducible from a
// seed.  The generator is xoshiro256** (Blackman & Vigna), which is fast,
// has a 256-bit state and passes BigCrush; we avoid std::mt19937 because its
// stream is not guaranteed identical across standard library versions for
// the distributions layered on top.

#include <array>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace cellstream {

/// xoshiro256** pseudo-random generator with explicit seeding and
/// distribution helpers that are bit-reproducible across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via splitmix64, which
  /// guarantees a non-zero, well-mixed state for any seed value.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CS_ENSURE(lo <= hi, "uniform: empty range");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CS_ENSURE(lo <= hi, "uniform_int: empty range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw;
    do {
      draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Derive an independent child generator (for parallel components).
  Rng split() { return Rng((*this)()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cellstream
