#include "support/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace cellstream {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string format_number(double value, int digits) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "kB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_number(bytes, 4) + " " + kUnits[unit];
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace cellstream
