#pragma once
// Error handling primitives for cellstream.
//
// The library reports contract violations and invalid inputs by throwing
// cellstream::Error (derived from std::runtime_error).  CS_ENSURE is used at
// public API boundaries; CS_ASSERT guards internal invariants and compiles to
// the same check (the library is not performance-critical enough to strip
// internal checks in release builds, and silent corruption of a schedule is
// far worse than a branch).

#include <stdexcept>
#include <string>

namespace cellstream {

/// Exception type thrown on any contract violation or invalid input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace cellstream

/// Validate a condition; throw cellstream::Error with context on failure.
#define CS_ENSURE(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::cellstream::detail::throw_error(__FILE__, __LINE__, #cond, msg);  \
    }                                                                     \
  } while (0)

/// Internal invariant check.  Same behaviour as CS_ENSURE; distinct macro so
/// call sites document intent (caller bug vs. library bug).
#define CS_ASSERT(cond, msg) CS_ENSURE(cond, msg)
