#include "support/rng.hpp"

#include <numeric>

namespace cellstream {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CS_ENSURE(!weights.empty(), "weighted_index: no weights");
  double total = 0.0;
  for (double w : weights) {
    CS_ENSURE(w >= 0.0, "weighted_index: negative weight");
    total += w;
  }
  CS_ENSURE(total > 0.0, "weighted_index: all weights zero");
  const double draw = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (draw < acc) return i;
  }
  return weights.size() - 1;  // numerical edge: draw == total
}

}  // namespace cellstream
