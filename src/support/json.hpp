#pragma once
// Minimal JSON document model, parser and serializer.
//
// The observability layer (src/obs, src/report) exports machine-readable
// run statistics and the test suite parses them back (round-trip and
// schema checks), so the repository needs a JSON implementation without
// taking an external dependency.  This is a deliberately small subset:
// UTF-8 text, doubles for every number, objects preserving insertion
// order.  Good enough for telemetry documents; not a general-purpose
// validator of exotic inputs.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace cellstream::json {

/// One JSON value (tagged union).  Copyable; objects keep key order.
class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;                      // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double n) : kind_(Kind::kNumber), number_(n) {}
  Value(int n) : Value(static_cast<double>(n)) {}
  Value(std::int64_t n) : Value(static_cast<double>(n)) {}
  Value(std::uint64_t n) : Value(static_cast<double>(n)) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const {
    CS_ENSURE(is_bool(), "json: value is not a bool");
    return bool_;
  }
  double as_number() const {
    CS_ENSURE(is_number(), "json: value is not a number");
    return number_;
  }
  const std::string& as_string() const {
    CS_ENSURE(is_string(), "json: value is not a string");
    return string_;
  }
  const Array& items() const {
    CS_ENSURE(is_array(), "json: value is not an array");
    return array_;
  }
  const Object& members() const {
    CS_ENSURE(is_object(), "json: value is not an object");
    return object_;
  }

  /// Array append.
  void push_back(Value v) {
    CS_ENSURE(is_array(), "json: push_back on a non-array");
    array_.push_back(std::move(v));
  }

  /// Object insert-or-overwrite, preserving first-insertion order.
  void set(const std::string& key, Value v);

  /// True when the object has `key`.
  bool has(const std::string& key) const;

  /// Member lookup; throws when missing (use has() to probe).
  const Value& at(const std::string& key) const;

  /// Array element; throws when out of range.
  const Value& at(std::size_t index) const {
    CS_ENSURE(is_array(), "json: indexing a non-array");
    CS_ENSURE(index < array_.size(), "json: array index out of range");
    return array_[index];
  }

  std::size_t size() const {
    if (is_array()) return array_.size();
    CS_ENSURE(is_object(), "json: size of a scalar");
    return object_.size();
  }

  /// Serialize.  indent < 0: compact one-line form; indent >= 0: pretty,
  /// `indent` spaces per level.  Numbers round-trip (max_digits10);
  /// non-finite numbers are emitted as null (JSON has no NaN/Inf).
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document; trailing garbage is an error.
  /// Throws cellstream::Error with position info on malformed input.
  static Value parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace cellstream::json
