#include "support/parse.hpp"

#include <charconv>
#include <cmath>
#include <string>

#include "support/error.hpp"

namespace cellstream {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view text,
                       const char* reason) {
  throw Error("invalid " + std::string(what) + " '" + std::string(text) +
              "': " + reason);
}

}  // namespace

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  if (text.empty()) fail(what, text, "empty value");
  // std::from_chars accepts no sign for unsigned types, but reject '+'
  // and '-' explicitly for a clearer message than "trailing characters".
  if (text.front() == '-') fail(what, text, "must be non-negative");
  if (text.front() == '+') fail(what, text, "leading '+' not accepted");
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    fail(what, text, "out of range");
  }
  if (ec != std::errc() || ptr != end) {
    fail(what, text, "not a whole number");
  }
  return value;
}

double parse_double(std::string_view text, std::string_view what) {
  if (text.empty()) fail(what, text, "empty value");
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    fail(what, text, "out of range");
  }
  if (ec != std::errc() || ptr != end) {
    fail(what, text, "not a number");
  }
  if (!std::isfinite(value)) fail(what, text, "not finite");
  return value;
}

double parse_non_negative_double(std::string_view text,
                                 std::string_view what) {
  const double value = parse_double(text, what);
  if (value < 0.0) fail(what, text, "must be non-negative");
  return value;
}

}  // namespace cellstream
