#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace cellstream::json {

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN / Infinity
    return;
  }
  // Integers up to 2^53 print without an exponent or fraction.
  if (n == std::floor(n) && std::abs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", n);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, n);
  out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    CS_ENSURE(pos_ == text_.size(),
              "json: trailing characters at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      out.set(key, parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs unsupported: telemetry
          // documents only escape control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(token, &used);
    } catch (const std::exception&) {
      fail("malformed number '" + token + "'");
    }
    if (used != token.size()) fail("malformed number '" + token + "'");
    return Value(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_value(std::string& out, const Value& v, int indent, int depth) {
  const auto newline = [&](int level) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; return;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::kNumber: dump_number(out, v.as_number()); return;
    case Value::Kind::kString: dump_string(out, v.as_string()); return;
    case Value::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        dump_value(out, items[i], indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Value::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        dump_string(out, members[i].first);
        out += indent < 0 ? ":" : ": ";
        dump_value(out, members[i].second, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

void Value::set(const std::string& key, Value v) {
  CS_ENSURE(is_object(), "json: set on a non-object");
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool Value::has(const std::string& key) const {
  CS_ENSURE(is_object(), "json: has on a non-object");
  for (const Member& m : object_) {
    if (m.first == key) return true;
  }
  return false;
}

const Value& Value::at(const std::string& key) const {
  CS_ENSURE(is_object(), "json: member lookup on a non-object");
  for (const Member& m : object_) {
    if (m.first == key) return m.second;
  }
  throw Error("json: missing member '" + key + "'");
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(out, *this, indent, 0);
  return out;
}

Value Value::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace cellstream::json
