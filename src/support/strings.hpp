#pragma once
// Small string/formatting helpers shared by serializers and report writers.

#include <string>
#include <string_view>
#include <vector>

namespace cellstream {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Format a double with `digits` significant digits, trimming trailing
/// zeros ("12.5", "0.775", "3").  Used for stable, human-readable tables.
std::string format_number(double value, int digits = 6);

/// Format a byte count with a binary-unit suffix ("256 kB", "1.5 MB").
std::string format_bytes(double bytes);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace cellstream
