#pragma once
// Checked string-to-number parsing for user-facing inputs (CLI arguments,
// environment knobs).  Unlike std::atoi/std::atof these reject empty
// strings, trailing junk ("1e4x", "12abc"), negative values where an
// unsigned count is expected, and out-of-range magnitudes — with an error
// message naming the offending value, so a typo fails the command instead
// of silently becoming 0.

#include <cstdint>
#include <string_view>

namespace cellstream {

/// Parse a non-negative decimal integer.  Throws cellstream::Error on
/// empty input, sign characters, trailing junk, or overflow.  `what`
/// names the value in the error message (e.g. "instances").
std::uint64_t parse_u64(std::string_view text, std::string_view what);

/// Parse a finite floating-point number (decimal or scientific notation).
/// Throws cellstream::Error on empty input, trailing junk, overflow, or
/// non-finite results.
double parse_double(std::string_view text, std::string_view what);

/// parse_double restricted to values >= 0 (rates, ratios, sizes).
double parse_non_negative_double(std::string_view text,
                                 std::string_view what);

}  // namespace cellstream
