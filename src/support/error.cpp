#include "support/error.hpp"

#include <sstream>

namespace cellstream::detail {

void throw_error(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream os;
  os << message << " [" << expr << " failed at " << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace cellstream::detail
