#pragma once
// Flow-level model of the bounded-multiport communication model
// (paper Section 2.1), generalized to arbitrary shared resources.
//
// Every node has an outgoing and an incoming port with fixed capacity in
// bytes/s (infinite for main memory: the Cell's memory controller is not
// the bottleneck in the paper's model — only the PE interfaces are).
// Additional resources (e.g. the cross-chip BIF link of a dual-Cell QS22)
// can be registered and attached to transfers.  Concurrent transfers
// share every resource they touch max-min fairly, the fluid analogue of
// "all communications of a period happen simultaneously as long as
// average bandwidth per interface is respected".  Rates are recomputed
// whenever a transfer starts or finishes.
//
// Flows live in a flat vector kept sorted by (monotone) transfer id, so
// rate recomputation visits them in a deterministic order: repeating the
// same relative flow state reproduces bit-identical rates, which the
// simulator's steady-state fast-forward relies on (docs/PERFORMANCE.md).

#include <cstdint>
#include <limits>
#include <vector>

#include "des/engine.hpp"

namespace cellstream::des {

using TransferId = std::uint64_t;
using NodeId = std::size_t;
using ResourceId = std::size_t;

class FlowNetwork {
 public:
  /// `out_capacity[i]` / `in_capacity[i]` are node i's port bandwidths in
  /// bytes/s; use infinity() for unconstrained ports.
  FlowNetwork(Engine& engine, std::vector<double> out_capacity,
              std::vector<double> in_capacity);

  static double infinity() { return std::numeric_limits<double>::infinity(); }

  std::size_t node_count() const { return node_count_; }

  /// Register an extra shared resource (a link); returns its id for use
  /// with the resource-list start_transfer overload.
  ResourceId add_resource(double capacity);

  /// The out/in port resource ids of a node (for composing resource
  /// lists).
  ResourceId out_port(NodeId node) const;
  ResourceId in_port(NodeId node) const;

  /// Round every scheduled completion delay up to a multiple of `quantum`
  /// engine-time units (0 disables).  The simulator sets its tick size so
  /// all event times stay on an exactly-representable integer grid.
  void set_time_quantum(double quantum);

  /// Begin moving `bytes` from `src` to `dst`; `on_complete` fires (via
  /// the engine) when the last byte arrives.  Zero-byte transfers complete
  /// at the current time (still asynchronously).
  TransferId start_transfer(NodeId src, NodeId dst, double bytes,
                            InlineAction on_complete);

  /// Begin a transfer constrained by an explicit set of resources (e.g.
  /// {out_port(src), cross_chip_link, in_port(dst)}).
  TransferId start_transfer_over(std::vector<ResourceId> resources,
                                 double bytes, InlineAction on_complete);

  std::size_t active_transfers() const { return flows_.size(); }

  /// Current fair-share rate of a transfer (bytes/s); 0 if unknown id.
  double current_rate(TransferId id) const;

  /// Bytes still in flight for a transfer; 0 if unknown id.
  double remaining_bytes(TransferId id) const;

  // -- Fast-forward introspection / translation --------------------------
  /// Engine time at which flow progress was last materialized; remaining
  /// bytes reported by for_each_active are as of this instant.
  Time last_progress_time() const { return last_progress_; }
  /// The single pending completion event, if any (its engine sequence
  /// number orders it against other pending events).
  bool completion_pending() const { return completion_pending_; }
  EventId completion_event() const { return completion_event_; }
  /// Visit active flows in ascending id (= start) order:
  /// fn(id, remaining_bytes_at_last_progress, rate).
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (const Flow& flow : flows_) fn(flow.id, flow.remaining, flow.rate);
  }
  /// Clock-translation hook mirroring Engine::shift_time: the engine has
  /// moved every pending event (including our completion event) forward
  /// by `delta`; flow progress bookkeeping must follow.
  void on_time_shift(Time delta) { last_progress_ += delta; }

 private:
  struct Flow {
    TransferId id;
    std::vector<ResourceId> resources;
    double remaining;
    double rate = 0.0;
    InlineAction on_complete;
  };

  const Flow* find(TransferId id) const;
  void advance_progress();   // apply elapsed time at current rates
  void recompute_rates();    // max-min fair allocation
  void schedule_completion();
  void on_completion_event();

  Engine* engine_;
  std::size_t node_count_ = 0;
  std::vector<double> capacity_;  // per resource
  std::vector<Flow> flows_;       // sorted by id (ids issue monotonically)
  TransferId next_id_ = 1;
  double quantum_ = 0.0;
  Time last_progress_ = 0.0;
  EventId completion_event_ = 0;
  bool completion_pending_ = false;
};

}  // namespace cellstream::des
