#include "des/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cellstream::des {

namespace {
// Relative slack below which a transfer counts as finished (absorbs the
// floating-point drift of repeated progress updates).
constexpr double kFinishSlack = 1e-9;
}  // namespace

FlowNetwork::FlowNetwork(Engine& engine, std::vector<double> out_capacity,
                         std::vector<double> in_capacity)
    : engine_(&engine) {
  CS_ENSURE(out_capacity.size() == in_capacity.size(),
            "FlowNetwork: capacity vectors differ in size");
  node_count_ = out_capacity.size();
  capacity_.reserve(2 * node_count_);
  for (double c : out_capacity) {
    CS_ENSURE(c > 0.0, "FlowNetwork: non-positive port capacity");
    capacity_.push_back(c);
  }
  for (double c : in_capacity) {
    CS_ENSURE(c > 0.0, "FlowNetwork: non-positive port capacity");
    capacity_.push_back(c);
  }
  last_progress_ = engine.now();
}

ResourceId FlowNetwork::add_resource(double capacity) {
  CS_ENSURE(capacity > 0.0, "add_resource: non-positive capacity");
  capacity_.push_back(capacity);
  return capacity_.size() - 1;
}

ResourceId FlowNetwork::out_port(NodeId node) const {
  CS_ENSURE(node < node_count_, "out_port: unknown node");
  return node;
}

ResourceId FlowNetwork::in_port(NodeId node) const {
  CS_ENSURE(node < node_count_, "in_port: unknown node");
  return node_count_ + node;
}

TransferId FlowNetwork::start_transfer(NodeId src, NodeId dst, double bytes,
                                       std::function<void()> on_complete) {
  CS_ENSURE(src < node_count_ && dst < node_count_,
            "start_transfer: unknown node");
  CS_ENSURE(src != dst, "start_transfer: src == dst needs no transfer");
  return start_transfer_over({out_port(src), in_port(dst)}, bytes,
                             std::move(on_complete));
}

TransferId FlowNetwork::start_transfer_over(
    std::vector<ResourceId> resources, double bytes,
    std::function<void()> on_complete) {
  CS_ENSURE(bytes >= 0.0, "start_transfer: negative size");
  for (ResourceId r : resources) {
    CS_ENSURE(r < capacity_.size(), "start_transfer: unknown resource");
  }
  advance_progress();
  const TransferId id = next_id_++;
  flows_.emplace(
      id, Flow{std::move(resources), bytes, 0.0, std::move(on_complete)});
  recompute_rates();
  schedule_completion();
  return id;
}

double FlowNetwork::current_rate(TransferId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FlowNetwork::remaining_bytes(TransferId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  // Account progress since the last rate change without mutating state.
  const double elapsed = engine_->now() - last_progress_;
  return std::max(0.0, it->second.remaining - it->second.rate * elapsed);
}

void FlowNetwork::advance_progress() {
  const double elapsed = engine_->now() - last_progress_;
  if (elapsed > 0.0) {
    for (auto& [id, flow] : flows_) {
      if (flow.rate > 0.0 && std::isfinite(flow.rate)) {
        flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
      }
    }
  }
  last_progress_ = engine_->now();
}

void FlowNetwork::recompute_rates() {
  // Progressive filling: repeatedly saturate the resource with the
  // smallest fair share and freeze its flows at that rate.
  std::vector<double> left = capacity_;
  std::vector<std::size_t> count(capacity_.size(), 0);
  std::vector<Flow*> open;
  open.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    for (ResourceId r : flow.resources) ++count[r];
    open.push_back(&flow);
  }

  while (!open.empty()) {
    double fair = FlowNetwork::infinity();
    for (ResourceId r = 0; r < capacity_.size(); ++r) {
      if (count[r] > 0 && std::isfinite(left[r])) {
        fair = std::min(fair, left[r] / static_cast<double>(count[r]));
      }
    }
    if (!std::isfinite(fair)) {
      // Only infinite resources remain: those flows complete immediately.
      for (Flow* flow : open) flow->rate = FlowNetwork::infinity();
      break;
    }
    // Freeze every flow touching a resource now saturated at `fair`.
    std::vector<Flow*> still_open;
    bool froze_any = false;
    for (Flow* flow : open) {
      bool tight = false;
      for (ResourceId r : flow->resources) {
        if (std::isfinite(left[r]) &&
            left[r] / static_cast<double>(count[r]) <= fair * (1.0 + 1e-12)) {
          tight = true;
          break;
        }
      }
      if (tight) {
        flow->rate = fair;
        for (ResourceId r : flow->resources) {
          left[r] -= fair;
          --count[r];
        }
        froze_any = true;
      } else {
        still_open.push_back(flow);
      }
    }
    CS_ASSERT(froze_any, "progressive filling made no progress");
    open.swap(still_open);
  }
}

void FlowNetwork::schedule_completion() {
  if (completion_pending_) {
    engine_->cancel(completion_event_);
    completion_pending_ = false;
  }
  if (flows_.empty()) return;
  double dt = FlowNetwork::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining <= kFinishSlack) {
      dt = 0.0;
      break;
    }
    if (flow.rate > 0.0) {
      dt = std::min(dt, std::isfinite(flow.rate) ? flow.remaining / flow.rate
                                                 : 0.0);
    }
  }
  CS_ASSERT(std::isfinite(dt), "active transfer with zero rate");
  completion_event_ =
      engine_->schedule_in(dt, [this] { on_completion_event(); });
  completion_pending_ = true;
}

void FlowNetwork::on_completion_event() {
  completion_pending_ = false;
  advance_progress();
  // Collect finished flows first: callbacks may start new transfers.
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& flow = it->second;
    const bool done =
        flow.remaining <= kFinishSlack ||
        (std::isfinite(flow.rate) && flow.rate > 0.0 &&
         flow.remaining / flow.rate <= kFinishSlack) ||
        !std::isfinite(flow.rate);
    if (done) {
      callbacks.push_back(std::move(flow.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  schedule_completion();
  for (auto& callback : callbacks) {
    if (callback) callback();
  }
}

}  // namespace cellstream::des
