#include "des/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cellstream::des {

namespace {
// Relative slack below which a transfer counts as finished (absorbs the
// floating-point drift of repeated progress updates).
constexpr double kFinishSlack = 1e-9;
}  // namespace

FlowNetwork::FlowNetwork(Engine& engine, std::vector<double> out_capacity,
                         std::vector<double> in_capacity)
    : engine_(&engine) {
  CS_ENSURE(out_capacity.size() == in_capacity.size(),
            "FlowNetwork: capacity vectors differ in size");
  node_count_ = out_capacity.size();
  capacity_.reserve(2 * node_count_);
  for (double c : out_capacity) {
    CS_ENSURE(c > 0.0, "FlowNetwork: non-positive port capacity");
    capacity_.push_back(c);
  }
  for (double c : in_capacity) {
    CS_ENSURE(c > 0.0, "FlowNetwork: non-positive port capacity");
    capacity_.push_back(c);
  }
  last_progress_ = engine.now();
}

ResourceId FlowNetwork::add_resource(double capacity) {
  CS_ENSURE(capacity > 0.0, "add_resource: non-positive capacity");
  capacity_.push_back(capacity);
  return capacity_.size() - 1;
}

ResourceId FlowNetwork::out_port(NodeId node) const {
  CS_ENSURE(node < node_count_, "out_port: unknown node");
  return node;
}

ResourceId FlowNetwork::in_port(NodeId node) const {
  CS_ENSURE(node < node_count_, "in_port: unknown node");
  return node_count_ + node;
}

void FlowNetwork::set_time_quantum(double quantum) {
  CS_ENSURE(quantum >= 0.0 && std::isfinite(quantum),
            "set_time_quantum: bad quantum");
  quantum_ = quantum;
}

TransferId FlowNetwork::start_transfer(NodeId src, NodeId dst, double bytes,
                                       InlineAction on_complete) {
  CS_ENSURE(src < node_count_ && dst < node_count_,
            "start_transfer: unknown node");
  CS_ENSURE(src != dst, "start_transfer: src == dst needs no transfer");
  return start_transfer_over({out_port(src), in_port(dst)}, bytes,
                             std::move(on_complete));
}

TransferId FlowNetwork::start_transfer_over(std::vector<ResourceId> resources,
                                            double bytes,
                                            InlineAction on_complete) {
  CS_ENSURE(bytes >= 0.0, "start_transfer: negative size");
  for (ResourceId r : resources) {
    CS_ENSURE(r < capacity_.size(), "start_transfer: unknown resource");
  }
  advance_progress();
  const TransferId id = next_id_++;
  // Ids are issued monotonically, so appending keeps flows_ sorted.
  Flow flow;
  flow.id = id;
  flow.resources = std::move(resources);
  flow.remaining = bytes;
  flow.on_complete = std::move(on_complete);
  flows_.push_back(std::move(flow));
  recompute_rates();
  schedule_completion();
  return id;
}

const FlowNetwork::Flow* FlowNetwork::find(TransferId id) const {
  const auto it =
      std::lower_bound(flows_.begin(), flows_.end(), id,
                       [](const Flow& f, TransferId v) { return f.id < v; });
  if (it == flows_.end() || it->id != id) return nullptr;
  return &*it;
}

double FlowNetwork::current_rate(TransferId id) const {
  const Flow* flow = find(id);
  return flow == nullptr ? 0.0 : flow->rate;
}

double FlowNetwork::remaining_bytes(TransferId id) const {
  const Flow* flow = find(id);
  if (flow == nullptr) return 0.0;
  // Account progress since the last rate change without mutating state.
  const double elapsed = engine_->now() - last_progress_;
  return std::max(0.0, flow->remaining - flow->rate * elapsed);
}

void FlowNetwork::advance_progress() {
  const double elapsed = engine_->now() - last_progress_;
  if (elapsed > 0.0) {
    for (Flow& flow : flows_) {
      if (flow.rate > 0.0 && std::isfinite(flow.rate)) {
        flow.remaining = std::max(0.0, flow.remaining - flow.rate * elapsed);
      }
    }
  }
  last_progress_ = engine_->now();
}

void FlowNetwork::recompute_rates() {
  // Progressive filling: repeatedly saturate the resource with the
  // smallest fair share and freeze its flows at that rate.  flows_ is
  // visited in id order, so the arithmetic (and thus every resulting
  // rate bit pattern) depends only on the flow state, never on hashing.
  std::vector<double> left = capacity_;
  std::vector<std::size_t> count(capacity_.size(), 0);
  std::vector<Flow*> open;
  open.reserve(flows_.size());
  for (Flow& flow : flows_) {
    for (ResourceId r : flow.resources) ++count[r];
    open.push_back(&flow);
  }

  while (!open.empty()) {
    double fair = FlowNetwork::infinity();
    for (ResourceId r = 0; r < capacity_.size(); ++r) {
      if (count[r] > 0 && std::isfinite(left[r])) {
        fair = std::min(fair, left[r] / static_cast<double>(count[r]));
      }
    }
    if (!std::isfinite(fair)) {
      // Only infinite resources remain: those flows complete immediately.
      for (Flow* flow : open) flow->rate = FlowNetwork::infinity();
      break;
    }
    // Freeze every flow touching a resource now saturated at `fair`.
    std::vector<Flow*> still_open;
    bool froze_any = false;
    for (Flow* flow : open) {
      bool tight = false;
      for (ResourceId r : flow->resources) {
        if (std::isfinite(left[r]) &&
            left[r] / static_cast<double>(count[r]) <= fair * (1.0 + 1e-12)) {
          tight = true;
          break;
        }
      }
      if (tight) {
        flow->rate = fair;
        for (ResourceId r : flow->resources) {
          left[r] -= fair;
          --count[r];
        }
        froze_any = true;
      } else {
        still_open.push_back(flow);
      }
    }
    CS_ASSERT(froze_any, "progressive filling made no progress");
    open.swap(still_open);
  }
}

void FlowNetwork::schedule_completion() {
  if (completion_pending_) {
    engine_->cancel(completion_event_);
    completion_pending_ = false;
  }
  if (flows_.empty()) return;
  double dt = FlowNetwork::infinity();
  for (const Flow& flow : flows_) {
    if (flow.remaining <= kFinishSlack) {
      dt = 0.0;
      break;
    }
    if (flow.rate > 0.0) {
      dt = std::min(dt, std::isfinite(flow.rate) ? flow.remaining / flow.rate
                                                 : 0.0);
    }
  }
  CS_ASSERT(std::isfinite(dt), "active transfer with zero rate");
  if (quantum_ > 0.0 && dt > 0.0) {
    // Snap the completion onto the caller's time grid (rounding up: a
    // transfer is never reported complete before its last byte landed).
    dt = std::ceil(dt / quantum_) * quantum_;
  }
  completion_event_ =
      engine_->schedule_in(dt, [this] { on_completion_event(); });
  completion_pending_ = true;
}

void FlowNetwork::on_completion_event() {
  completion_pending_ = false;
  advance_progress();
  // Collect finished flows first: callbacks may start new transfers.
  std::vector<InlineAction> callbacks;
  std::erase_if(flows_, [&](Flow& flow) {
    const bool done =
        flow.remaining <= kFinishSlack ||
        (std::isfinite(flow.rate) && flow.rate > 0.0 &&
         flow.remaining / flow.rate <= kFinishSlack) ||
        !std::isfinite(flow.rate);
    if (done) callbacks.push_back(std::move(flow.on_complete));
    return done;
  });
  recompute_rates();
  schedule_completion();
  for (InlineAction& callback : callbacks) {
    if (callback) callback();
  }
}

}  // namespace cellstream::des
