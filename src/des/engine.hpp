#pragma once
// Minimal discrete-event simulation engine.
//
// Time is a double in seconds (the simulator layers an integer-nanosecond
// grid on top; the engine itself only requires finite, non-decreasing
// times).  Events are closures ordered by (time, insertion sequence) so
// simultaneous events fire deterministically in scheduling order.
//
// The hot path is allocation-free: closures live inline in a pooled slot
// (des::InlineAction), event handles pack (slot, generation) so a stale
// or unknown cancel is a cheap no-op, and the ready queue is a plain
// binary heap of POD entries.  Cancellation is by tombstone: a cancelled
// event's heap entry stays behind and is skipped when popped; tombstones
// are compacted lazily once they outnumber the live events, so
// cancel-heavy fault runs cannot grow the heap unboundedly.

#include <cmath>
#include <cstdint>
#include <vector>

#include "des/inline_action.hpp"
#include "support/error.hpp"

namespace cellstream::des {

using Time = double;
using EventId = std::uint64_t;

class Engine {
 public:
  Time now() const { return now_; }

  /// Schedule `action` at absolute time `at` (finite, >= now); returns a
  /// handle usable with cancel() / time_of() / sequence_of().
  EventId schedule_at(Time at, InlineAction action);

  /// Schedule `action` after a non-negative finite delay.
  EventId schedule_in(Time delay, InlineAction action) {
    CS_ENSURE(delay >= 0.0, "schedule_in: negative delay");
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event; cancelling an already-fired or unknown id is
  /// a no-op.
  void cancel(EventId id);

  /// Run until the queue drains or `until` is passed: events at exactly
  /// `until` fire, events strictly after it remain queued, and now()
  /// advances to at most `until`.  Calling with `until < now()` runs
  /// nothing and never moves now() backwards.
  void run_until(Time until);

  /// Run until the queue is completely drained.
  void run();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// True while `id` names a scheduled, not-yet-fired, not-cancelled
  /// event.
  bool is_pending(EventId id) const { return resolve(id) != nullptr; }

  /// Fire time of a pending event (throws on unknown/expired ids).
  Time time_of(EventId id) const;

  /// Tie-break sequence number of a pending event: among simultaneous
  /// events the smaller sequence fires first.  Throws on unknown ids.
  std::uint64_t sequence_of(EventId id) const;

  /// Translate the clock: advance now() and every pending event by
  /// `delta` (>= 0, finite).  Relative order and spacing are preserved;
  /// handles stay valid.  This is the steady-state fast-forward primitive
  /// (docs/PERFORMANCE.md).
  void shift_time(Time delta);

 private:
  struct Slot {
    InlineAction action;
    Time at = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t generation = 1;
    bool live = false;
  };
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
  };
  // Min-heap comparator for std::push_heap/pop_heap (which build a
  // max-heap, hence "later-first").
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  const Slot* resolve(EventId id) const {
    const std::uint32_t index = slot_of(id);
    if (index >= slots_.size()) return nullptr;
    const Slot& slot = slots_[index];
    if (!slot.live || slot.generation != generation_of(id)) return nullptr;
    return &slot;
  }
  Slot* resolve(EventId id) {
    return const_cast<Slot*>(std::as_const(*this).resolve(id));
  }

  void release(EventId id);  // free a live slot (action destroyed)
  bool step();               // execute one event; false if queue empty
  void drop_min_entry();     // pop the heap root without executing
  void maybe_compact();      // sweep tombstones when they dominate

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<Entry> heap_;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace cellstream::des
