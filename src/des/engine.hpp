#pragma once
// Minimal discrete-event simulation engine.
//
// Time is a double in seconds.  Events are closures ordered by (time,
// insertion sequence) so simultaneous events fire deterministically in
// scheduling order.  Cancellation is by tombstone: cancelled events stay
// in the heap but are skipped when popped.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace cellstream::des {

using Time = double;
using EventId = std::uint64_t;

class Engine {
 public:
  Time now() const { return now_; }

  /// Schedule `action` at absolute time `at` (>= now); returns a handle
  /// usable with cancel().
  EventId schedule_at(Time at, std::function<void()> action);

  /// Schedule `action` after a non-negative delay.
  EventId schedule_in(Time delay, std::function<void()> action) {
    CS_ENSURE(delay >= 0.0, "schedule_in: negative delay");
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event; cancelling an already-fired or unknown id is
  /// a no-op.
  void cancel(EventId id);

  /// Run until the queue drains or `until` is passed (events strictly
  /// after `until` remain queued; now() advances to at most `until`).
  void run_until(Time until);

  /// Run until the queue is completely drained.
  void run();

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return pending_; }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time at;
    EventId id;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  bool step();  // execute one event; false if queue empty

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Actions keyed by id; erased on execution/cancellation (tombstoning).
  std::unordered_map<EventId, std::function<void()>> actions_;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace cellstream::des
