#include "des/engine.hpp"

#include <algorithm>
#include <utility>

namespace cellstream::des {

namespace {
// Below this heap size tombstone sweeps are not worth their O(n) cost.
constexpr std::size_t kCompactMinEntries = 64;
}  // namespace

EventId Engine::schedule_at(Time at, InlineAction action) {
  CS_ENSURE(std::isfinite(at), "schedule_at: non-finite time");
  CS_ENSURE(at >= now_, "schedule_at: event in the past");
  CS_ENSURE(static_cast<bool>(action), "schedule_at: null action");
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.action = std::move(action);
  slot.at = at;
  slot.seq = next_seq_++;
  slot.live = true;
  const EventId id = (static_cast<EventId>(slot.generation) << 32) | index;
  heap_.push_back(Entry{at, slot.seq, id});
  std::push_heap(heap_.begin(), heap_.end(), EntryLater{});
  ++pending_;
  return id;
}

void Engine::release(EventId id) {
  const std::uint32_t index = slot_of(id);
  Slot& slot = slots_[index];
  slot.action.reset();
  slot.live = false;
  ++slot.generation;  // invalidates every outstanding handle to this slot
  free_slots_.push_back(index);
}

void Engine::cancel(EventId id) {
  if (resolve(id) == nullptr) return;
  release(id);
  --pending_;
  maybe_compact();
}

void Engine::maybe_compact() {
  // Lazy tombstone sweep: heap entries whose slot died (cancelled events)
  // are filtered out once they outnumber the live ones 4:1.  The factor
  // trades a bounded amount of heap slack (at most 4x the live events
  // plus the constant floor) for sweeps rare enough that cancel-heavy
  // churn pays O(1) amortized per cancel instead of rescanning the heap
  // every few events.
  if (heap_.size() < kCompactMinEntries) return;
  if (heap_.size() - pending_ <= 4 * pending_) return;
  std::erase_if(heap_,
                [this](const Entry& e) { return resolve(e.id) == nullptr; });
  std::make_heap(heap_.begin(), heap_.end(), EntryLater{});
}

void Engine::drop_min_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), EntryLater{});
  heap_.pop_back();
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Entry entry = heap_.front();
    drop_min_entry();
    Slot* slot = resolve(entry.id);
    if (slot == nullptr) continue;  // tombstone of a cancelled event
    CS_ASSERT(entry.at >= now_, "event queue went backwards");
    now_ = entry.at;
    // Free the slot before invoking: the action may schedule new events
    // (reusing this slot under a fresh generation) or cancel its own
    // already-fired id (a no-op, as documented).
    InlineAction action = std::move(slot->action);
    release(entry.id);
    --pending_;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Engine::run_until(Time until) {
  CS_ENSURE(!std::isnan(until), "run_until: NaN target");
  while (!heap_.empty()) {
    // Skip tombstones to see the true next event time.
    if (resolve(heap_.front().id) == nullptr) {
      drop_min_entry();
      continue;
    }
    if (heap_.front().at > until) break;
    step();
  }
  // Advance to the boundary, but never move the clock backwards when the
  // target is already in the past.
  now_ = std::max(now_, until);
}

void Engine::run() {
  while (step()) {
  }
}

Time Engine::time_of(EventId id) const {
  const Slot* slot = resolve(id);
  CS_ENSURE(slot != nullptr, "time_of: not a pending event");
  return slot->at;
}

std::uint64_t Engine::sequence_of(EventId id) const {
  const Slot* slot = resolve(id);
  CS_ENSURE(slot != nullptr, "sequence_of: not a pending event");
  return slot->seq;
}

void Engine::shift_time(Time delta) {
  CS_ENSURE(std::isfinite(delta), "shift_time: non-finite delta");
  CS_ENSURE(delta >= 0.0, "shift_time: negative delta");
  if (delta == 0.0) return;
  now_ += delta;
  for (Slot& slot : slots_) {
    if (slot.live) slot.at += delta;
  }
  for (Entry& entry : heap_) entry.at += delta;
  // Adding a constant preserves order on an exact grid, but guard against
  // callers shifting off-grid times where rounding could create ties.
  std::make_heap(heap_.begin(), heap_.end(), EntryLater{});
}

}  // namespace cellstream::des
