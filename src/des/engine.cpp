#include "des/engine.hpp"

#include <utility>

namespace cellstream::des {

EventId Engine::schedule_at(Time at, std::function<void()> action) {
  CS_ENSURE(at >= now_, "schedule_at: event in the past");
  CS_ENSURE(action != nullptr, "schedule_at: null action");
  const EventId id = next_id_++;
  queue_.push(Entry{at, id});
  actions_.emplace(id, std::move(action));
  ++pending_;
  return id;
}

void Engine::cancel(EventId id) {
  if (actions_.erase(id) > 0) --pending_;
}

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    auto it = actions_.find(entry.id);
    if (it == actions_.end()) {
      queue_.pop();  // tombstone
      continue;
    }
    queue_.pop();
    CS_ASSERT(entry.at >= now_, "event queue went backwards");
    now_ = entry.at;
    // Move the action out before invoking: the action may schedule or
    // cancel other events (rehashing actions_).
    std::function<void()> action = std::move(it->second);
    actions_.erase(it);
    --pending_;
    ++executed_;
    action();
    return true;
  }
  return false;
}

void Engine::run_until(Time until) {
  CS_ENSURE(until >= now_, "run_until: target in the past");
  while (!queue_.empty()) {
    // Skip tombstones to see the true next event time.
    if (actions_.find(queue_.top().id) == actions_.end()) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > until) break;
    step();
  }
  now_ = std::max(now_, until);
}

void Engine::run() {
  while (step()) {
  }
}

}  // namespace cellstream::des
