#pragma once
// Move-only type-erased callable with inline storage, sized so every
// event closure the simulator schedules fits without touching the heap
// (std::function allocates for captures beyond ~2 pointers on libstdc++).
// Oversized or over-aligned callables fall back to a single heap cell,
// so correctness never depends on the buffer size — only speed does.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cellstream::des {

class InlineAction {
 public:
  /// Inline buffer size in bytes.  The simulator's largest closure (the
  /// edge-fetch completion: this + 2 ids + 2 flags + a time) is ~40 bytes.
  static constexpr std::size_t kInlineBytes = 48;

  InlineAction() = default;
  InlineAction(std::nullptr_t) {}  // NOLINT: match std::function's null

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             !std::is_same_v<std::remove_cvref_t<F>, std::nullptr_t> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& fn) {  // NOLINT: implicit like std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move into dst, end src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) noexcept {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); }};

  void move_from(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cellstream::des
