#pragma once
// Explicit periodic steady-state schedule (paper Section 3.1).
//
// Given a mapping, the paper reconstructs a complete periodic schedule:
// after an initialization phase, every processing element repeats the same
// period of length T.  During one period, the PE hosting task T_k
// processes one instance of it, while the data D_{k,l} of the *previous*
// instance travels to each successor's host and the inputs of the *next*
// instance arrive.  Task T_k handles instance i during absolute period
// firstPeriod(T_k) + i.
//
// Because communications follow the bounded-multiport model, they need no
// intra-period ordering — only computations are laid out inside a period
// (sequentially, in topological order, on each PE).  This module builds
// that static artifact: the object one would actually load onto the Cell,
// with offsets, per-edge communication demands, validation and a textual
// Gantt rendering.

#include <cstdint>
#include <string>
#include <vector>

#include "core/steady_state.hpp"

namespace cellstream::schedule {

/// One computation slot inside the period of a PE.
struct TaskSlot {
  TaskId task = 0;
  double offset = 0.0;    ///< Start within the period, seconds.
  double duration = 0.0;  ///< wppe or wspe of the task on its host.
};

/// One steady-state communication: data flowing every period.
struct CommDemand {
  EdgeId edge = 0;
  PeId src = 0;
  PeId dst = 0;
  double bytes = 0.0;          ///< Per period (= per instance).
  double bandwidth_share = 0.0;  ///< bytes / period, average rate needed.
};

class PeriodicSchedule {
 public:
  PeriodicSchedule(const SteadyStateAnalysis& analysis, Mapping mapping);

  const Mapping& mapping() const { return mapping_; }
  double period() const { return period_; }
  double throughput() const { return 1.0 / period_; }

  /// Start offsets of each task inside its host's period (topological
  /// order per PE, packed back to back).
  const std::vector<std::vector<TaskSlot>>& pe_timelines() const {
    return pe_timelines_;
  }

  /// Steady-state communications (remote edges only).
  const std::vector<CommDemand>& comm_demands() const { return comms_; }

  /// Number of periods before every task is active (max firstPeriod + 1):
  /// the initialization phase of the paper's Fig. 3.
  std::int64_t warmup_periods() const { return warmup_periods_; }
  double warmup_seconds() const {
    return static_cast<double>(warmup_periods_) * period_;
  }

  /// Absolute start / completion time of one task instance under the
  /// periodic schedule.
  double task_start(TaskId task, std::int64_t instance) const;
  double task_finish(TaskId task, std::int64_t instance) const;

  /// Completion time of a whole stream of `instances` (when the last task
  /// finishes its last instance).
  double stream_makespan(std::int64_t instances) const;

  /// Throws Error if the schedule violates any invariant: slot overlap,
  /// slots exceeding the period, a consumer scheduled before its input
  /// can have arrived, or average communication rates above interface
  /// bandwidth.  (Constructed schedules always pass; exposed for tests
  /// and as executable documentation of the schedule's contract.)
  void validate() const;

  /// Human-readable timetable: per PE, the slots of one period.
  std::string to_text() const;

  /// ASCII Gantt chart of `periods` periods x all PEs.
  std::string to_gantt(std::int64_t periods = 4, std::size_t width = 64) const;

 private:
  const SteadyStateAnalysis* analysis_;
  Mapping mapping_;
  double period_ = 0.0;
  std::vector<std::int64_t> first_periods_;
  std::vector<std::vector<TaskSlot>> pe_timelines_;
  std::vector<TaskSlot> slot_of_task_;  // indexed by task
  std::vector<CommDemand> comms_;
  std::int64_t warmup_periods_ = 0;
};

}  // namespace cellstream::schedule
