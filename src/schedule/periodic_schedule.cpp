#include "schedule/periodic_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/strings.hpp"

namespace cellstream::schedule {

PeriodicSchedule::PeriodicSchedule(const SteadyStateAnalysis& analysis,
                                   Mapping mapping)
    : analysis_(&analysis), mapping_(std::move(mapping)) {
  const TaskGraph& graph = analysis.graph();
  const CellPlatform& platform = analysis.platform();
  CS_ENSURE(mapping_.task_count() == graph.task_count(),
            "PeriodicSchedule: mapping does not match the graph");
  mapping_.validate(platform);

  period_ = analysis.period(mapping_);
  CS_ENSURE(period_ > 0.0, "PeriodicSchedule: zero period (empty work?)");
  first_periods_ = analysis.first_periods();

  // Pack each PE's tasks back to back in topological order.
  pe_timelines_.assign(platform.pe_count(), {});
  slot_of_task_.assign(graph.task_count(), {});
  std::vector<double> cursor(platform.pe_count(), 0.0);
  for (TaskId t : graph.topological_order()) {
    const PeId pe = mapping_.pe_of(t);
    TaskSlot slot;
    slot.task = t;
    slot.offset = cursor[pe];
    slot.duration =
        platform.is_ppe(pe) ? graph.task(t).wppe : graph.task(t).wspe;
    cursor[pe] += slot.duration;
    pe_timelines_[pe].push_back(slot);
    slot_of_task_[t] = slot;
  }

  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const PeId src = mapping_.pe_of(edge.from);
    const PeId dst = mapping_.pe_of(edge.to);
    if (src == dst) continue;
    CommDemand demand;
    demand.edge = e;
    demand.src = src;
    demand.dst = dst;
    demand.bytes = edge.data_bytes;
    demand.bandwidth_share = edge.data_bytes / period_;
    comms_.push_back(demand);
  }

  warmup_periods_ = 0;
  for (std::int64_t fp : first_periods_) {
    warmup_periods_ = std::max(warmup_periods_, fp + 1);
  }
}

double PeriodicSchedule::task_start(TaskId task, std::int64_t instance) const {
  CS_ENSURE(task < slot_of_task_.size(), "task_start: bad task");
  CS_ENSURE(instance >= 0, "task_start: negative instance");
  const double period_index =
      static_cast<double>(first_periods_[task] + instance);
  return period_index * period_ + slot_of_task_[task].offset;
}

double PeriodicSchedule::task_finish(TaskId task,
                                     std::int64_t instance) const {
  return task_start(task, instance) + slot_of_task_[task].duration;
}

double PeriodicSchedule::stream_makespan(std::int64_t instances) const {
  CS_ENSURE(instances >= 1, "stream_makespan: empty stream");
  double makespan = 0.0;
  for (TaskId t = 0; t < slot_of_task_.size(); ++t) {
    makespan = std::max(makespan, task_finish(t, instances - 1));
  }
  return makespan;
}

void PeriodicSchedule::validate() const {
  const TaskGraph& graph = analysis_->graph();
  const CellPlatform& platform = analysis_->platform();
  const double tol = 1e-12 + 1e-9 * period_;

  // 1. Slots fit in the period without overlap.
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    double cursor = 0.0;
    for (const TaskSlot& slot : pe_timelines_[pe]) {
      CS_ENSURE(slot.offset >= cursor - tol,
                "schedule: overlapping slots on " + platform.pe_name(pe));
      cursor = slot.offset + slot.duration;
    }
    CS_ENSURE(cursor <= period_ + tol,
              "schedule: " + platform.pe_name(pe) + " busy for " +
                  format_number(cursor) + "s > period " +
                  format_number(period_) + "s");
  }

  // 2. Dependencies: the consumer of instance i (plus its peek lookahead)
  // runs only after every input instance finished a full period earlier
  // (one period is reserved for the communication).
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    const Edge& edge = graph.edge(e);
    const int peek = graph.task(edge.to).peek;
    const std::int64_t latest_needed = peek;  // instance 0 needs 0..peek
    const double produced =
        task_finish(edge.from, latest_needed);
    const double consumed = task_start(edge.to, 0);
    const bool remote = mapping_.pe_of(edge.from) != mapping_.pe_of(edge.to);
    const double slack = remote ? period_ : 0.0;  // communication period
    CS_ENSURE(consumed + tol >= produced + slack,
              "schedule: " + graph.task(edge.to).name + " starts before " +
                  graph.task(edge.from).name + " delivered its data");
  }

  // 3. Average communication rates respect interface bandwidth.
  std::vector<double> out_rate(platform.pe_count(), 0.0);
  std::vector<double> in_rate(platform.pe_count(), 0.0);
  for (const CommDemand& c : comms_) {
    out_rate[c.src] += c.bandwidth_share;
    in_rate[c.dst] += c.bandwidth_share;
  }
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const PeId pe = mapping_.pe_of(t);
    in_rate[pe] += graph.task(t).read_bytes / period_;
    out_rate[pe] += graph.task(t).write_bytes / period_;
  }
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    const double bw = platform.interface_bandwidth * (1.0 + 1e-9);
    CS_ENSURE(out_rate[pe] <= bw, "schedule: outgoing rate of " +
                                      platform.pe_name(pe) + " above bw");
    CS_ENSURE(in_rate[pe] <= bw, "schedule: incoming rate of " +
                                     platform.pe_name(pe) + " above bw");
  }
}

std::string PeriodicSchedule::to_text() const {
  const TaskGraph& graph = analysis_->graph();
  const CellPlatform& platform = analysis_->platform();
  std::ostringstream os;
  os << "period " << format_number(period_ * 1e3, 6) << " ms, throughput "
     << format_number(throughput(), 6) << " instances/s, warmup "
     << warmup_periods_ << " periods\n";
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    if (pe_timelines_[pe].empty()) continue;
    os << platform.pe_name(pe) << ":\n";
    for (const TaskSlot& slot : pe_timelines_[pe]) {
      os << "  +" << format_number(slot.offset * 1e3, 5) << " ms  "
         << graph.task(slot.task).name << " ("
         << format_number(slot.duration * 1e3, 5) << " ms, first period "
         << first_periods_[slot.task] << ")\n";
    }
  }
  if (!comms_.empty()) {
    os << "steady-state transfers per period:\n";
    for (const CommDemand& c : comms_) {
      os << "  " << graph.task(graph.edge(c.edge).from).name << " -> "
         << graph.task(graph.edge(c.edge).to).name << ": "
         << format_bytes(c.bytes) << " (" << platform.pe_name(c.src) << " -> "
         << platform.pe_name(c.dst) << ", "
         << format_bytes(c.bandwidth_share) << "/s)\n";
    }
  }
  return os.str();
}

std::string PeriodicSchedule::to_gantt(std::int64_t periods,
                                       std::size_t width) const {
  CS_ENSURE(periods >= 1 && width >= 8, "to_gantt: degenerate dimensions");
  const TaskGraph& graph = analysis_->graph();
  const CellPlatform& platform = analysis_->platform();
  const double horizon = static_cast<double>(periods) * period_;
  std::ostringstream os;
  os << "one column = " << format_number(horizon / width * 1e3, 4)
     << " ms, '|' = period boundary, '.' = idle\n";
  for (PeId pe = 0; pe < platform.pe_count(); ++pe) {
    if (pe_timelines_[pe].empty()) continue;
    std::string row(width, '.');
    for (const TaskSlot& slot : pe_timelines_[pe]) {
      // Letters cycle per task id; the first period of a task may start
      // late in the horizon (warmup).
      const char mark =
          static_cast<char>('A' + static_cast<int>(slot.task % 26));
      for (std::int64_t p = first_periods_[slot.task]; p < periods; ++p) {
        const double begin = static_cast<double>(p) * period_ + slot.offset;
        const double end = begin + slot.duration;
        const auto c0 = static_cast<std::size_t>(begin / horizon * width);
        auto c1 = static_cast<std::size_t>(std::ceil(end / horizon * width));
        c1 = std::min(c1, width);
        for (std::size_t c = c0; c < std::max(c1, c0 + 1) && c < width; ++c) {
          row[c] = mark;
        }
      }
    }
    // Period boundaries.
    for (std::int64_t p = 1; p < periods; ++p) {
      const auto c = static_cast<std::size_t>(
          static_cast<double>(p) * period_ / horizon * width);
      if (c < width && row[c] == '.') row[c] = '|';
    }
    os << platform.pe_name(pe) << " " << row << "\n";
  }
  os << "legend:";
  for (TaskId t = 0; t < std::min<TaskId>(graph.task_count(), 26); ++t) {
    os << " " << static_cast<char>('A' + static_cast<int>(t % 26)) << "="
       << graph.task(t).name;
  }
  os << "\n";
  return os.str();
}

}  // namespace cellstream::schedule
