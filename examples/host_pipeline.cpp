// Actually *run* a streaming computation through the scheduler: a small
// DSP pipeline (synthesize -> moving-average filter (peek=1) -> decimate
// -> RMS meter) executes on host threads standing in for the Cell's PEs,
// pipelined according to the MILP mapping (runtime::run_stream).
//
//   $ ./host_pipeline [instances]
//
// One instance = one block of 512 samples.  The sink cross-checks every
// RMS value against a sequentially computed reference, so this example
// doubles as an end-to-end correctness demonstration of the runtime.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "mapping/milp_mapper.hpp"
#include "runtime/host_runtime.hpp"
#include "support/parse.hpp"

namespace {

using namespace cellstream;
using runtime::Packet;
using runtime::TaskInputs;

constexpr std::size_t kBlock = 512;

Packet pack_samples(const std::vector<double>& samples) {
  Packet p(samples.size() * sizeof(double));
  std::memcpy(p.data(), samples.data(), p.size());
  return p;
}

std::vector<double> unpack_samples(const Packet& p) {
  std::vector<double> samples(p.size() / sizeof(double));
  std::memcpy(samples.data(), p.data(), p.size());
  return samples;
}

std::vector<double> synthesize_block(std::int64_t instance) {
  std::vector<double> block(kBlock);
  for (std::size_t s = 0; s < kBlock; ++s) {
    const double t =
        static_cast<double>(instance) * kBlock + static_cast<double>(s);
    block[s] = std::sin(0.01 * t) + 0.25 * std::sin(0.037 * t);
  }
  return block;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t instances = 2000;
  try {
    if (argc > 1) {
      instances = static_cast<std::int64_t>(parse_u64(argv[1], "instances"));
    }
  } catch (const cellstream::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  // The task graph: costs describe the *Cell* execution the mapping is
  // optimized for; the host run then follows that mapping.
  TaskGraph graph("dsp");
  Task synth;
  synth.name = "synthesize";
  synth.wppe = 0.4e-3;
  synth.wspe = 0.2e-3;
  const TaskId t_synth = graph.add_task(synth);

  Task filter;
  filter.name = "moving_average";
  filter.wppe = 1.2e-3;
  filter.wspe = 0.3e-3;  // SIMD-friendly
  filter.peek = 1;       // smooths across the block boundary
  const TaskId t_filter = graph.add_task(filter);

  Task decimate;
  decimate.name = "decimate";
  decimate.wppe = 0.3e-3;
  decimate.wspe = 0.15e-3;
  const TaskId t_decimate = graph.add_task(decimate);

  Task meter;
  meter.name = "rms_meter";
  meter.wppe = 0.2e-3;
  meter.wspe = 0.4e-3;  // scalar reduction: PPE-friendly
  const TaskId t_meter = graph.add_task(meter);

  graph.add_edge(t_synth, t_filter, kBlock * sizeof(double));
  graph.add_edge(t_filter, t_decimate, kBlock * sizeof(double));
  graph.add_edge(t_decimate, t_meter, kBlock / 2 * sizeof(double));

  const SteadyStateAnalysis analysis(graph, platforms::playstation3());
  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(analysis);
  std::printf("mapping: %s (predicted %.0f blocks/s on the Cell)\n",
              lp.mapping.to_string(analysis.platform()).c_str(),
              lp.throughput);

  std::vector<double> rms(static_cast<std::size_t>(instances), 0.0);
  std::vector<runtime::TaskFunction> tasks(4);
  tasks[t_synth] = [](const TaskInputs& in) {
    return std::vector<Packet>{pack_samples(synthesize_block(in.instance))};
  };
  tasks[t_filter] = [](const TaskInputs& in) {
    const std::vector<double> cur = unpack_samples(*in.inputs[0][0]);
    // 3-tap moving average; the last sample peeks into the next block.
    std::vector<double> next;
    if (in.inputs[0][1] != nullptr) next = unpack_samples(*in.inputs[0][1]);
    std::vector<double> out(kBlock);
    for (std::size_t s = 0; s < kBlock; ++s) {
      const double a = cur[s];
      const double b = s + 1 < kBlock ? cur[s + 1]
                       : (next.empty() ? cur[s] : next[0]);
      const double c = s + 2 < kBlock ? cur[s + 2]
                       : (next.empty() ? cur[s]
                                       : next[(s + 2) - kBlock]);
      out[s] = (a + b + c) / 3.0;
    }
    return std::vector<Packet>{pack_samples(out)};
  };
  tasks[t_decimate] = [](const TaskInputs& in) {
    const std::vector<double> cur = unpack_samples(*in.inputs[0][0]);
    std::vector<double> out(kBlock / 2);
    for (std::size_t s = 0; s < out.size(); ++s) out[s] = cur[2 * s];
    return std::vector<Packet>{pack_samples(out)};
  };
  tasks[t_meter] = [&](const TaskInputs& in) {
    const std::vector<double> cur = unpack_samples(*in.inputs[0][0]);
    double acc = 0.0;
    for (double v : cur) acc += v * v;
    rms[static_cast<std::size_t>(in.instance)] =
        std::sqrt(acc / static_cast<double>(cur.size()));
    return std::vector<Packet>{};
  };

  runtime::RunOptions options;
  options.instances = instances;
  const runtime::RunStats stats =
      runtime::run_stream(analysis, lp.mapping, tasks, options);
  std::printf("host run: %lld blocks in %.3f s (%.0f blocks/s wall)\n",
              static_cast<long long>(instances), stats.wall_seconds,
              stats.throughput);

  // Cross-check a few RMS values against a sequential reference.
  std::size_t checked = 0, wrong = 0;
  for (std::int64_t i : {std::int64_t{0}, instances / 2, instances - 1}) {
    const std::vector<double> cur = synthesize_block(i);
    const std::vector<double> next = synthesize_block(i + 1);
    std::vector<double> filtered(kBlock);
    for (std::size_t s = 0; s < kBlock; ++s) {
      const double a = cur[s];
      const double b = s + 1 < kBlock ? cur[s + 1]
                       : (i + 1 < instances ? next[0] : cur[s]);
      const double c = s + 2 < kBlock ? cur[s + 2]
                       : (i + 1 < instances ? next[(s + 2) - kBlock] : cur[s]);
      filtered[s] = (a + b + c) / 3.0;
    }
    double acc = 0.0;
    for (std::size_t s = 0; s < kBlock; s += 2) {
      acc += filtered[s] * filtered[s];
    }
    const double expected = std::sqrt(acc / (kBlock / 2.0));
    ++checked;
    if (std::abs(expected - rms[static_cast<std::size_t>(i)]) > 1e-12) {
      ++wrong;
      std::printf("MISMATCH at block %lld: %.12f vs %.12f\n",
                  static_cast<long long>(i), rms[static_cast<std::size_t>(i)],
                  expected);
    }
  }
  std::printf("verification: %zu/%zu reference blocks match\n",
              checked - wrong, checked);
  return wrong == 0 ? 0 : 1;
}
