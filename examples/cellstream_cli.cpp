// Command-line front end over the library — the workflow a downstream
// user scripts against:
//
//   cellstream_cli generate 40 7 1.5            > app.graph
//   cellstream_cli info     app.graph
//   cellstream_cli solve    app.graph milp 8    > app.mapping
//   cellstream_cli simulate app.graph app.mapping 5000
//
// Graphs and mappings are the library's plain-text formats (TaskGraph /
// Mapping to_text), so artifacts are diffable and versionable.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "fault/failover.hpp"
#include "fault/fault_plan.hpp"
#include "gen/daggen.hpp"
#include "obs/report.hpp"
#include "report/stats_io.hpp"
#include "support/json.hpp"
#include "support/parse.hpp"
#include "support/strings.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/annealing.hpp"
#include "mapping/local_search.hpp"
#include "mapping/milp_mapper.hpp"
#include "runtime/host_runtime.hpp"
#include "schedule/periodic_schedule.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using namespace cellstream;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  CS_ENSURE(in.good(), "cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cellstream_cli generate <tasks> <seed> [ccr]\n"
               "  cellstream_cli info     <graph-file>\n"
               "  cellstream_cli solve    <graph-file> <strategy> [spes] "
               "[threads]\n"
               "      strategy: milp | greedy-mem | greedy-cpu | "
               "greedy-period | local-search | round-robin | ppe-only\n"
               "      threads:  milp only; node-LP workers (0 = all cores;"
               " the result is identical for every value)\n"
               "  cellstream_cli simulate <graph-file> <mapping-file> "
               "[instances] [trace.json]\n"
               "  cellstream_cli run      <graph-file> <mapping-file> "
               "[instances]\n"
               "      execute the stream on host threads (synthetic checksum "
               "task\n"
               "      bodies) and check end-to-end stream integrity "
               "(invariant I8)\n"
               "  cellstream_cli schedule <graph-file> <mapping-file>\n"
               "  cellstream_cli check    <graph-file> <mapping-file> "
               "[instances]\n"
               "  cellstream_cli stats    <graph-file> <mapping-file> "
               "[instances] [json|csv] [--validate]\n"
               "      simulate and print the telemetry report "
               "(docs/OBSERVABILITY.md);\n"
               "      --validate: schema-check the emitted JSON and require "
               "the\n"
               "      predicted-vs-observed cross-check (invariant I7) to "
               "pass\n"
               "fault injection (simulate, run, stats; docs/ROBUSTNESS.md):\n"
               "  --fault-plan <seed-or-file>   deterministic fault scenario:"
               " a\n"
               "      decimal seed derives a random plan "
               "(fault::FaultPlan::random),\n"
               "      anything else is read as a serialized plan file\n"
               "  --failover <strategy>         remap strategy after a "
               "fail-stop:\n"
               "      greedy-mem (default) | greedy-cpu | milp "
               "(simulate/stats only)\n");
  return 2;
}

/// --fault-plan argument: a bare decimal number derives a seeded random
/// plan for this platform/stream; anything else names a plan file
/// (fault::FaultPlan::to_text format).
fault::FaultPlan parse_fault_plan(const std::string& spec,
                                  const CellPlatform& platform,
                                  std::int64_t instances) {
  bool numeric = !spec.empty();
  for (const char c : spec) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) numeric = false;
  }
  fault::FaultPlan plan =
      numeric ? fault::FaultPlan::random(
                    parse_u64(spec, "fault-plan seed"), platform, instances)
              : fault::FaultPlan::from_text(read_file(spec));
  plan.validate(platform);
  return plan;
}

/// Split `argv[first..)` into flag values and positional arguments.
struct CliArgs {
  std::vector<std::string> positional;
  std::string fault_plan;  ///< --fault-plan value ("" when absent)
  std::string failover = "greedy-mem";
  bool validate = false;
};

CliArgs parse_args(int argc, char** argv, int first) {
  CliArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      args.validate = true;
    } else if (arg == "--fault-plan" || arg == "--failover") {
      CS_ENSURE(i + 1 < argc, arg + ": missing value");
      (arg == "--fault-plan" ? args.fault_plan : args.failover) = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

void print_fault_summary(const fault::FaultStats& faults) {
  std::printf("dma retries:        %lld (%.3f ms backoff)\n",
              static_cast<long long>(faults.dma_retries),
              faults.backoff_seconds * 1e3);
  std::printf("slowdown injected:  %.3f ms, hangs: %lld (%.3f ms)\n",
              faults.slowdown_seconds * 1e3,
              static_cast<long long>(faults.hangs),
              faults.hang_seconds * 1e3);
  if (faults.failovers > 0) {
    std::printf("failover:           PE %lld lost at instance %lld\n",
                static_cast<long long>(faults.failed_pe),
                static_cast<long long>(faults.fail_instance));
    std::printf("                    %lld task(s) migrated (%s), "
                "downtime %.3f ms\n",
                static_cast<long long>(faults.migrated_tasks),
                format_bytes(faults.migrated_bytes).c_str(),
                faults.downtime_seconds * 1e3);
  }
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  gen::DagGenParams params;
  params.task_count = static_cast<std::size_t>(parse_u64(argv[2], "tasks"));
  params.seed = parse_u64(argv[3], "seed");
  TaskGraph graph = gen::daggen_random(params);
  if (argc > 4) gen::set_ccr(graph, parse_non_negative_double(argv[4], "ccr"));
  std::fputs(graph.to_text().c_str(), stdout);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 3) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(argv[2]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  std::printf("graph:   %s\n", graph.name().c_str());
  std::printf("tasks:   %zu (depth %zu)\n", graph.task_count(), graph.depth());
  std::printf("edges:   %zu\n", graph.edge_count());
  std::printf("work:    %.3f ms/instance on PPE, %.3f ms on SPEs\n",
              graph.total_wppe() * 1e3, graph.total_wspe() * 1e3);
  std::printf("data:    %s/instance, CCR %.3g\n",
              format_bytes(graph.total_data_bytes()).c_str(),
              graph.ccr(gen::kPaperOpsRate));
  std::printf("ppe-only throughput: %.2f instances/s\n",
              analysis.throughput(ppe_only_mapping(graph)));
  return 0;
}

int cmd_solve(int argc, char** argv) {
  if (argc < 4) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(argv[2]));
  const std::string strategy = argv[3];
  const std::size_t spes =
      argc > 4 ? static_cast<std::size_t>(parse_u64(argv[4], "spes")) : 8;
  const CellPlatform platform = platforms::qs22_with_spes(spes);
  const SteadyStateAnalysis analysis(graph, platform);

  Mapping mapping;
  if (strategy == "milp") {
    mapping::MilpMapperOptions milp_options;
    if (argc > 5) {
      milp_options.with_threads(
          static_cast<std::size_t>(parse_u64(argv[5], "threads")));
    }
    const mapping::MilpMapperResult r =
        mapping::solve_optimal_mapping(analysis, milp_options);
    const milp::SearchStats& s = r.stats;
    const std::size_t starts = s.warm_start_hits + s.warm_start_misses;
    std::fprintf(stderr, "milp: %s, gap %.3f, %zu nodes, %.2fs\n",
                 milp::to_string(r.status), r.gap, r.nodes, r.solve_seconds);
    std::fprintf(stderr,
                 "milp: %zu rounds on %zu thread(s), %zu pivots "
                 "(%zu phase-1), warm-start rate %.0f%%\n",
                 s.rounds, s.threads_used, s.lp_iterations,
                 s.phase1_iterations,
                 starts != 0
                     ? 100.0 * static_cast<double>(s.warm_start_hits) /
                           static_cast<double>(starts)
                     : 0.0);
    std::fprintf(stderr,
                 "milp: %zu pruned, %zu integral leaves, %zu infeasible, "
                 "callback %zu/%zu accepted, peak open list %zu\n",
                 s.pruned_by_bound, s.integral_leaves, s.infeasible_nodes,
                 s.callback_accepted, s.callback_candidates, s.max_open_size);
    mapping = r.mapping;
  } else if (strategy == "local-search") {
    mapping = mapping::local_search_heuristic(analysis);
  } else if (strategy == "annealing") {
    mapping = mapping::annealing_heuristic(analysis);
  } else {
    mapping = mapping::run_heuristic(strategy, analysis);
  }
  std::fprintf(stderr, "throughput: %.2f instances/s (%s)\n",
               analysis.throughput(mapping),
               analysis.feasible(mapping) ? "feasible" : "INFEASIBLE");
  std::fputs(mapping.to_text().c_str(), stdout);
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  const CliArgs args = parse_args(argc, argv, 2);
  if (args.positional.size() < 2) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(args.positional[0]));
  const Mapping mapping = Mapping::from_text(read_file(args.positional[1]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  if (args.positional.size() > 2) {
    options.instances =
        static_cast<std::size_t>(parse_u64(args.positional[2], "instances"));
  }
  const char* trace_path =
      args.positional.size() > 3 ? args.positional[3].c_str() : nullptr;
  options.record_trace = trace_path != nullptr;

  int rc = 0;
  sim::SimResult run;
  double predicted = analysis.throughput(mapping);
  if (!args.fault_plan.empty()) {
    // Faulted run: delegate to the failover coordinator (handles both
    // transient-only plans and the drain -> remap -> resume split), then
    // hold the outcome to the full oracle — I1-I7 per phase, I8 stream
    // integrity, I9 degraded-mapping conformance.
    const fault::FaultPlan plan = parse_fault_plan(
        args.fault_plan, analysis.platform(),
        static_cast<std::int64_t>(options.instances));
    fault::FailoverOptions fopts;
    fopts.sim = options;
    fopts.sim.record_trace = true;  // the oracle's trace checks need it
    fopts.strategy = args.failover;
    const fault::FailoverOutcome outcome =
        fault::run_with_failover(analysis, mapping, plan, fopts);
    run = outcome.result;
    if (outcome.failover_performed) predicted = outcome.predicted_post_throughput;
    print_fault_summary(run.faults);
    const check::InvariantReport oracle =
        check::check_failover_invariants(analysis, outcome);
    std::printf("invariants:         %s\n",
                oracle.ok() ? "I1-I9 green" : "VIOLATED");
    if (!oracle.ok()) {
      std::fprintf(stderr, "%s\n", oracle.to_string().c_str());
      rc = 1;
    }
  } else {
    run = sim::simulate(analysis, mapping, options);
  }
  if (trace_path != nullptr) {
    std::ofstream trace_out(trace_path);
    CS_ENSURE(trace_out.good(), "cannot write trace file");
    sim::write_chrome_trace(trace_out, run.trace, analysis.platform());
    std::fprintf(stderr, "trace written to %s (open in chrome://tracing)\n",
                 trace_path);
  }
  std::printf("instances:          %zu\n", options.instances);
  std::printf("makespan:           %.3f s\n", run.makespan);
  std::printf("steady throughput:  %.2f instances/s\n", run.steady_throughput);
  std::printf("predicted:          %.2f instances/s (%.1f%% achieved)\n",
              predicted, 100.0 * run.steady_throughput / predicted);
  std::printf("dma transfers:      %llu\n",
              static_cast<unsigned long long>(run.dma_transfers));
  return rc;
}

/// Synthetic task bodies for `cellstream_cli run`: every task emits one
/// 8-byte packet per output edge carrying an FNV-1a checksum of its
/// identity, the instance index and every input packet — so any routing,
/// ordering or loss bug upstream changes the bytes that arrive downstream,
/// and the end-to-end accounting (I8) is backed by real data movement.
std::vector<runtime::TaskFunction> checksum_bodies(const TaskGraph& graph) {
  std::vector<runtime::TaskFunction> bodies;
  bodies.reserve(graph.task_count());
  for (TaskId t = 0; t < graph.task_count(); ++t) {
    const std::size_t outputs = graph.out_edges(t).size();
    bodies.push_back([t, outputs](const runtime::TaskInputs& in) {
      std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
      const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
          h ^= (v >> (8 * b)) & 0xffu;
          h *= 1099511628211ull;  // FNV prime
        }
      };
      mix(static_cast<std::uint64_t>(t));
      mix(static_cast<std::uint64_t>(in.instance));
      for (const auto& edge_inputs : in.inputs) {
        for (const runtime::Packet* p : edge_inputs) {
          if (p == nullptr) continue;
          for (const std::byte byte : *p) {
            h ^= static_cast<std::uint64_t>(byte);
            h *= 1099511628211ull;
          }
        }
      }
      std::vector<runtime::Packet> out(outputs);
      for (runtime::Packet& p : out) {
        p.resize(sizeof h);
        std::memcpy(p.data(), &h, sizeof h);
      }
      return out;
    });
  }
  return bodies;
}

int cmd_run(int argc, char** argv) {
  const CliArgs args = parse_args(argc, argv, 2);
  if (args.positional.size() < 2) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(args.positional[0]));
  const Mapping mapping = Mapping::from_text(read_file(args.positional[1]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());

  runtime::RunOptions options;
  if (args.positional.size() > 2) {
    options.instances =
        static_cast<std::int64_t>(parse_u64(args.positional[2], "instances"));
  }
  options.failover_strategy = args.failover;
  fault::FaultPlan plan;
  if (!args.fault_plan.empty()) {
    plan = parse_fault_plan(args.fault_plan, analysis.platform(),
                            options.instances);
    options.fault_plan = &plan;
  }

  const runtime::RunStats stats =
      runtime::run_stream(analysis, mapping, checksum_bodies(graph), options);
  std::printf("instances:          %lld\n",
              static_cast<long long>(options.instances));
  std::printf("wall time:          %.3f s\n", stats.wall_seconds);
  std::printf("throughput:         %.2f instances/s (wall)\n",
              stats.throughput);
  std::printf("tasks executed:     %llu\n",
              static_cast<unsigned long long>(stats.tasks_executed));
  if (options.fault_plan != nullptr) print_fault_summary(stats.faults);

  // I8: the stream must arrive whole — every instance completed exactly
  // once, every edge's packets produced and retired exactly N times.
  const std::vector<check::Violation> violations = check::check_stream_integrity(
      graph, check::accounting_of(stats), options.instances);
  std::printf("stream integrity:   %s\n",
              violations.empty() ? "I8 green" : "VIOLATED");
  for (const check::Violation& v : violations) {
    std::fprintf(stderr, "I8: %s\n", v.detail.c_str());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_schedule(int argc, char** argv) {
  if (argc < 4) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(argv[2]));
  const Mapping mapping = Mapping::from_text(read_file(argv[3]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const schedule::PeriodicSchedule sched(analysis, mapping);
  sched.validate();
  std::fputs(sched.to_text().c_str(), stdout);
  std::printf("\n%s", sched.to_gantt(4, 72).c_str());
  return 0;
}

int cmd_check(int argc, char** argv) {
  if (argc < 4) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(argv[2]));
  const Mapping mapping = Mapping::from_text(read_file(argv[3]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  if (argc > 4) {
    options.instances = static_cast<std::size_t>(parse_u64(argv[4], "instances"));
  }
  options.record_trace = true;
  const sim::SimResult run = sim::simulate(analysis, mapping, options);
  const check::InvariantReport report =
      check::check_invariants(analysis, mapping, run);
  std::printf("%s\n", report.to_string().c_str());
  return report.ok() ? 0 : 1;
}

int cmd_stats(int argc, char** argv) {
  const CliArgs args = parse_args(argc, argv, 2);
  const bool validate = args.validate;
  const std::vector<std::string>& positional = args.positional;
  if (positional.size() < 2) return usage();
  const TaskGraph graph = TaskGraph::from_text(read_file(positional[0]));
  const Mapping mapping = Mapping::from_text(read_file(positional[1]));
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  if (positional.size() > 2) {
    options.instances =
        static_cast<std::size_t>(parse_u64(positional[2], "instances"));
  }
  const std::string format = positional.size() > 3 ? positional[3] : "json";
  CS_ENSURE(format == "json" || format == "csv",
            "stats: unknown format '" + format + "' (json or csv)");

  obs::Report report;
  if (!args.fault_plan.empty()) {
    // Faulted run: the occupation table and cross-check cover the *final*
    // phase against the mapping it executed (post-failover, that is the
    // reduced-platform steady state — invariant I9's view); the faults
    // section carries the whole run's counters.
    const fault::FaultPlan plan = parse_fault_plan(
        args.fault_plan, analysis.platform(),
        static_cast<std::int64_t>(options.instances));
    fault::FailoverOptions fopts;
    fopts.sim = options;
    fopts.strategy = args.failover;
    const fault::FailoverOutcome outcome =
        fault::run_with_failover(analysis, mapping, plan, fopts);
    report = obs::build_report(analysis, outcome.phase_mappings.back(),
                               outcome.phases.back().counters);
    report.faults = fault::fault_summary(
        outcome.result.faults,
        outcome.failover_performed ? outcome.predicted_post_throughput : 0.0);
  } else {
    const sim::SimResult run = sim::simulate(analysis, mapping, options);
    report = obs::build_report(analysis, mapping, run.counters);
  }
  const std::string json_text = report::stats_json(report);
  std::fputs(format == "csv" ? report::stats_csv(report).c_str()
                             : json_text.c_str(),
             stdout);

  int rc = 0;
  if (validate) {
    // Round-trip the emitted JSON through the parser and the schema
    // checker, then require the I7 cross-check verdict to be green.
    const json::Value document = json::Value::parse(json_text);
    for (const std::string& problem :
         report::validate_stats_json(document)) {
      std::fprintf(stderr, "schema: %s\n", problem.c_str());
      rc = 1;
    }
    if (!report.crosscheck_applicable) {
      std::fprintf(stderr, "crosscheck: not applicable (no instances?)\n");
      rc = 1;
    } else if (!report.crosscheck_ok()) {
      for (const std::string& detail : report.flagged) {
        std::fprintf(stderr, "crosscheck: %s\n", detail.c_str());
      }
      rc = 1;
    }
    std::fprintf(stderr, "stats: %s\n", rc == 0 ? "valid, cross-check OK"
                                                : "FAILED validation");
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "info") return cmd_info(argc, argv);
    if (command == "solve") return cmd_solve(argc, argv);
    if (command == "simulate") return cmd_simulate(argc, argv);
    if (command == "run") return cmd_run(argc, argv);
    if (command == "schedule") return cmd_schedule(argc, argv);
    if (command == "check") return cmd_check(argc, argv);
    if (command == "stats") return cmd_stats(argc, argv);
    return usage();
  } catch (const cellstream::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
