// Maps the MP2-style audio encoder (the stand-in for the paper's "real
// audio encoder") onto a QS22 Cell and compares every mapping strategy,
// then streams 5000 frames through the simulator under the best one.
//
//   $ ./audio_encoder [subband_groups]

#include <cstdio>

#include "gen/apps.hpp"
#include "support/parse.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/local_search.hpp"
#include "mapping/milp_mapper.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;

  std::size_t groups = 8;
  try {
    if (argc > 1) {
      groups = static_cast<std::size_t>(parse_u64(argv[1], "subband_groups"));
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const TaskGraph graph = gen::audio_encoder_graph(groups);
  const CellPlatform platform = platforms::qs22_single_cell();
  const SteadyStateAnalysis analysis(graph, platform);

  std::printf("audio encoder: %zu tasks, %zu edges, depth %zu\n",
              graph.task_count(), graph.edge_count(), graph.depth());

  report::Table table({"strategy", "throughput(frames/s)", "speedup",
                       "bottleneck"});
  const double base_period = analysis.period(mapping::ppe_only(analysis));

  Mapping best = mapping::ppe_only(analysis);
  double best_period = base_period;
  for (const char* name : {"ppe-only", "greedy-mem", "greedy-cpu",
                           "greedy-period", "local-search"}) {
    Mapping m = std::string(name) == "local-search"
                    ? mapping::local_search_heuristic(analysis)
                    : mapping::run_heuristic(name, analysis);
    if (!analysis.feasible(m)) continue;
    const ResourceUsage usage = analysis.usage(m);
    table.add_row({name, format_number(1.0 / usage.period, 4),
                   format_number(base_period / usage.period, 3),
                   usage.bottleneck});
    if (usage.period < best_period) {
      best_period = usage.period;
      best = m;
    }
  }

  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(analysis);
  {
    const ResourceUsage usage = analysis.usage(lp.mapping);
    table.add_row({"milp", format_number(1.0 / usage.period, 4),
                   format_number(base_period / usage.period, 3),
                   usage.bottleneck});
    if (usage.period < best_period) {
      best_period = usage.period;
      best = lp.mapping;
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("best mapping: %s\n\n", best.to_string(platform).c_str());

  sim::SimOptions options;
  options.instances = 5000;
  const sim::SimResult run = sim::simulate(analysis, best, options);
  std::printf("simulated: %zu frames in %.2fs of Cell time -> %.1f frames/s "
              "steady state\n",
              options.instances, run.makespan, run.steady_throughput);
  // 1152 samples per frame at 44.1 kHz = 26.1 ms of audio per frame.
  const double realtime_factor = run.steady_throughput * 1152.0 / 44100.0;
  std::printf("that is %.1fx realtime for 44.1 kHz stereo\n", realtime_factor);
  return 0;
}
