// Quickstart: build a small streaming application, compute the optimal
// mapping for a PlayStation 3 Cell, and run it through the simulator.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~80 lines: TaskGraph ->
// CellPlatform -> SteadyStateAnalysis -> solve_optimal_mapping ->
// simulate.

#include <cstdio>

#include "core/steady_state.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cellstream;

  // 1. Describe the application: a 5-stage video-ish pipeline where the
  //    middle stages are SIMD-friendly (much faster on a SPE) and the
  //    ends are control-heavy (faster on the PPE).
  TaskGraph graph("quickstart");
  Task decode;
  decode.name = "decode";
  decode.wppe = 0.8e-3;   // 0.8 ms per instance on the PPE
  decode.wspe = 1.6e-3;   // branchy: twice as slow on a SPE
  decode.read_bytes = 8 * 1024;  // reads the stream from main memory
  const TaskId t_decode = graph.add_task(decode);

  Task filter;
  filter.name = "filter";
  filter.wppe = 2.0e-3;
  filter.wspe = 0.4e-3;   // SIMD: 5x faster on a SPE
  const TaskId t_filter = graph.add_task(filter);

  Task sharpen = filter;
  sharpen.name = "sharpen";
  sharpen.peek = 1;       // needs the *next* frame too (temporal filter)
  const TaskId t_sharpen = graph.add_task(sharpen);

  Task blend = filter;
  blend.name = "blend";
  const TaskId t_blend = graph.add_task(blend);

  Task encode;
  encode.name = "encode";
  encode.wppe = 1.0e-3;
  encode.wspe = 2.5e-3;
  encode.write_bytes = 4 * 1024;  // writes the result back to memory
  const TaskId t_encode = graph.add_task(encode);

  graph.add_edge(t_decode, t_filter, 16 * 1024);   // 16 kB per frame
  graph.add_edge(t_decode, t_sharpen, 16 * 1024);
  graph.add_edge(t_filter, t_blend, 16 * 1024);
  graph.add_edge(t_sharpen, t_blend, 16 * 1024);
  graph.add_edge(t_blend, t_encode, 16 * 1024);

  // 2. Pick a platform and build the steady-state analysis.
  const CellPlatform ps3 = platforms::playstation3();
  const SteadyStateAnalysis analysis(graph, ps3);
  std::printf("platform: %zu PPE + %zu SPE, %zu kB local store each\n",
              ps3.ppe_count, ps3.spe_count, ps3.local_store_bytes / 1024);

  // 3. Baseline: everything on the PPE.
  const Mapping baseline = mapping::ppe_only(analysis);
  std::printf("PPE-only throughput: %.1f instances/s\n",
              analysis.throughput(baseline));

  // 4. Optimal mapping via the paper's mixed linear program (5%% gap).
  const mapping::MilpMapperResult optimal =
      mapping::solve_optimal_mapping(analysis);
  std::printf("optimal mapping:     %s\n",
              optimal.mapping.to_string(ps3).c_str());
  std::printf("optimal throughput:  %.1f instances/s (%.2fx, gap %.1f%%)\n",
              optimal.throughput,
              optimal.throughput * analysis.period(baseline),
              100.0 * optimal.gap);

  // 5. Execute 2000 stream instances in the cycle-level simulator.
  sim::SimOptions options;
  options.instances = 2000;
  const sim::SimResult run = sim::simulate(analysis, optimal.mapping, options);
  std::printf("simulated steady-state throughput: %.1f instances/s "
              "(%.1f%% of prediction)\n",
              run.steady_throughput,
              100.0 * run.steady_throughput / optimal.throughput);
  return 0;
}
