// Maps the video filter/encode pipeline (the paper's motivating use case:
// "video edition softwares, web radios or Video On Demand") and studies
// how the achievable frame rate scales with the number of SPEs — a
// miniature of the paper's Fig. 7 for a concrete application.
//
//   $ ./video_pipeline [tiles]

#include <cstdio>

#include "gen/apps.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/parse.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;

  std::size_t tiles = 4;
  try {
    if (argc > 1) tiles = static_cast<std::size_t>(parse_u64(argv[1], "tiles"));
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const TaskGraph graph = gen::video_pipeline_graph(tiles);
  std::printf("video pipeline: %zu tasks (%zu tiles), %zu edges\n",
              graph.task_count(), tiles, graph.edge_count());

  report::Table table({"spes", "predicted fps", "simulated fps", "mapping"});
  for (std::size_t spes = 0; spes <= 8; spes += 2) {
    const CellPlatform platform = platforms::qs22_with_spes(spes);
    const SteadyStateAnalysis analysis(graph, platform);
    const mapping::MilpMapperResult lp =
        mapping::solve_optimal_mapping(analysis);

    sim::SimOptions options;
    options.instances = 1500;
    const sim::SimResult run = sim::simulate(analysis, lp.mapping, options);
    table.add_row({std::to_string(spes), format_number(lp.throughput, 4),
                   format_number(run.steady_throughput, 4),
                   lp.mapping.to_string(platform)});
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("note how motion estimation (peek=2, SIMD-friendly) and the "
              "tile encoders migrate to SPEs as they become available, while "
              "the branchy entropy coder stays on the PPE.\n");
  return 0;
}
