// Generate random streaming applications and compare every mapping
// strategy on them — a workbench for exploring when the MILP matters.
//
//   $ ./explore_mappings [tasks] [seed] [ccr]
//
// Prints per-strategy throughput, the analytic-vs-simulated agreement and
// a DOT rendering of the graph (pipe into `dot -Tpng` to visualize).

#include <cstdio>

#include "gen/daggen.hpp"
#include "support/parse.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/annealing.hpp"
#include "mapping/local_search.hpp"
#include "mapping/milp_mapper.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;

  gen::DagGenParams params;
  double ccr = 0.775;
  try {
    if (argc > 1) {
      params.task_count = static_cast<std::size_t>(parse_u64(argv[1], "tasks"));
    }
    if (argc > 2) params.seed = parse_u64(argv[2], "seed");
    if (argc > 3) ccr = parse_non_negative_double(argv[3], "ccr");
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, ccr);
  const CellPlatform platform = platforms::qs22_single_cell();
  const SteadyStateAnalysis analysis(graph, platform);

  std::printf("graph %s: %zu tasks, %zu edges, depth %zu, CCR %.3g\n\n",
              graph.name().c_str(), graph.task_count(), graph.edge_count(),
              graph.depth(), ccr);

  report::Table table({"strategy", "predicted/s", "simulated/s", "speedup",
                       "feasible"});
  const double base_period = analysis.period(mapping::ppe_only(analysis));

  auto evaluate = [&](const std::string& name, const Mapping& m) {
    const bool ok = analysis.feasible(m);
    double predicted = 0.0, simulated = 0.0;
    if (ok) {
      predicted = analysis.throughput(m);
      sim::SimOptions options;
      options.instances = 1000;
      simulated = sim::simulate(analysis, m, options).steady_throughput;
    }
    table.add_row({name, format_number(predicted, 4),
                   format_number(simulated, 4),
                   ok ? format_number(base_period * predicted, 3) : "-",
                   ok ? "yes" : "no"});
  };

  for (const char* name :
       {"ppe-only", "round-robin", "greedy-mem", "greedy-cpu",
        "greedy-period"}) {
    evaluate(name, mapping::run_heuristic(name, analysis));
  }
  evaluate("local-search", mapping::local_search_heuristic(analysis));
  evaluate("annealing", mapping::annealing_heuristic(analysis));
  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(analysis);
  evaluate("milp", lp.mapping);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("milp solve: %s, gap %.3f, %zu nodes, %.2fs\n\n",
              milp::to_string(lp.status), lp.gap, lp.nodes, lp.solve_seconds);
  std::printf("# DOT graph (render with: dot -Tpng -o graph.png)\n%s",
              graph.to_dot().c_str());
  return 0;
}
