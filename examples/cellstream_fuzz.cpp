// Differential fuzz harness over the generate -> map -> schedule ->
// simulate pipeline (src/check).  Exit code 0 means every case held all
// invariants; 1 means at least one violation (each printed with its
// one-seed reproducer); 2 is a usage error.
//
//   cellstream_fuzz --smoke              # CI: bounded seed set + budget
//   cellstream_fuzz --cases 500 --seed 7 # long local run
//   cellstream_fuzz --case 1234567890    # reproduce one reported failure

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz_driver.hpp"
#include "support/parse.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cellstream_fuzz [options]\n"
               "  --smoke            bounded CI preset (fixed seed set)\n"
               "  --faults           bounded fault-injection sweep: every\n"
               "                     case runs under a random FaultPlan\n"
               "                     through the failover coordinator and\n"
               "                     the I8/I9 oracle (fixed seed set)\n"
               "  --cases <n>        number of cases (default 100)\n"
               "  --seed <s>         base seed of the case stream\n"
               "  --instances <n>    stream length per simulation\n"
               "  --fault-prob <p>   fraction of cases run under faults\n"
               "                     (default 0; pass 1 when reproducing a\n"
               "                     '--faults' failure with --case)\n"
               "  --threads <n>      case-sweep workers (0 = all cores; the\n"
               "                     report is identical at any count)\n"
               "  --case <seed>      reproduce a single case by its seed\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cellstream;
  check::FuzzOptions options;
  bool have_single_case = false;
  std::uint64_t single_case_seed = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      // Flag values go through the checked parsers (support/parse.hpp), so
      // "--cases 12abc" or "--seed -1" is a hard error naming the flag,
      // not a silent zero or a wrapped unsigned value.
      const auto next_u64 = [&](std::uint64_t& out_value) {
        if (i + 1 >= argc) return false;
        out_value = parse_u64(argv[++i], arg);
        return true;
      };
      const auto next_double = [&](double& out_value) {
        if (i + 1 >= argc) return false;
        out_value = parse_non_negative_double(argv[++i], arg);
        return true;
      };
      std::uint64_t value = 0;
      double fraction = 0.0;
      if (arg == "--smoke") {
        // The CI budget: a fixed, deterministic seed set small enough for
        // the ctest timeout (tests/CMakeLists.txt) yet >= 100 pipelines.
        options.base_seed = 2026;
        options.cases = 120;
        options.instances = 150;
        options.milp_time_limit = 3.0;
      } else if (arg == "--faults") {
        // The fault sweep of the acceptance checklist: 200 deterministic
        // cases, every one exercised under a random FaultPlan (most with a
        // mid-stream SPE fail-stop) plus the I8/I9 oracle.
        options.base_seed = 2027;
        options.cases = 200;
        options.instances = 150;
        options.fault_probability = 1.0;
        options.milp_time_limit = 3.0;
      } else if (arg == "--fault-prob" && next_double(fraction)) {
        options.fault_probability = fraction;
      } else if (arg == "--cases" && next_u64(value)) {
        options.cases = static_cast<std::size_t>(value);
      } else if (arg == "--seed" && next_u64(value)) {
        options.base_seed = value;
      } else if (arg == "--instances" && next_u64(value)) {
        options.instances = static_cast<std::size_t>(value);
      } else if (arg == "--threads" && next_u64(value)) {
        options.threads = static_cast<std::size_t>(value);
      } else if (arg == "--case" && next_u64(value)) {
        have_single_case = true;
        single_case_seed = value;
      } else {
        return usage();
      }
    }

    if (have_single_case) {
      const check::FuzzCase scenario =
          check::make_case(single_case_seed, options);
      std::cout << "reproducing " << scenario.to_string() << "\n";
      const std::vector<check::Violation> violations =
          check::run_case(scenario, options);
      if (violations.empty()) {
        std::cout << "all invariants held\n";
        return 0;
      }
      for (const check::Violation& v : violations) {
        std::cout << "[" << v.invariant << "] " << v.detail << "\n";
      }
      return 1;
    }
    const check::FuzzReport report = check::run_fuzz(options, &std::cout);
    std::cout << report.summary() << "\n";
    return report.ok() ? 0 : 1;
  } catch (const cellstream::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
