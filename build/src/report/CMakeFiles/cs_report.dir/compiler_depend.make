# Empty compiler generated dependencies file for cs_report.
# This may be replaced when dependencies are built.
