file(REMOVE_RECURSE
  "libcs_report.a"
)
