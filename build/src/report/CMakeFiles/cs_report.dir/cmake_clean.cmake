file(REMOVE_RECURSE
  "CMakeFiles/cs_report.dir/table.cpp.o"
  "CMakeFiles/cs_report.dir/table.cpp.o.d"
  "libcs_report.a"
  "libcs_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
