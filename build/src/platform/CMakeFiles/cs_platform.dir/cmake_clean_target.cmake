file(REMOVE_RECURSE
  "libcs_platform.a"
)
