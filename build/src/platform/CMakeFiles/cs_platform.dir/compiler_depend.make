# Empty compiler generated dependencies file for cs_platform.
# This may be replaced when dependencies are built.
