file(REMOVE_RECURSE
  "CMakeFiles/cs_platform.dir/cell.cpp.o"
  "CMakeFiles/cs_platform.dir/cell.cpp.o.d"
  "libcs_platform.a"
  "libcs_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
