file(REMOVE_RECURSE
  "libcs_des.a"
)
