# Empty dependencies file for cs_des.
# This may be replaced when dependencies are built.
