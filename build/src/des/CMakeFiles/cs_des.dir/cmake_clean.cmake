file(REMOVE_RECURSE
  "CMakeFiles/cs_des.dir/engine.cpp.o"
  "CMakeFiles/cs_des.dir/engine.cpp.o.d"
  "CMakeFiles/cs_des.dir/flow_network.cpp.o"
  "CMakeFiles/cs_des.dir/flow_network.cpp.o.d"
  "libcs_des.a"
  "libcs_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
