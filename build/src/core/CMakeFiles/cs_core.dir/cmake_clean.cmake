file(REMOVE_RECURSE
  "CMakeFiles/cs_core.dir/mapping.cpp.o"
  "CMakeFiles/cs_core.dir/mapping.cpp.o.d"
  "CMakeFiles/cs_core.dir/steady_state.cpp.o"
  "CMakeFiles/cs_core.dir/steady_state.cpp.o.d"
  "CMakeFiles/cs_core.dir/task_graph.cpp.o"
  "CMakeFiles/cs_core.dir/task_graph.cpp.o.d"
  "libcs_core.a"
  "libcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
