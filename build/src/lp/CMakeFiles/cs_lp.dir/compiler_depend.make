# Empty compiler generated dependencies file for cs_lp.
# This may be replaced when dependencies are built.
