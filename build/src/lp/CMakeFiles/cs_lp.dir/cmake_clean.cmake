file(REMOVE_RECURSE
  "CMakeFiles/cs_lp.dir/problem.cpp.o"
  "CMakeFiles/cs_lp.dir/problem.cpp.o.d"
  "CMakeFiles/cs_lp.dir/simplex.cpp.o"
  "CMakeFiles/cs_lp.dir/simplex.cpp.o.d"
  "CMakeFiles/cs_lp.dir/sparse_lu.cpp.o"
  "CMakeFiles/cs_lp.dir/sparse_lu.cpp.o.d"
  "libcs_lp.a"
  "libcs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
