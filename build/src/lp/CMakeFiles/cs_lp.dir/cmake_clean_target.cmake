file(REMOVE_RECURSE
  "libcs_lp.a"
)
