file(REMOVE_RECURSE
  "CMakeFiles/cs_gen.dir/apps.cpp.o"
  "CMakeFiles/cs_gen.dir/apps.cpp.o.d"
  "CMakeFiles/cs_gen.dir/daggen.cpp.o"
  "CMakeFiles/cs_gen.dir/daggen.cpp.o.d"
  "libcs_gen.a"
  "libcs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
