file(REMOVE_RECURSE
  "libcs_gen.a"
)
