# Empty dependencies file for cs_gen.
# This may be replaced when dependencies are built.
