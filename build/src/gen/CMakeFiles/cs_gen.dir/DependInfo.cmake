
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/apps.cpp" "src/gen/CMakeFiles/cs_gen.dir/apps.cpp.o" "gcc" "src/gen/CMakeFiles/cs_gen.dir/apps.cpp.o.d"
  "/root/repo/src/gen/daggen.cpp" "src/gen/CMakeFiles/cs_gen.dir/daggen.cpp.o" "gcc" "src/gen/CMakeFiles/cs_gen.dir/daggen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cs_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
