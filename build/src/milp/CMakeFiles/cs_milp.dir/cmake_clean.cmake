file(REMOVE_RECURSE
  "CMakeFiles/cs_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/cs_milp.dir/branch_and_bound.cpp.o.d"
  "libcs_milp.a"
  "libcs_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
