# Empty dependencies file for cs_milp.
# This may be replaced when dependencies are built.
