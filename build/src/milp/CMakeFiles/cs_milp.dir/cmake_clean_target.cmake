file(REMOVE_RECURSE
  "libcs_milp.a"
)
