
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/annealing.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/annealing.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/annealing.cpp.o.d"
  "/root/repo/src/mapping/complexity.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/complexity.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/complexity.cpp.o.d"
  "/root/repo/src/mapping/exhaustive.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/exhaustive.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/exhaustive.cpp.o.d"
  "/root/repo/src/mapping/heuristics.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/heuristics.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/heuristics.cpp.o.d"
  "/root/repo/src/mapping/local_search.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/local_search.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/local_search.cpp.o.d"
  "/root/repo/src/mapping/milp_mapper.cpp" "src/mapping/CMakeFiles/cs_mapping.dir/milp_mapper.cpp.o" "gcc" "src/mapping/CMakeFiles/cs_mapping.dir/milp_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cs_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
