file(REMOVE_RECURSE
  "CMakeFiles/cs_mapping.dir/annealing.cpp.o"
  "CMakeFiles/cs_mapping.dir/annealing.cpp.o.d"
  "CMakeFiles/cs_mapping.dir/complexity.cpp.o"
  "CMakeFiles/cs_mapping.dir/complexity.cpp.o.d"
  "CMakeFiles/cs_mapping.dir/exhaustive.cpp.o"
  "CMakeFiles/cs_mapping.dir/exhaustive.cpp.o.d"
  "CMakeFiles/cs_mapping.dir/heuristics.cpp.o"
  "CMakeFiles/cs_mapping.dir/heuristics.cpp.o.d"
  "CMakeFiles/cs_mapping.dir/local_search.cpp.o"
  "CMakeFiles/cs_mapping.dir/local_search.cpp.o.d"
  "CMakeFiles/cs_mapping.dir/milp_mapper.cpp.o"
  "CMakeFiles/cs_mapping.dir/milp_mapper.cpp.o.d"
  "libcs_mapping.a"
  "libcs_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
