# Empty compiler generated dependencies file for cs_mapping.
# This may be replaced when dependencies are built.
