file(REMOVE_RECURSE
  "libcs_mapping.a"
)
