# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("platform")
subdirs("core")
subdirs("schedule")
subdirs("runtime")
subdirs("lp")
subdirs("milp")
subdirs("mapping")
subdirs("des")
subdirs("sim")
subdirs("gen")
subdirs("report")
