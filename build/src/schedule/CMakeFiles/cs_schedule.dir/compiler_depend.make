# Empty compiler generated dependencies file for cs_schedule.
# This may be replaced when dependencies are built.
