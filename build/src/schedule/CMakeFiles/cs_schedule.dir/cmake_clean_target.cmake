file(REMOVE_RECURSE
  "libcs_schedule.a"
)
