file(REMOVE_RECURSE
  "CMakeFiles/cs_schedule.dir/periodic_schedule.cpp.o"
  "CMakeFiles/cs_schedule.dir/periodic_schedule.cpp.o.d"
  "libcs_schedule.a"
  "libcs_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
