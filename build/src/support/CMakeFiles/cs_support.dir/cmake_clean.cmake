file(REMOVE_RECURSE
  "CMakeFiles/cs_support.dir/error.cpp.o"
  "CMakeFiles/cs_support.dir/error.cpp.o.d"
  "CMakeFiles/cs_support.dir/rng.cpp.o"
  "CMakeFiles/cs_support.dir/rng.cpp.o.d"
  "CMakeFiles/cs_support.dir/strings.cpp.o"
  "CMakeFiles/cs_support.dir/strings.cpp.o.d"
  "libcs_support.a"
  "libcs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
