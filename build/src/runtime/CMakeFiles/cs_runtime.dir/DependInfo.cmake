
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/host_runtime.cpp" "src/runtime/CMakeFiles/cs_runtime.dir/host_runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/cs_runtime.dir/host_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cs_platform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
