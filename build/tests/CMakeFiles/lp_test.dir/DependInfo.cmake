
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/problem_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_stress_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/simplex_stress_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_stress_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o.d"
  "/root/repo/tests/lp/sparse_lu_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/sparse_lu_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/sparse_lu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/cs_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/cs_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cs_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/cs_des.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/cs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/cs_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/cs_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
