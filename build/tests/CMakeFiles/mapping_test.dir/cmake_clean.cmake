file(REMOVE_RECURSE
  "CMakeFiles/mapping_test.dir/mapping/annealing_test.cpp.o"
  "CMakeFiles/mapping_test.dir/mapping/annealing_test.cpp.o.d"
  "CMakeFiles/mapping_test.dir/mapping/complexity_test.cpp.o"
  "CMakeFiles/mapping_test.dir/mapping/complexity_test.cpp.o.d"
  "CMakeFiles/mapping_test.dir/mapping/heuristics_test.cpp.o"
  "CMakeFiles/mapping_test.dir/mapping/heuristics_test.cpp.o.d"
  "CMakeFiles/mapping_test.dir/mapping/local_search_test.cpp.o"
  "CMakeFiles/mapping_test.dir/mapping/local_search_test.cpp.o.d"
  "CMakeFiles/mapping_test.dir/mapping/milp_mapper_test.cpp.o"
  "CMakeFiles/mapping_test.dir/mapping/milp_mapper_test.cpp.o.d"
  "mapping_test"
  "mapping_test.pdb"
  "mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
