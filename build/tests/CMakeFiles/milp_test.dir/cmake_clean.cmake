file(REMOVE_RECURSE
  "CMakeFiles/milp_test.dir/milp/branch_and_bound_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/branch_and_bound_test.cpp.o.d"
  "CMakeFiles/milp_test.dir/milp/milp_robustness_test.cpp.o"
  "CMakeFiles/milp_test.dir/milp/milp_robustness_test.cpp.o.d"
  "milp_test"
  "milp_test.pdb"
  "milp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
