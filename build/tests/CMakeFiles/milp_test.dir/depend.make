# Empty dependencies file for milp_test.
# This may be replaced when dependencies are built.
