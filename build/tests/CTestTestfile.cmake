# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
