file(REMOVE_RECURSE
  "CMakeFiles/lp_solvetime.dir/lp_solvetime.cpp.o"
  "CMakeFiles/lp_solvetime.dir/lp_solvetime.cpp.o.d"
  "lp_solvetime"
  "lp_solvetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_solvetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
