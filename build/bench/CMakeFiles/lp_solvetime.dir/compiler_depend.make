# Empty compiler generated dependencies file for lp_solvetime.
# This may be replaced when dependencies are built.
