file(REMOVE_RECURSE
  "CMakeFiles/model_accuracy.dir/model_accuracy.cpp.o"
  "CMakeFiles/model_accuracy.dir/model_accuracy.cpp.o.d"
  "model_accuracy"
  "model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
