# Empty compiler generated dependencies file for extension_dual_cell.
# This may be replaced when dependencies are built.
