file(REMOVE_RECURSE
  "CMakeFiles/extension_dual_cell.dir/extension_dual_cell.cpp.o"
  "CMakeFiles/extension_dual_cell.dir/extension_dual_cell.cpp.o.d"
  "extension_dual_cell"
  "extension_dual_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_dual_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
