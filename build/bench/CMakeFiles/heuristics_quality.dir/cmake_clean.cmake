file(REMOVE_RECURSE
  "CMakeFiles/heuristics_quality.dir/heuristics_quality.cpp.o"
  "CMakeFiles/heuristics_quality.dir/heuristics_quality.cpp.o.d"
  "heuristics_quality"
  "heuristics_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristics_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
