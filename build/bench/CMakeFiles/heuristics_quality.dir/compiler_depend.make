# Empty compiler generated dependencies file for heuristics_quality.
# This may be replaced when dependencies are built.
