file(REMOVE_RECURSE
  "CMakeFiles/fig6_steady_state.dir/fig6_steady_state.cpp.o"
  "CMakeFiles/fig6_steady_state.dir/fig6_steady_state.cpp.o.d"
  "fig6_steady_state"
  "fig6_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
