# Empty dependencies file for fig6_steady_state.
# This may be replaced when dependencies are built.
