# Empty dependencies file for fig8_ccr.
# This may be replaced when dependencies are built.
