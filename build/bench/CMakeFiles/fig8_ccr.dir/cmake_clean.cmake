file(REMOVE_RECURSE
  "CMakeFiles/fig8_ccr.dir/fig8_ccr.cpp.o"
  "CMakeFiles/fig8_ccr.dir/fig8_ccr.cpp.o.d"
  "fig8_ccr"
  "fig8_ccr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ccr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
