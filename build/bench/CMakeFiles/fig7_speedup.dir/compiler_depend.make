# Empty compiler generated dependencies file for fig7_speedup.
# This may be replaced when dependencies are built.
