file(REMOVE_RECURSE
  "CMakeFiles/ablation_constraints.dir/ablation_constraints.cpp.o"
  "CMakeFiles/ablation_constraints.dir/ablation_constraints.cpp.o.d"
  "ablation_constraints"
  "ablation_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
