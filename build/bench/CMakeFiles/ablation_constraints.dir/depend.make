# Empty dependencies file for ablation_constraints.
# This may be replaced when dependencies are built.
