file(REMOVE_RECURSE
  "CMakeFiles/host_pipeline.dir/host_pipeline.cpp.o"
  "CMakeFiles/host_pipeline.dir/host_pipeline.cpp.o.d"
  "host_pipeline"
  "host_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
