# Empty compiler generated dependencies file for host_pipeline.
# This may be replaced when dependencies are built.
