# Empty compiler generated dependencies file for cellstream_cli.
# This may be replaced when dependencies are built.
