file(REMOVE_RECURSE
  "CMakeFiles/cellstream_cli.dir/cellstream_cli.cpp.o"
  "CMakeFiles/cellstream_cli.dir/cellstream_cli.cpp.o.d"
  "cellstream_cli"
  "cellstream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellstream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
