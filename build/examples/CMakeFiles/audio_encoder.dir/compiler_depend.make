# Empty compiler generated dependencies file for audio_encoder.
# This may be replaced when dependencies are built.
