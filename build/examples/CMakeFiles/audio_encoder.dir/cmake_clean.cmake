file(REMOVE_RECURSE
  "CMakeFiles/audio_encoder.dir/audio_encoder.cpp.o"
  "CMakeFiles/audio_encoder.dir/audio_encoder.cpp.o.d"
  "audio_encoder"
  "audio_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
