file(REMOVE_RECURSE
  "CMakeFiles/explore_mappings.dir/explore_mappings.cpp.o"
  "CMakeFiles/explore_mappings.dir/explore_mappings.cpp.o.d"
  "explore_mappings"
  "explore_mappings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_mappings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
