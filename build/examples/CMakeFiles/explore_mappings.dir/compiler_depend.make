# Empty compiler generated dependencies file for explore_mappings.
# This may be replaced when dependencies are built.
