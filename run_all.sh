#!/bin/sh
set -x

# ./run_all.sh tsan — ThreadSanitizer sweep of the concurrent code paths
# (parallel branch-and-bound workers, host runtime PE threads, scenario
# batch runner): separate instrumented build tree, then the unit +
# property labels under TSan.
if [ "$1" = "tsan" ]; then
  cmake -B build-tsan -S . -DCELLSTREAM_TSAN=ON || exit 1
  cmake --build build-tsan -j "$(nproc)" || exit 1
  TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS}" \
    ctest --test-dir build-tsan -L 'unit|property' --output-on-failure \
    2>&1 | tee /root/repo/tsan_output.txt
  exit $?
fi

ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
ctest --test-dir build -L stats-smoke --output-on-failure 2>&1 \
  | tee /root/repo/stats_smoke_output.txt
ctest --test-dir build -L fault-smoke --output-on-failure 2>&1 \
  | tee /root/repo/fault_smoke_output.txt
ctest --test-dir build -L bench-smoke --output-on-failure 2>&1 \
  | tee /root/repo/bench_smoke_output.txt
build/examples/cellstream_fuzz --smoke 2>&1 | tee /root/repo/fuzz_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in (*micro*) "$b" --benchmark_min_time=0.2 ;; (*) "$b" ;; esac
done 2>&1 | tee /root/repo/bench_output.txt
