#!/bin/sh
set -x
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
build/examples/cellstream_fuzz --smoke 2>&1 | tee /root/repo/fuzz_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in (*micro*) "$b" --benchmark_min_time=0.2 ;; (*) "$b" ;; esac
done 2>&1 | tee /root/repo/bench_output.txt
