// Ablation study (ours, motivated by DESIGN.md): how much does each Cell
// constraint in the paper's model actually cost?  We re-solve the optimal
// mapping for graph 1 at two CCRs while relaxing one platform constraint
// at a time:
//
//   * local store 256 kB -> 1 MB      (constraint 1i)
//   * shared co-located buffers       (the Section 4.2 optimization)
//   * DMA slots 16/8 -> 1024          (constraints 1j/1k)
//   * interface bandwidth /64, /4096  (constraints 1g/1h)
//   * dispatch overhead x8            (runtime sensitivity, simulator only)
//
// This quantifies the paper's observation that the SPE local store is the
// dominant constraint in its regime, and *validates* its contention-free
// EIB assumption: bandwidth must fall by more than three orders of
// magnitude before the interface rows start to bind.

#include "bench_common.hpp"

namespace {

using namespace cellstream;

double lp_speedup(const TaskGraph& graph, const CellPlatform& platform,
                  BufferPolicy policy = BufferPolicy::kDuplicated) {
  const SteadyStateAnalysis analysis(graph, platform, policy);
  mapping::MilpMapperOptions opts = bench::paper_milp_options();
  const mapping::MilpMapperResult r =
      mapping::solve_optimal_mapping(analysis, opts);
  return analysis.period(mapping::ppe_only(analysis)) / r.period;
}

}  // namespace

int main() {
  bench::print_header("ablation_constraints",
                      "ablation of the model's platform constraints (ours)");

  report::Table table({"ccr", "baseline", "bigLS(1MB)", "sharedBuf",
                       "manyDMA", "bw/64", "bw/4096", "overheadx8"});

  for (double ccr : {0.775, 2.3}) {
    TaskGraph graph = gen::paper_graph(0);
    gen::set_ccr(graph, ccr);

    const CellPlatform base = platforms::qs22_single_cell();

    CellPlatform big_ls = base;
    big_ls.local_store_bytes = 1024 * 1024;

    CellPlatform many_dma = base;
    many_dma.spe_dma_slots = 1024;
    many_dma.ppe_to_spe_dma_slots = 1024;

    CellPlatform slow_bus = base;
    slow_bus.interface_bandwidth = base.interface_bandwidth / 64.0;
    slow_bus.eib_bandwidth = base.eib_bandwidth / 64.0;

    CellPlatform crawl_bus = base;
    crawl_bus.interface_bandwidth = base.interface_bandwidth / 4096.0;
    crawl_bus.eib_bandwidth = base.eib_bandwidth / 4096.0;

    const double s_base = lp_speedup(graph, base);
    const double s_ls = lp_speedup(graph, big_ls);
    // The paper's Section 4.2 future-work optimization: share buffers of
    // co-located neighbour tasks instead of duplicating them.
    const double s_shared =
        lp_speedup(graph, base, BufferPolicy::kSharedColocated);
    const double s_dma = lp_speedup(graph, many_dma);
    const double s_bus = lp_speedup(graph, slow_bus);
    const double s_crawl = lp_speedup(graph, crawl_bus);

    // Overhead sensitivity is a runtime property: simulate the baseline
    // LP mapping under 8x dispatch overhead.
    const SteadyStateAnalysis analysis(graph, base);
    mapping::MilpMapperOptions opts = bench::paper_milp_options();
    const Mapping lp_map = mapping::solve_optimal_mapping(analysis, opts).mapping;
    sim::SimOptions heavy =
        bench::paper_sim_options(bench::bench_instances(2000));
    heavy.dispatch_overhead *= 8.0;
    heavy.dma_issue_overhead *= 8.0;
    const double sim_base =
        sim::simulate(analysis, lp_map,
                      bench::paper_sim_options(bench::bench_instances(2000)))
            .steady_throughput;
    const double sim_heavy =
        sim::simulate(analysis, lp_map, heavy).steady_throughput;
    const double overhead_factor = sim_heavy / sim_base;

    table.add_numeric_row({ccr, s_base, s_ls, s_shared, s_dma, s_bus,
                           s_crawl, s_base * overhead_factor}, 4);
    std::printf("ccr %g done\n", ccr);
    std::fflush(stdout);
  }

  std::printf("\nOptimal speed-up vs PPE-only under relaxed/stressed "
              "constraints:\n\n%s\n", table.to_string().c_str());
  std::printf("reading: enlarging the local store lifts speed-up the most "
              "(memory is THE binding constraint, as the paper observes); "
              "extra DMA slots change little; bandwidth has slack of >2 "
              "orders of magnitude (the paper's contention-free EIB "
              "assumption is safe) and only the /4096 column finally makes "
              "the interfaces bind.\n");
  return 0;
}
