// Reproduces the paper's Figure 8: simulated speed-up of the LP mapping on
// the QS22 with all 8 SPEs, as a function of the communication-to-
// computation ratio, for the three evaluation graphs.
//
// Paper observations to match:
//   * speed-up decreases as the CCR grows,
//   * at high CCR the best policy degenerates to "everything on the PPE"
//     and the speed-up approaches 1.

#include "bench_common.hpp"

int main() {
  using namespace cellstream;
  bench::print_header("fig8_ccr",
                      "Figure 8 (speed-up vs. CCR, LP mapping, 8 SPEs)");

  const std::size_t instances = bench::bench_instances(5000);
  const CellPlatform platform = platforms::qs22_single_cell();

  std::vector<report::Series> series;
  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    series.push_back({"RandomGraph" + std::to_string(graph_idx + 1), {}});
  }

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    for (double ccr : gen::kPaperCcrValues) {
      TaskGraph graph = gen::paper_graph(graph_idx);
      gen::set_ccr(graph, ccr);
      const SteadyStateAnalysis analysis(graph, platform);
      const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(
          analysis, bench::paper_milp_options());
      const double speedup =
          bench::simulated_speedup(analysis, lp.mapping, instances);
      series[graph_idx].points.emplace_back(ccr, speedup);
      std::printf("graph %d ccr %-5g -> speed-up %.2f (milp %s, gap %.3f, "
                  "%.1fs)\n",
                  graph_idx + 1, ccr, speedup, milp::to_string(lp.status),
                  lp.gap, lp.solve_seconds);
      std::fflush(stdout);
    }
  }

  std::printf("\n%s\n", report::render_series("ccr", series, 4).c_str());
  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    const auto& pts = series[graph_idx].points;
    std::printf("graph %d: speed-up %.2fx at CCR %g -> %.2fx at CCR %g  "
                "(paper: decreasing toward 1)\n",
                graph_idx + 1, pts.front().second, pts.front().first,
                pts.back().second, pts.back().first);
  }
  return 0;
}
