// Reproduces the paper's Figure 8: simulated speed-up of the LP mapping on
// the QS22 with all 8 SPEs, as a function of the communication-to-
// computation ratio, for the three evaluation graphs.
//
// Paper observations to match:
//   * speed-up decreases as the CCR grows,
//   * at high CCR the best policy degenerates to "everything on the PPE"
//     and the speed-up approaches 1.
//
// MILP solves run serially; the speed-up simulations for all
// (graph, CCR) points then fan out across the scenario batch runner.
// `--json [path]` appends a "fig8" section with the full series.

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "sim/batch.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;
  const std::string json_path = bench::json_output_path(argc, argv);
  bench::print_header("fig8_ccr",
                      "Figure 8 (speed-up vs. CCR, LP mapping, 8 SPEs)");

  const std::size_t instances = bench::bench_instances(5000);
  const CellPlatform platform = platforms::qs22_single_cell();
  const bench::WallTimer timer;

  struct Point {
    int graph_idx;
    double ccr;
    Mapping lp;
  };
  std::vector<Point> points;
  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    for (double ccr : gen::kPaperCcrValues) {
      TaskGraph graph = gen::paper_graph(graph_idx);
      gen::set_ccr(graph, ccr);
      const SteadyStateAnalysis analysis(graph, platform);
      const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(
          analysis, bench::paper_milp_options());
      points.push_back(Point{graph_idx, ccr, lp.mapping});
      std::printf("graph %d ccr %-5g solved (milp %s, gap %.3f, %.1fs)\n",
                  graph_idx + 1, ccr, milp::to_string(lp.status), lp.gap,
                  lp.solve_seconds);
      std::fflush(stdout);
    }
  }

  // All (graph, CCR) speed-up simulations in one batch; each job rebuilds
  // its own graph and analysis from its point, sharing nothing mutable.
  const std::vector<double> speedups = sim::run_batch_collect<double>(
      points.size(), [&points, &platform, instances](std::size_t i) {
        TaskGraph graph = gen::paper_graph(points[i].graph_idx);
        gen::set_ccr(graph, points[i].ccr);
        const SteadyStateAnalysis analysis(std::move(graph), platform);
        return bench::simulated_speedup(analysis, points[i].lp, instances);
      });

  std::vector<report::Series> series;
  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    series.push_back({"RandomGraph" + std::to_string(graph_idx + 1), {}});
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    series[points[i].graph_idx].points.emplace_back(points[i].ccr,
                                                    speedups[i]);
  }

  std::printf("\n%s\n", report::render_series("ccr", series, 4).c_str());
  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    const auto& pts = series[graph_idx].points;
    std::printf("graph %d: speed-up %.2fx at CCR %g -> %.2fx at CCR %g  "
                "(paper: decreasing toward 1)\n",
                graph_idx + 1, pts.front().second, pts.front().first,
                pts.back().second, pts.back().first);
  }

  if (!json_path.empty()) {
    json::Value section = json::Value::object();
    section.set("schema", 1);
    section.set("instances", static_cast<std::uint64_t>(instances));
    section.set("batch_threads",
                static_cast<std::uint64_t>(sim::default_batch_threads()));
    section.set("wall_seconds", timer.seconds());
    json::Value graphs = json::Value::array();
    for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
      json::Value entry = json::Value::object();
      entry.set("name", series[graph_idx].name);
      json::Value pts = json::Value::array();
      for (const auto& [ccr, speedup] : series[graph_idx].points) {
        json::Value point = json::Value::object();
        point.set("ccr", ccr);
        point.set("lp", speedup);
        pts.push_back(std::move(point));
      }
      entry.set("series", std::move(pts));
      graphs.push_back(std::move(entry));
    }
    section.set("graphs", std::move(graphs));
    bench::update_bench_json(json_path, "fig8", std::move(section));
    bench::check_bench_json(json_path, "fig8",
                            {"schema", "instances", "graphs"});
    std::printf("wrote section \"fig8\" to %s\n", json_path.c_str());
  }
  return 0;
}
