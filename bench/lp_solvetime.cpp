// Reproduces the paper's Section 5/6 claim about MILP tractability: with a
// 5 % optimality gap (the paper's CPLEX setting), mappings for task graphs
// of "reasonable size (up to a few hundreds of tasks)" solve in well under
// a minute (the paper reports ~20 s on 2009 hardware).
//
// Sweeps graph size for two shapes (chain, random DAG) on the full QS22
// Cell and reports solve time, node count and achieved gap.

#include "bench_common.hpp"

int main() {
  using namespace cellstream;
  bench::print_header("lp_solvetime",
                      "Section 5 claim (MILP solve time, 5% gap, < 1 min)");

  report::Table table({"shape", "tasks", "edges", "vars", "rows", "status",
                       "gap", "nodes", "lp_iters", "seconds"});

  const CellPlatform platform = platforms::qs22_single_cell();
  for (const char* shape : {"chain", "random"}) {
    for (std::size_t k : {10, 25, 50, 100, 150, 200}) {
      gen::DagGenParams params;
      params.task_count = k;
      params.seed = 7 + k;
      TaskGraph graph = std::string(shape) == "chain"
                            ? gen::chain_graph(k, params)
                            : gen::daggen_random(params);
      gen::set_ccr(graph, 0.775);
      const SteadyStateAnalysis analysis(graph, platform);
      const mapping::Formulation formulation =
          mapping::build_formulation(analysis);

      mapping::MilpMapperOptions opts = bench::paper_milp_options();
      // This bench mirrors the paper's "< 1 minute" budget specifically.
      opts.milp.time_limit_seconds = bench::env_double(
          "CELLSTREAM_BENCH_MILP_SECONDS", 60.0);
      const mapping::MilpMapperResult r =
          mapping::solve_optimal_mapping(analysis, opts);
      table.add_row({shape, std::to_string(k),
                     std::to_string(graph.edge_count()),
                     std::to_string(formulation.problem.variable_count()),
                     std::to_string(formulation.problem.row_count()),
                     milp::to_string(r.status), format_number(r.gap, 3),
                     std::to_string(r.nodes), std::to_string(r.lp_iterations),
                     format_number(r.solve_seconds, 3)});
      std::printf("%s K=%zu done (%.2fs)\n", shape, k, r.solve_seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper reference: 'the time for solving a linear program was "
              "always kept below one minute (mostly around 20 seconds)'\n");
  return 0;
}
