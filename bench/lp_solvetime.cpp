// Reproduces the paper's Section 5/6 claim about MILP tractability: with a
// 5 % optimality gap (the paper's CPLEX setting), mappings for task graphs
// of "reasonable size (up to a few hundreds of tasks)" solve in well under
// a minute (the paper reports ~20 s on 2009 hardware).
//
// Sweeps graph size for two shapes (chain, random DAG) on the full QS22
// Cell and reports solve time, node count and achieved gap.

#include <algorithm>
#include <thread>

#include "bench_common.hpp"

namespace {

using namespace cellstream;

// Parallel branch-and-bound scaling: the identical instances solved with 1
// worker thread and with all cores.  The solver's round-based schedule is
// thread-count-invariant, so the two runs must return bit-identical
// mappings, objectives, bounds, and node counts — only the wall clock may
// differ.  Heuristic seeding is disabled and the gap tightened so the
// search explores a real tree instead of pruning at the root.
void parallel_scaling_section() {
  std::printf("\nparallel branch-and-bound scaling (1 thread vs all cores)\n");
  const std::size_t threads = std::max<std::size_t>(
      4, std::thread::hardware_concurrency());
  report::Table table({"shape", "tasks", "nodes", "pivots", "t1_s", "tN_s",
                       "speedup", "bit-identical"});
  const CellPlatform platform = platforms::qs22_single_cell();
  // Instances picked to explore real trees (~150-260 nodes) yet terminate
  // within seconds at gap 0: large enough to keep every worker busy, small
  // enough that the section finishes inside the bench budget.
  struct Config {
    const char* shape;
    std::size_t tasks;
    std::uint64_t seed;
  };
  for (const Config& config : {Config{"random", 15, 1},
                               Config{"random", 20, 1},
                               Config{"random", 20, 5}}) {
    gen::DagGenParams params;
    params.task_count = config.tasks;
    params.seed = config.seed;
    TaskGraph graph = gen::daggen_random(params);
    gen::set_ccr(graph, 0.775);
    const SteadyStateAnalysis analysis(graph, platform);

    mapping::MilpMapperOptions opts;
    opts.milp.relative_gap = 0.0;
    opts.milp.time_limit_seconds =
        bench::env_double("CELLSTREAM_BENCH_MILP_SECONDS", 120.0);
    opts.seed_with_heuristics = false;
    const mapping::MilpMapperResult seq =
        mapping::solve_optimal_mapping(analysis, opts);
    opts.with_threads(threads);
    const mapping::MilpMapperResult par =
        mapping::solve_optimal_mapping(analysis, opts);

    // Bit-identity is guaranteed only when neither run was cut off by the
    // wall clock (a time-limit stop depends on elapsed time, not the
    // deterministic schedule).
    const bool comparable = seq.status == milp::Status::kOptimal &&
                            par.status == milp::Status::kOptimal;
    const bool identical = seq.mapping == par.mapping &&
                           seq.period == par.period &&
                           seq.best_bound == par.best_bound &&
                           seq.nodes == par.nodes &&
                           seq.lp_iterations == par.lp_iterations;
    table.add_row({config.shape, std::to_string(config.tasks),
                   std::to_string(seq.nodes),
                   std::to_string(seq.lp_iterations),
                   format_number(seq.solve_seconds, 3),
                   format_number(par.solve_seconds, 3),
                   format_number(seq.solve_seconds / par.solve_seconds, 2),
                   !comparable ? "n/a (limit)" : identical ? "yes" : "NO"});
    std::printf("scaling K=%zu done (%.2fs -> %.2fs on %zu threads)\n",
                config.tasks, seq.solve_seconds, par.solve_seconds, threads);
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  using namespace cellstream;
  bench::print_header("lp_solvetime",
                      "Section 5 claim (MILP solve time, 5% gap, < 1 min)");

  report::Table table({"shape", "tasks", "edges", "vars", "rows", "status",
                       "gap", "nodes", "lp_iters", "seconds"});

  const CellPlatform platform = platforms::qs22_single_cell();
  for (const char* shape : {"chain", "random"}) {
    for (std::size_t k : {10, 25, 50, 100, 150, 200}) {
      gen::DagGenParams params;
      params.task_count = k;
      params.seed = 7 + k;
      TaskGraph graph = std::string(shape) == "chain"
                            ? gen::chain_graph(k, params)
                            : gen::daggen_random(params);
      gen::set_ccr(graph, 0.775);
      const SteadyStateAnalysis analysis(graph, platform);
      const mapping::Formulation formulation =
          mapping::build_formulation(analysis);

      mapping::MilpMapperOptions opts = bench::paper_milp_options();
      // This bench mirrors the paper's "< 1 minute" budget specifically.
      opts.milp.time_limit_seconds = bench::env_double(
          "CELLSTREAM_BENCH_MILP_SECONDS", 60.0);
      const mapping::MilpMapperResult r =
          mapping::solve_optimal_mapping(analysis, opts);
      table.add_row({shape, std::to_string(k),
                     std::to_string(graph.edge_count()),
                     std::to_string(formulation.problem.variable_count()),
                     std::to_string(formulation.problem.row_count()),
                     milp::to_string(r.status), format_number(r.gap, 3),
                     std::to_string(r.nodes), std::to_string(r.lp_iterations),
                     format_number(r.solve_seconds, 3)});
      std::printf("%s K=%zu done (%.2fs)\n", shape, k, r.solve_seconds);
      std::fflush(stdout);
    }
  }
  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("paper reference: 'the time for solving a linear program was "
              "always kept below one minute (mostly around 20 seconds)'\n");

  parallel_scaling_section();
  return 0;
}
