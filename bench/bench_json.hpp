#pragma once
// --json support for the bench binaries.
//
// Each binary can append one machine-readable section to a shared
// document (BENCH_sim.json by default), so running the binaries in any
// order accumulates a single file with one top-level key per bench.
// docs/PERFORMANCE.md documents the schema; the bench-smoke ctest runs
// micro_sim --json at a reduced scale and schema-checks the output.

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"

namespace cellstream::bench {

/// Path following a `--json` flag, the default "BENCH_sim.json" when the
/// flag is bare, or "" when the flag is absent (text-only mode).
inline std::string json_output_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    if (i + 1 < argc && argv[i + 1][0] != '-') return argv[i + 1];
    return "BENCH_sim.json";
  }
  return "";
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Read-modify-write one top-level section of the shared bench document.
/// A missing file is created; an unreadable or malformed one is replaced
/// (a half-written document must not wedge every later bench run).
inline void update_bench_json(const std::string& path,
                              const std::string& section, json::Value value) {
  json::Value doc = json::Value::object();
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        json::Value parsed = json::Value::parse(text.str());
        if (parsed.is_object()) doc = std::move(parsed);
      } catch (const Error&) {
        // malformed previous contents: start the document over
      }
    }
  }
  doc.set(section, std::move(value));
  std::ofstream out(path, std::ios::trunc);
  CS_ENSURE(bool(out), "bench: cannot open " + path + " for writing");
  out << doc.dump(2) << "\n";
  CS_ENSURE(bool(out), "bench: failed writing " + path);
}

/// Schema check used by the writer itself right after the write: re-read
/// the document and require `section` to exist with every key in
/// `required`.  Throws on any miss, so a bench that emitted a malformed
/// or incomplete section fails loudly (the bench-smoke test relies on
/// the nonzero exit).
inline void check_bench_json(const std::string& path,
                             const std::string& section,
                             const std::vector<std::string>& required) {
  std::ifstream in(path);
  CS_ENSURE(bool(in), "bench: cannot re-read " + path);
  std::ostringstream text;
  text << in.rdbuf();
  const json::Value doc = json::Value::parse(text.str());
  CS_ENSURE(doc.has(section), "bench: " + path + " lacks section " + section);
  const json::Value& sec = doc.at(section);
  for (const std::string& key : required) {
    CS_ENSURE(sec.has(key),
              "bench: section " + section + " lacks key " + key);
  }
}

}  // namespace cellstream::bench
