// Reproduces the paper's Figure 6: throughput as a function of the number
// of processed instances, for random graph 1 (50 tasks, CCR 0.775) on a
// QS22 single Cell (1 PPE + 8 SPEs) under the LP mapping.
//
// Paper observations to match:
//   * steady state is reached after roughly 1000 instances,
//   * the steady-state experimental throughput is ~95 % of the throughput
//     predicted by the linear program.

#include "bench_common.hpp"

int main() {
  using namespace cellstream;
  bench::print_header("fig6_steady_state",
                      "Figure 6 (throughput vs. number of instances)");

  TaskGraph graph = gen::paper_graph(0);
  gen::set_ccr(graph, 0.775);
  const CellPlatform platform = platforms::qs22_single_cell();
  const SteadyStateAnalysis analysis(graph, platform);

  const mapping::MilpMapperResult lp =
      mapping::solve_optimal_mapping(analysis, bench::paper_milp_options());
  std::printf("LP mapping solved: status=%s gap=%.3f nodes=%zu (%.1fs)\n",
              milp::to_string(lp.status), lp.gap, lp.nodes, lp.solve_seconds);
  std::printf("Theoretical (LP-predicted) throughput: %.2f instances/s\n\n",
              lp.throughput);

  const std::size_t instances = bench::bench_instances(10000);
  const sim::SimResult sim =
      sim::simulate(analysis, lp.mapping, bench::paper_sim_options(instances));

  report::Series theoretical{"theoretical_inst_per_s", {}};
  report::Series experimental{"experimental_inst_per_s", {}};
  const std::size_t window = std::min<std::size_t>(250, instances / 10 + 1);
  const std::size_t stride = std::max<std::size_t>(1, instances / 50);
  for (const auto& [instance, tput] : sim.windowed_throughput(window, stride)) {
    theoretical.points.emplace_back(static_cast<double>(instance),
                                    lp.throughput);
    experimental.points.emplace_back(static_cast<double>(instance), tput);
  }
  std::printf("%s\n",
              report::render_series("instances", {theoretical, experimental})
                  .c_str());

  const double ratio = sim.steady_throughput / lp.throughput;
  std::printf("steady-state experimental throughput: %.2f instances/s\n",
              sim.steady_throughput);
  std::printf("fraction of LP prediction: %.1f%%  (paper: ~95%%)\n",
              100.0 * ratio);

  // Startup transient length: first instance index whose windowed
  // throughput reaches 90 % of steady state.
  for (const auto& [instance, tput] : sim.windowed_throughput(window, 50)) {
    if (tput >= 0.9 * sim.steady_throughput) {
      std::printf("steady state reached after ~%zu instances (paper: ~1000)\n",
                  instance);
      break;
    }
  }
  return 0;
}
