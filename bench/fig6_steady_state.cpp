// Reproduces the paper's Figure 6: throughput as a function of the number
// of processed instances, for random graph 1 (50 tasks, CCR 0.775) on a
// QS22 single Cell (1 PPE + 8 SPEs) under the LP mapping.
//
// Paper observations to match:
//   * steady state is reached after roughly 1000 instances,
//   * the steady-state experimental throughput is ~95 % of the throughput
//     predicted by the linear program.
//
// `--json [path]` additionally re-runs the simulation with the
// steady-state fast-forward disabled, checks both runs are bit-identical,
// and appends a "fig6" section (LP prediction, steady throughput, wall
// seconds full vs. fast-forward — target >= 20x) to BENCH_sim.json.

#include "bench_common.hpp"
#include "bench_json.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;
  const std::string json_path = bench::json_output_path(argc, argv);
  bench::print_header("fig6_steady_state",
                      "Figure 6 (throughput vs. number of instances)");

  TaskGraph graph = gen::paper_graph(0);
  gen::set_ccr(graph, 0.775);
  const CellPlatform platform = platforms::qs22_single_cell();
  const SteadyStateAnalysis analysis(graph, platform);

  const mapping::MilpMapperResult lp =
      mapping::solve_optimal_mapping(analysis, bench::paper_milp_options());
  std::printf("LP mapping solved: status=%s gap=%.3f nodes=%zu (%.1fs)\n",
              milp::to_string(lp.status), lp.gap, lp.nodes, lp.solve_seconds);
  std::printf("Theoretical (LP-predicted) throughput: %.2f instances/s\n\n",
              lp.throughput);

  const std::size_t instances = bench::bench_instances(10000);
  bench::WallTimer timer;
  const sim::SimResult sim =
      sim::simulate(analysis, lp.mapping, bench::paper_sim_options(instances));
  const double ff_seconds = timer.seconds();

  report::Series theoretical{"theoretical_inst_per_s", {}};
  report::Series experimental{"experimental_inst_per_s", {}};
  const std::size_t window = std::min<std::size_t>(250, instances / 10 + 1);
  const std::size_t stride = std::max<std::size_t>(1, instances / 50);
  for (const auto& [instance, tput] : sim.windowed_throughput(window, stride)) {
    theoretical.points.emplace_back(static_cast<double>(instance),
                                    lp.throughput);
    experimental.points.emplace_back(static_cast<double>(instance), tput);
  }
  std::printf("%s\n",
              report::render_series("instances", {theoretical, experimental})
                  .c_str());

  const double ratio = sim.steady_throughput / lp.throughput;
  std::printf("steady-state experimental throughput: %.2f instances/s\n",
              sim.steady_throughput);
  std::printf("fraction of LP prediction: %.1f%%  (paper: ~95%%)\n",
              100.0 * ratio);

  // Startup transient length: first instance index whose windowed
  // throughput reaches 90 % of steady state.
  for (const auto& [instance, tput] : sim.windowed_throughput(window, 50)) {
    if (tput >= 0.9 * sim.steady_throughput) {
      std::printf("steady state reached after ~%zu instances (paper: ~1000)\n",
                  instance);
      break;
    }
  }

  if (!json_path.empty()) {
    // Same scenario with the fast-forward off: the wall-clock ratio is
    // the optimization's headline number, and the equality check is the
    // D6 soundness argument applied to the shipping configuration.
    sim::SimOptions full_options = bench::paper_sim_options(instances);
    full_options.fast_forward = false;
    timer.reset();
    const sim::SimResult full =
        sim::simulate(analysis, lp.mapping, full_options);
    const double full_seconds = timer.seconds();
    CS_ENSURE(full.makespan == sim.makespan &&
                  full.steady_throughput == sim.steady_throughput,
              "fig6: fast-forward run diverged from the full run");

    json::Value section = json::Value::object();
    section.set("schema", 1);
    section.set("instances", static_cast<std::uint64_t>(instances));
    section.set("lp_throughput", lp.throughput);
    section.set("steady_throughput", sim.steady_throughput);
    section.set("ratio_to_lp", ratio);
    section.set("full_seconds", full_seconds);
    section.set("ff_seconds", ff_seconds);
    section.set("ff_engaged", sim.fast_forward.engaged);
    section.set("ff_speedup",
                ff_seconds > 0.0 ? full_seconds / ff_seconds : 0.0);
    json::Value series = json::Value::array();
    for (const auto& [instance, tput] : experimental.points) {
      json::Value point = json::Value::object();
      point.set("instance", instance);
      point.set("instances_per_sec", tput);
      series.push_back(std::move(point));
    }
    section.set("experimental_series", std::move(series));
    bench::update_bench_json(json_path, "fig6", std::move(section));
    bench::check_bench_json(json_path, "fig6",
                            {"schema", "instances", "lp_throughput",
                             "full_seconds", "ff_seconds", "ff_speedup"});
    std::printf("\nfast-forward wall clock: full %.3fs vs ff %.3fs -> %.1fx "
                "(target >= 20x); wrote section \"fig6\" to %s\n",
                full_seconds, ff_seconds,
                ff_seconds > 0.0 ? full_seconds / ff_seconds : 0.0,
                json_path.c_str());
  }
  return 0;
}
