// Micro-benchmarks (google-benchmark) for the simulation substrates: the
// discrete-event engine, the max-min fair flow network, and end-to-end
// Cell simulation throughput (simulated instances per wall second).
//
// `micro_sim --json [path]` switches to a machine-readable mode that
// measures three headline numbers and appends a "micro_sim" section to
// the shared bench document (BENCH_sim.json by default):
//   * engine events/sec, new pooled core vs. a faithful replica of the
//     pre-overhaul std::function/unordered_map core (target: >= 5x),
//   * simulated instances/sec with the steady-state fast-forward off
//     vs. on (results must stay bit-identical),
//   * batched scenario sweep, serial vs. thread pool (results must be
//     byte-identical at any thread count).
// Scales honor CELLSTREAM_BENCH_EVENTS / CELLSTREAM_BENCH_INSTANCES so
// the bench-smoke ctest can run a reduced version of the same code path.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "des/engine.hpp"
#include "des/flow_network.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/batch.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cellstream;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_FlowNetworkChurn(benchmark::State& state) {
  // Repeatedly run batches of transfers through a 10-node network.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Engine engine;
    std::vector<double> caps(10, 100.0);
    des::FlowNetwork net(engine, caps, caps);
    std::size_t done = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      net.start_transfer(i % 9, 9 - (i % 5), 50.0, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowNetworkChurn)->Arg(64)->Arg(512);

void BM_CellSimulation(benchmark::State& state) {
  gen::DagGenParams params;
  params.task_count = static_cast<std::size_t>(state.range(0));
  params.seed = 13;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(std::move(graph),
                                     platforms::qs22_single_cell());
  const Mapping m = mapping::greedy_cpu(analysis);
  sim::SimOptions options;
  options.instances = 1000;
  for (auto _ : state) {
    const sim::SimResult r = sim::simulate(analysis, m, options);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(options.instances) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CellSimulation)->Arg(20)->Arg(50)->Arg(94)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode
// ---------------------------------------------------------------------------

// Faithful replica of the event core this PR replaced (see git history of
// src/des/engine.*): per-event std::function actions keyed through an
// unordered_map, cancellation by map erase, tombstones skipped on pop.
// Kept here so the engine speed-up in BENCH_sim.json is always measured
// against the real before, not a guess.
class LegacyEngine {
 public:
  using EventId = std::uint64_t;

  EventId schedule_at(double at, std::function<void()> action) {
    const EventId id = next_id_++;
    queue_.push(Entry{at, id});
    actions_.emplace(id, std::move(action));
    return id;
  }

  void cancel(EventId id) { actions_.erase(id); }

  void run() {
    while (!queue_.empty()) {
      const Entry entry = queue_.top();
      queue_.pop();
      auto it = actions_.find(entry.id);
      if (it == actions_.end()) continue;  // tombstone
      now_ = entry.at;
      std::function<void()> action = std::move(it->second);
      actions_.erase(it);
      action();
    }
  }

 private:
  struct Entry {
    double at;
    EventId id;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };
  double now_ = 0.0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, std::function<void()>> actions_;
};

// The simulator's hot-path pattern, distilled: a shallow self-sustaining
// chain (each fired event schedules its successor, like a PE's next
// communication/computation phase) plus `Watchdogs` timers per event that
// are scheduled far ahead and cancelled (like the retry/backoff timers
// fault runs reschedule constantly).  The closure is ~40 bytes — past
// std::function's inline buffer, inside des::InlineAction's — so the
// legacy core pays a heap allocation per schedule and accumulates every
// cancelled timer as a queue tombstone, while the new core stays
// allocation-free and compacts.
template <typename EngineT, int Watchdogs>
struct ChainEvent {
  EngineT* engine = nullptr;
  std::uint64_t* remaining = nullptr;
  std::uint64_t* sink = nullptr;
  double at = 0.0;
  std::uint64_t salt = 0;
  void operator()() const {
    *sink += salt;
    if (*remaining == 0) return;
    --*remaining;
    ChainEvent next = *this;
    next.at = at + static_cast<double>(salt % 7 + 1);
    next.salt = salt * 2654435761u % 971;
    engine->schedule_at(next.at, next);
    for (int w = 0; w < Watchdogs; ++w) {
      engine->cancel(engine->schedule_at(next.at + 1e6 + w, next));
    }
  }
};

// Run `events` chained events through 64 concurrent chains; returns the
// best events/sec over `reps` runs.  Identical event semantics on both
// engines.
template <typename EngineT, int Watchdogs>
double engine_events_per_sec(std::size_t events, int reps) {
  constexpr std::size_t kChains = 64;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::uint64_t sink = 0;
    std::uint64_t remaining = events > kChains ? events - kChains : 0;
    EngineT engine;
    const bench::WallTimer timer;
    for (std::size_t i = 0; i < kChains; ++i) {
      ChainEvent<EngineT, Watchdogs> seed;
      seed.engine = &engine;
      seed.remaining = &remaining;
      seed.sink = &sink;
      seed.at = static_cast<double>(i % 7);
      seed.salt = i + 1;
      engine.schedule_at(seed.at, seed);
    }
    engine.run();
    const double seconds = timer.seconds();
    benchmark::DoNotOptimize(sink);
    if (seconds > 0.0) {
      best = std::max(best, static_cast<double>(events) / seconds);
    }
  }
  return best;
}

// One steady/churn measurement pair as a JSON object.  Legacy and new
// reps interleave (best of 4 each) so slow phases of a noisy host hit
// both engines alike instead of biasing whichever ran second.
template <int Watchdogs>
json::Value engine_workload(std::size_t events, double* speedup_out) {
  double legacy = 0.0;
  double current = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    legacy = std::max(
        legacy, engine_events_per_sec<LegacyEngine, Watchdogs>(events, 1));
    current = std::max(
        current, engine_events_per_sec<des::Engine, Watchdogs>(events, 1));
  }
  const double speedup = legacy > 0.0 ? current / legacy : 0.0;
  json::Value row = json::Value::object();
  row.set("cancelled_timers_per_event", Watchdogs);
  row.set("legacy_events_per_sec", legacy);
  row.set("events_per_sec", current);
  row.set("speedup", speedup);
  if (speedup_out != nullptr) *speedup_out = speedup;
  return row;
}

int run_json_mode(const std::string& path) {
  json::Value section = json::Value::object();
  section.set("schema", 1);

  // -- engine: new pooled core vs. the legacy replica ----------------------
  // Two workloads: "steady" is the pure event chain, "churn" adds the
  // fault-mode cancel pressure.  The headline number (and the >= 5x
  // target) is churn — the scenario the pooled slots and lazy tombstone
  // compaction were built for.
  const std::size_t events = bench::env_size("CELLSTREAM_BENCH_EVENTS",
                                             1000000);
  double steady_speedup = 0.0;
  double churn_speedup = 0.0;
  json::Value engine = json::Value::object();
  engine.set("events", static_cast<std::uint64_t>(events));
  engine.set("steady", engine_workload<0>(events, &steady_speedup));
  engine.set("churn", engine_workload<4>(events, &churn_speedup));
  engine.set("speedup", churn_speedup);
  section.set("engine", std::move(engine));
  std::printf("engine: steady %.1fx, cancel-churn %.1fx vs the legacy core "
              "(target >= 5x on churn)\n",
              steady_speedup, churn_speedup);

  // -- simulation: fast-forward off vs. on ---------------------------------
  TaskGraph graph = gen::paper_graph(0);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping m = mapping::greedy_cpu(analysis);
  const std::size_t instances = bench::bench_instances(10000);

  sim::SimOptions full_options = bench::paper_sim_options(instances);
  full_options.fast_forward = false;
  bench::WallTimer timer;
  const sim::SimResult full = sim::simulate(analysis, m, full_options);
  const double full_seconds = timer.seconds();

  sim::SimOptions ff_options = bench::paper_sim_options(instances);
  timer.reset();
  const sim::SimResult ff = sim::simulate(analysis, m, ff_options);
  const double ff_seconds = timer.seconds();

  CS_ENSURE(full.makespan == ff.makespan &&
                full.steady_throughput == ff.steady_throughput,
            "bench: fast-forward run diverged from the full run");
  json::Value simulation = json::Value::object();
  simulation.set("instances", static_cast<std::uint64_t>(instances));
  simulation.set("full_seconds", full_seconds);
  simulation.set("full_instances_per_sec",
                 full_seconds > 0.0 ? instances / full_seconds : 0.0);
  simulation.set("ff_seconds", ff_seconds);
  simulation.set("ff_instances_per_sec",
                 ff_seconds > 0.0 ? instances / ff_seconds : 0.0);
  simulation.set("ff_engaged", ff.fast_forward.engaged);
  simulation.set("ff_skipped_instances",
                 static_cast<std::int64_t>(ff.fast_forward.skipped_instances));
  simulation.set("ff_speedup",
                 ff_seconds > 0.0 ? full_seconds / ff_seconds : 0.0);
  section.set("simulation", std::move(simulation));
  std::printf("simulation: %zu instances, full %.3fs, fast-forward %.3fs "
              "(engaged=%d, %.1fx)\n",
              instances, full_seconds, ff_seconds,
              ff.fast_forward.engaged ? 1 : 0,
              ff_seconds > 0.0 ? full_seconds / ff_seconds : 0.0);

  // -- batch: serial vs. thread-pool scenario sweep ------------------------
  const std::size_t scenarios = 12;
  const std::size_t batch_instances = std::max<std::size_t>(
      200, std::min<std::size_t>(2000, instances / 5));
  const auto scenario_makespan = [batch_instances](std::size_t i) {
    gen::DagGenParams params;
    params.task_count = 40;
    params.seed = 100 + i;
    TaskGraph g = gen::daggen_random(params);
    gen::set_ccr(g, 0.775);
    const SteadyStateAnalysis a(std::move(g), platforms::qs22_single_cell());
    sim::SimOptions options = bench::paper_sim_options(batch_instances);
    options.fast_forward = false;  // keep every scenario event-by-event
    return sim::simulate(a, mapping::greedy_cpu(a), options).makespan;
  };
  timer.reset();
  const std::vector<double> serial = sim::run_batch_collect<double>(
      scenarios, scenario_makespan, sim::BatchOptions{1});
  const double serial_seconds = timer.seconds();
  timer.reset();
  const std::vector<double> pooled = sim::run_batch_collect<double>(
      scenarios, scenario_makespan, sim::BatchOptions{0});
  const double pooled_seconds = timer.seconds();
  CS_ENSURE(serial == pooled,
            "bench: pooled batch results differ from the serial run");
  json::Value batch = json::Value::object();
  batch.set("scenarios", static_cast<std::uint64_t>(scenarios));
  batch.set("instances_per_scenario",
            static_cast<std::uint64_t>(batch_instances));
  batch.set("threads",
            static_cast<std::uint64_t>(sim::default_batch_threads()));
  batch.set("serial_seconds", serial_seconds);
  batch.set("parallel_seconds", pooled_seconds);
  batch.set("speedup",
            pooled_seconds > 0.0 ? serial_seconds / pooled_seconds : 0.0);
  section.set("batch", std::move(batch));
  std::printf("batch: %zu scenarios, serial %.3fs, %zu threads %.3fs "
              "(%.1fx, results identical)\n",
              scenarios, serial_seconds, sim::default_batch_threads(),
              pooled_seconds,
              pooled_seconds > 0.0 ? serial_seconds / pooled_seconds : 0.0);

  bench::update_bench_json(path, "micro_sim", std::move(section));
  bench::check_bench_json(path, "micro_sim",
                          {"schema", "engine", "simulation", "batch"});
  std::printf("wrote section \"micro_sim\" to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = cellstream::bench::json_output_path(argc, argv);
  if (!json_path.empty()) {
    try {
      return run_json_mode(json_path);
    } catch (const cellstream::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
