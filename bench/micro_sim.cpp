// Micro-benchmarks (google-benchmark) for the simulation substrates: the
// discrete-event engine, the max-min fair flow network, and end-to-end
// Cell simulation throughput (simulated instances per wall second).

#include <benchmark/benchmark.h>

#include "des/engine.hpp"
#include "des/flow_network.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace cellstream;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_FlowNetworkChurn(benchmark::State& state) {
  // Repeatedly run batches of transfers through a 10-node network.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    des::Engine engine;
    std::vector<double> caps(10, 100.0);
    des::FlowNetwork net(engine, caps, caps);
    std::size_t done = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      net.start_transfer(i % 9, 9 - (i % 5), 50.0, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(batch) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowNetworkChurn)->Arg(64)->Arg(512);

void BM_CellSimulation(benchmark::State& state) {
  gen::DagGenParams params;
  params.task_count = static_cast<std::size_t>(state.range(0));
  params.seed = 13;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(std::move(graph),
                                     platforms::qs22_single_cell());
  const Mapping m = mapping::greedy_cpu(analysis);
  sim::SimOptions options;
  options.instances = 1000;
  for (auto _ : state) {
    const sim::SimResult r = sim::simulate(analysis, m, options);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(options.instances) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CellSimulation)->Arg(20)->Arg(50)->Arg(94)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
