// Extension bench (the paper's stated future work, Section 7): "we would
// like to be able to use both Cell processors of the QS22".
//
// The model extends naturally: a dual-Cell QS22 is 2 PPEs + 16 SPEs with
// per-interface bandwidth unchanged (we keep the paper's contention-free
// interconnect assumption; a cross-chip contention model is the next
// refinement).  We compare the optimal speed-up on PS3 (6 SPEs), one QS22
// Cell (8 SPEs) and the full QS22 (16 SPEs) for the three evaluation
// graphs.

#include "bench_common.hpp"

int main() {
  using namespace cellstream;
  bench::print_header("extension_dual_cell",
                      "Section 7 future work (dual-Cell QS22, 2 PPE + 16 SPE)");

  report::Table table({"graph", "ps3(6spe)", "qs22(8spe)", "qs22x2(16spe)",
                       "tasks-on-spes@16"});

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    TaskGraph graph = gen::paper_graph(graph_idx);
    gen::set_ccr(graph, 0.775);

    std::vector<std::string> row = {graph.name()};
    Mapping dual_mapping;
    for (const CellPlatform& platform :
         {platforms::playstation3(), platforms::qs22_single_cell(),
          platforms::qs22_dual_cell()}) {
      const SteadyStateAnalysis analysis(graph, platform);
      mapping::MilpMapperOptions opts = bench::paper_milp_options();
      const mapping::MilpMapperResult r =
          mapping::solve_optimal_mapping(analysis, opts);
      const double base = analysis.period(mapping::ppe_only(analysis));
      row.push_back(format_number(base / r.period, 4));
      if (platform.spe_count == 16) {
        dual_mapping = r.mapping;
        std::size_t on_spes = 0;
        for (TaskId t = 0; t < graph.task_count(); ++t) {
          if (platform.is_spe(dual_mapping.pe_of(t))) ++on_spes;
        }
        row.push_back(std::to_string(on_spes) + "/" +
                      std::to_string(graph.task_count()));
      }
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
    std::printf("%s done\n", graph.name().c_str());
  }
  std::printf("\nOptimal speed-up vs a single PPE:\n\n%s\n",
              table.to_string().c_str());
  std::printf("expected: 16 SPEs keep helping while local-store capacity "
              "(2x the aggregate) admits more tasks, with diminishing "
              "returns once the PPE-resident remainder dominates.\n");
  return 0;
}
