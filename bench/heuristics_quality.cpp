// Heuristic-quality study (the paper's closing question, Section 7: "it
// would be interesting to design involved mapping heuristics which
// approach the optimal throughput").
//
// For the three evaluation graphs at two CCRs, compares every mapping
// strategy — the paper's two greedy heuristics, our local-search and
// simulated-annealing heuristics, and the MILP — by achieved throughput
// (normalized to the MILP's) and by mapper wall time.

#include <chrono>

#include "bench_common.hpp"
#include "mapping/annealing.hpp"
#include "mapping/local_search.hpp"

namespace {

using namespace cellstream;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  bench::print_header("heuristics_quality",
                      "Section 7 future work (heuristics vs. the optimum)");

  report::Table table({"graph", "ccr", "strategy", "throughput/s",
                       "vs-milp", "mapper-seconds"});

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    for (double ccr : {0.775, 2.3}) {
      TaskGraph graph = gen::paper_graph(graph_idx);
      gen::set_ccr(graph, ccr);
      const SteadyStateAnalysis analysis(graph,
                                         platforms::qs22_single_cell());

      struct Entry {
        std::string name;
        Mapping mapping;
        double seconds;
      };
      std::vector<Entry> entries;

      for (const char* name :
           {"ppe-only", "greedy-mem", "greedy-cpu", "greedy-period"}) {
        const auto t0 = std::chrono::steady_clock::now();
        Mapping m = mapping::run_heuristic(name, analysis);
        entries.push_back({name, std::move(m), seconds_since(t0)});
      }
      {
        const auto t0 = std::chrono::steady_clock::now();
        Mapping m = mapping::local_search_heuristic(analysis);
        entries.push_back({"local-search", std::move(m), seconds_since(t0)});
      }
      {
        const auto t0 = std::chrono::steady_clock::now();
        Mapping m = mapping::annealing_heuristic(analysis);
        entries.push_back({"annealing", std::move(m), seconds_since(t0)});
      }
      const auto t0 = std::chrono::steady_clock::now();
      const mapping::MilpMapperResult milp_result =
          mapping::solve_optimal_mapping(analysis,
                                         bench::paper_milp_options());
      entries.push_back({"milp", milp_result.mapping, seconds_since(t0)});

      const double milp_tput = analysis.throughput(milp_result.mapping);
      for (const Entry& entry : entries) {
        if (!analysis.feasible(entry.mapping)) continue;
        const double tput = analysis.throughput(entry.mapping);
        table.add_row({graph.name(), format_number(ccr, 4), entry.name,
                       format_number(tput, 4),
                       format_number(tput / milp_tput, 4),
                       format_number(entry.seconds, 3)});
      }
      std::printf("%s ccr %g done\n", graph.name().c_str(), ccr);
      std::fflush(stdout);
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  std::printf("reading: the paper's greedy heuristics land well below the "
              "optimum; local search and annealing (the 'involved "
              "heuristics' the paper calls for) close most of the gap in "
              "milliseconds, while the MILP certifies (near-)optimality.\n");
  return 0;
}
