// Micro-benchmarks (google-benchmark) for the optimization substrates:
// sparse LU factor/solve, simplex LP solves, and full MILP mapping solves
// at several graph sizes.  These guard against performance regressions in
// the solver stack that the figure benches depend on.

#include <benchmark/benchmark.h>

#include "gen/daggen.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse_lu.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/rng.hpp"

namespace {

using namespace cellstream;

lp::SparseColumns random_sparse_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  lp::SparseColumns a(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j].push_back({j, rng.uniform(2.0, 6.0)});
    for (int t = 0; t < 4; ++t) {
      const std::size_t r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (r != j) a[j].push_back({r, rng.uniform(-1.0, 1.0)});
    }
  }
  return a;
}

void BM_SparseLuFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lp::SparseColumns a = random_sparse_matrix(n, 42);
  lp::SparseLu lu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.factor(a));
  }
  state.counters["fill"] = static_cast<double>(lu.fill());
}
BENCHMARK(BM_SparseLuFactor)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SparseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const lp::SparseColumns a = random_sparse_matrix(n, 42);
  lp::SparseLu lu;
  if (!lu.factor(a)) state.SkipWithError("singular");
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    std::vector<double> x = b;
    lu.solve(x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(1024)->Arg(4096);

lp::Problem mapping_lp(std::size_t tasks) {
  gen::DagGenParams params;
  params.task_count = tasks;
  params.seed = tasks;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  SteadyStateAnalysis analysis(std::move(graph),
                               platforms::qs22_single_cell());
  return mapping::build_formulation(analysis).problem;
}

void BM_SimplexMappingRelaxation(benchmark::State& state) {
  const lp::Problem problem = mapping_lp(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const lp::SimplexResult r = lp::solve_lp(problem);
    if (r.status != lp::SolveStatus::kOptimal) state.SkipWithError("not optimal");
    benchmark::DoNotOptimize(r.objective);
  }
  state.counters["rows"] = static_cast<double>(problem.row_count());
  state.counters["cols"] = static_cast<double>(problem.variable_count());
}
BENCHMARK(BM_SimplexMappingRelaxation)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_MilpMapping(benchmark::State& state) {
  gen::DagGenParams params;
  params.task_count = static_cast<std::size_t>(state.range(0));
  params.seed = 5;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(std::move(graph),
                                     platforms::qs22_single_cell());
  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 30.0;
  for (auto _ : state) {
    const auto r = mapping::solve_optimal_mapping(analysis, opts);
    benchmark::DoNotOptimize(r.period);
  }
}
BENCHMARK(BM_MilpMapping)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

// Parallel branch-and-bound: same instance, varying worker threads.  The
// heuristic seeds are disabled and the gap set to 0 so the search explores
// a real tree; the result is bit-identical across thread counts (the
// solver's determinism guarantee), so the runs are directly comparable.
void BM_MilpMappingParallel(benchmark::State& state) {
  gen::DagGenParams params;
  params.task_count = static_cast<std::size_t>(state.range(0));
  params.seed = 1;  // a seed whose gap-0 tree is a few hundred nodes
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(std::move(graph),
                                     platforms::qs22_single_cell());
  mapping::MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  opts.milp.time_limit_seconds = 120.0;
  opts.seed_with_heuristics = false;
  opts.with_threads(static_cast<std::size_t>(state.range(1)));
  std::size_t nodes = 0;
  for (auto _ : state) {
    const auto r = mapping::solve_optimal_mapping(analysis, opts);
    nodes = r.nodes;
    benchmark::DoNotOptimize(r.period);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_MilpMappingParallel)
    ->Args({15, 1})->Args({15, 4})->Args({20, 1})->Args({20, 4})
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
