// Reproduces the paper's Section 6.4.1 claim: in steady state, the
// executed (here: simulated) throughput reaches approximately 95 % of the
// throughput predicted by the linear program, across applications and
// mapping strategies.
//
// For every (graph, CCR in {low, mid}, strategy) combination we compare
// the analytic steady-state throughput of the mapping with the simulated
// steady-state throughput under realistic framework overheads.

#include "bench_common.hpp"

#include "mapping/local_search.hpp"

int main() {
  using namespace cellstream;
  bench::print_header(
      "model_accuracy",
      "Section 6.4.1 (measured ~= 95% of LP-predicted throughput)");

  const std::size_t instances = bench::bench_instances(4000);
  const CellPlatform platform = platforms::qs22_single_cell();
  report::Table table({"graph", "ccr", "strategy", "predicted/s",
                       "simulated/s", "ratio"});
  std::vector<double> ratios;

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    for (double ccr : {0.775, 1.5}) {
      TaskGraph graph = gen::paper_graph(graph_idx);
      gen::set_ccr(graph, ccr);
      const SteadyStateAnalysis analysis(graph, platform);

      std::vector<std::pair<std::string, Mapping>> strategies;
      strategies.emplace_back("ppe-only", mapping::ppe_only(analysis));
      strategies.emplace_back("greedy-cpu", mapping::greedy_cpu(analysis));
      strategies.emplace_back("greedy-mem", mapping::greedy_mem(analysis));
      mapping::MilpMapperOptions opts = bench::paper_milp_options();
      strategies.emplace_back(
          "lp", mapping::solve_optimal_mapping(analysis, opts).mapping);

      for (const auto& [name, m] : strategies) {
        if (!analysis.feasible(m)) continue;
        const double predicted = analysis.throughput(m);
        const sim::SimResult sim =
            sim::simulate(analysis, m, bench::paper_sim_options(instances));
        const double ratio = sim.steady_throughput / predicted;
        ratios.push_back(ratio);
        table.add_row({graph.name(), format_number(ccr, 4), name,
                       format_number(predicted, 4),
                       format_number(sim.steady_throughput, 4),
                       format_number(ratio, 4)});
      }
      std::printf("%s ccr %g done\n", graph.name().c_str(), ccr);
      std::fflush(stdout);
    }
  }

  std::printf("\n%s\n", table.to_string().c_str());
  const report::Summary s = report::summarize(ratios);
  std::printf("simulated/predicted ratio: mean %.3f, min %.3f, max %.3f over "
              "%zu runs  (paper: ~0.95; never above 1.0 + noise)\n",
              s.mean, s.min, s.max, s.count);
  return 0;
}
