#pragma once
// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary accepts two optional environment variables so the
// full suite can be dialed between "smoke" and "paper-faithful" scales:
//   CELLSTREAM_BENCH_INSTANCES   stream length per simulation
//   CELLSTREAM_BENCH_MILP_SECONDS  per-solve MILP time limit

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/steady_state.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"
#include "report/table.hpp"
#include "sim/simulator.hpp"

namespace cellstream::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtod(value, nullptr);
}

inline std::size_t bench_instances(std::size_t fallback = 5000) {
  return env_size("CELLSTREAM_BENCH_INSTANCES", fallback);
}

inline double bench_milp_seconds(double fallback = 20.0) {
  return env_double("CELLSTREAM_BENCH_MILP_SECONDS", fallback);
}

/// Simulation options mirroring the paper's runtime.  The dispatch and
/// DMA-issue overheads model its framework's per-instance costs (task
/// selection, resource checks, mailbox signalling, DMA polling on the
/// single-threaded SPEs) — the source of the paper's ~5 % gap between the
/// LP prediction and the measured steady-state throughput.
inline sim::SimOptions paper_sim_options(std::size_t instances) {
  sim::SimOptions o;
  o.instances = instances;
  o.dma_issue_overhead = 5.0e-6;
  o.dispatch_overhead = 30.0e-6;
  return o;
}

/// MILP mapper options mirroring the paper's CPLEX usage (5 % gap).
inline mapping::MilpMapperOptions paper_milp_options() {
  mapping::MilpMapperOptions o;
  o.milp.relative_gap = 0.05;
  o.milp.time_limit_seconds = bench_milp_seconds();
  return o;
}

/// Simulated speed-up of `m` relative to the PPE-only mapping, the paper's
/// normalization ("throughput normalized to the throughput when using only
/// the PPE").
inline double simulated_speedup(const SteadyStateAnalysis& analysis,
                                const Mapping& m, std::size_t instances) {
  const sim::SimResult mapped =
      sim::simulate(analysis, m, paper_sim_options(instances));
  const sim::SimResult baseline = sim::simulate(
      analysis, ppe_only_mapping(analysis.graph()),
      paper_sim_options(instances));
  return mapped.steady_throughput / baseline.steady_throughput;
}

inline void print_header(const char* title, const char* paper_reference) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_reference);
  std::printf("================================================================\n\n");
}

}  // namespace cellstream::bench
