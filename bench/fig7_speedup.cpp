// Reproduces the paper's Figure 7 (a, b, c): simulated speed-up of the
// three evaluation graphs (CCR 0.775) on the QS22 as a function of the
// number of SPEs used (0..8), for the LP mapping vs. the GREEDYCPU and
// GREEDYMEM heuristics.
//
// Paper observations to match:
//   * LP mappings scale with the SPE count, reaching 2-3x at 8 SPEs,
//   * both greedy heuristics stall around <= ~1.3x,
//   * speed-up is normalized to the PPE-only throughput.

#include "bench_common.hpp"

int main() {
  using namespace cellstream;
  bench::print_header("fig7_speedup",
                      "Figure 7a-c (speed-up vs. number of SPEs, CCR 0.775)");

  const std::size_t instances = bench::bench_instances(5000);

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    TaskGraph graph = gen::paper_graph(graph_idx);
    gen::set_ccr(graph, 0.775);
    std::printf("--- %s (Figure 7%c) ---\n", graph.name().c_str(),
                static_cast<char>('a' + graph_idx));

    report::Series lp_series{"LinearProgramming", {}};
    report::Series cpu_series{"GreedyCPU", {}};
    report::Series mem_series{"GreedyMEM", {}};

    for (std::size_t spes = 0; spes <= 8; ++spes) {
      const CellPlatform platform = platforms::qs22_with_spes(spes);
      const SteadyStateAnalysis analysis(graph, platform);

      const Mapping greedy_cpu = mapping::greedy_cpu(analysis);
      const Mapping greedy_mem = mapping::greedy_mem(analysis);
      const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(
          analysis, bench::paper_milp_options());

      const double x = static_cast<double>(spes);
      lp_series.points.emplace_back(
          x, bench::simulated_speedup(analysis, lp.mapping, instances));
      cpu_series.points.emplace_back(
          x, bench::simulated_speedup(analysis, greedy_cpu, instances));
      mem_series.points.emplace_back(
          x, bench::simulated_speedup(analysis, greedy_mem, instances));
      std::fflush(stdout);
    }

    std::printf("%s\n", report::render_series(
                            "spes", {cpu_series, mem_series, lp_series}, 4)
                            .c_str());
    const double lp8 = lp_series.points.back().second;
    const double best_heuristic8 = std::max(cpu_series.points.back().second,
                                            mem_series.points.back().second);
    std::printf("at 8 SPEs: LP %.2fx vs best heuristic %.2fx  "
                "(paper: LP 2-3x, heuristics <= ~1.3x)\n\n",
                lp8, best_heuristic8);
  }
  return 0;
}
