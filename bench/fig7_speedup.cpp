// Reproduces the paper's Figure 7 (a, b, c): simulated speed-up of the
// three evaluation graphs (CCR 0.775) on the QS22 as a function of the
// number of SPEs used (0..8), for the LP mapping vs. the GREEDYCPU and
// GREEDYMEM heuristics.
//
// Paper observations to match:
//   * LP mappings scale with the SPE count, reaching 2-3x at 8 SPEs,
//   * both greedy heuristics stall around <= ~1.3x,
//   * speed-up is normalized to the PPE-only throughput.
//
// The MILP solves run serially (they are internally parallel already);
// the 27 speed-up simulations per graph then fan out across the scenario
// batch runner — each job owns its SPE count and builds its own analysis,
// so results are identical to a serial sweep at any thread count.
// `--json [path]` appends a "fig7" section with the full series.

#include <array>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "sim/batch.hpp"

int main(int argc, char** argv) {
  using namespace cellstream;
  const std::string json_path = bench::json_output_path(argc, argv);
  bench::print_header("fig7_speedup",
                      "Figure 7a-c (speed-up vs. number of SPEs, CCR 0.775)");

  const std::size_t instances = bench::bench_instances(5000);
  const bench::WallTimer timer;
  json::Value graphs = json::Value::array();

  for (int graph_idx = 0; graph_idx < 3; ++graph_idx) {
    TaskGraph graph = gen::paper_graph(graph_idx);
    gen::set_ccr(graph, 0.775);
    std::printf("--- %s (Figure 7%c) ---\n", graph.name().c_str(),
                static_cast<char>('a' + graph_idx));

    struct Point {
      Mapping cpu, mem, lp;
    };
    std::vector<Point> points;
    for (std::size_t spes = 0; spes <= 8; ++spes) {
      const CellPlatform platform = platforms::qs22_with_spes(spes);
      const SteadyStateAnalysis analysis(graph, platform);
      const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(
          analysis, bench::paper_milp_options());
      points.push_back(Point{mapping::greedy_cpu(analysis),
                             mapping::greedy_mem(analysis), lp.mapping});
      std::fflush(stdout);
    }

    // {cpu, mem, lp} speed-ups per SPE count, batched.  Each job copies
    // the graph and builds its own analysis: jobs share nothing mutable.
    const auto speedups =
        sim::run_batch_collect<std::array<double, 3>>(
            points.size(), [&graph, &points, instances](std::size_t spes) {
              TaskGraph g = graph;
              const SteadyStateAnalysis analysis(
                  std::move(g), platforms::qs22_with_spes(spes));
              return std::array<double, 3>{
                  bench::simulated_speedup(analysis, points[spes].cpu,
                                           instances),
                  bench::simulated_speedup(analysis, points[spes].mem,
                                           instances),
                  bench::simulated_speedup(analysis, points[spes].lp,
                                           instances)};
            });

    report::Series lp_series{"LinearProgramming", {}};
    report::Series cpu_series{"GreedyCPU", {}};
    report::Series mem_series{"GreedyMEM", {}};
    for (std::size_t spes = 0; spes < speedups.size(); ++spes) {
      const double x = static_cast<double>(spes);
      cpu_series.points.emplace_back(x, speedups[spes][0]);
      mem_series.points.emplace_back(x, speedups[spes][1]);
      lp_series.points.emplace_back(x, speedups[spes][2]);
    }

    std::printf("%s\n", report::render_series(
                            "spes", {cpu_series, mem_series, lp_series}, 4)
                            .c_str());
    const double lp8 = lp_series.points.back().second;
    const double best_heuristic8 = std::max(cpu_series.points.back().second,
                                            mem_series.points.back().second);
    std::printf("at 8 SPEs: LP %.2fx vs best heuristic %.2fx  "
                "(paper: LP 2-3x, heuristics <= ~1.3x)\n\n",
                lp8, best_heuristic8);

    json::Value entry = json::Value::object();
    entry.set("name", graph.name());
    json::Value series = json::Value::array();
    for (std::size_t spes = 0; spes < speedups.size(); ++spes) {
      json::Value point = json::Value::object();
      point.set("spes", static_cast<std::uint64_t>(spes));
      point.set("greedy_cpu", speedups[spes][0]);
      point.set("greedy_mem", speedups[spes][1]);
      point.set("lp", speedups[spes][2]);
      series.push_back(std::move(point));
    }
    entry.set("series", std::move(series));
    graphs.push_back(std::move(entry));
  }

  if (!json_path.empty()) {
    json::Value section = json::Value::object();
    section.set("schema", 1);
    section.set("instances", static_cast<std::uint64_t>(instances));
    section.set("batch_threads",
                static_cast<std::uint64_t>(sim::default_batch_threads()));
    section.set("wall_seconds", timer.seconds());
    section.set("graphs", std::move(graphs));
    bench::update_bench_json(json_path, "fig7", std::move(section));
    bench::check_bench_json(json_path, "fig7",
                            {"schema", "instances", "graphs"});
    std::printf("wrote section \"fig7\" to %s\n", json_path.c_str());
  }
  return 0;
}
