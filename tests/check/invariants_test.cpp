// Tests of the invariant-checking oracle (src/check/invariants.hpp).
//
// Every invariant is exercised twice: against a hand-built trace seeded
// with exactly one violation (the checker must flag it — no vacuous
// passes), and against a clean run of a real simulated pipeline (the
// checker must stay silent).

#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace cellstream::check {
namespace {

using sim::TraceEvent;

TraceEvent compute_event(TaskId task, PeId pe, std::int64_t instance,
                         double start, double end) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kCompute;
  e.name = "T" + std::to_string(task);
  e.pe = pe;
  e.src_pe = pe;
  e.start = start;
  e.end = end;
  e.instance = instance;
  e.task = static_cast<std::int64_t>(task);
  return e;
}

TraceEvent edge_event(EdgeId edge, PeId issuer, PeId src_pe,
                      std::int64_t instance, double start, double end) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kTransfer;
  e.payload = TraceEvent::Payload::kEdge;
  e.name = "fetch";
  e.pe = issuer;
  e.src_pe = src_pe;
  e.start = start;
  e.end = end;
  e.instance = instance;
  e.edge = static_cast<std::int64_t>(edge);
  return e;
}

TraceEvent mem_read_event(PeId pe, double start, double end) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kTransfer;
  e.payload = TraceEvent::Payload::kMemRead;
  e.name = "read";
  e.pe = pe;
  e.src_pe = pe;
  e.start = start;
  e.end = end;
  return e;
}

bool has_invariant(const std::vector<Violation>& violations,
                   const std::string& id) {
  for (const Violation& v : violations) {
    if (v.invariant == id) return true;
  }
  return false;
}

/// Two-task chain A -> B used by the trace-replay tests.  buffer_depth of
/// the edge is firstPeriod(B) - firstPeriod(A) = 2 instances.
TaskGraph chain_graph(double data_bytes = 1024.0) {
  TaskGraph graph("chain");
  graph.add_task({"A", 1e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"B", 1e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_edge(0, 1, data_bytes);
  return graph;
}

// -- I1: throughput bound --------------------------------------------------

TEST(ThroughputBound, FlagsThroughputAboveTheAnalyticBound) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 0});
  sim::SimResult result;
  result.steady_throughput = 2.0 * analysis.throughput(mapping);
  result.overall_throughput = 0.5 * analysis.throughput(mapping);
  const auto violations = check_throughput_bound(analysis, mapping, result);
  EXPECT_TRUE(has_invariant(violations, "throughput-bound"));
}

TEST(ThroughputBound, AcceptsThroughputWithinTolerance) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 0});
  sim::SimResult result;
  result.steady_throughput = 1.01 * analysis.throughput(mapping);
  result.overall_throughput = analysis.throughput(mapping);
  EXPECT_TRUE(check_throughput_bound(analysis, mapping, result).empty());
}

// -- I2: completion order --------------------------------------------------

TEST(CompletionOrder, FlagsNonIncreasingCompletions) {
  sim::SimResult result;
  result.completion_times = {1.0, 2.0, 1.5, 3.0};
  result.makespan = 3.0;
  EXPECT_TRUE(has_invariant(check_completion_order(result),
                            "completion-order"));
}

TEST(CompletionOrder, FlagsMakespanMismatch) {
  sim::SimResult result;
  result.completion_times = {1.0, 2.0};
  result.makespan = 5.0;
  EXPECT_TRUE(has_invariant(check_completion_order(result),
                            "completion-order"));
}

TEST(CompletionOrder, AcceptsStrictlyIncreasingCompletions) {
  sim::SimResult result;
  result.completion_times = {1.0, 2.0, 3.0};
  result.makespan = 3.0;
  EXPECT_TRUE(check_completion_order(result).empty());
}

// -- I3: local store -------------------------------------------------------

TEST(LocalStore, FlagsBuffersOverTheBudget) {
  // buff = 2 x 100 kB per endpoint; both endpoints on one SPE charge the
  // store twice (paper Section 4.2) = 400 kB >> 192 kB budget.
  const SteadyStateAnalysis analysis(chain_graph(100.0 * 1024.0),
                                     platforms::qs22_single_cell());
  const Mapping on_spe(std::vector<PeId>{1, 1});
  EXPECT_TRUE(has_invariant(check_local_store(analysis, on_spe),
                            "local-store"));
}

TEST(LocalStore, AcceptsPpeMappingsAndFittingBuffers) {
  const SteadyStateAnalysis big(chain_graph(100.0 * 1024.0),
                                platforms::qs22_single_cell());
  EXPECT_TRUE(check_local_store(big, Mapping(std::vector<PeId>{0, 0})).empty());
  const SteadyStateAnalysis small(chain_graph(1024.0),
                                  platforms::qs22_single_cell());
  EXPECT_TRUE(
      check_local_store(small, Mapping(std::vector<PeId>{1, 1})).empty());
}

// -- I4: DMA queue limits --------------------------------------------------

TEST(DmaQueueLimits, FlagsSeventeenConcurrentSpeIssuedDmas) {
  const CellPlatform platform = platforms::qs22_single_cell();
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 17; ++i) {
    trace.push_back(mem_read_event(/*pe=*/1, 0.0, 1.0));
  }
  EXPECT_TRUE(has_invariant(check_dma_queue_limits(platform, trace),
                            "dma-queue"));
}

TEST(DmaQueueLimits, AcceptsExactlySixteenConcurrentSpeIssuedDmas) {
  const CellPlatform platform = platforms::qs22_single_cell();
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 16; ++i) {
    trace.push_back(mem_read_event(/*pe=*/1, 0.0, 1.0));
  }
  EXPECT_TRUE(check_dma_queue_limits(platform, trace).empty());
}

TEST(DmaQueueLimits, FlagsNineConcurrentPpeIssuedFetchesFromOneSpe) {
  const CellPlatform platform = platforms::qs22_single_cell();
  std::vector<TraceEvent> trace;
  for (std::int64_t i = 0; i < 9; ++i) {
    trace.push_back(edge_event(0, /*issuer=*/0, /*src_pe=*/1, i, 0.0, 1.0));
  }
  EXPECT_TRUE(has_invariant(check_dma_queue_limits(platform, trace),
                            "dma-queue"));
}

TEST(DmaQueueLimits, ASlotFreedAtTmayBeReusedAtT) {
  // 16 transfers end exactly when a 17th starts: completions are applied
  // first at equal timestamps, so the peak stays at the hardware limit.
  const CellPlatform platform = platforms::qs22_single_cell();
  std::vector<TraceEvent> trace;
  for (int i = 0; i < 16; ++i) {
    trace.push_back(mem_read_event(/*pe=*/1, 0.0, 1.0));
  }
  trace.push_back(mem_read_event(/*pe=*/1, 1.0, 2.0));
  EXPECT_TRUE(check_dma_queue_limits(platform, trace).empty());
}

// -- I5: buffer occupancy --------------------------------------------------

TEST(BufferOccupancy, FlagsProducerSideOverflow) {
  // depth = 2: the producer running three instances ahead of the consumer
  // overfills D_{A,B}'s buffer.
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});  // remote edge
  ASSERT_EQ(analysis.buffer_depth(0), 2);
  std::vector<TraceEvent> trace;
  for (std::int64_t i = 0; i < 3; ++i) {
    const double t = static_cast<double>(i);
    trace.push_back(compute_event(0, 1, i, t, t + 0.5));
  }
  EXPECT_TRUE(has_invariant(check_buffer_occupancy(analysis, mapping, trace),
                            "buffer-occupancy"));
}

TEST(BufferOccupancy, FlagsFetchWithoutProduction) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  trace.push_back(edge_event(0, 2, 1, 0, 0.0, 0.5));  // fetched > produced
  EXPECT_TRUE(has_invariant(check_buffer_occupancy(analysis, mapping, trace),
                            "buffer-occupancy"));
}

TEST(BufferOccupancy, AcceptsAProducerConsumerPipelineWithinDepth) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  for (std::int64_t i = 0; i < 5; ++i) {
    const double t = static_cast<double>(i);
    trace.push_back(compute_event(0, 1, i, t, t + 0.2));
    trace.push_back(edge_event(0, 2, 1, i, t + 0.3, t + 0.4));
    trace.push_back(compute_event(1, 2, i, t + 0.5, t + 0.7));
  }
  EXPECT_TRUE(check_buffer_occupancy(analysis, mapping, trace).empty());
}

TEST(BufferOccupancy, FlagsNonSequentialInstanceNumbering) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 0.2));
  trace.push_back(compute_event(0, 1, 2, 1.0, 1.2));  // skips instance 1
  EXPECT_TRUE(has_invariant(check_buffer_occupancy(analysis, mapping, trace),
                            "trace-consistency"));
}

// -- I6: causality ---------------------------------------------------------

TEST(Causality, FlagsFetchStartingBeforeProduction) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 2.0));
  trace.push_back(edge_event(0, 2, 1, 0, 1.0, 3.0));  // starts mid-produce
  EXPECT_TRUE(has_invariant(check_causality(analysis, mapping, trace),
                            "causality"));
}

TEST(Causality, FlagsComputeStartingBeforeItsRemoteInputArrives) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 1.0));
  trace.push_back(edge_event(0, 2, 1, 0, 1.0, 2.0));
  trace.push_back(compute_event(1, 2, 0, 1.5, 2.5));  // before fetch ends
  EXPECT_TRUE(has_invariant(check_causality(analysis, mapping, trace),
                            "causality"));
}

TEST(Causality, FlagsComputeStartingBeforeItsLocalInputIsProduced) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 1});  // co-located: no fetch
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 1.0));
  trace.push_back(compute_event(1, 1, 0, 0.5, 1.5));  // before A finishes
  const auto violations = check_causality(analysis, mapping, trace);
  EXPECT_TRUE(has_invariant(violations, "causality"));
}

TEST(Causality, FlagsPeekConsumersRunningAheadOfTheLookahead) {
  // B peeks one instance ahead: instance 0 of B needs instances 0 and 1 of
  // A delivered first.
  TaskGraph graph("peek");
  graph.add_task({"A", 1e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"B", 1e-3, 1e-3, 1, 0.0, 0.0, false});
  graph.add_edge(0, 1, 1024.0);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 1});
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 1.0));
  trace.push_back(compute_event(0, 1, 1, 3.0, 4.0));
  trace.push_back(compute_event(1, 1, 0, 1.5, 2.0));  // A#1 ends at 4.0
  EXPECT_TRUE(has_invariant(check_causality(analysis, mapping, trace),
                            "causality"));
}

TEST(Causality, FlagsOverlappingComputeWindowsOnOnePe) {
  TaskGraph graph("parallel");
  graph.add_task({"A", 1e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"B", 1e-3, 1e-3, 0, 0.0, 0.0, false});
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 1});
  std::vector<TraceEvent> trace;
  trace.push_back(compute_event(0, 1, 0, 0.0, 1.0));
  trace.push_back(compute_event(1, 1, 0, 0.5, 1.5));  // double-booked SPE0
  EXPECT_TRUE(has_invariant(check_causality(analysis, mapping, trace),
                            "causality"));
}

TEST(Causality, AcceptsAWellOrderedPipeline) {
  const SteadyStateAnalysis analysis(chain_graph(),
                                     platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{1, 2});
  std::vector<TraceEvent> trace;
  for (std::int64_t i = 0; i < 4; ++i) {
    const double t = static_cast<double>(i);
    trace.push_back(compute_event(0, 1, i, t, t + 0.2));
    trace.push_back(edge_event(0, 2, 1, i, t + 0.2, t + 0.4));
    trace.push_back(compute_event(1, 2, i, t + 0.4, t + 0.6));
  }
  EXPECT_TRUE(check_causality(analysis, mapping, trace).empty());
}

// -- The aggregate checker on a real simulated run -------------------------

TEST(CheckInvariants, CleanPipelineRunPassesEveryInvariant) {
  gen::DagGenParams params;
  params.task_count = 12;
  params.seed = 7;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 1.5);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  Mapping mapping = mapping::greedy_cpu(analysis);
  if (!analysis.feasible(mapping)) mapping = mapping::ppe_only(analysis);
  sim::SimOptions options;
  options.instances = 200;
  options.record_trace = true;
  const sim::SimResult result = sim::simulate(analysis, mapping, options);

  const InvariantReport report = check_invariants(analysis, mapping, result);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(report.trace_checked);
  EXPECT_EQ(report.checks_run, 8u);  // I1-I8 (I9 needs a failover outcome)
  EXPECT_GT(report.trace_events_seen, 0u);
}

TEST(CheckInvariants, TraceChecksAreSkippedWithoutATrace) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 0});
  sim::SimOptions options;
  options.instances = 50;
  const sim::SimResult result = sim::simulate(analysis, mapping, options);
  const InvariantReport report = check_invariants(analysis, mapping, result);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_FALSE(report.trace_checked);
  EXPECT_EQ(report.checks_run, 5u);  // I1-I3, I7, I8; trace families skipped
}

// -- I7: predicted-vs-observed occupation ----------------------------------

TEST(Occupation, AcceptsHonestSimulatedCounters) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 1});
  sim::SimOptions options;
  options.instances = 100;
  const sim::SimResult result = sim::simulate(analysis, mapping, options);
  EXPECT_TRUE(
      check_occupation(analysis, mapping, result.counters).empty());
}

TEST(Occupation, FlagsTrafficTheModelDoesNotAccountFor) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 1});
  sim::SimOptions options;
  options.instances = 100;
  sim::SimResult result = sim::simulate(analysis, mapping, options);
  // A misattribution bug: bytes charged to an interface the model never
  // routes this edge through.
  result.counters.pe[0].bytes_in += 1e9;
  const std::vector<Violation> found =
      check_occupation(analysis, mapping, result.counters);
  ASSERT_FALSE(found.empty());
  EXPECT_TRUE(has_invariant(found, "occupation"));
  // The aggregated oracle reports it too.
  const InvariantReport report = check_invariants(analysis, mapping, result);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_invariant(report.violations, "occupation"));
}

TEST(Occupation, ToleranceIsOneSidedAndConfigurable) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 1});
  sim::SimOptions options;
  options.instances = 100;
  sim::SimResult result = sim::simulate(analysis, mapping, options);
  // Under-use never flags (early finish / better overlap is fine).
  result.counters.pe[1].bytes_in *= 0.5;
  EXPECT_TRUE(
      check_occupation(analysis, mapping, result.counters).empty());
  // A 4 % excess passes the default 5 % tolerance but fails a 1 % one.
  sim::SimResult excess = sim::simulate(analysis, mapping, options);
  excess.counters.pe[1].bytes_in *= 1.04;
  EXPECT_TRUE(
      check_occupation(analysis, mapping, excess.counters).empty());
  InvariantOptions tight;
  tight.occupation_tolerance = 0.01;
  EXPECT_FALSE(
      check_occupation(analysis, mapping, excess.counters, tight).empty());
}

TEST(Occupation, SkipsWallClockAndEmptyRuns) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 1});
  sim::SimOptions options;
  options.instances = 20;
  sim::SimResult result = sim::simulate(analysis, mapping, options);
  result.counters.pe[0].bytes_in += 1e12;  // would flag in the sim domain
  result.counters.domain = obs::TimeDomain::kWall;
  EXPECT_TRUE(
      check_occupation(analysis, mapping, result.counters).empty());

  obs::Counters empty;
  empty.pe.resize(analysis.platform().pe_count());
  EXPECT_TRUE(check_occupation(analysis, mapping, empty).empty());
}

// -- I8: stream integrity --------------------------------------------------

TEST(StreamIntegrity, FlagsLostAndDuplicatedInstances) {
  const TaskGraph graph = chain_graph();

  StreamAccounting lost;
  lost.instances_completed = 9;  // one short of the stream
  lost.edge_produced = {10};
  lost.edge_delivered = {10};
  EXPECT_TRUE(has_invariant(check_stream_integrity(graph, lost, 10),
                            "stream-integrity"));

  StreamAccounting duplicated;
  duplicated.instances_completed = 11;  // one extra
  duplicated.edge_produced = {10};
  duplicated.edge_delivered = {10};
  EXPECT_TRUE(has_invariant(check_stream_integrity(graph, duplicated, 10),
                            "stream-integrity"));
}

TEST(StreamIntegrity, FlagsEdgesNotDeliveredExactlyOncePerInstance) {
  const TaskGraph graph = chain_graph();

  StreamAccounting undelivered;
  undelivered.instances_completed = 10;
  undelivered.edge_produced = {10};
  undelivered.edge_delivered = {9};  // a packet vanished in flight
  EXPECT_TRUE(has_invariant(check_stream_integrity(graph, undelivered, 10),
                            "stream-integrity"));

  StreamAccounting overproduced;
  overproduced.instances_completed = 10;
  overproduced.edge_produced = {11};  // a packet was pushed twice
  overproduced.edge_delivered = {10};
  EXPECT_TRUE(has_invariant(check_stream_integrity(graph, overproduced, 10),
                            "stream-integrity"));

  StreamAccounting clean;
  clean.instances_completed = 10;
  clean.edge_produced = {10};
  clean.edge_delivered = {10};
  EXPECT_TRUE(check_stream_integrity(graph, clean, 10).empty());
}

TEST(StreamIntegrity, AcceptsARealSimulatedRunEndToEnd) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis ss(graph, platforms::qs22_single_cell());
  Mapping mapping(2, 0);
  mapping.assign(0, 1);
  mapping.assign(1, 2);
  sim::SimOptions options;
  options.instances = 50;
  const sim::SimResult run = sim::simulate(ss, mapping, options);
  EXPECT_TRUE(
      check_stream_integrity(graph, accounting_of(run), 50).empty());
}

// -- I9: degraded-mapping conformance --------------------------------------

TEST(DegradedMapping, FlagsTasksLeftOnAFailedPe) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis ss(graph, platforms::qs22_single_cell());
  Mapping mapping(2, 0);
  mapping.assign(0, 1);  // task 0 still sits on the "failed" PE 1
  mapping.assign(1, 2);
  sim::SimOptions options;
  options.instances = 30;
  const sim::SimResult run = sim::simulate(ss, mapping, options);

  EXPECT_TRUE(has_invariant(
      check_degraded_mapping(ss, mapping, {1}, run.counters),
      "degraded-mapping"));
}

TEST(DegradedMapping, AcceptsAMappingThatEvacuatedTheFailedPe) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis ss(graph, platforms::qs22_single_cell());
  Mapping post(2, 0);
  post.assign(0, 2);  // both tasks off PE 1
  post.assign(1, 3);
  sim::SimOptions options;
  options.instances = 30;
  const sim::SimResult run = sim::simulate(ss, post, options);

  EXPECT_TRUE(check_degraded_mapping(ss, post, {1}, run.counters).empty());
}

TEST(Occupation, FlagsQueuePeaksAboveHardwareDepth) {
  const TaskGraph graph = chain_graph();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping(std::vector<PeId>{0, 1});
  sim::SimOptions options;
  options.instances = 20;
  sim::SimResult result = sim::simulate(analysis, mapping, options);
  result.counters.pe[1].mfc_queue_peak =
      analysis.platform().spe_dma_slots + 1;
  const std::vector<Violation> found =
      check_occupation(analysis, mapping, result.counters);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_TRUE(has_invariant(found, "occupation"));
}

}  // namespace
}  // namespace cellstream::check
