// Bounded in-process run of the differential fuzzer (label: fuzz-smoke).
// The full CI sweep is the cellstream_fuzz --smoke executable registered
// in tests/CMakeLists.txt; this binary keeps a smaller deterministic slice
// under gtest so failures carry the usual test diagnostics.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "check/fuzz_driver.hpp"

namespace cellstream::check {
namespace {

TEST(FuzzSmoke, CaseDerivationIsDeterministic) {
  const FuzzOptions options;
  const FuzzCase a = make_case(123456789, options);
  const FuzzCase b = make_case(123456789, options);
  EXPECT_EQ(a.case_seed, b.case_seed);
  EXPECT_EQ(a.task_count, b.task_count);
  EXPECT_EQ(a.ccr, b.ccr);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.platform, b.platform);
  EXPECT_EQ(a.differential, b.differential);
}

TEST(FuzzSmoke, CaseSeedsOfAStreamAreDistinct) {
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(seen.insert(case_seed_of(2026, i)).second) << "index " << i;
  }
}

TEST(FuzzSmoke, BoundedFuzzRunHoldsAllInvariants) {
  FuzzOptions options;
  options.base_seed = 42;
  options.cases = 40;
  options.instances = 120;
  options.milp_time_limit = 2.0;
  std::ostringstream log;
  const FuzzReport report = run_fuzz(options, &log);
  EXPECT_TRUE(report.ok()) << report.summary() << "\n" << log.str();
  EXPECT_EQ(report.cases_run, 40u);
  EXPECT_EQ(report.pipelines_simulated, 40u);
}

TEST(FuzzSmoke, SingleCaseReproductionMatchesTheStream) {
  FuzzOptions options;
  options.base_seed = 42;
  options.instances = 120;
  const std::uint64_t seed = case_seed_of(options.base_seed, 5);
  const FuzzCase scenario = make_case(seed, options);
  const std::vector<Violation> first = run_case(scenario, options);
  const std::vector<Violation> second = run_case(scenario, options);
  EXPECT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < std::min(first.size(), second.size()); ++i) {
    EXPECT_EQ(first[i].detail, second[i].detail);
  }
}

}  // namespace
}  // namespace cellstream::check
