// Differential rule D6: the simulator's steady-state fast-forward must be
// a pure optimization — bit-identical final stats against the full run —
// across the paper's worked example and a sweep of fuzzed (graph, mapping)
// pairs, and it must stay out of the way when a fault plan makes the run
// aperiodic (docs/PERFORMANCE.md).

#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "fault/fault_plan.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace cellstream::check {
namespace {

TaskGraph worked_example() {
  TaskGraph graph("paper-worked-example");
  graph.add_task({"T0", 1.2e-3, 1.0e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T1", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T2", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T3", 1.5e-3, 0.9e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T4", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T5", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_edge(0, 1, 4096.0);
  graph.add_edge(0, 2, 4096.0);
  graph.add_edge(1, 3, 4096.0);
  graph.add_edge(2, 3, 4096.0);
  graph.add_edge(3, 4, 4096.0);
  graph.add_edge(4, 5, 4096.0);
  return graph;
}

TEST(FastForwardEquivalence, PaperWorkedExampleEngagesAndIsBitIdentical) {
  const TaskGraph graph = worked_example();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping = mapping::greedy_mem(analysis);
  sim::SimOptions options;
  options.instances = 2000;
  bool engaged = false;
  const std::vector<Violation> violations =
      check_fast_forward_equivalence(analysis, mapping, options, &engaged);
  for (const Violation& v : violations) ADD_FAILURE() << v.detail;
  // The fully pipelined worked example is periodic from early on; a 2000
  // instance stream leaves plenty of room for a jump.
  EXPECT_TRUE(engaged);
}

TEST(FastForwardEquivalence, ReportsCycleDiagnosticsWhenEngaged) {
  const TaskGraph graph = worked_example();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping = mapping::greedy_mem(analysis);
  sim::SimOptions options;
  options.instances = 2000;
  const sim::SimResult r = sim::simulate(analysis, mapping, options);
  ASSERT_TRUE(r.fast_forward.enabled);
  ASSERT_TRUE(r.fast_forward.engaged);
  EXPECT_GT(r.fast_forward.cycle_instances, 0);
  EXPECT_GT(r.fast_forward.cycle_seconds, 0.0);
  EXPECT_GT(r.fast_forward.skipped_cycles, 0);
  EXPECT_GT(r.fast_forward.skipped_instances, 0);
  EXPECT_LT(r.fast_forward.skipped_instances,
            static_cast<std::int64_t>(options.instances));
  // Observed period never beats the analytic steady-state bound; with the
  // default overheads it sits a few percent above it (the paper's gap).
  EXPECT_DOUBLE_EQ(r.fast_forward.model_period,
                   analysis.period(mapping));
  EXPECT_GE(r.fast_forward.period_ratio, 0.999);
  EXPECT_LT(r.fast_forward.period_ratio, 1.30);
}

TEST(FastForwardEquivalence, FiftyFuzzedPairsAreBitIdentical) {
  // 50 (graph, mapping) pairs spanning task counts, CCR levels and both
  // greedy strategies (falling back to ppe-only when infeasible), each
  // checked bitwise against its full run.
  const double ccrs[] = {0.775, 1.5, 2.3, 4.6};
  const char* strategies[] = {"greedy-cpu", "greedy-mem", "ppe-only"};
  int engaged_count = 0;
  for (int i = 0; i < 50; ++i) {
    gen::DagGenParams params;
    params.task_count = 6 + (static_cast<std::size_t>(i) * 7) % 18;
    params.seed = static_cast<std::uint64_t>(i) * 977 + 11;
    TaskGraph graph = gen::daggen_random(params);
    gen::set_ccr(graph, ccrs[i % 4]);
    const SteadyStateAnalysis analysis(graph,
                                       platforms::qs22_single_cell());
    Mapping mapping = mapping::run_heuristic(strategies[i % 3], analysis);
    if (!analysis.feasible(mapping)) {
      mapping = mapping::ppe_only(analysis);
    }
    sim::SimOptions options;
    options.instances = 700;
    bool engaged = false;
    const std::vector<Violation> violations =
        check_fast_forward_equivalence(analysis, mapping, options, &engaged);
    for (const Violation& v : violations) {
      ADD_FAILURE() << "pair " << i << " (" << strategies[i % 3] << ", ccr "
                    << ccrs[i % 4] << "): " << v.detail;
    }
    engaged_count += engaged ? 1 : 0;
  }
  // Bit-identity must hold regardless, but the optimization would be
  // pointless if it never fired: most steady pipelines must engage.
  EXPECT_GE(engaged_count, 25) << "fast-forward engaged on too few pairs";
}

TEST(FastForwardEquivalence, MidStreamFaultPlanDisablesFastForward) {
  const TaskGraph graph = worked_example();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping = mapping::greedy_mem(analysis);

  fault::FaultPlan plan;
  fault::Slowdown slowdown;
  slowdown.pe = mapping.pe_of(0);
  slowdown.from_instance = 900;
  slowdown.to_instance = 950;
  slowdown.factor = 3.0;
  plan.slowdowns.push_back(slowdown);

  sim::SimOptions options;
  options.instances = 2000;
  options.fast_forward = true;  // explicitly requested, still refused
  options.fault_plan = &plan;
  const sim::SimResult r = sim::simulate(analysis, mapping, options);
  EXPECT_FALSE(r.fast_forward.enabled);
  EXPECT_FALSE(r.fast_forward.engaged);
  EXPECT_EQ(r.fast_forward.skipped_instances, 0);
  // The injected mid-stream stall actually happened — every event was
  // simulated, nothing was skipped over the fault window.
  EXPECT_GT(r.faults.slowdown_seconds, 0.0);

  // The D6 checker refuses a vacuous comparison outright.
  EXPECT_THROW(
      check_fast_forward_equivalence(analysis, mapping, options, nullptr),
      Error);
}

TEST(FastForwardEquivalence, TraceRunsDisableFastForward) {
  const TaskGraph graph = worked_example();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping = mapping::greedy_mem(analysis);
  sim::SimOptions options;
  options.instances = 500;
  options.record_trace = true;
  const sim::SimResult r = sim::simulate(analysis, mapping, options);
  EXPECT_FALSE(r.fast_forward.enabled);
  EXPECT_FALSE(r.fast_forward.engaged);
  EXPECT_FALSE(r.trace.empty());
}

TEST(FastForwardEquivalence, OptOutFlagForcesFullSimulation) {
  const TaskGraph graph = worked_example();
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  const Mapping mapping = mapping::greedy_mem(analysis);
  sim::SimOptions options;
  options.instances = 1500;
  options.fast_forward = false;
  const sim::SimResult r = sim::simulate(analysis, mapping, options);
  EXPECT_FALSE(r.fast_forward.enabled);
  EXPECT_FALSE(r.fast_forward.engaged);
}

}  // namespace
}  // namespace cellstream::check
