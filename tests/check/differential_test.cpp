// Tests of the differential oracle (src/check/differential.hpp): each rule
// D1-D4 must reject a fabricated inconsistent outcome set, and the real
// cross-check over exhaustive / MILP / greedy mappers must be consistent
// on small graphs.

#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "gen/daggen.hpp"
#include "mapping/exhaustive.hpp"

namespace cellstream::check {
namespace {

/// Three-task chain on a 1 PPE + 2 SPE platform: small enough that every
/// expected quantity is easy to reason about by hand.
class DifferentialRules : public ::testing::Test {
 protected:
  DifferentialRules() {
    TaskGraph graph("rules");
    graph.add_task({"A", 2e-3, 1e-3, 0, 0.0, 0.0, false});
    graph.add_task({"B", 2e-3, 1e-3, 0, 0.0, 0.0, false});
    graph.add_task({"C", 2e-3, 1e-3, 0, 0.0, 0.0, false});
    graph.add_edge(0, 1, 1024.0);
    graph.add_edge(1, 2, 1024.0);
    analysis_.emplace(graph, platforms::qs22_with_spes(2));
  }

  MapperOutcome outcome(const std::string& name, std::vector<PeId> pes) {
    MapperOutcome o;
    o.name = name;
    o.mapping = Mapping(std::move(pes));
    o.period = analysis_->period(o.mapping);
    return o;
  }

  std::optional<SteadyStateAnalysis> analysis_;
};

TEST_F(DifferentialRules, ConsistentOutcomesPass) {
  std::vector<MapperOutcome> outcomes;
  outcomes.push_back(outcome("spread", {1, 2, 0}));
  outcomes.push_back(outcome("ppe-only", {0, 0, 0}));
  EXPECT_TRUE(check_outcomes(*analysis_, outcomes).empty());
}

TEST_F(DifferentialRules, D1FlagsAMisreportedPeriod) {
  std::vector<MapperOutcome> outcomes;
  outcomes.push_back(outcome("liar", {1, 2, 0}));
  outcomes.back().period *= 0.5;  // claims twice the real throughput
  const auto violations = check_outcomes(*analysis_, outcomes);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("recomputes"), std::string::npos);
}

TEST_F(DifferentialRules, D1FlagsAnInfeasibleMappingThatClaimsFeasibility) {
  // 100 kB edges: buff = 2 x 100 kB per endpoint, two edges on one SPE
  // blow through the 192 kB budget.
  TaskGraph graph("fat");
  graph.add_task({"A", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"B", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"C", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_edge(0, 1, 100.0 * 1024.0);
  graph.add_edge(1, 2, 100.0 * 1024.0);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_with_spes(2));
  MapperOutcome o;
  o.name = "overcommit";
  o.mapping = Mapping(std::vector<PeId>{1, 1, 1});
  o.period = analysis.period(o.mapping);
  ASSERT_FALSE(analysis.feasible(o.mapping));

  EXPECT_FALSE(check_outcomes(analysis, {o}).empty());
  o.claims_feasible = false;  // a greedy outcome: no false alarm
  EXPECT_TRUE(check_outcomes(analysis, {o}).empty());
}

TEST_F(DifferentialRules, D2FlagsIdenticalMappingsWithDifferentPeriods) {
  std::vector<MapperOutcome> outcomes;
  outcomes.push_back(outcome("first", {1, 2, 0}));
  outcomes.push_back(outcome("second", {1, 2, 0}));
  outcomes.back().period *= 1.5;
  DifferentialOptions options;
  options.relative_tolerance = 1.0;  // disarm D1; D2 compares exactly
  const auto violations = check_outcomes(*analysis_, outcomes, options);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("identical mapping"), std::string::npos);
}

TEST_F(DifferentialRules, D3FlagsAnOptimumBeatenByAFeasibleCompetitor) {
  std::vector<MapperOutcome> outcomes;
  outcomes.push_back(outcome("fake-optimal", {0, 0, 0}));  // period 6 ms
  outcomes.back().optimal = true;                          // gap 0
  outcomes.push_back(outcome("better", {1, 2, 0}));        // period 2 ms
  const auto violations = check_outcomes(*analysis_, outcomes);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("beats it"), std::string::npos);
}

TEST_F(DifferentialRules, D3IgnoresInfeasibleCompetitors) {
  // The competitor is faster on paper but overflows a local store, so the
  // optimum needn't dominate it.
  TaskGraph graph("fat");
  graph.add_task({"A", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"B", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_task({"C", 2e-3, 1e-3, 0, 0.0, 0.0, false});
  graph.add_edge(0, 1, 100.0 * 1024.0);
  graph.add_edge(1, 2, 100.0 * 1024.0);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_with_spes(2));

  MapperOutcome optimal;
  optimal.name = "optimal";
  optimal.mapping = Mapping(std::vector<PeId>{0, 0, 0});
  optimal.period = analysis.period(optimal.mapping);
  optimal.optimal = true;

  MapperOutcome squeezed;
  squeezed.name = "squeezed";
  squeezed.mapping = Mapping(std::vector<PeId>{1, 1, 1});
  squeezed.period = analysis.period(squeezed.mapping);
  squeezed.claims_feasible = false;
  ASSERT_FALSE(analysis.feasible(squeezed.mapping));
  ASSERT_LT(squeezed.period, optimal.period);

  EXPECT_TRUE(check_outcomes(analysis, {optimal, squeezed}).empty());
}

TEST_F(DifferentialRules, D4FlagsALowerBoundAboveTheProvenOptimum) {
  std::vector<MapperOutcome> outcomes;
  outcomes.push_back(outcome("exhaustive", {1, 2, 0}));
  outcomes.back().optimal = true;
  outcomes.push_back(outcome("milp", {1, 2, 0}));
  outcomes.back().has_lower_bound = true;
  outcomes.back().lower_bound = outcomes.front().period * 2.0;
  const auto violations = check_outcomes(*analysis_, outcomes);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("lower bound"), std::string::npos);
}

// -- The real cross-check --------------------------------------------------

TEST(CrossCheckMappers, AgreesOnASmallRandomGraph) {
  gen::DagGenParams params;
  params.task_count = 6;
  params.seed = 11;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 1.5);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_with_spes(4));
  DifferentialOptions options;
  options.milp_time_limit = 5.0;
  const DifferentialReport report = cross_check_mappers(analysis, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
  ASSERT_EQ(report.outcomes.size(), 4u);
  EXPECT_EQ(report.outcomes[0].name, "exhaustive");
  EXPECT_TRUE(report.outcomes[0].optimal);
}

TEST(CrossCheckMappers, ExhaustiveFindsTheChipAwareOptimumOnDualCell) {
  // On the dual-Cell QS22 the SPEs of the two chips are *not*
  // interchangeable — regression for the symmetry reduction that once made
  // the exhaustive search chip-blind (and rejected 18-PE platforms
  // outright through an unreduced state-count estimate).
  gen::DagGenParams params;
  params.task_count = 6;
  params.seed = 3;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 2.3);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_dual_cell());
  DifferentialOptions options;
  options.milp_time_limit = 5.0;
  const DifferentialReport report = cross_check_mappers(analysis, options);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(CrossCheckMappers, RefusesGraphsBeyondTheExhaustiveLimit) {
  gen::DagGenParams params;
  params.task_count = 12;
  params.seed = 1;
  const TaskGraph graph = gen::daggen_random(params);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());
  EXPECT_THROW(cross_check_mappers(analysis), Error);
}

}  // namespace
}  // namespace cellstream::check
