// Regression pins from the extended fuzz sweep against the parallel MILP
// solver (400 cases, base seed 7, all clean).  Differential cases now
// apply rule D5: the branch-and-bound re-run with 4 worker threads must be
// bit-identical to the sequential run.  This test replays a deterministic
// slice of that sweep's differential cases so any future change that
// breaks thread-count invariance fails here with a one-seed reproducer,
// plus direct D5 checks on fixed graphs (no fuzz machinery in the loop).

#include <gtest/gtest.h>

#include <sstream>

#include "check/differential.hpp"
#include "check/fuzz_driver.hpp"
#include "gen/daggen.hpp"
#include "mapping/milp_mapper.hpp"

namespace cellstream::check {
namespace {

TEST(ParallelMilpFuzzRegression, ExtendedSweepDifferentialSlice) {
  // The first differential cases of the extended sweep's seed stream.
  // run_case routes these through cross_check_mappers, whose
  // DifferentialOptions default to check_parallel_milp = true, so every
  // replay exercises sequential-vs-parallel bit-identity (D5) alongside
  // D1-D4.
  FuzzOptions options;
  options.base_seed = 7;  // the extended sweep's stream
  options.milp_time_limit = 3.0;
  options.instances = 120;
  std::size_t replayed = 0;
  for (std::size_t i = 0; i < 60 && replayed < 6; ++i) {
    const FuzzCase scenario =
        make_case(case_seed_of(options.base_seed, i), options);
    if (!scenario.differential) continue;
    ++replayed;
    const std::vector<Violation> violations = run_case(scenario, options);
    std::ostringstream os;
    for (const Violation& v : violations) {
      os << "[" << v.invariant << "] " << v.detail << "\n";
    }
    EXPECT_TRUE(violations.empty())
        << scenario.to_string() << ":\n" << os.str();
  }
  EXPECT_EQ(replayed, 6u);  // the stream's differential density is fixed
}

TEST(ParallelMilpFuzzRegression, CrossCheckReportsParallelDivergence) {
  // The oracle itself must be live: with milp_threads forced to 1 the D5
  // re-run is skipped entirely, so the same graph that passes with 4
  // threads must also pass with the rule disabled — and the rule being
  // exercised at 4 threads is observable through the violation count
  // staying zero rather than the check being skipped.  (A fabricated
  // divergence cannot be injected without breaking the solver, so this
  // guards the wiring: both paths run, neither reports.)
  gen::DagGenParams params;
  params.task_count = 6;
  params.seed = 17;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());

  DifferentialOptions with_d5;
  with_d5.milp_threads = 4;
  const DifferentialReport checked = cross_check_mappers(analysis, with_d5);
  EXPECT_TRUE(checked.ok()) << checked.to_string();

  DifferentialOptions without_d5;
  without_d5.check_parallel_milp = false;
  const DifferentialReport skipped =
      cross_check_mappers(analysis, without_d5);
  EXPECT_TRUE(skipped.ok()) << skipped.to_string();
}

TEST(ParallelMilpFuzzRegression, GapZeroMappingBitIdentity) {
  // Tighter than the fuzz sweep's 5 % gap: at gap 0 every node of the tree
  // matters, so a single out-of-order commit or stale warm basis flips the
  // node count.  Three seeds, each sequential-vs-4-thread.
  // Seeds chosen for real trees (hundreds of nodes) that still solve in
  // well under a second each at gap 0.
  for (std::uint64_t seed : {1u, 22u, 29u}) {
    gen::DagGenParams params;
    params.task_count = 7;
    params.seed = seed;
    TaskGraph graph = gen::daggen_random(params);
    gen::set_ccr(graph, 0.775);
    const SteadyStateAnalysis analysis(graph, platforms::qs22_single_cell());

    mapping::MilpMapperOptions opts;
    opts.milp.relative_gap = 0.0;
    const mapping::MilpMapperResult seq =
        mapping::solve_optimal_mapping(analysis, opts);
    ASSERT_EQ(seq.status, milp::Status::kOptimal) << "seed " << seed;
    const mapping::MilpMapperResult par =
        mapping::solve_optimal_mapping(analysis, opts.with_threads(4));
    ASSERT_EQ(par.status, milp::Status::kOptimal) << "seed " << seed;
    EXPECT_TRUE(par.mapping == seq.mapping) << "seed " << seed;
    EXPECT_EQ(par.period, seq.period) << "seed " << seed;
    EXPECT_EQ(par.best_bound, seq.best_bound) << "seed " << seed;
    EXPECT_EQ(par.nodes, seq.nodes) << "seed " << seed;
    EXPECT_EQ(par.lp_iterations, seq.lp_iterations) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cellstream::check
