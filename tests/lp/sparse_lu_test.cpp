#include "lp/sparse_lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace cellstream::lp {
namespace {

// Multiply A (columns) by x.
std::vector<double> matvec(const SparseColumns& cols,
                           const std::vector<double>& x) {
  std::vector<double> out(cols.size(), 0.0);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    for (const MatrixEntry& e : cols[j]) out[e.row] += e.value * x[j];
  }
  return out;
}

std::vector<double> matvec_transpose(const SparseColumns& cols,
                                     const std::vector<double>& y) {
  std::vector<double> out(cols.size(), 0.0);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    for (const MatrixEntry& e : cols[j]) out[j] += e.value * y[e.row];
  }
  return out;
}

TEST(SparseLu, IdentityRoundTrip) {
  const std::size_t n = 5;
  SparseColumns a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = {{i, 1.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  std::vector<double> b = {1, 2, 3, 4, 5};
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], i + 1.0, 1e-12);
}

TEST(SparseLu, NegatedIdentity) {
  // The all-slack simplex basis is -I.
  const std::size_t n = 4;
  SparseColumns a(n);
  for (std::size_t i = 0; i < n; ++i) a[i] = {{i, -1.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  std::vector<double> b = {2, 4, 6, 8};
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i], -2.0 * (i + 1.0), 1e-12);
  }
}

TEST(SparseLu, KnownDenseSystem) {
  // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3].
  SparseColumns a(2);
  a[0] = {{0, 2.0}, {1, 1.0}};
  a[1] = {{0, 1.0}, {1, 3.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  std::vector<double> b = {5.0, 10.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SparseLu, PermutationMatrix) {
  // Column j has a single 1 in row (j+1) mod n.
  const std::size_t n = 6;
  SparseColumns a(n);
  for (std::size_t j = 0; j < n; ++j) a[j] = {{(j + 1) % n, 1.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = static_cast<double>(i) - 2.5;
  std::vector<double> b = matvec(a, x_true);
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-12);
}

TEST(SparseLu, DetectsSingularMatrix) {
  SparseColumns a(3);
  a[0] = {{0, 1.0}, {1, 2.0}};
  a[1] = {{0, 2.0}, {1, 4.0}};  // 2 * column 0
  a[2] = {{2, 1.0}};
  SparseLu lu;
  EXPECT_FALSE(lu.factor(a));
  EXPECT_FALSE(lu.ok());
}

TEST(SparseLu, DetectsStructuralSingularity) {
  SparseColumns a(3);
  a[0] = {{0, 1.0}};
  a[1] = {{0, 2.0}};  // row 1 and 2 never touched
  a[2] = {{0, 3.0}};
  SparseLu lu;
  EXPECT_FALSE(lu.factor(a));
}

TEST(SparseLu, SolveBeforeFactorThrows) {
  SparseLu lu;
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu.solve(b), Error);
  EXPECT_THROW(lu.solve_transpose(b), Error);
}

class SparseLuRandom : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuRandom, RandomSparseRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17);
  const std::size_t n = 120;
  // Diagonal-dominant-ish sparse matrix: always nonsingular.
  SparseColumns a(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j].push_back({j, rng.uniform(2.0, 5.0) * (rng.bernoulli(0.5) ? 1 : -1)});
    const int extras = static_cast<int>(rng.uniform_int(0, 4));
    for (int t = 0; t < extras; ++t) {
      const std::size_t r = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      if (r != j) a[j].push_back({r, rng.uniform(-1.0, 1.0)});
    }
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));

  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.uniform(-10.0, 10.0);

  std::vector<double> b = matvec(a, x_true);
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-6);

  std::vector<double> c = matvec_transpose(a, x_true);
  lu.solve_transpose(c);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(c[i], x_true[i], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseLuRandom, ::testing::Range(0, 12));

TEST(SparseLu, TransposeSolveMatchesForwardOnAsymmetricMatrix) {
  SparseColumns a(3);
  a[0] = {{0, 1.0}, {2, 4.0}};
  a[1] = {{1, 2.0}};
  a[2] = {{0, 3.0}, {2, 1.0}};
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  // A^T y = c with c = A^T [1,1,1]^T must return [1,1,1].
  std::vector<double> c = matvec_transpose(a, {1.0, 1.0, 1.0});
  lu.solve_transpose(c);
  for (double v : c) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(SparseLu, FillIsBoundedOnBandMatrix) {
  // Tridiagonal: fill should stay linear in n.
  const std::size_t n = 200;
  SparseColumns a(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j].push_back({j, 4.0});
    if (j > 0) a[j].push_back({j - 1, 1.0});
    if (j + 1 < n) a[j].push_back({j + 1, 1.0});
  }
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  EXPECT_LT(lu.fill(), 10 * n);
}

TEST(SparseLu, DuplicateEntriesAreSummed) {
  SparseColumns a(1);
  a[0] = {{0, 1.5}, {0, 0.5}};  // 2.0 total
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));
  std::vector<double> b = {4.0};
  lu.solve(b);
  EXPECT_NEAR(b[0], 2.0, 1e-12);
}

}  // namespace
}  // namespace cellstream::lp
