#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace cellstream::lp {
namespace {

TEST(Simplex, TrivialBoundsOnlyMinimization) {
  Problem p;
  p.add_variable(2.0, 5.0, 1.0);   // pushed to lower bound
  p.add_variable(-3.0, 4.0, -1.0); // pushed to upper bound
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-8);
  EXPECT_NEAR(r.x[1], 4.0, 1e-8);
  EXPECT_NEAR(r.objective, -2.0, 1e-8);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0
  // (Dantzig's example; optimum x=2, y=6, value 36.)
  Problem p;
  const VarId x = p.add_variable(0, kInfinity, -3.0);
  const VarId y = p.add_variable(0, kInfinity, -5.0);
  p.add_row(-kInfinity, 4.0, {{x, 1.0}});
  p.add_row(-kInfinity, 12.0, {{y, 2.0}});
  p.add_row(-kInfinity, 18.0, {{x, 3.0}, {y, 2.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-8);
  EXPECT_NEAR(r.x[y], 6.0, 1e-8);
  EXPECT_NEAR(r.objective, -36.0, 1e-8);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // min x + 2y st x + y = 10, x <= 4  ->  x=4, y=6, obj 16.
  Problem p;
  const VarId x = p.add_variable(0, 4.0, 1.0);
  const VarId y = p.add_variable(0, kInfinity, 2.0);
  p.add_row(10.0, 10.0, {{x, 1.0}, {y, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 4.0, 1e-8);
  EXPECT_NEAR(r.x[y], 6.0, 1e-8);
  EXPECT_NEAR(r.objective, 16.0, 1e-8);
  EXPECT_GT(r.phase1_iterations, 0u);
}

TEST(Simplex, GreaterEqualRow) {
  // min x st x >= 7.5
  Problem p;
  const VarId x = p.add_variable(0, kInfinity, 1.0);
  p.add_row(7.5, kInfinity, {{x, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 7.5, 1e-8);
}

TEST(Simplex, RangedRow) {
  // min -x st 2 <= x <= 3 expressed as a ranged row on a wide variable.
  Problem p;
  const VarId x = p.add_variable(0, 100.0, -1.0);
  p.add_row(2.0, 3.0, {{x, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  Problem p;
  const VarId x = p.add_variable(0, 1.0, 0.0);
  p.add_row(5.0, kInfinity, {{x, 1.0}});  // x >= 5 impossible
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsConflictingRows) {
  Problem p;
  const VarId x = p.add_variable(-kInfinity, kInfinity, 0.0);
  p.add_row(4.0, 4.0, {{x, 1.0}});
  p.add_row(5.0, 5.0, {{x, 1.0}});
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Problem p;
  const VarId x = p.add_variable(0, kInfinity, -1.0);  // min -x, x free up
  p.add_row(0.0, kInfinity, {{x, 1.0}});
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min (x - 3)^L1-ish: min y st y >= x - 3, y >= 3 - x, x free -> 0 at x=3.
  Problem p;
  const VarId x = p.add_variable(-kInfinity, kInfinity, 0.0);
  const VarId y = p.add_variable(-kInfinity, kInfinity, 1.0);
  p.add_row(-3.0, kInfinity, {{y, 1.0}, {x, -1.0}});  // y - x >= -3
  p.add_row(3.0, kInfinity, {{y, 1.0}, {x, 1.0}});    // y + x >= 3
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-8);
  EXPECT_NEAR(r.x[x], 3.0, 1e-6);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many redundant rows through the same vertex.
  Problem p;
  const VarId x = p.add_variable(0, kInfinity, -1.0);
  const VarId y = p.add_variable(0, kInfinity, -1.0);
  for (int i = 0; i < 10; ++i) {
    p.add_row(-kInfinity, 1.0, {{x, 1.0}, {y, 1.0}});
  }
  p.add_row(-kInfinity, 1.0, {{x, 1.0}});
  p.add_row(-kInfinity, 1.0, {{y, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-8);
}

TEST(Simplex, FixedVariableIsRespected) {
  Problem p;
  const VarId x = p.add_variable(2.0, 2.0, -10.0);
  const VarId y = p.add_variable(0.0, 5.0, 1.0);
  p.add_row(3.0, kInfinity, {{x, 1.0}, {y, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-9);
  EXPECT_NEAR(r.x[y], 1.0, 1e-8);
}

// Fractional-knapsack LPs have a closed-form optimum (greedy by ratio):
// a sharp randomized check of upper-bounded variable handling.
class KnapsackLp : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackLp, MatchesGreedyOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 12;
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.uniform(1.0, 10.0);
    weight[i] = rng.uniform(1.0, 5.0);
  }
  const double capacity = rng.uniform(5.0, 20.0);

  Problem p;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    p.add_variable(0.0, 1.0, -value[i]);  // maximize value
    row.push_back({static_cast<VarId>(i), weight[i]});
  }
  p.add_row(-kInfinity, capacity, row);
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);

  // Greedy fractional optimum.
  std::vector<int> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(), [&](int a, int b) {
    return value[a] / weight[a] > value[b] / weight[b];
  });
  double remaining = capacity, best = 0.0;
  for (int i : idx) {
    const double take = std::min(1.0, remaining / weight[i]);
    best += take * value[i];
    remaining -= take * weight[i];
    if (remaining <= 0) break;
  }
  EXPECT_NEAR(-r.objective, best, 1e-6);
  EXPECT_LE(p.max_violation(r.x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackLp, ::testing::Range(0, 20));

// Assignment LPs have integral optima equal to the best permutation;
// exercises equality rows, phase 1 and degeneracy.
class AssignmentLp : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentLp, MatchesBestPermutation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const int n = 4;
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform(0.0, 10.0);
  }

  Problem p;
  std::vector<std::vector<VarId>> var(n, std::vector<VarId>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      var[i][j] = p.add_variable(0.0, 1.0, cost[i][j]);
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Coefficient> row_r, row_c;
    for (int j = 0; j < n; ++j) {
      row_r.push_back({var[i][j], 1.0});
      row_c.push_back({var[j][i], 1.0});
    }
    p.add_row(1.0, 1.0, row_r);
    p.add_row(1.0, 1.0, row_c);
  }
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);

  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = kInfinity;
  do {
    double total = 0.0;
    for (int i = 0; i < n; ++i) total += cost[i][perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(r.objective, best, 1e-6);
  EXPECT_LE(p.max_violation(r.x), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentLp, ::testing::Range(0, 20));

TEST(IncrementalSimplex, ResolveAfterBoundChange) {
  // min -x - y st x + y <= 10, 0 <= x,y <= 8.
  Problem p;
  const VarId x = p.add_variable(0, 8, -1.0);
  const VarId y = p.add_variable(0, 8, -1.0);
  p.add_row(-kInfinity, 10.0, {{x, 1.0}, {y, 1.0}});

  IncrementalSimplex solver(p);
  SimplexResult r1 = solver.solve();
  ASSERT_EQ(r1.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, -10.0, 1e-8);

  // Fix x = 1 (like a branch-and-bound node) and re-solve.
  solver.set_variable_bounds(x, 1.0, 1.0);
  SimplexResult r2 = solver.solve();
  ASSERT_EQ(r2.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r2.x[x], 1.0, 1e-9);
  EXPECT_NEAR(r2.objective, -9.0, 1e-8);

  // Relax it again.
  solver.set_variable_bounds(x, 0.0, 8.0);
  SimplexResult r3 = solver.solve();
  ASSERT_EQ(r3.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r3.objective, -10.0, 1e-8);
}

TEST(IncrementalSimplex, RepeatedResolvesStayConsistent) {
  Rng rng(99);
  Problem p;
  const int n = 6;
  for (int i = 0; i < n; ++i) p.add_variable(0.0, 1.0, rng.uniform(-5, 5));
  for (int r = 0; r < 4; ++r) {
    std::vector<Coefficient> row;
    for (int i = 0; i < n; ++i) row.push_back({static_cast<VarId>(i), rng.uniform(0, 3)});
    p.add_row(-kInfinity, rng.uniform(1, 4), row);
  }
  IncrementalSimplex solver(p);
  const double base = solver.solve().objective;
  for (int trial = 0; trial < 30; ++trial) {
    const VarId v = static_cast<VarId>(rng.uniform_int(0, n - 1));
    const double fix = rng.bernoulli(0.5) ? 1.0 : 0.0;
    solver.set_variable_bounds(v, fix, fix);
    const SimplexResult fixed = solver.solve();
    if (fixed.status == SolveStatus::kOptimal) {
      EXPECT_GE(fixed.objective, base - 1e-7);  // restriction can't improve
    }
    solver.set_variable_bounds(v, 0.0, 1.0);
    const SimplexResult relaxed = solver.solve();
    ASSERT_EQ(relaxed.status, SolveStatus::kOptimal);
    EXPECT_NEAR(relaxed.objective, base, 1e-6);
  }
}

TEST(IncrementalSimplex, LoadBasisRoundTrip) {
  Problem p;
  const VarId x = p.add_variable(0, 4, -1.0);
  p.add_row(-kInfinity, 3.0, {{x, 1.0}});
  IncrementalSimplex solver(p);
  const SimplexResult r = solver.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_TRUE(solver.load_basis(r.basis));
  const SimplexResult again = solver.solve();
  EXPECT_EQ(again.status, SolveStatus::kOptimal);
  EXPECT_NEAR(again.objective, r.objective, 1e-9);
  EXPECT_EQ(again.iterations, 1u);  // already optimal: one pricing pass
}

TEST(IncrementalSimplex, LoadBasisRejectsWrongShape) {
  Problem p;
  p.add_variable(0, 1, 0);
  IncrementalSimplex solver(p);
  Basis junk;
  junk.status = {VarStatus::kBasic};
  junk.basic_col = {0, 1, 2};
  EXPECT_FALSE(solver.load_basis(junk));
  EXPECT_EQ(solver.solve().status, SolveStatus::kOptimal);
}

}  // namespace
}  // namespace cellstream::lp
