// Anti-cycling regressions for the progress-based stall counter.
//
// The original guard counted *consecutive degenerate pivots* and reset on
// any positive step length.  Beale-style cycles and, worse, alternating
// degenerate / tiny-step pivot patterns evade that counter forever.  The
// fix measures actual merit progress (phase-1 infeasibility or phase-2
// objective) and engages Bland's rule after `stall_limit` pivots without
// relative progress above `stall_progress_tol`.  These tests pin the
// classic cycling instances and the edge cases around degenerate optima.

#include "lp/simplex.hpp"

#include <gtest/gtest.h>

namespace cellstream::lp {
namespace {

// Beale (1955): the canonical example on which textbook Dantzig pricing
// cycles forever through six degenerate bases.  The optimum is -0.05 at
// x = (0.04, 0, 1, 0).
Problem beale_problem() {
  Problem p;
  const VarId x1 = p.add_variable(0.0, kInfinity, -0.75);
  const VarId x2 = p.add_variable(0.0, kInfinity, 150.0);
  const VarId x3 = p.add_variable(0.0, kInfinity, -0.02);
  const VarId x4 = p.add_variable(0.0, kInfinity, 6.0);
  p.add_row(-kInfinity, 0.0,
            {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  p.add_row(-kInfinity, 0.0,
            {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  p.add_row(-kInfinity, 1.0, {{x3, 1.0}});
  return p;
}

TEST(SimplexCycling, BealeExampleTerminatesAtOptimum) {
  const SimplexResult r = solve_lp(beale_problem());
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
  EXPECT_NEAR(r.x[0], 0.04, 1e-9);
  EXPECT_NEAR(r.x[2], 1.0, 1e-9);
}

TEST(SimplexCycling, BealeTerminatesUnderTinyStallLimit) {
  // With an aggressive stall limit Bland's rule engages almost at once;
  // the solve must still terminate at the same optimum (Bland's rule is
  // slower, never wrong).
  SimplexOptions opts;
  opts.stall_limit = 2;
  const SimplexResult r = solve_lp(beale_problem(), opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(SimplexCycling, StallCounterIsNotResetByTinyImprovements) {
  // The evasion pattern the old counter missed: steps that are nonzero but
  // make no measurable progress must still count toward the stall limit.
  // We force the regime by setting the progress tolerance so high that
  // every pivot of a normal solve counts as stalled: the solve then runs
  // entirely under Bland's rule and must still reach the optimum.
  SimplexOptions opts;
  opts.stall_limit = 0;           // stall immediately ...
  opts.stall_progress_tol = 1e6;  // ... and never observe "progress"
  const SimplexResult r = solve_lp(beale_problem(), opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(SimplexCycling, DegenerateOptimalTieTerminates) {
  // Multiple optimal bases: the objective is constant along an edge of the
  // feasible region and several ratio-test ties occur at the optimum.  Any
  // vertex of the optimal face is acceptable; termination is the point.
  Problem p;
  const VarId x = p.add_variable(0.0, kInfinity, -1.0);
  const VarId y = p.add_variable(0.0, kInfinity, -1.0);
  p.add_row(-kInfinity, 1.0, {{x, 1.0}, {y, 1.0}});
  p.add_row(-kInfinity, 1.0, {{x, 1.0}, {y, 1.0}});  // duplicate: degenerate
  p.add_row(-kInfinity, 1.0, {{x, 1.0}});
  p.add_row(-kInfinity, 1.0, {{y, 1.0}});
  const SimplexResult r = solve_lp(p);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-9);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-9);
}

TEST(SimplexEdgeCases, DimensionallyStaleWarmBasisFallsBackToAllSlack) {
  // A basis saved from a different problem shape must be silently ignored
  // by solve_lp (documented fallback), not crash or corrupt the solve.
  Problem small;
  const VarId s = small.add_variable(0.0, 4.0, -1.0);
  small.add_row(-kInfinity, 3.0, {{s, 1.0}});
  const SimplexResult small_result = solve_lp(small);
  ASSERT_EQ(small_result.status, SolveStatus::kOptimal);
  ASSERT_FALSE(small_result.basis.empty());

  Problem big;
  const VarId a = big.add_variable(0.0, 1.0, -2.0);
  const VarId b = big.add_variable(0.0, 1.0, -3.0);
  big.add_row(-kInfinity, 1.5, {{a, 1.0}, {b, 1.0}});
  big.add_row(-kInfinity, 1.0, {{b, 1.0}});
  const SimplexResult warm = solve_lp(big, {}, &small_result.basis);
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, -4.0, 1e-9);  // b = 1, a = 0.5
}

TEST(SimplexEdgeCases, LoadBasisDimensionMismatchResetsToAllSlack) {
  // IncrementalSimplex::load_basis documents that a failed load leaves the
  // all-slack basis behind — including the dimension-mismatch path, which
  // must not keep whatever basis a previous solve left in place.
  Problem p;
  const VarId x = p.add_variable(0.0, 2.0, -1.0);
  const VarId y = p.add_variable(0.0, 2.0, -1.0);
  p.add_row(-kInfinity, 3.0, {{x, 1.0}, {y, 1.0}});
  IncrementalSimplex solver(p);
  const SimplexResult first = solver.solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  Basis stale;  // saved from a problem with one variable and zero rows
  stale.status = {VarStatus::kBasic};
  EXPECT_FALSE(solver.load_basis(stale));
  const SimplexResult again = solver.solve();
  ASSERT_EQ(again.status, SolveStatus::kOptimal);
  EXPECT_NEAR(again.objective, first.objective, 1e-9);
}

TEST(SimplexEdgeCases, CollectBasisOffLeavesResultBasisEmpty) {
  SimplexOptions opts;
  opts.collect_basis = false;
  Problem p;
  const VarId x = p.add_variable(0.0, 1.0, -1.0);
  p.add_row(-kInfinity, 1.0, {{x, 1.0}});
  const SimplexResult r = solve_lp(p, opts);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_TRUE(r.basis.empty());
}

TEST(SimplexEdgeCases, SaveBasisRoundTripsWithoutResultCollection) {
  // The branch-and-bound workers run with collect_basis off and snapshot
  // via save_basis() only when branching; the snapshot must be loadable
  // and reproduce the optimum in a single pricing pass.
  SimplexOptions opts;
  opts.collect_basis = false;
  Problem p;
  const VarId x = p.add_variable(0.0, 4.0, -1.0);
  const VarId y = p.add_variable(0.0, 4.0, -2.0);
  p.add_row(-kInfinity, 5.0, {{x, 1.0}, {y, 1.0}});
  IncrementalSimplex solver(p, opts);
  const SimplexResult r = solver.solve();
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const Basis snapshot = solver.save_basis();
  EXPECT_FALSE(snapshot.empty());

  IncrementalSimplex fresh(p, opts);
  ASSERT_TRUE(fresh.load_basis(snapshot));
  const SimplexResult warm = fresh.solve();
  ASSERT_EQ(warm.status, SolveStatus::kOptimal);
  EXPECT_NEAR(warm.objective, r.objective, 1e-9);
  EXPECT_EQ(warm.iterations, 1u);  // already optimal: one pricing pass
}

}  // namespace
}  // namespace cellstream::lp
