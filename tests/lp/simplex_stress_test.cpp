// Stress and configuration-edge tests for the simplex engine: frequent
// refactorization, tiny eta budgets, Bland fallback, and consistency of
// the mapping LP relaxation against known feasible points.

#include <gtest/gtest.h>

#include "gen/daggen.hpp"
#include "lp/simplex.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"
#include "support/rng.hpp"

namespace cellstream::lp {
namespace {

Problem random_knapsack(std::uint64_t seed, int n) {
  Rng rng(seed);
  Problem p;
  std::vector<Coefficient> row;
  for (int i = 0; i < n; ++i) {
    const VarId v = p.add_variable(0.0, 1.0, -rng.uniform(1.0, 10.0));
    row.push_back({v, rng.uniform(1.0, 5.0)});
  }
  p.add_row(-kInfinity, rng.uniform(5.0, 15.0), row);
  return p;
}

TEST(SimplexStress, FrequentRefactorizationGivesIdenticalOptima) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Problem p = random_knapsack(seed, 20);
    SimplexOptions normal;
    SimplexOptions paranoid;
    paranoid.refactor_interval = 2;  // refactor after every other pivot
    const SimplexResult a = solve_lp(p, normal);
    const SimplexResult b = solve_lp(p, paranoid);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-8) << "seed " << seed;
  }
}

TEST(SimplexStress, ImmediateBlandModeStillSolves) {
  SimplexOptions opts;
  opts.stall_limit = 0;  // every degenerate pivot triggers Bland's rule
  const Problem p = random_knapsack(3, 15);
  const SimplexResult normal = solve_lp(p);
  const SimplexResult bland = solve_lp(p, opts);
  ASSERT_EQ(bland.status, SolveStatus::kOptimal);
  EXPECT_NEAR(bland.objective, normal.objective, 1e-8);
}

TEST(SimplexStress, TinyIterationLimitReportsLimit) {
  // The mapping relaxation needs far more than 3 iterations.
  gen::DagGenParams params;
  params.task_count = 15;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 1.0);
  SteadyStateAnalysis analysis(std::move(g), platforms::qs22_single_cell());
  const Problem p = mapping::build_formulation(analysis).problem;
  SimplexOptions opts;
  opts.max_iterations = 3;
  EXPECT_EQ(solve_lp(p, opts).status, SolveStatus::kIterationLimit);
}

TEST(SimplexStress, MappingRelaxationLowerBoundsEveryFeasibleMapping) {
  // The LP relaxation's optimum must be <= the period of every concrete
  // feasible mapping (whose encoding is an LP-feasible point).
  gen::DagGenParams params;
  params.task_count = 16;
  params.seed = 4;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 1.0);
  SteadyStateAnalysis analysis(std::move(graph),
                               platforms::qs22_single_cell());
  const mapping::Formulation f = mapping::build_formulation(analysis);
  const SimplexResult relaxation = solve_lp(f.problem);
  ASSERT_EQ(relaxation.status, SolveStatus::kOptimal);
  for (const char* name : {"ppe-only", "greedy-cpu", "greedy-mem"}) {
    const Mapping m = mapping::run_heuristic(name, analysis);
    if (!analysis.feasible(m)) continue;
    EXPECT_LE(relaxation.objective, analysis.period(m) + 1e-9) << name;
  }
}

TEST(SimplexStress, BetaVariablesIntegralOnceAlphaFixed) {
  // Fix an integral alpha assignment through bounds; the LP must then
  // produce the product beta (the justification for alpha-only branching).
  TaskGraph g("trio");
  Task t;
  t.wppe = 1e-3;
  t.wspe = 0.5e-3;
  g.add_task(t);
  g.add_task(t);
  g.add_task(t);
  g.add_edge(0, 1, 2048.0);
  g.add_edge(1, 2, 2048.0);
  SteadyStateAnalysis analysis(std::move(g), platforms::qs22_with_spes(2));
  mapping::Formulation f = mapping::build_formulation(analysis);
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  const std::size_t n = 3;
  for (TaskId k = 0; k < 3; ++k) {
    for (PeId i = 0; i < n; ++i) {
      const double v = m.pe_of(k) == i ? 1.0 : 0.0;
      f.problem.set_variable_bounds(f.alpha[k][i], v, v);
    }
  }
  const SimplexResult r = solve_lp(f.problem);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, analysis.period(m), 1e-9);
  for (EdgeId e = 0; e < 2; ++e) {
    const Edge& edge = analysis.graph().edge(e);
    for (PeId i = 0; i < n; ++i) {
      for (PeId j = 0; j < n; ++j) {
        const double expected =
            (m.pe_of(edge.from) == i && m.pe_of(edge.to) == j) ? 1.0 : 0.0;
        // Routing variables that carry no cost may float when unused, but
        // the delivering entry must be 1 and impossible entries 0.
        const double value = r.x[f.beta[e][i * n + j]];
        if (expected == 1.0) {
          EXPECT_NEAR(value, 1.0, 1e-7);
        } else if (m.pe_of(edge.from) != i) {
          EXPECT_NEAR(value, 0.0, 1e-7);  // (1d) forbids foreign senders
        }
      }
    }
  }
}

TEST(SimplexStress, RepeatedWarmResolvesOnMappingLp) {
  gen::DagGenParams params;
  params.task_count = 12;
  params.seed = 9;
  TaskGraph graph = gen::daggen_random(params);
  gen::set_ccr(graph, 0.775);
  SteadyStateAnalysis analysis(std::move(graph),
                               platforms::qs22_with_spes(4));
  const mapping::Formulation f = mapping::build_formulation(analysis);
  IncrementalSimplex solver(f.problem);
  const SimplexResult root = solver.solve();
  ASSERT_EQ(root.status, SolveStatus::kOptimal);
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    // Fix a random alpha to 1 (with its group to 0), re-solve, undo.
    const TaskId k = static_cast<TaskId>(rng.uniform_int(0, 11));
    const PeId pe = static_cast<PeId>(rng.uniform_int(0, 4));
    for (PeId i = 0; i < 5; ++i) {
      const double v = i == pe ? 1.0 : 0.0;
      solver.set_variable_bounds(f.alpha[k][i], v, v);
    }
    const SimplexResult fixed = solver.solve();
    if (fixed.status == SolveStatus::kOptimal) {
      EXPECT_GE(fixed.objective, root.objective - 1e-9);
    }
    for (PeId i = 0; i < 5; ++i) {
      solver.set_variable_bounds(f.alpha[k][i], 0.0, 1.0);
    }
    const SimplexResult relaxed = solver.solve();
    ASSERT_EQ(relaxed.status, SolveStatus::kOptimal);
    EXPECT_NEAR(relaxed.objective, root.objective,
                1e-7 * (1.0 + std::abs(root.objective)));
  }
}

}  // namespace
}  // namespace cellstream::lp
