#include "lp/problem.hpp"

#include <gtest/gtest.h>

namespace cellstream::lp {
namespace {

TEST(Problem, AddVariableStoresAttributes) {
  Problem p;
  const VarId v = p.add_variable(0.0, 1.0, 2.5, "alpha");
  EXPECT_EQ(v, 0u);
  EXPECT_DOUBLE_EQ(p.var_lo(v), 0.0);
  EXPECT_DOUBLE_EQ(p.var_up(v), 1.0);
  EXPECT_DOUBLE_EQ(p.cost(v), 2.5);
  EXPECT_EQ(p.var_name(v), "alpha");
}

TEST(Problem, DefaultNamesAreSequential) {
  Problem p;
  p.add_variable(0, 1, 0);
  p.add_variable(0, 1, 0);
  EXPECT_EQ(p.var_name(1), "x1");
}

TEST(Problem, AddVariableRejectsEmptyInterval) {
  Problem p;
  EXPECT_THROW(p.add_variable(1.0, 0.0, 0.0), Error);
}

TEST(Problem, AddRowMergesDuplicateCoefficients) {
  Problem p;
  const VarId v = p.add_variable(0, 10, 0);
  const RowId r = p.add_row(0, 5, {{v, 1.0}, {v, 2.0}});
  ASSERT_EQ(p.row(r).size(), 1u);
  EXPECT_DOUBLE_EQ(p.row(r)[0].value, 3.0);
}

TEST(Problem, AddRowDropsCancelledCoefficients) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 0);
  const VarId b = p.add_variable(0, 1, 0);
  const RowId r = p.add_row(0, 1, {{a, 1.0}, {b, 2.0}, {a, -1.0}});
  ASSERT_EQ(p.row(r).size(), 1u);
  EXPECT_EQ(p.row(r)[0].var, b);
}

TEST(Problem, AddRowValidates) {
  Problem p;
  p.add_variable(0, 1, 0);
  EXPECT_THROW(p.add_row(0, 1, {{5, 1.0}}), Error);
  EXPECT_THROW(p.add_row(2, 1, {{0, 1.0}}), Error);
  EXPECT_THROW(p.add_row(0, 1, {{0, kInfinity}}), Error);
}

TEST(Problem, ObjectiveValue) {
  Problem p;
  p.add_variable(0, 1, 2.0);
  p.add_variable(0, 1, -1.0);
  EXPECT_DOUBLE_EQ(p.objective_value({0.5, 1.0}), 0.0);
  EXPECT_THROW(p.objective_value({0.5}), Error);
}

TEST(Problem, MaxViolationOnFeasiblePointIsZero) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 0);
  const VarId b = p.add_variable(0, 1, 0);
  p.add_row(-kInfinity, 1.5, {{a, 1.0}, {b, 1.0}});
  EXPECT_DOUBLE_EQ(p.max_violation({0.5, 0.5}), 0.0);
}

TEST(Problem, MaxViolationReportsWorstBreach) {
  Problem p;
  const VarId a = p.add_variable(0, 1, 0);
  p.add_row(2.0, kInfinity, {{a, 1.0}});  // needs a >= 2 but a <= 1
  // At a = 1: row short by 1.0; at a = 3: variable bound breached by 2.0.
  EXPECT_DOUBLE_EQ(p.max_violation({1.0}), 1.0);
  EXPECT_DOUBLE_EQ(p.max_violation({3.0}), 2.0);
}

TEST(Problem, SetVariableBounds) {
  Problem p;
  const VarId v = p.add_variable(0, 1, 0);
  p.set_variable_bounds(v, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(p.var_lo(v), 1.0);
  EXPECT_THROW(p.set_variable_bounds(v, 2.0, 1.0), Error);
  EXPECT_THROW(p.set_variable_bounds(9, 0.0, 1.0), Error);
}

}  // namespace
}  // namespace cellstream::lp
