#include "des/flow_network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cellstream::des {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Fixture {
  Engine engine;
  std::vector<double> done_times;

  std::function<void()> recorder() {
    return [this] { done_times.push_back(engine.now()); };
  }
};

TEST(FlowNetwork, SingleTransferRunsAtFullPortSpeed) {
  Fixture f;
  FlowNetwork net(f.engine, {100.0, 100.0}, {100.0, 100.0});
  net.start_transfer(0, 1, 50.0, f.recorder());
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 1u);
  EXPECT_NEAR(f.done_times[0], 0.5, 1e-9);
}

TEST(FlowNetwork, TwoTransfersShareTheSourcePort) {
  Fixture f;
  FlowNetwork net(f.engine, {100.0, 100.0, 100.0}, {100.0, 100.0, 100.0});
  // Both leave node 0: each gets 50 B/s.
  net.start_transfer(0, 1, 50.0, f.recorder());
  net.start_transfer(0, 2, 50.0, f.recorder());
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 2u);
  EXPECT_NEAR(f.done_times[0], 1.0, 1e-9);
  EXPECT_NEAR(f.done_times[1], 1.0, 1e-9);
}

TEST(FlowNetwork, IncomingPortIsAlsoABottleneck) {
  Fixture f;
  FlowNetwork net(f.engine, {100.0, 100.0, 100.0}, {100.0, 100.0, 100.0});
  // Two sources into node 2: its incoming port splits 50/50.
  net.start_transfer(0, 2, 50.0, f.recorder());
  net.start_transfer(1, 2, 100.0, f.recorder());
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 2u);
  EXPECT_NEAR(f.done_times[0], 1.0, 1e-9);
  // After t=1 the remaining transfer gets the full 100 B/s:
  // 50 B left at t=1 -> finishes at 1.5.
  EXPECT_NEAR(f.done_times[1], 1.5, 1e-9);
}

TEST(FlowNetwork, MaxMinFairnessGivesUnbottleneckedFlowTheRest) {
  Fixture f;
  // Node 0 out: 100; node 1 in: 30.  Flow A 0->1 limited to 30; flow B
  // 0->2 gets the remaining 70.
  FlowNetwork net(f.engine, {100.0, 100.0, 100.0}, {100.0, 30.0, 100.0});
  TransferId a = net.start_transfer(0, 1, 30.0, f.recorder());
  TransferId b = net.start_transfer(0, 2, 70.0, f.recorder());
  EXPECT_NEAR(net.current_rate(a), 30.0, 1e-9);
  EXPECT_NEAR(net.current_rate(b), 70.0, 1e-9);
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 2u);
  EXPECT_NEAR(f.done_times[0], 1.0, 1e-9);
  EXPECT_NEAR(f.done_times[1], 1.0, 1e-9);
}

TEST(FlowNetwork, InfinitePortsCompleteImmediately) {
  Fixture f;
  FlowNetwork net(f.engine, {kInf, kInf}, {kInf, kInf});
  net.start_transfer(0, 1, 1e9, f.recorder());
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 1u);
  EXPECT_DOUBLE_EQ(f.done_times[0], 0.0);
}

TEST(FlowNetwork, MemoryStyleNodeOnlyConstrainedByPeSide) {
  Fixture f;
  // Node 1 is "memory" (infinite); node 0 has 10 B/s ports.
  FlowNetwork net(f.engine, {10.0, kInf}, {10.0, kInf});
  net.start_transfer(0, 1, 20.0, f.recorder());
  f.engine.run();
  EXPECT_NEAR(f.done_times.at(0), 2.0, 1e-9);
}

TEST(FlowNetwork, ZeroByteTransferCompletesAsynchronouslyAtNow) {
  Fixture f;
  FlowNetwork net(f.engine, {10.0, 10.0}, {10.0, 10.0});
  bool done = false;
  net.start_transfer(0, 1, 0.0, [&] { done = true; });
  EXPECT_FALSE(done);  // not synchronous
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.engine.now(), 0.0);
}

TEST(FlowNetwork, RatesRecomputeWhenTransfersJoin) {
  Fixture f;
  FlowNetwork net(f.engine, {100.0, 100.0, 100.0}, {100.0, 100.0, 100.0});
  net.start_transfer(0, 1, 100.0, f.recorder());  // alone: 1s
  f.engine.schedule_at(0.5, [&] {
    // Joins halfway: both now at 50 B/s.
    net.start_transfer(0, 2, 25.0, f.recorder());
  });
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 2u);
  // First transfer: 50 B by 0.5s, then 50 B/s -> 50 remaining takes 1s,
  // but the second finishes at 0.5 + 0.5 = 1.0 freeing capacity:
  // remaining 25 B at full speed -> 1.25 total.
  EXPECT_NEAR(f.done_times[0], 1.0, 1e-9);   // the 25 B joiner
  EXPECT_NEAR(f.done_times[1], 1.25, 1e-9);  // the 100 B original
}

TEST(FlowNetwork, CompletionCallbackCanStartNewTransfer) {
  Fixture f;
  FlowNetwork net(f.engine, {10.0, 10.0}, {10.0, 10.0});
  double second_done = -1.0;
  net.start_transfer(0, 1, 10.0, [&] {
    net.start_transfer(1, 0, 10.0, [&] { second_done = f.engine.now(); });
  });
  f.engine.run();
  EXPECT_NEAR(second_done, 2.0, 1e-9);
}

TEST(FlowNetwork, ValidatesArguments) {
  Fixture f;
  FlowNetwork net(f.engine, {10.0, 10.0}, {10.0, 10.0});
  EXPECT_THROW(net.start_transfer(0, 0, 10.0, nullptr), Error);
  EXPECT_THROW(net.start_transfer(0, 5, 10.0, nullptr), Error);
  EXPECT_THROW(net.start_transfer(0, 1, -4.0, nullptr), Error);
  EXPECT_THROW(FlowNetwork(f.engine, {10.0}, {10.0, 10.0}), Error);
  EXPECT_THROW(FlowNetwork(f.engine, {0.0}, {10.0}), Error);
}

TEST(FlowNetwork, ManyConcurrentTransfersConserveThroughput) {
  Fixture f;
  // 4 nodes, all-to-one: node 3's incoming 90 shared by 3 flows of 30.
  FlowNetwork net(f.engine, {100.0, 100.0, 100.0, 100.0},
                  {100.0, 100.0, 100.0, 90.0});
  for (NodeId s = 0; s < 3; ++s) {
    net.start_transfer(s, 3, 30.0, f.recorder());
  }
  f.engine.run();
  ASSERT_EQ(f.done_times.size(), 3u);
  for (double t : f.done_times) EXPECT_NEAR(t, 1.0, 1e-9);
}

}  // namespace
}  // namespace cellstream::des
