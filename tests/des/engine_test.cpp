#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace cellstream::des {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_DOUBLE_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, SimultaneousEventsFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(1.0, [&] { order.push_back(2); });
  e.schedule_at(1.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.schedule_at(5.0, [&] {
    e.schedule_in(2.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, RejectsPastEventsAndNullActions) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), Error);
  EXPECT_THROW(e.schedule_in(-1.0, [] {}), Error);
  EXPECT_THROW(e.schedule_at(20.0, nullptr), Error);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.executed(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine e;
  e.cancel(424242);
  bool fired = false;
  e.schedule_at(1.0, [&] { fired = true; });
  e.cancel(99999);
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<double> fired;
  for (int i = 1; i <= 5; ++i) {
    e.schedule_at(static_cast<double>(i), [&, i] {
      fired.push_back(static_cast<double>(i));
    });
  }
  e.run_until(3.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(fired.size(), 5u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) e.schedule_in(1.0, chain);
  };
  e.schedule_at(0.0, chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

TEST(Engine, EventCanCancelAnotherPendingEvent) {
  Engine e;
  bool victim_fired = false;
  const EventId victim = e.schedule_at(2.0, [&] { victim_fired = true; });
  e.schedule_at(1.0, [&] { e.cancel(victim); });
  e.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Engine, PendingCountsOnlyLiveEvents) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilFiresEventsExactlyAtTheBoundary) {
  Engine e;
  bool at_boundary = false, after_boundary = false;
  e.schedule_at(3.0, [&] { at_boundary = true; });
  e.schedule_at(3.0 + 1e-9, [&] { after_boundary = true; });
  e.run_until(3.0);
  EXPECT_TRUE(at_boundary);
  EXPECT_FALSE(after_boundary);
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, RunUntilInThePastNeverMovesNowBackwards) {
  Engine e;
  e.schedule_at(5.0, [] {});
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run_until(2.0);  // no-op, not an error, not a clock rewind
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  bool fired = false;
  e.schedule_at(6.0, [&] { fired = true; });
  e.run_until(1.0);
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run_until(6.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, RejectsNonFiniteTimes) {
  Engine e;
  const double nan = std::nan("");
  EXPECT_THROW(e.schedule_at(nan, [] {}), Error);
  EXPECT_THROW(e.schedule_in(nan, [] {}), Error);
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               Error);
  EXPECT_THROW(e.schedule_at(-1.0, [] {}), Error);
  EXPECT_EQ(e.pending(), 0u);  // nothing half-registered by the rejects
}

TEST(Engine, ShiftTimePreservesOrderSpacingAndHandles) {
  Engine e;
  std::vector<int> order;
  const EventId a = e.schedule_at(1.0, [&] { order.push_back(1); });
  const EventId b = e.schedule_at(2.0, [&] { order.push_back(2); });
  e.schedule_at(2.0, [&] { order.push_back(3); });  // same-time tie
  e.shift_time(10.0);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
  EXPECT_DOUBLE_EQ(e.time_of(a), 11.0);
  EXPECT_DOUBLE_EQ(e.time_of(b), 12.0);
  EXPECT_TRUE(e.is_pending(a));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 12.0);
}

TEST(Engine, StaleHandleAfterSlotReuseIsIgnored) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.cancel(a);  // frees the slot
  bool fired = false;
  const EventId b = e.schedule_at(1.0, [&] { fired = true; });
  // `a`'s slot may have been recycled into `b`; the stale handle must not
  // resolve to (or cancel) the new event.
  EXPECT_FALSE(e.is_pending(a));
  e.cancel(a);
  EXPECT_TRUE(e.is_pending(b));
  e.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelHeavyLoadCompactsTombstones) {
  // Schedule and cancel far more events than survive: the lazy sweep must
  // keep the heap bounded by the live population, and the survivors must
  // still fire in order.
  Engine e;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int round = 0; round < 200; ++round) {
    for (int j = 0; j < 16; ++j) {
      doomed.push_back(
          e.schedule_at(1000.0 + round, [] { FAIL() << "cancelled event ran"; }));
    }
    for (const EventId id : doomed) e.cancel(id);
    doomed.clear();
  }
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(e.pending(), 2u);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(e.executed(), 2u);
}

}  // namespace
}  // namespace cellstream::des
