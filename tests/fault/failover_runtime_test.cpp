// The host runtime under fault injection: real task code, real threads,
// real sleeps — a fail-stop mid-stream must drain, remap, migrate and
// resume without losing or duplicating a value; transient DMA retries must
// never corrupt the dataflow; the progress watchdog must catch a genuine
// hang and must NOT fire on a slow-but-progressing stream.

#include "runtime/host_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "check/invariants.hpp"
#include "support/error.hpp"

namespace cellstream::runtime {
namespace {

Task make_task(double w = 0.1e-3, int peek = 0) {
  Task t;
  t.wppe = w;
  t.wspe = w;
  t.peek = peek;
  return t;
}

Packet pack(std::int64_t value) {
  Packet p(sizeof value);
  std::memcpy(p.data(), &value, sizeof value);
  return p;
}

std::int64_t unpack(const Packet& p) {
  std::int64_t value = 0;
  CS_ENSURE(p.size() == sizeof value, "unpack: bad packet");
  std::memcpy(&value, p.data(), sizeof value);
  return value;
}

/// source -> double -> verify chain on PEs 0, 1, 2.
struct Chain {
  TaskGraph graph{"chain3"};
  Mapping mapping{0, 0};
  std::atomic<std::int64_t> verified{0};
  std::atomic<bool> mismatch{false};
  std::vector<TaskFunction> tasks;

  Chain() {
    graph.add_task(make_task());
    graph.add_task(make_task());
    graph.add_task(make_task());
    graph.add_edge(0, 1, 64.0);
    graph.add_edge(1, 2, 64.0);
    mapping = Mapping(3, 0);
    mapping.assign(1, 1);
    mapping.assign(2, 2);
    tasks = {
        [](const TaskInputs& in) {
          return std::vector<Packet>{pack(in.instance * 3 + 1)};
        },
        [](const TaskInputs& in) {
          return std::vector<Packet>{pack(2 * unpack(*in.inputs[0][0]))};
        },
        [this](const TaskInputs& in) {
          if (unpack(*in.inputs[0][0]) != 2 * (in.instance * 3 + 1)) {
            mismatch = true;
          }
          ++verified;
          return std::vector<Packet>{};
        }};
  }
};

TEST(FailoverRuntime, FailStopMidStreamLosesNoValue) {
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.pe_failure = fault::PeFailure{1, 100};  // PE hosting the doubler

  RunOptions options;
  options.instances = 300;
  options.fault_plan = &plan;
  const RunStats stats = run_stream(ss, chain.mapping, chain.tasks, options);

  // Every instance arrived exactly once with the right value.
  EXPECT_EQ(chain.verified.load(), 300);
  EXPECT_FALSE(chain.mismatch.load());
  EXPECT_EQ(stats.tasks_executed, 3u * 300u);

  // The failover actually ran and evacuated the dead PE.
  EXPECT_EQ(stats.faults.failovers, 1);
  EXPECT_EQ(stats.faults.failed_pe, 1);
  EXPECT_GE(stats.faults.migrated_tasks, 1);
  EXPECT_NE(stats.final_mapping.pe_of(1), 1u);

  // I8 on the runtime's own end-to-end accounting.
  const std::vector<check::Violation> violations =
      check::check_stream_integrity(chain.graph, check::accounting_of(stats),
                                    options.instances);
  for (const check::Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(FailoverRuntime, ConcurrentDmaRetriesNeverCorruptValues) {
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.seed = 13;
  plan.dma = {0.3, 4, 2.0e-5, 0.5};  // heavy retry pressure, tiny backoff

  RunOptions options;
  options.instances = 500;
  options.fault_plan = &plan;
  const RunStats stats = run_stream(ss, chain.mapping, chain.tasks, options);

  EXPECT_EQ(chain.verified.load(), 500);
  EXPECT_FALSE(chain.mismatch.load());
  EXPECT_GT(stats.faults.dma_retries, 0);
  EXPECT_GT(stats.faults.backoff_seconds, 0.0);

  const std::vector<check::Violation> violations =
      check::check_stream_integrity(chain.graph, check::accounting_of(stats),
                                    options.instances);
  for (const check::Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(FailoverRuntime, FailStopUnderDmaPressureStaysConsistent) {
  // The drain barrier must hold while transient retries are in flight —
  // the combination that pressures the frontier accounting hardest.
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.seed = 17;
  plan.pe_failure = fault::PeFailure{1, 80};
  plan.dma = {0.2, 4, 2.0e-5, 0.5};

  RunOptions options;
  options.instances = 250;
  options.fault_plan = &plan;
  options.failover_strategy = "greedy-cpu";
  const RunStats stats = run_stream(ss, chain.mapping, chain.tasks, options);

  EXPECT_EQ(chain.verified.load(), 250);
  EXPECT_FALSE(chain.mismatch.load());
  EXPECT_EQ(stats.faults.failovers, 1);
  EXPECT_GT(stats.faults.dma_retries, 0);
  const std::vector<check::Violation> violations =
      check::check_stream_integrity(chain.graph, check::accounting_of(stats),
                                    options.instances);
  for (const check::Violation& v : violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(FailoverRuntime, WatchdogTripsOnAGenuineHang) {
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.hangs.push_back({1, 20, 2.0});  // 2 s stall, window is 0.3 s

  RunOptions options;
  options.instances = 200;
  options.fault_plan = &plan;
  options.wall_timeout_seconds = 0.3;
  try {
    run_stream(ss, chain.mapping, chain.tasks, options);
    FAIL() << "expected the watchdog to trip";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
  }
}

TEST(FailoverRuntime, HangShorterThanTheWindowIsAbsorbedAndCounted) {
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.hangs.push_back({1, 20, 0.15});

  RunOptions options;
  options.instances = 100;
  options.fault_plan = &plan;
  options.wall_timeout_seconds = 5.0;
  const RunStats stats = run_stream(ss, chain.mapping, chain.tasks, options);

  EXPECT_EQ(chain.verified.load(), 100);
  EXPECT_EQ(stats.faults.hangs, 1);
  EXPECT_NEAR(stats.faults.hang_seconds, 0.15, 1e-9);
}

TEST(FailoverRuntime, SlowButProgressingStreamNeverTripsTheWatchdog) {
  // Regression for the false-firing wall timeout: every task takes longer
  // than a naive fixed deadline would allow in aggregate, but each commit
  // rearms the watchdog, so the run completes.  Total body time here is
  // 120 instances x 3 tasks x 4 ms = 1.44 s of work against a 0.4 s
  // window — the old whole-run deadline semantics would abort it.
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  std::vector<TaskFunction> slow_tasks = chain.tasks;
  for (std::size_t t = 0; t < slow_tasks.size(); ++t) {
    const TaskFunction inner = slow_tasks[t];
    slow_tasks[t] = [inner](const TaskInputs& in) {
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
      return inner(in);
    };
  }

  RunOptions options;
  options.instances = 120;
  options.wall_timeout_seconds = 0.4;
  const RunStats stats = run_stream(ss, chain.mapping, slow_tasks, options);

  EXPECT_EQ(chain.verified.load(), 120);
  EXPECT_FALSE(chain.mismatch.load());
  EXPECT_GT(stats.wall_seconds, options.wall_timeout_seconds);
}

TEST(FailoverRuntime, RuntimeAndSimulatorAgreeOnTheFaultSequence) {
  // The injector is shared and keyed by (seed, object, instance), so for
  // the same plan the runtime must observe exactly the retry count the
  // simulator predicted — interleaving-independent injection.
  Chain chain;
  const SteadyStateAnalysis ss(chain.graph, platforms::qs22_single_cell());

  fault::FaultPlan plan;
  plan.seed = 29;
  plan.dma = {0.15, 4, 2.0e-5, 0.5};

  sim::SimOptions sim_options;
  sim_options.instances = 400;
  sim_options.fault_plan = &plan;
  const sim::SimResult sim_run = sim::simulate(ss, chain.mapping, sim_options);

  RunOptions options;
  options.instances = 400;
  options.fault_plan = &plan;
  const RunStats run = run_stream(ss, chain.mapping, chain.tasks, options);

  // Same remote edges, same instances, same oracle: identical retry
  // totals.  (Backoff seconds differ: the simulator also draws for
  // main-memory traffic it models explicitly; edge retries are the
  // common denominator both executors inject per remote edge packet.)
  EXPECT_GT(run.faults.dma_retries, 0);
  EXPECT_EQ(run.faults.dma_retries, sim_run.faults.dma_retries);
}

}  // namespace
}  // namespace cellstream::runtime
