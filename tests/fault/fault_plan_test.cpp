// The fault model's contracts: plans are deterministic in their seed,
// serialize exactly, reject nonsense, and the injector is a pure function
// of (seed, kind, object, instance) — the property that makes injection
// identical across executors and thread interleavings.

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "platform/cell.hpp"
#include "support/error.hpp"

namespace cellstream::fault {
namespace {

const CellPlatform& platform() {
  static const CellPlatform p = platforms::qs22_single_cell();
  return p;
}

TEST(FaultPlan, RandomPlansAreSeedDeterministicAndValid) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const FaultPlan a = FaultPlan::random(seed, platform(), 500);
    const FaultPlan b = FaultPlan::random(seed, platform(), 500);
    EXPECT_EQ(a.to_text(), b.to_text()) << "seed " << seed;
    EXPECT_NO_THROW(a.validate(platform())) << "seed " << seed;
    // Random plans only fail-stop SPEs: losing the last PPE is
    // unsurvivable by construction.
    if (a.pe_failure) {
      EXPECT_TRUE(platform().is_spe(a.pe_failure->pe));
    }
  }
  EXPECT_NE(FaultPlan::random(1, platform(), 500).to_text(),
            FaultPlan::random(2, platform(), 500).to_text());
}

TEST(FaultPlan, TextRoundTripsExactly) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, platform(), 300);
    const std::string text = plan.to_text();
    EXPECT_EQ(FaultPlan::from_text(text).to_text(), text) << "seed " << seed;
  }
  // A hand-written plan with every section populated.
  FaultPlan plan;
  plan.seed = 99;
  plan.pe_failure = PeFailure{3, 42};
  plan.slowdowns.push_back({2, 10, 20, 2.5});
  plan.hangs.push_back({4, 7, 0.25});
  plan.dma = {0.125, 6, 1.5e-5, 0.75};
  const std::string text = plan.to_text();
  EXPECT_EQ(FaultPlan::from_text(text).to_text(), text);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
}

TEST(FaultPlan, ValidateRejectsNonsense) {
  FaultPlan bad_pe;
  bad_pe.pe_failure = PeFailure{static_cast<PeId>(platform().pe_count()), 0};
  EXPECT_THROW(bad_pe.validate(platform()), Error);

  FaultPlan bad_factor;
  bad_factor.slowdowns.push_back({0, 0, 10, 0.5});
  EXPECT_THROW(bad_factor.validate(platform()), Error);

  FaultPlan bad_rate;
  bad_rate.dma.rate = 1.0;  // certain failure never completes
  EXPECT_THROW(bad_rate.validate(platform()), Error);

  FaultPlan bad_window;
  bad_window.slowdowns.push_back({0, 20, 10, 2.0});
  EXPECT_THROW(bad_window.validate(platform()), Error);
}

TEST(FaultInjector, DrawsArePureFunctionsOfTheKey) {
  FaultPlan plan;
  plan.seed = 7;
  plan.dma = {0.2, 5, 2.0e-5, 0.5};
  const FaultInjector a(plan);
  const FaultInjector b(plan);  // independent copy: no shared state

  for (std::uint64_t object = 0; object < 8; ++object) {
    for (std::int64_t instance = 0; instance < 64; ++instance) {
      const int f1 = a.dma_failures(FaultInjector::TransferKind::kEdge, object,
                                    instance);
      const int f2 = b.dma_failures(FaultInjector::TransferKind::kEdge, object,
                                    instance);
      EXPECT_EQ(f1, f2);
      EXPECT_GE(f1, 0);
      EXPECT_LE(f1, plan.dma.max_retries);
      // Re-asking the same oracle must not change the answer (no internal
      // state advanced by the first call).
      EXPECT_EQ(a.dma_failures(FaultInjector::TransferKind::kEdge, object,
                               instance),
                f1);
    }
  }
}

TEST(FaultInjector, TransferKindsAndObjectsDrawIndependently) {
  FaultPlan plan;
  plan.seed = 11;
  plan.dma = {0.5, 8, 2.0e-5, 0.5};
  const FaultInjector inj(plan);

  // With rate 0.5 the three kinds cannot produce identical failure counts
  // across 256 instances unless they share a stream.
  int diff_kind = 0, diff_object = 0;
  for (std::int64_t i = 0; i < 256; ++i) {
    using TK = FaultInjector::TransferKind;
    if (inj.dma_failures(TK::kEdge, 0, i) !=
        inj.dma_failures(TK::kMemRead, 0, i)) {
      ++diff_kind;
    }
    if (inj.dma_failures(TK::kEdge, 0, i) !=
        inj.dma_failures(TK::kEdge, 1, i)) {
      ++diff_object;
    }
  }
  EXPECT_GT(diff_kind, 0);
  EXPECT_GT(diff_object, 0);
}

TEST(FaultInjector, DmaBackoffGrowsWithFailuresAndIsDeterministic) {
  FaultPlan plan;
  plan.seed = 3;
  plan.dma = {0.3, 6, 1.0e-5, 0.5};
  const FaultInjector inj(plan);
  using TK = FaultInjector::TransferKind;

  double prev = 0.0;
  for (int failures = 0; failures <= plan.dma.max_retries; ++failures) {
    const double d = inj.dma_backoff(TK::kEdge, 4, 10, failures);
    EXPECT_EQ(d, inj.dma_backoff(TK::kEdge, 4, 10, failures));
    EXPECT_GE(d, prev);  // more failed attempts, more total backoff
    if (failures > 0) {
      // Exponential floor: sum of backoff * 2^a over failed attempts.
      double floor = 0.0;
      for (int a = 0; a < failures; ++a) {
        floor += plan.dma.backoff_seconds * static_cast<double>(1 << a);
      }
      EXPECT_GE(d, floor - 1e-15);
      EXPECT_LE(d, floor * (1.0 + plan.dma.jitter) + 1e-15);
    }
    prev = d;
  }

  std::int64_t retries = 0;
  const double delay = inj.dma_delay(TK::kEdge, 4, 10, &retries);
  EXPECT_EQ(delay, inj.dma_backoff(TK::kEdge, 4, 10,
                                   static_cast<int>(retries)));
}

TEST(FaultInjector, FailStopAndComputeFactorFollowThePlan) {
  FaultPlan plan;
  plan.pe_failure = PeFailure{2, 100};
  plan.slowdowns.push_back({3, 10, 19, 2.0});
  plan.slowdowns.push_back({3, 15, 24, 3.0});  // overlaps [15, 19]
  const FaultInjector inj(plan);

  EXPECT_FALSE(inj.fail_stop(2, 99));
  EXPECT_TRUE(inj.fail_stop(2, 100));
  EXPECT_TRUE(inj.fail_stop(2, 5000));
  EXPECT_FALSE(inj.fail_stop(1, 100));

  EXPECT_DOUBLE_EQ(inj.compute_factor(3, 9), 1.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(3, 12), 2.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(3, 17), 6.0);  // windows compose
  EXPECT_DOUBLE_EQ(inj.compute_factor(3, 24), 3.0);
  EXPECT_DOUBLE_EQ(inj.compute_factor(2, 17), 1.0);  // other PE untouched
}

}  // namespace
}  // namespace cellstream::fault
