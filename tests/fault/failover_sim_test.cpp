// Simulated drain -> remap -> migrate -> resume: a fail-stop mid-stream
// must complete the whole stream (I8), run the tail on a degraded mapping
// that matches the reduced-platform prediction (I9), and charge an honest
// downtime — all checked through the same oracle the fuzz driver uses.

#include "fault/failover.hpp"

#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "fault/milp_remap.hpp"
#include "fault/remap.hpp"
#include "support/error.hpp"

namespace cellstream::fault {
namespace {

/// The paper's worked example (Fig. 2): six tasks, all edges 4 kB, one
/// task per SPE, steady-state period exactly T0's 1.0 ms.
struct WorkedExample {
  TaskGraph graph{"paper-worked-example"};
  Mapping mapping{0, 0};
  WorkedExample() {
    graph.add_task({"T0", 1.2e-3, 1.0e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T1", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T2", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T3", 1.5e-3, 0.9e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T4", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T5", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_edge(0, 1, 4096.0);
    graph.add_edge(0, 2, 4096.0);
    graph.add_edge(1, 3, 4096.0);
    graph.add_edge(2, 3, 4096.0);
    graph.add_edge(3, 4, 4096.0);
    graph.add_edge(4, 5, 4096.0);
    mapping = Mapping(6, 0);
    for (TaskId t = 0; t < 6; ++t) mapping.assign(t, t + 1);
  }
};

TEST(FailoverSim, FailStopMidStreamCompletesWithInvariantsGreen) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());

  FaultPlan plan;
  plan.pe_failure = PeFailure{1, 150};  // SPE0, the bottleneck, hosts T0

  FailoverOptions options;
  options.sim.instances = 400;
  options.sim.record_trace = true;
  const FailoverOutcome outcome =
      run_with_failover(ss, ex.mapping, plan, options);

  ASSERT_TRUE(outcome.failover_performed);
  ASSERT_EQ(outcome.phases.size(), 2u);
  EXPECT_EQ(outcome.phases[0].completion_times.size(), 150u);
  EXPECT_EQ(outcome.phases[1].completion_times.size(), 250u);
  EXPECT_EQ(outcome.result.completion_times.size(), 400u);
  EXPECT_EQ(outcome.post_mapping.pe_of(0), outcome.post_mapping.pe_of(0));
  EXPECT_NE(outcome.post_mapping.pe_of(0), 1u);  // T0 left the dead PE
  EXPECT_GT(outcome.downtime_seconds, 0.0);
  EXPECT_EQ(outcome.result.faults.failovers, 1);
  EXPECT_EQ(outcome.result.faults.failed_pe, 1);
  EXPECT_EQ(outcome.result.faults.fail_instance, 150);
  EXPECT_GE(outcome.result.faults.migrated_tasks, 1);

  const check::InvariantReport report =
      check::check_failover_invariants(ss, outcome);
  for (const check::Violation& v : report.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
  EXPECT_TRUE(report.ok());
}

TEST(FailoverSim, DegradedThroughputMatchesReducedPlatformPrediction) {
  // Six tasks on a six-SPE platform: every SPE is occupied, so losing one
  // forces two tasks to share a PE — a genuine degradation (on the full
  // QS22 the remap would just claim an idle spare SPE and lose nothing).
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_with_spes(6));
  const double healthy = ss.throughput(ex.mapping);
  EXPECT_DOUBLE_EQ(healthy, 1000.0);

  FaultPlan plan;
  plan.pe_failure = PeFailure{1, 200};
  FailoverOptions options;
  options.sim.instances = 600;
  const FailoverOutcome outcome =
      run_with_failover(ss, ex.mapping, plan, options);

  // Losing the bottleneck SPE forces T0 to share a PE: the reduced
  // platform cannot sustain the healthy rate.
  EXPECT_LT(outcome.predicted_post_throughput, healthy);
  EXPECT_GT(outcome.predicted_post_throughput, 0.0);

  // Phase 2's steady throughput converges on that prediction (I9's view;
  // the oracle enforces the one-sided bound, here we pin both sides).
  const sim::SimResult& tail = outcome.phases.back();
  EXPECT_NEAR(tail.steady_throughput, outcome.predicted_post_throughput,
              0.05 * outcome.predicted_post_throughput);

  // The stitched stream is slower than an uninterrupted run but faster
  // than running degraded from the start.
  EXPECT_LT(outcome.result.overall_throughput, healthy);
  EXPECT_GT(outcome.result.overall_throughput,
            0.95 * outcome.predicted_post_throughput);
}

TEST(FailoverSim, MilpRemapIsAtLeastAsGoodAsGreedy) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());

  FaultPlan plan;
  plan.pe_failure = PeFailure{1, 100};
  FailoverOptions greedy;
  greedy.sim.instances = 200;
  greedy.strategy = "greedy-mem";
  FailoverOptions milp = greedy;
  milp.strategy = "milp";

  const FailoverOutcome g = run_with_failover(ss, ex.mapping, plan, greedy);
  const FailoverOutcome m = run_with_failover(ss, ex.mapping, plan, milp);
  EXPECT_GE(m.predicted_post_throughput,
            g.predicted_post_throughput * (1.0 - 1e-9));
  // Both remaps evacuate the dead PE.
  for (TaskId t = 0; t < ex.graph.task_count(); ++t) {
    EXPECT_NE(g.post_mapping.pe_of(t), 1u);
    EXPECT_NE(m.post_mapping.pe_of(t), 1u);
  }
}

TEST(FailoverSim, TransientOnlyPlanRunsSinglePhase) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());

  FaultPlan plan;
  plan.seed = 5;
  plan.dma = {0.05, 4, 2.0e-5, 0.5};
  plan.slowdowns.push_back({1, 50, 80, 2.0});

  FailoverOptions options;
  options.sim.instances = 300;
  options.sim.record_trace = true;
  const FailoverOutcome outcome =
      run_with_failover(ss, ex.mapping, plan, options);

  EXPECT_FALSE(outcome.failover_performed);
  ASSERT_EQ(outcome.phases.size(), 1u);
  EXPECT_EQ(outcome.result.completion_times.size(), 300u);
  EXPECT_GT(outcome.result.faults.dma_retries, 0);
  EXPECT_GT(outcome.result.faults.slowdown_seconds, 0.0);
  EXPECT_EQ(outcome.result.faults.failovers, 0);

  const check::InvariantReport report =
      check::check_failover_invariants(ss, outcome);
  for (const check::Violation& v : report.violations) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

TEST(FailoverSim, ReplayIsDeterministicUnderFaults) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());

  FaultPlan plan = FaultPlan::random(21, ss.platform(), 400);
  plan.dma.rate = std::max(plan.dma.rate, 0.05);
  FailoverOptions options;
  options.sim.instances = 400;
  const FailoverOutcome a = run_with_failover(ss, ex.mapping, plan, options);
  const FailoverOutcome b = run_with_failover(ss, ex.mapping, plan, options);

  ASSERT_EQ(a.result.completion_times.size(),
            b.result.completion_times.size());
  for (std::size_t i = 0; i < a.result.completion_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.result.completion_times[i],
                     b.result.completion_times[i]);
  }
  EXPECT_EQ(a.result.faults.dma_retries, b.result.faults.dma_retries);
  EXPECT_DOUBLE_EQ(a.result.faults.backoff_seconds,
                   b.result.faults.backoff_seconds);
  EXPECT_DOUBLE_EQ(a.downtime_seconds, b.downtime_seconds);
}

TEST(FailoverSim, LosingTheOnlyPpeIsUnsurvivable) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  EXPECT_THROW(remap_after_failure(ss, ex.mapping, {0}), Error);
}

TEST(FailoverSim, RemapKeepsSurvivorsInPlace) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  const Mapping post = remap_after_failure(ss, ex.mapping, {3}, "greedy-mem");
  for (TaskId t = 0; t < ex.graph.task_count(); ++t) {
    if (ex.mapping.pe_of(t) != 3u) {
      EXPECT_EQ(post.pe_of(t), ex.mapping.pe_of(t)) << "task " << t;
    } else {
      EXPECT_NE(post.pe_of(t), 3u) << "task " << t;
    }
  }
}

}  // namespace
}  // namespace cellstream::fault
