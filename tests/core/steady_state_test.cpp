#include "core/steady_state.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cellstream {
namespace {

Task make_task(double wppe, double wspe, int peek = 0) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  t.peek = peek;
  return t;
}

// The paper's Fig. 3 example: T1 -> T2, T1 -> T3 with peek_3 = 1.
TaskGraph fig3_graph() {
  TaskGraph g("fig3");
  g.add_task(make_task(1.0, 1.0, 0));  // T1
  g.add_task(make_task(1.0, 1.0, 0));  // T2
  g.add_task(make_task(1.0, 1.0, 1));  // T3
  g.add_edge(0, 1, 1024.0);            // D1,2
  g.add_edge(0, 2, 2048.0);            // D1,3
  return g;
}

TEST(FirstPeriods, SourceStartsAtZero) {
  const auto fp = compute_first_periods(fig3_graph());
  EXPECT_EQ(fp[0], 0);
}

TEST(FirstPeriods, RecurrenceMatchesPaperFormula) {
  // firstPeriod(T_k) = max over preds + peek_k + 2.
  const auto fp = compute_first_periods(fig3_graph());
  EXPECT_EQ(fp[1], 2);  // 0 + 0 + 2, as in the paper
  EXPECT_EQ(fp[2], 3);  // 0 + 1 + 2
}

TEST(FirstPeriods, TakesMaxOverPredecessors) {
  TaskGraph g;
  g.add_task(make_task(1, 1));      // T0
  g.add_task(make_task(1, 1, 3));   // T1, peek 3
  g.add_task(make_task(1, 1));      // T2 <- T0, T1
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto fp = compute_first_periods(g);
  EXPECT_EQ(fp[1], 5);          // 0 + 3 + 2
  EXPECT_EQ(fp[2], 5 + 0 + 2);  // max(0, 5) + 0 + 2
}

TEST(FirstPeriods, ChainAccumulates) {
  TaskGraph g;
  for (int i = 0; i < 4; ++i) g.add_task(make_task(1, 1));
  for (int i = 0; i + 1 < 4; ++i) g.add_edge(i, i + 1, 1.0);
  const auto fp = compute_first_periods(g);
  EXPECT_EQ(fp[3], 6);  // 2 per hop with zero peek
}

TEST(Buffers, SizeIsDataTimesPeriodGap) {
  const TaskGraph g = fig3_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  // D1,2: gap 2 periods -> 2 * 1024 bytes.
  EXPECT_EQ(ss.buffer_depth(0), 2);
  EXPECT_DOUBLE_EQ(ss.buffer_bytes(0), 2048.0);
  // D1,3: gap 3 periods -> 3 * 2048 bytes.
  EXPECT_EQ(ss.buffer_depth(1), 3);
  EXPECT_DOUBLE_EQ(ss.buffer_bytes(1), 6144.0);
}

TEST(Buffers, TaskBufferCountsBothDirections) {
  const TaskGraph g = fig3_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  // T1 owns the out-buffers of both edges; consumers own the in-buffers
  // too (duplicated even for co-located neighbours).
  EXPECT_DOUBLE_EQ(ss.task_buffer_bytes(0), 2048.0 + 6144.0);
  EXPECT_DOUBLE_EQ(ss.task_buffer_bytes(1), 2048.0);
  EXPECT_DOUBLE_EQ(ss.task_buffer_bytes(2), 6144.0);
}

TEST(Usage, PpeOnlyMappingComputeBound) {
  const TaskGraph g = fig3_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = ppe_only_mapping(g);
  const ResourceUsage u = ss.usage(m);
  EXPECT_DOUBLE_EQ(u.compute_seconds[0], 3.0);
  // Co-located edges are not transfers.
  EXPECT_DOUBLE_EQ(u.incoming_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(u.outgoing_bytes[0], 0.0);
  EXPECT_DOUBLE_EQ(u.period, 3.0);
  EXPECT_EQ(u.bottleneck, "PPE0 compute");
  EXPECT_DOUBLE_EQ(ss.throughput(m), 1.0 / 3.0);
}

TEST(Usage, RemoteEdgeChargesBothInterfaces) {
  const TaskGraph g = fig3_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(3, 0);
  m.assign(2, 1);  // T3 on SPE0
  const ResourceUsage u = ss.usage(m);
  EXPECT_DOUBLE_EQ(u.outgoing_bytes[0], 2048.0);
  EXPECT_DOUBLE_EQ(u.incoming_bytes[1], 2048.0);
  EXPECT_EQ(u.incoming_transfers[1], 1u);
  EXPECT_EQ(u.incoming_transfers[0], 0u);
}

TEST(Usage, MemoryTrafficUsesHostInterface) {
  TaskGraph g = fig3_graph();
  g.task(0).read_bytes = 4096.0;
  g.task(2).write_bytes = 512.0;
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(3, 0);
  m.assign(2, 3);
  const ResourceUsage u = ss.usage(m);
  EXPECT_DOUBLE_EQ(u.incoming_bytes[0], 4096.0);
  EXPECT_DOUBLE_EQ(u.outgoing_bytes[3], 512.0);
}

TEST(Usage, SpeComputeUsesWspe) {
  TaskGraph g;
  g.add_task(make_task(/*wppe=*/4.0, /*wspe=*/0.25));
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping on_spe(1, 1);
  Mapping on_ppe(1, 0);
  EXPECT_DOUBLE_EQ(ss.period(on_spe), 0.25);
  EXPECT_DOUBLE_EQ(ss.period(on_ppe), 4.0);
}

TEST(Usage, BandwidthBecomesBottleneckForHugeData) {
  TaskGraph g;
  g.add_task(make_task(1e-6, 1e-6));
  g.add_task(make_task(1e-6, 1e-6));
  g.add_edge(0, 1, 25.0e9);  // one full second of interface time
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 0);
  m.assign(1, 1);
  const ResourceUsage u = ss.usage(m);
  EXPECT_NEAR(u.period, 1.0, 1e-9);
  EXPECT_TRUE(u.bottleneck == "PPE0 outgoing" ||
              u.bottleneck == "SPE0 incoming");
}

TEST(Feasibility, LocalStoreOverflowIsReported) {
  TaskGraph g;
  g.add_task(make_task(1, 1));
  g.add_task(make_task(1, 1));
  // Buffer = 2 periods * 200 kB = 400 kB > 192 kB budget.
  g.add_edge(0, 1, 200.0 * 1024.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 0);
  m.assign(1, 1);  // consumer on SPE0
  const auto violations = ss.violations(m);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("local-store"), std::string::npos);
  EXPECT_FALSE(ss.feasible(m));
}

TEST(Feasibility, PpeHasNoMemoryConstraint) {
  TaskGraph g;
  g.add_task(make_task(1, 1));
  g.add_task(make_task(1, 1));
  g.add_edge(0, 1, 10.0e6);  // way over any local store
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_TRUE(ss.feasible(ppe_only_mapping(g)));
}

TEST(Feasibility, DmaSlotLimitIncoming) {
  // 17 producers on distinct PEs all feeding one SPE would exceed its 16
  // DMA slots; with 8 SPEs we emulate by putting 17 producers on the PPE.
  TaskGraph g;
  const int producers = 17;
  for (int i = 0; i < producers; ++i) g.add_task(make_task(1, 1));
  const TaskId sink = g.add_task(make_task(1, 1));
  for (int i = 0; i < producers; ++i) g.add_edge(i, sink, 16.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(g.task_count(), 0);
  m.assign(sink, 1);
  const auto violations = ss.violations(m);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("DMA"), std::string::npos);
}

TEST(Feasibility, DmaSlotLimitToPpe) {
  // One SPE sending 9 distinct data to the PPE exceeds the 8-deep proxy
  // stack.
  TaskGraph g;
  const TaskId src_count = 9;
  std::vector<TaskId> producers;
  for (TaskId i = 0; i < src_count; ++i) {
    producers.push_back(g.add_task(make_task(1, 1)));
  }
  std::vector<TaskId> consumers;
  for (TaskId i = 0; i < src_count; ++i) {
    const TaskId c = g.add_task(make_task(1, 1));
    consumers.push_back(c);
    g.add_edge(producers[i], c, 16.0);
  }
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(g.task_count(), 0);
  for (TaskId t : producers) m.assign(t, 1);  // all producers on SPE0
  const auto violations = ss.violations(m);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("proxy"), std::string::npos);
}

TEST(Feasibility, WithinLimitsIsFeasible) {
  const TaskGraph g = fig3_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  EXPECT_TRUE(ss.feasible(m));
}

TEST(Analysis, RejectsMismatchedMapping) {
  const TaskGraph g = fig3_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_THROW(ss.usage(Mapping(2, 0)), Error);
}

TEST(Analysis, ThroughputIsInverseOfPeriod) {
  const TaskGraph g = fig3_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = ppe_only_mapping(g);
  EXPECT_DOUBLE_EQ(ss.throughput(m) * ss.period(m), 1.0);
}

}  // namespace
}  // namespace cellstream
