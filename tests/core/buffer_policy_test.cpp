// Tests for the shared-colocated buffer policy (the optimization the
// paper's Section 4.2 leaves as future work, implemented here end-to-end).

#include <gtest/gtest.h>

#include "core/steady_state.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"

namespace cellstream {
namespace {

Task make_task(double w = 1e-3) {
  Task t;
  t.wppe = w;
  t.wspe = w;
  return t;
}

TaskGraph pair_graph(double data_bytes) {
  TaskGraph g("pair");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, data_bytes);
  return g;
}

TEST(BufferPolicy, DefaultIsThePaperDuplication) {
  const SteadyStateAnalysis ss(pair_graph(1024.0),
                               platforms::qs22_single_cell());
  EXPECT_EQ(ss.buffer_policy(), BufferPolicy::kDuplicated);
}

TEST(BufferPolicy, SharedHalvesColocatedEdgeFootprint) {
  const TaskGraph g = pair_graph(10.0 * 1024.0);  // buffer = 2 * 10 kB
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis dup(g, p, BufferPolicy::kDuplicated);
  const SteadyStateAnalysis shared(g, p, BufferPolicy::kSharedColocated);
  Mapping both_on_spe(2, 1);
  EXPECT_DOUBLE_EQ(dup.usage(both_on_spe).buffer_bytes[1], 2 * 20.0 * 1024.0);
  EXPECT_DOUBLE_EQ(shared.usage(both_on_spe).buffer_bytes[1], 20.0 * 1024.0);
}

TEST(BufferPolicy, RemoteEdgesUnaffected) {
  const TaskGraph g = pair_graph(10.0 * 1024.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis dup(g, p, BufferPolicy::kDuplicated);
  const SteadyStateAnalysis shared(g, p, BufferPolicy::kSharedColocated);
  Mapping split(2, 1);
  split.assign(1, 2);
  EXPECT_DOUBLE_EQ(dup.usage(split).buffer_bytes[1],
                   shared.usage(split).buffer_bytes[1]);
  EXPECT_DOUBLE_EQ(dup.usage(split).buffer_bytes[2],
                   shared.usage(split).buffer_bytes[2]);
}

TEST(BufferPolicy, SharingMakesPreviouslyInfeasibleMappingsFeasible) {
  // Buffer = 2 * 120 kB = 240 kB: duplicated (480 kB) overflows the 192 kB
  // budget; shared (240 kB)... still overflows.  Use 80 kB payload:
  // duplicated 2 * 160 kB = 320 kB > 192 kB; shared 160 kB fits.
  const TaskGraph g = pair_graph(80.0 * 1024.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis dup(g, p, BufferPolicy::kDuplicated);
  const SteadyStateAnalysis shared(g, p, BufferPolicy::kSharedColocated);
  Mapping both_on_spe(2, 1);
  EXPECT_FALSE(dup.feasible(both_on_spe));
  EXPECT_TRUE(shared.feasible(both_on_spe));
}

TEST(BufferPolicy, MilpExploitsSharingForHigherThroughput) {
  // Memory-tight chain: under sharing the optimum can cluster neighbours
  // on SPEs, so its throughput must be at least the duplicated optimum's.
  gen::DagGenParams params;
  params.task_count = 14;
  params.seed = 21;
  TaskGraph g = gen::chain_graph(14, params);
  gen::set_ccr(g, 2.3);  // memory-tight regime
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis dup(g, p, BufferPolicy::kDuplicated);
  const SteadyStateAnalysis shared(g, p, BufferPolicy::kSharedColocated);

  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 20.0;
  const auto r_dup = mapping::solve_optimal_mapping(dup, opts);
  const auto r_shared = mapping::solve_optimal_mapping(shared, opts);
  EXPECT_LE(r_shared.period, r_dup.period * (1.0 + 1e-9));
  EXPECT_TRUE(shared.feasible(r_shared.mapping));
}

TEST(BufferPolicy, MilpSharedSolutionsAreConsistentWithAnalysis) {
  gen::DagGenParams params;
  params.task_count = 10;
  params.seed = 5;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 1.5);
  const SteadyStateAnalysis shared(g, platforms::qs22_with_spes(3),
                                   BufferPolicy::kSharedColocated);
  mapping::MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  opts.milp.time_limit_seconds = 20.0;
  const auto r = mapping::solve_optimal_mapping(shared, opts);
  // The MILP's encoded point and the analysis agree on the period.
  const mapping::Formulation f = mapping::build_formulation(shared);
  const auto x = mapping::encode_mapping(f, shared, r.mapping);
  EXPECT_LE(f.problem.max_violation(x), 1e-9);
  EXPECT_NEAR(f.problem.objective_value(x), shared.period(r.mapping), 1e-12);
}

TEST(BufferPolicy, HeuristicsRemainFeasibleUnderSharing) {
  gen::DagGenParams params;
  params.task_count = 30;
  params.seed = 8;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 1.0);
  const SteadyStateAnalysis shared(g, platforms::qs22_single_cell(),
                                   BufferPolicy::kSharedColocated);
  for (const char* name : {"greedy-mem", "greedy-cpu", "ppe-only"}) {
    const Mapping m = mapping::run_heuristic(name, shared);
    // The greedy admission test uses duplicated task footprints, which is
    // conservative under sharing: mappings stay feasible.
    EXPECT_TRUE(shared.feasible(m)) << name;
  }
}

}  // namespace
}  // namespace cellstream
