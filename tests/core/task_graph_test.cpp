#include "core/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cellstream {
namespace {

Task simple_task(double wppe = 1.0, double wspe = 0.5) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  return t;
}

TaskGraph diamond() {
  // T0 -> {T1, T2} -> T3
  TaskGraph g("diamond");
  for (int i = 0; i < 4; ++i) g.add_task(simple_task());
  g.add_edge(0, 1, 100.0);
  g.add_edge(0, 2, 200.0);
  g.add_edge(1, 3, 300.0);
  g.add_edge(2, 3, 400.0);
  return g;
}

TEST(TaskGraph, AddTaskAssignsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(simple_task()), 0u);
  EXPECT_EQ(g.add_task(simple_task()), 1u);
  EXPECT_EQ(g.task_count(), 2u);
}

TEST(TaskGraph, DefaultTaskNamesFollowIds) {
  TaskGraph g;
  g.add_task(Task{});
  g.add_task(Task{});
  EXPECT_EQ(g.task(0).name, "T0");
  EXPECT_EQ(g.task(1).name, "T1");
}

TEST(TaskGraph, ExplicitNameIsKept) {
  TaskGraph g;
  Task t;
  t.name = "filter";
  g.add_task(t);
  EXPECT_EQ(g.task(0).name, "filter");
}

TEST(TaskGraph, AddEdgeValidatesEndpoints) {
  TaskGraph g;
  g.add_task(simple_task());
  g.add_task(simple_task());
  EXPECT_THROW(g.add_edge(0, 2, 1.0), Error);
  EXPECT_THROW(g.add_edge(2, 0, 1.0), Error);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), Error);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), Error);
  EXPECT_NO_THROW(g.add_edge(0, 1, 1.0));
  EXPECT_THROW(g.add_edge(0, 1, 2.0), Error);  // duplicate
}

TEST(TaskGraph, AdjacencyLists) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.out_edges(0).size(), 2u);
  EXPECT_EQ(g.in_edges(0).size(), 0u);
  EXPECT_EQ(g.in_edges(3).size(), 2u);
  EXPECT_EQ(g.edge(g.out_edges(0)[0]).to, 1u);
}

TEST(TaskGraph, SourcesAndSinks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.sources(), std::vector<TaskId>{0});
  EXPECT_EQ(g.sinks(), std::vector<TaskId>{3});
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

TEST(TaskGraph, TopologicalOrderDetectsCycle) {
  TaskGraph g;
  g.add_task(simple_task());
  g.add_task(simple_task());
  g.add_task(simple_task());
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 0, 1.0);
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.topological_order(), Error);
}

TEST(TaskGraph, ValidateRejectsNegativeAttributes) {
  TaskGraph g;
  Task t = simple_task();
  t.peek = -1;
  g.add_task(t);
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, ValidateRejectsEmptyGraph) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), Error);
}

TEST(TaskGraph, DepthOfChainAndDiamond) {
  EXPECT_EQ(diamond().depth(), 2u);
  TaskGraph chain;
  for (int i = 0; i < 5; ++i) chain.add_task(simple_task());
  for (int i = 0; i + 1 < 5; ++i) chain.add_edge(i, i + 1, 1.0);
  EXPECT_EQ(chain.depth(), 4u);
}

TEST(TaskGraph, AggregateCosts) {
  const TaskGraph g = diamond();
  EXPECT_DOUBLE_EQ(g.total_wppe(), 4.0);
  EXPECT_DOUBLE_EQ(g.total_wspe(), 2.0);
  EXPECT_DOUBLE_EQ(g.total_data_bytes(), 1000.0);
}

TEST(TaskGraph, TotalDataIncludesMemoryTraffic) {
  TaskGraph g = diamond();
  g.task(0).read_bytes = 50.0;
  g.task(3).write_bytes = 25.0;
  EXPECT_DOUBLE_EQ(g.total_data_bytes(), 1075.0);
}

TEST(TaskGraph, CcrDefinition) {
  const TaskGraph g = diamond();
  // 1000 bytes / 2.0 SPE-seconds.
  EXPECT_DOUBLE_EQ(g.ccr(), 500.0);
  // With an operation rate, work is wspe * rate "operations".
  EXPECT_DOUBLE_EQ(g.ccr(1000.0), 0.5);
}

TEST(TaskGraph, ScaleToCcrHitsTargetExactly) {
  TaskGraph g = diamond();
  g.task(1).read_bytes = 10.0;
  g.scale_to_ccr(2.0, 1000.0);
  EXPECT_NEAR(g.ccr(1000.0), 2.0, 1e-12);
  // Computation costs untouched.
  EXPECT_DOUBLE_EQ(g.total_wspe(), 2.0);
}

TEST(TaskGraph, ScaleToCcrPreservesRelativeSizes) {
  TaskGraph g = diamond();
  const double ratio_before = g.edge(1).data_bytes / g.edge(0).data_bytes;
  g.scale_to_ccr(3.3, 1.0);
  const double ratio_after = g.edge(1).data_bytes / g.edge(0).data_bytes;
  EXPECT_NEAR(ratio_before, ratio_after, 1e-12);
}

TEST(TaskGraph, TextRoundTrip) {
  TaskGraph g = diamond();
  g.task(1).peek = 2;
  g.task(2).stateful = true;
  g.task(2).read_bytes = 12.5;
  g.task(3).write_bytes = 0.125;
  const TaskGraph back = TaskGraph::from_text(g.to_text());
  EXPECT_EQ(back.name(), "diamond");
  ASSERT_EQ(back.task_count(), g.task_count());
  ASSERT_EQ(back.edge_count(), g.edge_count());
  for (TaskId t = 0; t < g.task_count(); ++t) {
    EXPECT_EQ(back.task(t).name, g.task(t).name);
    EXPECT_DOUBLE_EQ(back.task(t).wppe, g.task(t).wppe);
    EXPECT_DOUBLE_EQ(back.task(t).wspe, g.task(t).wspe);
    EXPECT_EQ(back.task(t).peek, g.task(t).peek);
    EXPECT_DOUBLE_EQ(back.task(t).read_bytes, g.task(t).read_bytes);
    EXPECT_DOUBLE_EQ(back.task(t).write_bytes, g.task(t).write_bytes);
    EXPECT_EQ(back.task(t).stateful, g.task(t).stateful);
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(back.edge(e).from, g.edge(e).from);
    EXPECT_EQ(back.edge(e).to, g.edge(e).to);
    EXPECT_DOUBLE_EQ(back.edge(e).data_bytes, g.edge(e).data_bytes);
  }
}

TEST(TaskGraph, FromTextRejectsGarbage) {
  EXPECT_THROW(TaskGraph::from_text("frobnicate everything"), Error);
  EXPECT_THROW(TaskGraph::from_text("task broken"), Error);
}

TEST(TaskGraph, FromTextSkipsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "graph g\n"
      "\n"
      "task A wppe=1 wspe=2 peek=0 read=0 write=0 stateful=0\n";
  const TaskGraph g = TaskGraph::from_text(text);
  EXPECT_EQ(g.task_count(), 1u);
  EXPECT_DOUBLE_EQ(g.task(0).wspe, 2.0);
}

TEST(TaskGraph, DotOutputMentionsAllTasks) {
  const TaskGraph g = diamond();
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (TaskId t = 0; t < g.task_count(); ++t) {
    EXPECT_NE(dot.find(g.task(t).name), std::string::npos);
  }
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace cellstream
