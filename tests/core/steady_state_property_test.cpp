// Property tests on the steady-state analysis over randomized graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/steady_state.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"

namespace cellstream {
namespace {

class SteadyStateProperties : public ::testing::TestWithParam<int> {
 protected:
  TaskGraph make_graph() const {
    gen::DagGenParams params;
    params.task_count = 24;
    params.seed = static_cast<std::uint64_t>(GetParam()) * 97 + 11;
    params.fat = 0.2 + 0.1 * (GetParam() % 5);
    TaskGraph g = gen::daggen_random(params);
    gen::set_ccr(g, 0.775 + 0.5 * (GetParam() % 4));
    return g;
  }
};

TEST_P(SteadyStateProperties, FirstPeriodsStrictlyIncreaseAlongEdges) {
  const TaskGraph g = make_graph();
  const auto fp = compute_first_periods(g);
  for (const Edge& e : g.edges()) {
    // The gap is at least peek(consumer) + 2 by the recurrence.
    EXPECT_GE(fp[e.to] - fp[e.from], g.task(e.to).peek + 2);
  }
}

TEST_P(SteadyStateProperties, BufferDepthsMatchFirstPeriodGaps) {
  const TaskGraph g = make_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const auto fp = ss.first_periods();
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_EQ(ss.buffer_depth(e), fp[g.edge(e).to] - fp[g.edge(e).from]);
    EXPECT_DOUBLE_EQ(ss.buffer_bytes(e),
                     g.edge(e).data_bytes *
                         static_cast<double>(ss.buffer_depth(e)));
  }
}

TEST_P(SteadyStateProperties, PeriodDominatesEveryResourceLowerBound) {
  const TaskGraph g = make_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = mapping::greedy_cpu(ss);
  const ResourceUsage u = ss.usage(m);
  for (PeId pe = 0; pe < p.pe_count(); ++pe) {
    EXPECT_GE(u.period + 1e-15, u.compute_seconds[pe]);
    EXPECT_GE(u.period + 1e-15, u.incoming_bytes[pe] / p.interface_bandwidth);
    EXPECT_GE(u.period + 1e-15, u.outgoing_bytes[pe] / p.interface_bandwidth);
  }
  // And the period is achieved by some resource.
  double max_occ = 0.0;
  for (PeId pe = 0; pe < p.pe_count(); ++pe) {
    max_occ = std::max({max_occ, u.compute_seconds[pe],
                        u.incoming_bytes[pe] / p.interface_bandwidth,
                        u.outgoing_bytes[pe] / p.interface_bandwidth});
  }
  EXPECT_DOUBLE_EQ(u.period, max_occ);
}

TEST_P(SteadyStateProperties, PpeOnlyIsAlwaysFeasibleAndComputeBound) {
  const TaskGraph g = make_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = ppe_only_mapping(g);
  EXPECT_TRUE(ss.feasible(m));
  // Period = total PPE work unless memory I/O dominates one interface.
  const double bw = ss.platform().interface_bandwidth;
  double reads = 0.0, writes = 0.0;
  for (const Task& t : g.tasks()) {
    reads += t.read_bytes;
    writes += t.write_bytes;
  }
  const double expected =
      std::max({g.total_wppe(), reads / bw, writes / bw});
  EXPECT_NEAR(ss.period(m), expected, 1e-12 * expected);
}

TEST_P(SteadyStateProperties, EdgeConservationInUsage) {
  // Total remote bytes out == total remote bytes in (minus memory I/O).
  const TaskGraph g = make_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = mapping::greedy_mem(ss);
  const ResourceUsage u = ss.usage(m);
  double total_in = 0.0, total_out = 0.0, reads = 0.0, writes = 0.0;
  for (const Task& t : g.tasks()) {
    reads += t.read_bytes;
    writes += t.write_bytes;
  }
  for (PeId pe = 0; pe < ss.platform().pe_count(); ++pe) {
    total_in += u.incoming_bytes[pe];
    total_out += u.outgoing_bytes[pe];
  }
  EXPECT_NEAR(total_in - reads, total_out - writes, 1e-9);
}

TEST_P(SteadyStateProperties, MappingsCarryOverToLargerPlatformsUnchanged) {
  // A mapping computed for s SPEs is feasible on any platform with more
  // SPEs and keeps exactly the same period (the extra idle SPEs change
  // nothing) — the invariant behind the paper's Fig. 7 sweep.
  const TaskGraph g = make_graph();
  for (std::size_t spes = 0; spes <= 6; spes += 3) {
    const SteadyStateAnalysis small(g, platforms::qs22_with_spes(spes));
    const Mapping m = mapping::greedy_cpu(small);
    const double small_period = small.period(m);
    const bool small_feasible = small.feasible(m);
    const SteadyStateAnalysis big(g, platforms::qs22_with_spes(8));
    EXPECT_NEAR(big.period(m), small_period, 1e-15);
    EXPECT_EQ(big.feasible(m), small_feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteadyStateProperties, ::testing::Range(0, 10));

}  // namespace
}  // namespace cellstream
