#include "core/mapping.hpp"

#include <gtest/gtest.h>

namespace cellstream {
namespace {

TaskGraph chain(int k) {
  TaskGraph g("chain");
  for (int i = 0; i < k; ++i) {
    Task t;
    t.wppe = 1.0;
    t.wspe = 1.0;
    g.add_task(t);
  }
  for (int i = 0; i + 1 < k; ++i) g.add_edge(i, i + 1, 8.0);
  return g;
}

TEST(Mapping, DefaultAssignsInitialPe) {
  const Mapping m(3, 2);
  EXPECT_EQ(m.task_count(), 3u);
  for (TaskId t = 0; t < 3; ++t) EXPECT_EQ(m.pe_of(t), 2u);
}

TEST(Mapping, AssignAndQuery) {
  Mapping m(3);
  m.assign(1, 5);
  EXPECT_EQ(m.pe_of(0), 0u);
  EXPECT_EQ(m.pe_of(1), 5u);
  EXPECT_THROW(m.pe_of(3), Error);
  EXPECT_THROW(m.assign(3, 0), Error);
}

TEST(Mapping, TasksOnListsInIdOrder) {
  Mapping m(4);
  m.assign(0, 1);
  m.assign(2, 1);
  m.assign(3, 2);
  EXPECT_EQ(m.tasks_on(1), (std::vector<TaskId>{0, 2}));
  EXPECT_EQ(m.tasks_on(2), (std::vector<TaskId>{3}));
  EXPECT_EQ(m.tasks_on(7), (std::vector<TaskId>{}));
}

TEST(Mapping, IsRemoteDetectsCrossPeEdges) {
  const TaskGraph g = chain(3);
  Mapping m(3);
  m.assign(0, 0);
  m.assign(1, 0);
  m.assign(2, 4);
  EXPECT_FALSE(m.is_remote(g, 0));  // T0->T1 co-located
  EXPECT_TRUE(m.is_remote(g, 1));   // T1->T2 crosses
}

TEST(Mapping, ValidateAgainstPlatform) {
  const CellPlatform p = platforms::qs22_single_cell();  // 9 PEs
  Mapping ok(2);
  ok.assign(0, 8);
  EXPECT_NO_THROW(ok.validate(p));
  Mapping bad(2);
  bad.assign(1, 9);
  EXPECT_THROW(bad.validate(p), Error);
}

TEST(Mapping, ToStringIsReadable) {
  const CellPlatform p = platforms::qs22_single_cell();
  Mapping m(2);
  m.assign(1, 3);
  EXPECT_EQ(m.to_string(p), "T0->PPE0 T1->SPE2");
}

TEST(Mapping, EqualityComparesAssignments) {
  Mapping a(2), b(2);
  EXPECT_EQ(a, b);
  b.assign(0, 1);
  EXPECT_NE(a, b);
}

TEST(Mapping, TextRoundTrip) {
  Mapping m(4);
  m.assign(0, 3);
  m.assign(1, 0);
  m.assign(2, 8);
  m.assign(3, 1);
  const Mapping back = Mapping::from_text(m.to_text());
  EXPECT_EQ(back, m);
}

TEST(Mapping, FromTextRejectsGarbage) {
  EXPECT_THROW(Mapping::from_text("not a mapping"), Error);
  EXPECT_THROW(Mapping::from_text("mapping 3\n1 2"), Error);  // truncated
  EXPECT_NO_THROW(Mapping::from_text("mapping 0\n"));
}

TEST(Mapping, PpeOnlyMapping) {
  const TaskGraph g = chain(5);
  const Mapping m = ppe_only_mapping(g);
  EXPECT_EQ(m.task_count(), 5u);
  for (TaskId t = 0; t < 5; ++t) EXPECT_EQ(m.pe_of(t), 0u);
}

}  // namespace
}  // namespace cellstream
