#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace cellstream {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformRangeRejectsEmpty) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, WeightedIndexHonorsZeroWeights) {
  Rng rng(6);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(8);
  const std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count1 += rng.weighted_index(weights) == 1;
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(8);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), Error);
  EXPECT_THROW(rng.weighted_index({}), Error);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // 50! permutations; identity is implausible
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent() == child();
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace cellstream
