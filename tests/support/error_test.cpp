#include "support/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cellstream {
namespace {

TEST(Ensure, PassesOnTrue) {
  EXPECT_NO_THROW(CS_ENSURE(1 + 1 == 2, "math works"));
}

TEST(Ensure, ThrowsErrorOnFalse) {
  EXPECT_THROW(CS_ENSURE(false, "boom"), Error);
}

TEST(Ensure, MessageContainsContext) {
  try {
    CS_ENSURE(2 < 1, "ordering violated");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ordering violated"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, IsARuntimeError) {
  EXPECT_THROW(throw Error("x"), std::runtime_error);
}

}  // namespace
}  // namespace cellstream
