#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace cellstream {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, NoSeparator) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("wppe=1", "wppe"));
  EXPECT_FALSE(starts_with("wp", "wppe"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(FormatNumber, TrimsTrailingZeros) {
  EXPECT_EQ(format_number(12.5), "12.5");
  EXPECT_EQ(format_number(3.0), "3");
  EXPECT_EQ(format_number(0.775), "0.775");
}

TEST(FormatNumber, HandlesNonFinite) {
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_number(std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(256 * 1024), "256 kB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.5 MB");
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace cellstream
