// The minimal JSON model: build/serialize/parse round trips, parser error
// reporting, and the escaping rules the telemetry exports rely on.

#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cellstream::json {
namespace {

TEST(Json, BuildsAndDumpsCompactDocuments) {
  Value doc = Value::object();
  doc.set("name", Value("x"));
  doc.set("count", Value(3));
  doc.set("ok", Value(true));
  doc.set("nothing", Value());
  Value list = Value::array();
  list.push_back(Value(1.5));
  list.push_back(Value("two"));
  doc.set("list", std::move(list));
  EXPECT_EQ(doc.dump(),
            "{\"name\":\"x\",\"count\":3,\"ok\":true,\"nothing\":null,"
            "\"list\":[1.5,\"two\"]}");
}

TEST(Json, SetOverwritesInPlacePreservingOrder) {
  Value doc = Value::object();
  doc.set("a", Value(1));
  doc.set("b", Value(2));
  doc.set("a", Value(3));
  EXPECT_EQ(doc.dump(), "{\"a\":3,\"b\":2}");
  EXPECT_TRUE(doc.has("a"));
  EXPECT_FALSE(doc.has("missing"));
  EXPECT_EQ(doc.at("a").as_number(), 3.0);
}

TEST(Json, ParsesEveryValueKind) {
  const Value doc = Value::parse(
      "  { \"s\": \"hi\", \"n\": -2.5e3, \"t\": true, \"f\": false,\n"
      "    \"z\": null, \"a\": [1, 2, 3], \"o\": {\"k\": \"v\"} }  ");
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_EQ(doc.at("n").as_number(), -2500.0);
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  ASSERT_EQ(doc.at("a").size(), 3u);
  EXPECT_EQ(doc.at("a").at(2).as_number(), 3.0);
  EXPECT_EQ(doc.at("o").at("k").as_string(), "v");
}

TEST(Json, RoundTripsNumbersExactly) {
  const double values[] = {0.0,  1.0 / 3.0, 1e-300, -2.5e17, 4096.0,
                           0.001, 247.64705703723035};
  for (double v : values) {
    Value doc = Value::array();
    doc.push_back(Value(v));
    const Value back = Value::parse(doc.dump());
    EXPECT_EQ(back.at(0).as_number(), v) << v;
  }
}

TEST(Json, RoundTripsEscapedStrings) {
  const std::string hostile = "a\"b\\c\nd\te\x01f/\xE2\x82\xAC";
  Value doc = Value::array();
  doc.push_back(Value(hostile));
  const Value back = Value::parse(doc.dump());
  EXPECT_EQ(back.at(0).as_string(), hostile);
}

TEST(Json, ParsesUnicodeEscapes) {
  const Value doc = Value::parse("[\"\\u0041\\u00e9\\u20ac\"]");
  EXPECT_EQ(doc.at(0).as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  Value doc = Value::array();
  doc.push_back(Value(std::numeric_limits<double>::quiet_NaN()));
  doc.push_back(Value(std::numeric_limits<double>::infinity()));
  EXPECT_EQ(doc.dump(), "[null,null]");
}

TEST(Json, PrettyPrintIndents) {
  Value doc = Value::object();
  doc.set("a", Value(1));
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": 1\n}");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), Error);
  EXPECT_THROW(Value::parse("{"), Error);
  EXPECT_THROW(Value::parse("[1,]"), Error);
  EXPECT_THROW(Value::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Value::parse("tru"), Error);
  EXPECT_THROW(Value::parse("\"unterminated"), Error);
  EXPECT_THROW(Value::parse("[1] garbage"), Error);
  EXPECT_THROW(Value::parse("nan"), Error);
}

TEST(Json, AccessorsEnforceKinds) {
  const Value number(1.0);
  EXPECT_THROW(number.as_string(), Error);
  EXPECT_THROW(number.items(), Error);
  Value array = Value::array();
  EXPECT_THROW(array.set("k", Value(1)), Error);
  EXPECT_THROW(array.at(0), Error);
  EXPECT_THROW(number.size(), Error);
}

}  // namespace
}  // namespace cellstream::json
