#include "support/parse.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "support/error.hpp"

namespace cellstream {
namespace {

std::string error_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0", "n"), 0u);
  EXPECT_EQ(parse_u64("42", "n"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615", "n"),
            18446744073709551615ull);
}

TEST(ParseU64, RejectsJunkSignsAndOverflow) {
  EXPECT_THROW(parse_u64("", "n"), Error);
  EXPECT_THROW(parse_u64("12abc", "n"), Error);
  EXPECT_THROW(parse_u64("1 ", "n"), Error);
  EXPECT_THROW(parse_u64(" 1", "n"), Error);
  EXPECT_THROW(parse_u64("-1", "n"), Error);
  EXPECT_THROW(parse_u64("+1", "n"), Error);
  EXPECT_THROW(parse_u64("1.5", "n"), Error);
  EXPECT_THROW(parse_u64("18446744073709551616", "n"), Error);  // 2^64
  EXPECT_THROW(parse_u64("0x10", "n"), Error);
}

TEST(ParseU64, ErrorNamesTheValueAndOffendingText) {
  const std::string msg = error_of([] { parse_u64("12abc", "instances"); });
  EXPECT_NE(msg.find("instances"), std::string::npos) << msg;
  EXPECT_NE(msg.find("12abc"), std::string::npos) << msg;
}

TEST(ParseDouble, AcceptsDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(parse_double("1.5", "x"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double("-2", "x"), -2.0);
  EXPECT_DOUBLE_EQ(parse_double("2.5e-3", "x"), 2.5e-3);
  EXPECT_DOUBLE_EQ(parse_double("0", "x"), 0.0);
}

TEST(ParseDouble, RejectsJunkAndNonFinite) {
  EXPECT_THROW(parse_double("", "x"), Error);
  EXPECT_THROW(parse_double("1e4x", "x"), Error);
  EXPECT_THROW(parse_double("1.5.2", "x"), Error);
  EXPECT_THROW(parse_double("1e999", "x"), Error);   // overflows to inf
  EXPECT_THROW(parse_double("nan", "x"), Error);
  EXPECT_THROW(parse_double("inf", "x"), Error);
}

TEST(ParseNonNegativeDouble, RejectsNegatives) {
  EXPECT_DOUBLE_EQ(parse_non_negative_double("0.775", "ccr"), 0.775);
  EXPECT_THROW(parse_non_negative_double("-0.1", "ccr"), Error);
}

}  // namespace
}  // namespace cellstream
