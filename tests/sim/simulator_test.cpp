#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"

namespace cellstream::sim {
namespace {

Task make_task(double wppe, double wspe, int peek = 0) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  t.peek = peek;
  return t;
}

SimOptions fast_options(std::size_t instances = 500) {
  SimOptions o;
  o.instances = instances;
  // Make overheads negligible so analytic comparisons are sharp.
  o.dma_issue_overhead = 1e-9;
  o.dispatch_overhead = 1e-9;
  return o;
}

TEST(Simulator, SingleTaskThroughputMatchesCost) {
  TaskGraph g("solo");
  g.add_task(make_task(1e-3, 1e-3));
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const SimResult r = simulate(ss, ppe_only_mapping(g), fast_options(200));
  EXPECT_NEAR(r.steady_throughput, 1000.0, 5.0);
  EXPECT_EQ(r.completion_times.size(), 200u);
  // Completion times strictly increase.
  for (std::size_t i = 1; i < r.completion_times.size(); ++i) {
    EXPECT_GT(r.completion_times[i], r.completion_times[i - 1]);
  }
}

TEST(Simulator, CoLocatedChainSerializes) {
  TaskGraph g("chain2");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(2e-3, 2e-3));
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const SimResult r = simulate(ss, ppe_only_mapping(g), fast_options());
  EXPECT_NEAR(r.steady_throughput, 1.0 / 3e-3, 5.0);
}

TEST(Simulator, RemoteChainPipelines) {
  TaskGraph g("chain2");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 64.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 0);
  m.assign(1, 1);  // second task on SPE0
  const SimResult r = simulate(ss, m, fast_options());
  // Pipelined: bounded by the slower stage (1 ms), not the sum.
  EXPECT_GT(r.steady_throughput, 0.93 * 1000.0);
  EXPECT_LE(r.steady_throughput, 1000.0 * 1.001);
}

TEST(Simulator, SpeUsesWspe) {
  TaskGraph g("solo");
  g.add_task(make_task(/*wppe=*/4e-3, /*wspe=*/1e-3));
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(1, 1);  // SPE0
  const SimResult r = simulate(ss, m, fast_options());
  EXPECT_NEAR(r.steady_throughput, 1000.0, 10.0);
}

TEST(Simulator, BandwidthBoundTransfer) {
  // 25 MB per instance over a 25 GB/s interface -> 1000 instances/s cap.
  TaskGraph g("wide");
  g.add_task(make_task(1e-6, 1e-6));
  g.add_task(make_task(1e-6, 1e-6));
  g.add_edge(0, 1, 25.0e6);
  CellPlatform p = platforms::qs22_single_cell();
  p.local_store_bytes = 512 * 1024 * 1024;  // lift memory constraint
  p.code_bytes = 0;
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 0);
  m.assign(1, 1);
  const SimResult r = simulate(ss, m, fast_options(2000));
  EXPECT_NEAR(r.steady_throughput, 1000.0, 25.0);
}

TEST(Simulator, NeverBeatsTheAnalyticBound) {
  gen::DagGenParams params;
  params.task_count = 20;
  params.seed = 21;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  for (const char* name : {"ppe-only", "greedy-cpu", "greedy-mem"}) {
    const Mapping m = mapping::run_heuristic(name, ss);
    const SimResult r = simulate(ss, m, fast_options(800));
    EXPECT_LE(r.steady_throughput, ss.throughput(m) * 1.02) << name;
  }
}

TEST(Simulator, ReachesMostOfTheAnalyticBoundWithTinyOverheads) {
  gen::DagGenParams params;
  params.task_count = 16;
  params.seed = 33;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = mapping::greedy_cpu(ss);
  const SimResult r = simulate(ss, m, fast_options(2000));
  EXPECT_GE(r.steady_throughput, 0.80 * ss.throughput(m));
}

TEST(Simulator, PeekedStreamsCompleteAndThrottleStartup) {
  TaskGraph g("peeky");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3, 2));  // needs 2 future instances
  g.add_edge(0, 1, 64.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 0);
  m.assign(1, 1);
  const SimResult r = simulate(ss, m, fast_options(400));
  EXPECT_EQ(r.completion_times.size(), 400u);
  EXPECT_GT(r.steady_throughput, 0.9 * 1000.0);
}

TEST(Simulator, DmaQueueLimitSerializesButCompletes) {
  // 20 producers on the PPE feeding one SPE: more than 16 concurrent
  // fetches are impossible, yet the stream must still complete.
  TaskGraph g("fanin");
  const int producers = 20;
  for (int i = 0; i < producers; ++i) {
    g.add_task(make_task(0.05e-3, 0.05e-3));
  }
  const TaskId sink = g.add_task(make_task(1e-3, 1e-3));
  for (int i = 0; i < producers; ++i) g.add_edge(i, sink, 256.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(g.task_count(), 0);
  m.assign(sink, 1);
  EXPECT_FALSE(ss.feasible(m));  // violates constraint (1j)
  const SimResult r = simulate(ss, m, fast_options(300));
  EXPECT_EQ(r.completion_times.size(), 300u);
}

TEST(Simulator, RejectsLocalStoreOverflowByDefault) {
  TaskGraph g("fat");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 200.0 * 1024.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(2, 1);  // both on SPE0: 400 kB of buffers
  EXPECT_THROW(simulate(ss, m, fast_options(10)), Error);
  SimOptions lax = fast_options(10);
  lax.enforce_local_store = false;
  EXPECT_NO_THROW(simulate(ss, m, lax));
}

TEST(Simulator, DeterministicAcrossRuns) {
  const TaskGraph g = gen::audio_encoder_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = mapping::greedy_cpu(ss);
  const SimResult a = simulate(ss, m, fast_options(300));
  const SimResult b = simulate(ss, m, fast_options(300));
  EXPECT_EQ(a.completion_times, b.completion_times);
  EXPECT_EQ(a.dma_transfers, b.dma_transfers);
}

TEST(Simulator, OverheadsReduceThroughput) {
  TaskGraph g("solo");
  g.add_task(make_task(1e-3, 1e-3));
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  SimOptions heavy = fast_options(300);
  heavy.dispatch_overhead = 0.5e-3;  // +50 % per instance
  const SimResult r = simulate(ss, ppe_only_mapping(g), heavy);
  EXPECT_NEAR(r.steady_throughput, 1.0 / 1.5e-3, 10.0);
  EXPECT_GT(r.pe_overhead_seconds[0], 0.0);
}

TEST(Simulator, BusyAccountingAddsUp) {
  TaskGraph g("solo");
  g.add_task(make_task(1e-3, 1e-3));
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const SimResult r = simulate(ss, ppe_only_mapping(g), fast_options(100));
  EXPECT_NEAR(r.pe_busy_seconds[0], 100 * 1e-3, 1e-6);
  for (PeId pe = 1; pe < 9; ++pe) EXPECT_DOUBLE_EQ(r.pe_busy_seconds[pe], 0.0);
}

TEST(Simulator, WindowedThroughputConvergesToSteady) {
  TaskGraph g("chain3");
  for (int i = 0; i < 3; ++i) g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 128.0);
  g.add_edge(1, 2, 128.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  const SimResult r = simulate(ss, m, fast_options(2000));
  const auto curve = r.windowed_throughput(200, 100);
  ASSERT_GT(curve.size(), 3u);
  // The tail of the curve sits near the steady throughput.
  const double last = curve.back().second;
  EXPECT_NEAR(last, r.steady_throughput, 0.05 * r.steady_throughput);
  EXPECT_THROW(r.windowed_throughput(0, 1), Error);
}

TEST(Simulator, ValidatesInputs) {
  TaskGraph g("solo");
  g.add_task(make_task(1e-3, 1e-3));
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  SimOptions bad;
  bad.instances = 0;
  EXPECT_THROW(simulate(ss, ppe_only_mapping(g), bad), Error);
  EXPECT_THROW(simulate(ss, Mapping(2, 0), SimOptions{}), Error);
}

TEST(Simulator, TimeGuardDetectsOverload) {
  TaskGraph g("slow");
  g.add_task(make_task(1.0, 1.0));  // 1 s per instance
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  SimOptions o = fast_options(1000);  // needs ~1000 s
  o.max_simulated_seconds = 5.0;
  try {
    simulate(ss, ppe_only_mapping(g), o);
    FAIL() << "expected the time guard to fire";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("did not finish"),
              std::string::npos);
  }
}

TEST(Simulator, SingleInstanceStream) {
  TaskGraph g("chain2");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(2, 0);
  m.assign(1, 1);
  const SimResult r = simulate(ss, m, fast_options(1));
  ASSERT_EQ(r.completion_times.size(), 1u);
  // One instance: both tasks run once, plus the transfer.
  EXPECT_GT(r.makespan, 2e-3);
  EXPECT_GT(r.steady_throughput, 0.0);
}

TEST(Simulator, AudioEncoderEndToEnd) {
  const TaskGraph g = gen::audio_encoder_graph();
  const CellPlatform p = platforms::playstation3();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = mapping::greedy_cpu(ss);
  const SimResult r = simulate(ss, m, fast_options(500));
  EXPECT_EQ(r.completion_times.size(), 500u);
  EXPECT_GT(r.steady_throughput, 0.0);
  EXPECT_GT(r.dma_transfers, 0u);
}

}  // namespace
}  // namespace cellstream::sim
