// Property tests of the Cell simulator against the analytic model, over
// randomized graphs, mappings and CCR levels.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace cellstream::sim {
namespace {

struct Scenario {
  int seed;
  double ccr;
  const char* strategy;
};

class SimProperties : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    gen::DagGenParams params;
    params.task_count = 18;
    params.seed = static_cast<std::uint64_t>(GetParam().seed) * 41 + 3;
    graph_ = gen::daggen_random(params);
    gen::set_ccr(graph_, GetParam().ccr);
    analysis_.emplace(graph_, platforms::qs22_single_cell());
    mapping_ = mapping::run_heuristic(GetParam().strategy, *analysis_);
    if (!analysis_->feasible(mapping_)) {
      mapping_ = mapping::ppe_only(*analysis_);
    }
    options_.instances = 600;
    options_.dispatch_overhead = 1e-9;  // isolate the resource model
    options_.dma_issue_overhead = 1e-9;
    options_.record_trace = true;
    result_ = simulate(*analysis_, mapping_, options_);
  }

  TaskGraph graph_;
  std::optional<SteadyStateAnalysis> analysis_;
  Mapping mapping_;
  SimOptions options_;
  SimResult result_;
};

TEST_P(SimProperties, CompletionTimesStrictlyIncrease) {
  for (std::size_t i = 1; i < result_.completion_times.size(); ++i) {
    EXPECT_GT(result_.completion_times[i], result_.completion_times[i - 1]);
  }
}

TEST_P(SimProperties, SteadyThroughputWithinAnalyticBound) {
  const double bound = analysis_->throughput(mapping_);
  EXPECT_LE(result_.steady_throughput, bound * 1.02);
}

TEST_P(SimProperties, SteadyThroughputReasonablyCloseToTheBound) {
  // With near-zero overheads the resource model is the only limiter; the
  // event-driven execution should reach most of the fluid bound.
  const double bound = analysis_->throughput(mapping_);
  EXPECT_GE(result_.steady_throughput, 0.70 * bound)
      << "strategy " << GetParam().strategy << " ccr " << GetParam().ccr;
}

TEST_P(SimProperties, DmaTransferCountMatchesTheMapping) {
  // Each remote edge fetches once per instance; each memory stream reads
  // or writes once per instance.
  std::uint64_t expected_per_instance = 0;
  for (EdgeId e = 0; e < graph_.edge_count(); ++e) {
    if (mapping_.is_remote(graph_, e)) ++expected_per_instance;
  }
  for (const Task& t : graph_.tasks()) {
    if (t.read_bytes > 0.0) ++expected_per_instance;
    if (t.write_bytes > 0.0) ++expected_per_instance;
  }
  EXPECT_EQ(result_.dma_transfers, expected_per_instance * 600);
}

TEST_P(SimProperties, BusyTimeMatchesWorkDone) {
  // Each PE's accumulated busy time equals instances x per-instance work
  // of its tasks.
  const CellPlatform& p = analysis_->platform();
  for (PeId pe = 0; pe < p.pe_count(); ++pe) {
    double expected = 0.0;
    for (TaskId t : mapping_.tasks_on(pe)) {
      expected += p.is_ppe(pe) ? graph_.task(t).wppe : graph_.task(t).wspe;
    }
    EXPECT_NEAR(result_.pe_busy_seconds[pe], expected * 600.0,
                1e-6 * (1.0 + expected * 600.0));
  }
}

TEST_P(SimProperties, MakespanIsLastCompletion) {
  EXPECT_DOUBLE_EQ(result_.makespan, result_.completion_times.back());
  EXPECT_GT(result_.overall_throughput, 0.0);
}

TEST_P(SimProperties, ReplayIsBitIdentical) {
  // The simulator must be deterministic: the same seed-derived graph,
  // mapping and options reproduce every completion time exactly (not just
  // within tolerance) — the contract the fuzz reproducer relies on.
  const SimResult replay = simulate(*analysis_, mapping_, options_);
  ASSERT_EQ(replay.completion_times.size(), result_.completion_times.size());
  for (std::size_t i = 0; i < replay.completion_times.size(); ++i) {
    ASSERT_EQ(replay.completion_times[i], result_.completion_times[i])
        << "instance " << i << " diverged on replay";
  }
  EXPECT_EQ(replay.makespan, result_.makespan);
  EXPECT_EQ(replay.dma_transfers, result_.dma_transfers);
  ASSERT_EQ(replay.trace.size(), result_.trace.size());
}

TEST_P(SimProperties, TraceDmaQueueDepthsRespectTheHardwareLimits) {
  // Independent sweep over the recorded transfers (deliberately not the
  // src/check implementation): at no instant may a SPE exceed its 16-deep
  // MFC stack, nor a source SPE its 8-deep PPE proxy stack.  Completions
  // free a slot before same-instant issues claim one.
  const CellPlatform& p = analysis_->platform();
  struct Delta {
    double time;
    int change;
  };
  std::vector<std::vector<Delta>> mfc(p.pe_count()), proxy(p.pe_count());
  for (const TraceEvent& e : result_.trace) {
    if (e.kind != TraceEvent::Kind::kTransfer) continue;
    if (p.is_spe(e.pe)) {
      mfc[e.pe].push_back({e.start, +1});
      mfc[e.pe].push_back({e.end, -1});
    } else if (e.payload == TraceEvent::Payload::kEdge && p.is_spe(e.src_pe)) {
      proxy[e.src_pe].push_back({e.start, +1});
      proxy[e.src_pe].push_back({e.end, -1});
    }
  }
  const auto max_depth = [](std::vector<Delta>& deltas) {
    std::sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
      return a.time != b.time ? a.time < b.time : a.change < b.change;
    });
    int depth = 0, peak = 0;
    for (const Delta& d : deltas) peak = std::max(peak, depth += d.change);
    return peak;
  };
  for (PeId pe = 0; pe < p.pe_count(); ++pe) {
    if (!p.is_spe(pe)) continue;
    EXPECT_LE(max_depth(mfc[pe]), static_cast<int>(p.spe_dma_slots))
        << p.pe_name(pe) << " MFC queue";
    EXPECT_LE(max_depth(proxy[pe]), static_cast<int>(p.ppe_to_spe_dma_slots))
        << p.pe_name(pe) << " proxy queue";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimProperties,
    ::testing::Values(Scenario{1, 0.775, "greedy-cpu"},
                      Scenario{2, 0.775, "greedy-mem"},
                      Scenario{3, 1.5, "greedy-cpu"},
                      Scenario{4, 1.5, "round-robin"},
                      Scenario{5, 2.3, "greedy-mem"},
                      Scenario{6, 2.3, "ppe-only"},
                      Scenario{7, 3.4, "greedy-cpu"},
                      Scenario{8, 4.6, "greedy-period"}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = std::string(info.param.strategy) + "_seed" +
                         std::to_string(info.param.seed);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace cellstream::sim
