#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace cellstream::sim {
namespace {

TEST(Batch, RunsEveryJobExactlyOnce) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{64}}) {
    std::vector<std::atomic<int>> hits(100);
    BatchOptions options;
    options.threads = threads;
    run_batch(hits.size(),
              [&hits](std::size_t i) {
                hits[i].fetch_add(1, std::memory_order_relaxed);
              },
              options);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "job " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(Batch, CollectReturnsResultsInIndexOrderAtAnyThreadCount) {
  const auto square = [](std::size_t i) {
    return static_cast<int>(i * i);
  };
  const std::vector<int> serial = run_batch_collect<int>(50, square,
                                                         BatchOptions{1});
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                    std::size_t{7}}) {
    EXPECT_EQ(run_batch_collect<int>(50, square, BatchOptions{threads}),
              serial);
  }
}

TEST(Batch, ZeroJobsIsANoop) {
  bool ran = false;
  run_batch(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(run_batch_collect<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(Batch, RethrowsTheLowestIndexedFailureAfterCompletion) {
  // Every job still runs (the batch never short-circuits), and the
  // exception that surfaces is deterministic: the smallest failing index,
  // not whichever thread faulted first.
  std::vector<std::atomic<int>> hits(40);
  const auto job = [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    if (i % 10 == 7) {
      throw Error("job " + std::to_string(i) + " failed");
    }
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (auto& h : hits) h.store(0);
    BatchOptions options;
    options.threads = threads;
    try {
      run_batch(hits.size(), job, options);
      FAIL() << "batch with failing jobs did not throw";
    } catch (const Error& e) {
      EXPECT_STREQ(e.what(), "job 7 failed");
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "job " << i;
    }
  }
}

TEST(Batch, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_batch_threads(), 1u);
}

TEST(Batch, NullJobIsRejected) {
  EXPECT_THROW(run_batch(3, nullptr), Error);
}

}  // namespace
}  // namespace cellstream::sim
