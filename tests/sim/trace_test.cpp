#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace cellstream::sim {
namespace {

SimResult traced_run(std::size_t instances = 20) {
  const TaskGraph g = gen::audio_encoder_graph(2);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = mapping::greedy_cpu(ss);
  SimOptions o;
  o.instances = instances;
  o.record_trace = true;
  return simulate(ss, m, o);
}

TEST(Trace, DisabledByDefault) {
  const TaskGraph g = gen::audio_encoder_graph(2);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  SimOptions o;
  o.instances = 5;
  const SimResult r = simulate(ss, mapping::greedy_cpu(ss), o);
  EXPECT_TRUE(r.trace.empty());
}

TEST(Trace, RecordsOneComputeEventPerTaskInstance) {
  const SimResult r = traced_run(20);
  std::size_t computes = 0;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceEvent::Kind::kCompute) ++computes;
  }
  // 9 tasks x 20 instances (audio encoder with 2 subband groups).
  EXPECT_EQ(computes, 9u * 20u);
}

TEST(Trace, TransferEventsMatchDmaCount) {
  const SimResult r = traced_run(20);
  std::size_t transfers = 0;
  for (const TraceEvent& e : r.trace) {
    if (e.kind == TraceEvent::Kind::kTransfer) ++transfers;
  }
  EXPECT_EQ(transfers, r.dma_transfers);
}

TEST(Trace, EventsHaveSaneTimesAndInstances) {
  const SimResult r = traced_run(10);
  ASSERT_FALSE(r.trace.empty());
  for (const TraceEvent& e : r.trace) {
    EXPECT_GE(e.start, 0.0);
    EXPECT_GE(e.end, e.start);
    EXPECT_LE(e.end, r.makespan * 1.001 + 1e-9);
    EXPECT_GE(e.instance, 0);
    EXPECT_FALSE(e.name.empty());
  }
}

TEST(Trace, ComputeEventsNeverOverlapOnOnePe) {
  const SimResult r = traced_run(15);
  // Group by PE and check pairwise disjointness (events are appended in
  // completion order, hence sorted by end; starts must follow suit).
  std::vector<double> last_end(16, -1.0);
  for (const TraceEvent& e : r.trace) {
    if (e.kind != TraceEvent::Kind::kCompute) continue;
    EXPECT_GE(e.start, last_end[e.pe] - 1e-12)
        << e.name << " overlaps on PE " << e.pe;
    last_end[e.pe] = e.end;
  }
}

TEST(ChromeTrace, ProducesValidLookingJson) {
  const SimResult r = traced_run(5);
  const CellPlatform p = platforms::qs22_single_cell();
  const std::string json = chrome_trace_json(r.trace, p);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("PPE0"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  // Balanced braces (cheap structural sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  std::vector<TraceEvent> events;
  TraceEvent weird;
  weird.name = "weird\"name\\";
  weird.end = 1.0;
  events.push_back(weird);
  const std::string json =
      chrome_trace_json(events, platforms::qs22_single_cell());
  EXPECT_NE(json.find("weird\\\"name\\\\"), std::string::npos);
}

TEST(ChromeTrace, ClampsNegativeDurationsToZeroLength) {
  // A clock glitch must not poison the whole trace file: the writer
  // clamps the window to a zero-length event at its start time instead
  // of refusing to serialize (see also obs/trace_escape_test.cpp).
  std::vector<TraceEvent> events;
  TraceEvent bad;
  bad.name = "bad";
  bad.start = 2.0;
  bad.end = 1.0;
  events.push_back(bad);
  const std::string json =
      chrome_trace_json(events, platforms::qs22_single_cell());
  EXPECT_NE(json.find("\"name\":\"bad\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0"), std::string::npos);
}

}  // namespace
}  // namespace cellstream::sim
