#include "sim/landing_set.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace cellstream::sim {
namespace {

std::vector<std::int64_t> contents(const LandingSet& s) {
  std::vector<std::int64_t> v;
  s.for_each([&v](std::int64_t x) { v.push_back(x); });
  return v;
}

TEST(LandingSet, StartsEmpty) {
  LandingSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.advance_frontier(7), 7);  // nothing parked at the frontier
}

TEST(LandingSet, KeepsValuesSortedRegardlessOfInsertOrder) {
  LandingSet s;
  s.insert(5);
  s.insert(3);
  s.insert(9);
  s.insert(4);
  EXPECT_EQ(contents(s), (std::vector<std::int64_t>{3, 4, 5, 9}));
}

TEST(LandingSet, AdvanceFrontierConsumesOnlyTheContiguousRun) {
  LandingSet s;
  // Out-of-order landings 2,3 parked while 1 is still in the air.
  s.insert(2);
  s.insert(3);
  EXPECT_EQ(s.advance_frontier(1), 1);  // 1 hasn't landed: nothing unlocks
  s.insert(1);
  s.insert(6);
  EXPECT_EQ(s.advance_frontier(1), 4);  // 1,2,3 drain; 6 stays parked
  EXPECT_EQ(contents(s), (std::vector<std::int64_t>{6}));
  s.insert(4);
  s.insert(5);
  EXPECT_EQ(s.advance_frontier(4), 7);
  EXPECT_TRUE(s.empty());
}

TEST(LandingSet, DuplicateLandingIsAnAccountingBug) {
  LandingSet s;
  s.insert(10);
  EXPECT_THROW(s.insert(10), Error);
}

TEST(LandingSet, ShiftTranslatesParkedValues) {
  LandingSet s;
  s.insert(3);
  s.insert(5);
  s.shift(100);
  EXPECT_EQ(contents(s), (std::vector<std::int64_t>{103, 105}));
  s.insert(104);
  EXPECT_EQ(s.advance_frontier(103), 106);
}

TEST(LandingSet, LongDrainDoesNotAccumulateConsumedPrefix) {
  // Endless retry-stall runs insert and drain forever; the consumed
  // prefix must be reclaimed, not grow without bound.  Interleave
  // out-of-order pairs so the set is continuously non-empty.
  LandingSet s;
  std::int64_t frontier = 0;
  for (std::int64_t i = 0; i < 10000; i += 2) {
    s.insert(i + 1);
    s.insert(i);
    frontier = s.advance_frontier(frontier);
    EXPECT_EQ(frontier, i + 2);
  }
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace cellstream::sim
