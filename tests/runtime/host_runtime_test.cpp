// Functional tests of the host execution engine: real data flows through
// real task code, pipelined per a mapping, and the values must be exactly
// what the dataflow defines regardless of thread interleaving.

#include "runtime/host_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "mapping/heuristics.hpp"
#include "mapping/milp_mapper.hpp"

namespace cellstream::runtime {
namespace {

Task make_task(double w = 0.1e-3, int peek = 0) {
  Task t;
  t.wppe = w;
  t.wspe = w;
  t.peek = peek;
  return t;
}

Packet pack(std::int64_t value) {
  Packet p(sizeof value);
  std::memcpy(p.data(), &value, sizeof value);
  return p;
}

std::int64_t unpack(const Packet& p) {
  std::int64_t value = 0;
  CS_ENSURE(p.size() == sizeof value, "unpack: bad packet");
  std::memcpy(&value, p.data(), sizeof value);
  return value;
}

TEST(HostRuntime, ChainComputesCorrectValuesAcrossPes) {
  // source -> double -> verify, spread over three PEs, 2000 instances.
  TaskGraph g("chain3");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(1, 2, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);

  std::atomic<std::int64_t> verified{0};
  std::atomic<bool> mismatch{false};
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance * 3 + 1)};
      },
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(2 * unpack(*in.inputs[0][0]))};
      },
      [&](const TaskInputs& in) {
        if (unpack(*in.inputs[0][0]) != 2 * (in.instance * 3 + 1)) {
          mismatch = true;
        }
        ++verified;
        return std::vector<Packet>{};
      }};

  RunOptions opts;
  opts.instances = 2000;
  const RunStats stats = run_stream(ss, m, tasks, opts);
  EXPECT_EQ(verified.load(), 2000);
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(stats.tasks_executed, 3u * 2000u);
  EXPECT_GT(stats.throughput, 0.0);
}

TEST(HostRuntime, PeekDeliversFutureInstancesAndClampsAtStreamEnd) {
  // consumer with peek=2 sums x[i] + x[i+1] + x[i+2] (clamped).
  TaskGraph g("peeky");
  g.add_task(make_task());
  g.add_task(make_task(0.1e-3, 2));
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(2, 0);
  m.assign(1, 1);

  const std::int64_t n = 500;
  std::vector<std::int64_t> sums(n, -1);
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [&](const TaskInputs& in) {
        std::int64_t sum = 0;
        for (const Packet* p : in.inputs[0]) {
          if (p != nullptr) sum += unpack(*p);
        }
        sums[static_cast<std::size_t>(in.instance)] = sum;
        return std::vector<Packet>{};
      }};
  RunOptions opts;
  opts.instances = n;
  run_stream(ss, m, tasks, opts);

  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t expected = 0;
    for (std::int64_t d = 0; d <= 2 && i + d < n; ++d) expected += i + d;
    EXPECT_EQ(sums[static_cast<std::size_t>(i)], expected) << "instance " << i;
  }
}

TEST(HostRuntime, FanOutFanInRoutesPerEdgePackets) {
  // src emits distinct packets per out-edge; the sink checks both arrive.
  TaskGraph g("diamond");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(0, 2, 64.0);
  g.add_edge(1, 3, 64.0);
  g.add_edge(2, 3, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(4, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  m.assign(3, 3);

  std::atomic<bool> mismatch{false};
  auto passthrough = [](const TaskInputs& in) {
    return std::vector<Packet>{Packet(*in.inputs[0][0])};
  };
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance), pack(-in.instance)};
      },
      passthrough, passthrough,
      [&](const TaskInputs& in) {
        const std::int64_t a = unpack(*in.inputs[0][0]);
        const std::int64_t b = unpack(*in.inputs[1][0]);
        if (a != in.instance || b != -in.instance) mismatch = true;
        return std::vector<Packet>{};
      }};
  RunOptions opts;
  opts.instances = 800;
  run_stream(ss, m, tasks, opts);
  EXPECT_FALSE(mismatch.load());
}

TEST(HostRuntime, BufferOccupancyNeverExceedsAnalysisDepth) {
  TaskGraph g("chain4");
  for (int i = 0; i < 4; ++i) g.add_task(make_task(0.01e-3, i == 2 ? 1 : 0));
  for (int i = 0; i + 1 < 4; ++i) g.add_edge(i, i + 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(4, 0);
  for (TaskId t = 0; t < 4; ++t) m.assign(t, t);
  std::vector<TaskFunction> tasks(4, [](const TaskInputs& in) {
    return in.inputs.empty()
               ? std::vector<Packet>{pack(in.instance)}
               : std::vector<Packet>{Packet(*in.inputs[0][0])};
  });
  tasks[3] = [](const TaskInputs&) { return std::vector<Packet>{}; };
  RunOptions opts;
  opts.instances = 1500;
  const RunStats stats = run_stream(ss, m, tasks, opts);
  ASSERT_EQ(stats.max_buffer_occupancy.size(), g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    EXPECT_LE(stats.max_buffer_occupancy[e], ss.buffer_depth(e)) << e;
    EXPECT_GE(stats.max_buffer_occupancy[e], 1) << e;
  }
}

TEST(HostRuntime, CoLocatedGraphStillRunsSingleThreaded) {
  TaskGraph g("pair");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  std::atomic<std::int64_t> sum{0};
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [&](const TaskInputs& in) {
        sum += unpack(*in.inputs[0][0]);
        return std::vector<Packet>{};
      }};
  RunOptions opts;
  opts.instances = 100;
  run_stream(ss, ppe_only_mapping(g), tasks, opts);
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(HostRuntime, TaskExceptionPropagates) {
  TaskGraph g("boom");
  g.add_task(make_task());
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) -> std::vector<Packet> {
        if (in.instance == 5) throw std::runtime_error("task blew up");
        return {};
      }};
  RunOptions opts;
  opts.instances = 100;
  EXPECT_THROW(run_stream(ss, ppe_only_mapping(g), tasks, opts),
               std::runtime_error);
}

TEST(HostRuntime, TaskExceptionAcrossPesShutsDownAllWorkers) {
  // The failing task runs on its own PE while producer and consumer occupy
  // two others.  When it throws, the peers are typically asleep on the
  // buffer condition variable (the consumer starved, the producer
  // eventually back-pressured); the runtime must wake and join every
  // worker, then rethrow the task's exception — not deadlock, and not
  // std::terminate from a leaked exception in a thread body.
  TaskGraph g("boom3");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(1, 2, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);

  std::atomic<std::int64_t> consumed{0};
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs& in) -> std::vector<Packet> {
        if (in.instance == 40) throw std::runtime_error("mid-stream failure");
        return {Packet(*in.inputs[0][0])};
      },
      [&](const TaskInputs&) {
        ++consumed;
        return std::vector<Packet>{};
      }};
  RunOptions opts;
  opts.instances = 5000;
  try {
    run_stream(ss, m, tasks, opts);
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "mid-stream failure");
  }
  // The consumer saw at most the instances that were committed before the
  // failure; the stream must not have run to completion.
  EXPECT_LT(consumed.load(), 5000);
}

TEST(HostRuntime, FirstOfConcurrentFailuresIsPropagated) {
  // Two independent chains on four PEs, both of which throw.  Whichever
  // worker records its exception first wins; the other must still drain
  // cleanly.  Either message is acceptable — the property under test is
  // that exactly one propagates and the join completes.
  TaskGraph g("twoboom");
  for (int i = 0; i < 4; ++i) g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(2, 3, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(4, 0);
  for (TaskId t = 0; t < 4; ++t) m.assign(t, t);

  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs& in) -> std::vector<Packet> {
        if (in.instance == 10) throw std::runtime_error("chain A failed");
        return {};
      },
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs& in) -> std::vector<Packet> {
        if (in.instance == 10) throw std::runtime_error("chain B failed");
        return {};
      }};
  RunOptions opts;
  opts.instances = 2000;
  try {
    run_stream(ss, m, tasks, opts);
    FAIL() << "expected a task exception to propagate";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what == "chain A failed" || what == "chain B failed") << what;
  }
}

TEST(HostRuntime, WrongOutputArityIsAnError) {
  TaskGraph g("pair");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs&) { return std::vector<Packet>{}; },  // missing!
      [](const TaskInputs&) { return std::vector<Packet>{}; }};
  RunOptions opts;
  opts.instances = 10;
  EXPECT_THROW(run_stream(ss, ppe_only_mapping(g), tasks, opts), Error);
}

TEST(HostRuntime, ValidatesConfiguration) {
  TaskGraph g("solo");
  g.add_task(make_task());
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_THROW(run_stream(ss, ppe_only_mapping(g), {}, {}), Error);
  std::vector<TaskFunction> null_task = {nullptr};
  EXPECT_THROW(run_stream(ss, ppe_only_mapping(g), null_task, {}), Error);
  std::vector<TaskFunction> ok = {
      [](const TaskInputs&) { return std::vector<Packet>{}; }};
  RunOptions bad;
  bad.instances = 0;
  EXPECT_THROW(run_stream(ss, ppe_only_mapping(g), ok, bad), Error);
}

TEST(HostRuntime, MilpMappingRunsRealWorkEndToEnd) {
  // Full-stack: MILP mapping on a generated graph, every task a real
  // checksum over its inputs, verified at the sink.
  TaskGraph g("pipeline");
  const TaskId src = g.add_task(make_task());
  const TaskId a = g.add_task(make_task());
  const TaskId b = g.add_task(make_task(0.1e-3, 1));
  const TaskId join = g.add_task(make_task());
  g.add_edge(src, a, 256.0);
  g.add_edge(src, b, 256.0);
  g.add_edge(a, join, 256.0);
  g.add_edge(b, join, 256.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(3));
  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 10.0;
  const Mapping m = mapping::solve_optimal_mapping(ss, opts).mapping;

  std::atomic<std::int64_t> checked{0};
  std::atomic<bool> mismatch{false};
  std::vector<TaskFunction> tasks(4);
  tasks[src] = [](const TaskInputs& in) {
    return std::vector<Packet>{pack(in.instance), pack(in.instance)};
  };
  tasks[a] = [](const TaskInputs& in) {
    return std::vector<Packet>{pack(unpack(*in.inputs[0][0]) + 7)};
  };
  tasks[b] = [](const TaskInputs& in) {
    // peek=1: add the next instance when it exists.
    std::int64_t v = unpack(*in.inputs[0][0]);
    if (in.inputs[0][1] != nullptr) v += unpack(*in.inputs[0][1]);
    return std::vector<Packet>{pack(v)};
  };
  tasks[join] = [&](const TaskInputs& in) {
    const std::int64_t i = in.instance;
    const std::int64_t expect_a = i + 7;
    const std::int64_t expect_b = i + (i + 1 < in.stream_length ? i + 1 : 0);
    if (unpack(*in.inputs[0][0]) != expect_a ||
        unpack(*in.inputs[1][0]) != expect_b) {
      mismatch = true;
    }
    ++checked;
    return std::vector<Packet>{};
  };
  RunOptions run_opts;
  run_opts.instances = 1000;
  run_stream(ss, m, tasks, run_opts);
  EXPECT_EQ(checked.load(), 1000);
  EXPECT_FALSE(mismatch.load());
}

// -- Telemetry (obs::Recorder integration) ---------------------------------

TEST(HostRuntime, TelemetryCountsExecutionsAndPacketBytesPerPe) {
  // source -> mid -> sink over three PEs; every packet is 8 bytes, both
  // edges are remote, so the byte attribution has a closed form.
  TaskGraph g("telemetry3");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(1, 2, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs& in) {
        return std::vector<Packet>{Packet(*in.inputs[0][0])};
      },
      [](const TaskInputs&) { return std::vector<Packet>{}; }};
  RunOptions opts;
  opts.instances = 1000;
  const RunStats stats = run_stream(ss, m, tasks, opts);

  const auto n = static_cast<std::uint64_t>(opts.instances);
  const double packet_bytes = 8.0 * static_cast<double>(n);
  ASSERT_EQ(stats.counters.pe.size(), ss.platform().pe_count());
  EXPECT_EQ(stats.counters.domain, obs::TimeDomain::kWall);
  for (PeId pe = 0; pe < 3; ++pe) {
    EXPECT_EQ(stats.counters.pe[pe].tasks_executed, n) << pe;
  }
  EXPECT_EQ(stats.counters.total_executions(), stats.tasks_executed);
  // Packets leave through the producer's out interface and arrive
  // through the consumer's in interface; local traffic counts nowhere.
  EXPECT_DOUBLE_EQ(stats.counters.pe[0].bytes_out, packet_bytes);
  EXPECT_DOUBLE_EQ(stats.counters.pe[0].bytes_in, 0.0);
  EXPECT_DOUBLE_EQ(stats.counters.pe[1].bytes_in, packet_bytes);
  EXPECT_DOUBLE_EQ(stats.counters.pe[1].bytes_out, packet_bytes);
  EXPECT_DOUBLE_EQ(stats.counters.pe[2].bytes_in, packet_bytes);
  EXPECT_DOUBLE_EQ(stats.counters.pe[2].bytes_out, 0.0);
  // Receiver-reads protocol: the consumer issues one transfer per remote
  // input instance.
  EXPECT_EQ(stats.counters.pe[1].transfers_issued, n);
  EXPECT_EQ(stats.counters.pe[2].transfers_issued, n);
  EXPECT_EQ(stats.counters.total_transfers(), 2 * n);
  // Every instance got a completion stamp, in nondecreasing wall time.
  ASSERT_EQ(stats.counters.instances_completed(), n);
  for (std::size_t i = 1; i < stats.counters.instance_completion.size(); ++i) {
    EXPECT_GE(stats.counters.instance_completion[i],
              stats.counters.instance_completion[i - 1]);
  }
  EXPECT_GT(stats.counters.elapsed_seconds, 0.0);
  // Wall-time compute was measured (the sum over 3000 task bodies cannot
  // be zero on any clock this runtime supports).
  double total_compute = 0.0;
  for (const obs::PeCounters& c : stats.counters.pe) {
    total_compute += c.compute_seconds;
  }
  EXPECT_GT(total_compute, 0.0);
}

TEST(HostRuntime, TelemetryLocalEdgesCountNoInterfaceBytes) {
  TaskGraph g("local-pair");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs&) { return std::vector<Packet>{}; }};
  RunOptions opts;
  opts.instances = 200;
  const RunStats stats = run_stream(ss, ppe_only_mapping(g), tasks, opts);
  for (const obs::PeCounters& c : stats.counters.pe) {
    EXPECT_DOUBLE_EQ(c.bytes_in, 0.0);
    EXPECT_DOUBLE_EQ(c.bytes_out, 0.0);
    EXPECT_EQ(c.transfers_issued, 0u);
  }
  EXPECT_EQ(stats.counters.pe[0].tasks_executed, 400u);
}

TEST(HostRuntime, TelemetryTraceRecordsEveryExecutionWhenEnabled) {
  TaskGraph g("traced");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(2, 0);
  m.assign(1, 1);
  std::vector<TaskFunction> tasks = {
      [](const TaskInputs& in) {
        return std::vector<Packet>{pack(in.instance)};
      },
      [](const TaskInputs&) { return std::vector<Packet>{}; }};
  RunOptions opts;
  opts.instances = 300;
  opts.record_trace = true;
  const RunStats stats = run_stream(ss, m, tasks, opts);

  ASSERT_EQ(stats.trace.size(), 2u * 300u);
  std::vector<std::size_t> per_task(2, 0);
  for (const obs::TraceEvent& e : stats.trace) {
    EXPECT_EQ(e.kind, obs::TraceEvent::Kind::kCompute);
    ASSERT_GE(e.task, 0);
    ASSERT_LT(e.task, 2);
    ++per_task[static_cast<std::size_t>(e.task)];
    EXPECT_EQ(e.pe, m.pe_of(static_cast<TaskId>(e.task)));
    EXPECT_GE(e.end, e.start);
    EXPECT_GE(e.start, 0.0);
    EXPECT_EQ(e.name, g.task(static_cast<TaskId>(e.task)).name);
  }
  EXPECT_EQ(per_task[0], 300u);
  EXPECT_EQ(per_task[1], 300u);

  // The shared writer accepts runtime events (wall-seconds timestamps).
  const std::string json =
      obs::chrome_trace_json(stats.trace, ss.platform());
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Off by default.
  RunOptions plain;
  plain.instances = 10;
  EXPECT_TRUE(run_stream(ss, m, tasks, plain).trace.empty());
}

TEST(HostRuntime, TelemetryFlushesExactlyOnceOnFailureShutdown) {
  // A worker that throws mid-stream still flushes its counters exactly
  // once, and so does every draining peer: if any worker double-flushed,
  // Recorder::flush_pe would throw from the flush path and the process
  // would terminate instead of rethrowing the task's exception.  Run it
  // several times to give interleavings a chance (and TSan, under the
  // CELLSTREAM_TSAN build, a race-free execution to certify).
  TaskGraph g("flaky");
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_task(make_task());
  g.add_edge(0, 1, 64.0);
  g.add_edge(1, 2, 64.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  for (int round = 0; round < 10; ++round) {
    std::vector<TaskFunction> tasks = {
        [](const TaskInputs& in) {
          return std::vector<Packet>{pack(in.instance)};
        },
        [](const TaskInputs& in) -> std::vector<Packet> {
          if (in.instance == 25) throw std::runtime_error("boom");
          return {Packet(*in.inputs[0][0])};
        },
        [](const TaskInputs&) { return std::vector<Packet>{}; }};
    RunOptions opts;
    opts.instances = 4000;
    opts.record_trace = true;
    try {
      run_stream(ss, m, tasks, opts);
      FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
  }
}

}  // namespace
}  // namespace cellstream::runtime
