// Executable check of the paper's Theorem 1 reduction (Section 3.2).

#include "mapping/complexity.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace cellstream::mapping {
namespace {

TEST(Reduction, BuildsAChainWithUnrelatedCostsAndZeroData) {
  TwoMachineInstance inst;
  inst.lengths = {{1.0, 2.0}, {3.0, 1.0}, {2.0, 2.0}};
  inst.bound = 4.0;
  const TaskGraph g = reduce_to_cell_mapping(inst);
  EXPECT_EQ(g.task_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.depth(), 2u);
  EXPECT_DOUBLE_EQ(g.task(0).wppe, 1.0);
  EXPECT_DOUBLE_EQ(g.task(0).wspe, 2.0);
  for (const Edge& e : g.edges()) EXPECT_DOUBLE_EQ(e.data_bytes, 0.0);
}

TEST(Reduction, PlatformIsOnePpeOneSpe) {
  const CellPlatform p = reduction_platform();
  EXPECT_EQ(p.ppe_count, 1u);
  EXPECT_EQ(p.spe_count, 1u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Reduction, YesInstanceMapsToYes) {
  // Two tasks, each fast on a different machine; B = 1 is achievable by
  // the matching assignment.
  TwoMachineInstance inst;
  inst.lengths = {{1.0, 10.0}, {10.0, 1.0}};
  inst.bound = 1.0;
  EXPECT_TRUE(two_machine_schedulable(inst));
  EXPECT_TRUE(cell_mapping_reaches_bound(inst));
}

TEST(Reduction, NoInstanceMapsToNo) {
  // Both tasks take 2 everywhere; some machine always carries load >= 2.
  TwoMachineInstance inst;
  inst.lengths = {{2.0, 2.0}, {2.0, 2.0}};
  inst.bound = 1.5;
  EXPECT_FALSE(two_machine_schedulable(inst));
  EXPECT_FALSE(cell_mapping_reaches_bound(inst));
}

class ReductionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalence, BothDecisionProblemsAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  TwoMachineInstance inst;
  const int n = 1 + static_cast<int>(rng.uniform_int(1, 7));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    const double l0 = rng.uniform(0.5, 4.0);
    const double l1 = rng.uniform(0.5, 4.0);
    inst.lengths.push_back({l0, l1});
    total += std::min(l0, l1);
  }
  // Sample bounds around the interesting region.
  for (double frac : {0.4, 0.55, 0.7, 1.1}) {
    inst.bound = frac * total;
    EXPECT_EQ(two_machine_schedulable(inst),
              cell_mapping_reaches_bound(inst))
        << "n=" << n << " bound=" << inst.bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionEquivalence, ::testing::Range(0, 12));

TEST(Reduction, ValidatesInputs) {
  TwoMachineInstance empty;
  empty.bound = 1.0;
  EXPECT_THROW(reduce_to_cell_mapping(empty), Error);
  TwoMachineInstance bad;
  bad.lengths = {{1.0, 1.0}};
  bad.bound = 0.0;
  EXPECT_THROW(reduce_to_cell_mapping(bad), Error);
}

}  // namespace
}  // namespace cellstream::mapping
