// Hand-computed worked example for the paper's two heuristics (Section
// 6.3) on a diamond-and-tail graph in the style of Fig. 5:
//
//        T0
//       /  \
//      T1    T2          wspe(T0) = 1.0 ms   wppe(T0) = 1.2 ms
//       \  /             wspe(T3) = 0.9 ms   wppe(T3) = 1.5 ms
//        T3              others: wspe 0.6 ms, wppe 1.5 ms
//        |
//        T4 -- T5        every edge carries 4 kB per instance
//
// Platform: QS22 single Cell (PPE0 = PE 0, SPE0..7 = PEs 1..8).  Interface
// occupation is at most 3 edges x 4 kB / 25 GB/s ~ 0.5 us per PE, three
// orders of magnitude below every compute cost, so the steady-state period
// is exactly the largest per-PE compute load.
//
// GREEDYMEM walks T0..T5 in topological order and places each task on the
// least-memory SPE: all SPEs start empty, so each task claims a fresh SPE
// in index order -> T_k on PE k+1.  Period = max wspe = wspe(T0) = 1.0 ms.
//
// GREEDYCPU places each task on the PE with the least accumulated compute
// load over *all* PEs; the PPE (load 0) wins the first draw, so T0 lands
// on PPE0 and the rest claim fresh SPEs -> T0 on PE 0, T_k (k>0) on PE k.
// Period = max(wppe(T0), remaining wspe) = wppe(T0) = 1.2 ms.

#include <gtest/gtest.h>

#include "mapping/heuristics.hpp"

namespace cellstream::mapping {
namespace {

TaskGraph worked_example() {
  TaskGraph graph("paper-worked-example");
  graph.add_task({"T0", 1.2e-3, 1.0e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T1", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T2", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T3", 1.5e-3, 0.9e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T4", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_task({"T5", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
  graph.add_edge(0, 1, 4096.0);
  graph.add_edge(0, 2, 4096.0);
  graph.add_edge(1, 3, 4096.0);
  graph.add_edge(2, 3, 4096.0);
  graph.add_edge(3, 4, 4096.0);
  graph.add_edge(4, 5, 4096.0);
  return graph;
}

TEST(HeuristicsPaperExample, GreedyMemMapsEachTaskToAFreshSpe) {
  const SteadyStateAnalysis analysis(worked_example(),
                                     platforms::qs22_single_cell());
  const Mapping mapping = greedy_mem(analysis);
  const std::vector<PeId> expected = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(mapping.raw(), expected)
      << mapping.to_string(analysis.platform());
  EXPECT_TRUE(analysis.feasible(mapping));
  // Period = wspe(T0): the bottleneck is SPE0's compute, every interface
  // term is ~0.5 us.
  EXPECT_DOUBLE_EQ(analysis.period(mapping), 1.0e-3);
  EXPECT_DOUBLE_EQ(analysis.throughput(mapping), 1000.0);
}

TEST(HeuristicsPaperExample, GreedyCpuPutsTheFirstTaskOnThePpe) {
  const SteadyStateAnalysis analysis(worked_example(),
                                     platforms::qs22_single_cell());
  const Mapping mapping = greedy_cpu(analysis);
  const std::vector<PeId> expected = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(mapping.raw(), expected)
      << mapping.to_string(analysis.platform());
  EXPECT_TRUE(analysis.feasible(mapping));
  // Period = wppe(T0): the PPE is the compute bottleneck.
  EXPECT_DOUBLE_EQ(analysis.period(mapping), 1.2e-3);
}

TEST(HeuristicsPaperExample, GreedyMemBeatsGreedyCpuHere) {
  // The worked example is built so the memory-driven heuristic wins: the
  // CPU-driven one grabs the idle PPE for T0 even though T0 runs faster on
  // a SPE (the unrelated-machine pitfall the paper discusses).
  const SteadyStateAnalysis analysis(worked_example(),
                                     platforms::qs22_single_cell());
  EXPECT_LT(analysis.period(greedy_mem(analysis)),
            analysis.period(greedy_cpu(analysis)));
}

}  // namespace
}  // namespace cellstream::mapping
