#include "mapping/heuristics.hpp"

#include <gtest/gtest.h>

#include "gen/daggen.hpp"

namespace cellstream::mapping {
namespace {

Task make_task(double wppe, double wspe, int peek = 0) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  t.peek = peek;
  return t;
}

TaskGraph small_chain() {
  TaskGraph g("chain4");
  for (int i = 0; i < 4; ++i) g.add_task(make_task(1e-3, 0.5e-3));
  for (int i = 0; i + 1 < 4; ++i) g.add_edge(i, i + 1, 1024.0);
  return g;
}

TEST(GreedyMem, SpreadsAcrossSpes) {
  const TaskGraph g = small_chain();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = greedy_mem(ss);
  // Every task fits on an (empty) SPE, and least-loaded-memory choice
  // rotates over the empty SPEs, so no task lands on the PPE.
  for (TaskId t = 0; t < g.task_count(); ++t) {
    EXPECT_TRUE(p.is_spe(m.pe_of(t))) << "task " << t;
  }
  EXPECT_TRUE(ss.feasible(m));
}

TEST(GreedyMem, FallsBackToPpeWhenNothingFits) {
  TaskGraph g("fat");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  // Buffer = 2 * 200 kB = 400 kB > budget on every SPE.
  g.add_edge(0, 1, 200.0 * 1024.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = greedy_mem(ss);
  EXPECT_EQ(m.pe_of(0), 0u);
  EXPECT_EQ(m.pe_of(1), 0u);
}

TEST(GreedyMem, RespectsLocalStoreAcrossManyTasks) {
  // 60 tasks x 2 x 3 kB buffers: SPEs fill up one by one; the heuristic
  // must never overflow any local store.
  gen::DagGenParams params;
  params.task_count = 60;
  params.seed = 5;
  const TaskGraph g = gen::chain_graph(60, params);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = greedy_mem(ss);
  const ResourceUsage u = ss.usage(m);
  for (PeId pe = p.ppe_count; pe < p.pe_count(); ++pe) {
    EXPECT_LE(u.buffer_bytes[pe], static_cast<double>(p.buffer_budget()));
  }
}

TEST(GreedyCpu, BalancesComputeLoad) {
  // 9 equal tasks on 1 PPE + 8 SPEs: each PE gets exactly one.
  TaskGraph g("nine");
  for (int i = 0; i < 9; ++i) g.add_task(make_task(1e-3, 1e-3));
  for (int i = 0; i + 1 < 9; ++i) g.add_edge(i, i + 1, 64.0);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = greedy_cpu(ss);
  std::vector<int> per_pe(p.pe_count(), 0);
  for (TaskId t = 0; t < 9; ++t) ++per_pe[m.pe_of(t)];
  for (int count : per_pe) EXPECT_EQ(count, 1);
}

TEST(GreedyCpu, UsesUnrelatedCosts) {
  // A task much faster on the PPE: load accounting must use wppe there.
  TaskGraph g("two");
  g.add_task(make_task(/*wppe=*/1e-3, /*wspe=*/1e-3));
  g.add_task(make_task(/*wppe=*/1e-3, /*wspe=*/1e-3));
  g.add_edge(0, 1, 64.0);
  const CellPlatform p = platforms::qs22_with_spes(1);
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = greedy_cpu(ss);
  // Two PEs, two equal tasks: one each.
  EXPECT_NE(m.pe_of(0), m.pe_of(1));
}

TEST(PpeOnly, AllOnPpe) {
  const TaskGraph g = small_chain();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = ppe_only(ss);
  for (TaskId t = 0; t < g.task_count(); ++t) EXPECT_EQ(m.pe_of(t), 0u);
}

TEST(RoundRobin, CyclesThroughPes) {
  const TaskGraph g = small_chain();
  const CellPlatform p = platforms::qs22_with_spes(3);
  const SteadyStateAnalysis ss(g, p);
  const Mapping m = round_robin(ss);
  EXPECT_EQ(m.pe_of(0), 0u);
  EXPECT_EQ(m.pe_of(1), 1u);
  EXPECT_EQ(m.pe_of(2), 2u);
  EXPECT_EQ(m.pe_of(3), 3u);
}

TEST(GreedyPeriod, NeverWorseThanPpeOnlyOnSmallGraphs) {
  gen::DagGenParams params;
  params.task_count = 12;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    params.seed = seed;
    const TaskGraph g = gen::daggen_random(params);
    const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
    const double greedy = ss.period(greedy_period(ss));
    const double baseline = ss.period(ppe_only(ss));
    EXPECT_LE(greedy, baseline + 1e-12) << "seed " << seed;
  }
}

TEST(RunHeuristic, DispatchesByName) {
  const TaskGraph g = small_chain();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_EQ(run_heuristic("ppe-only", ss), ppe_only(ss));
  EXPECT_EQ(run_heuristic("greedy-mem", ss), greedy_mem(ss));
  EXPECT_EQ(run_heuristic("greedy-cpu", ss), greedy_cpu(ss));
  EXPECT_EQ(run_heuristic("round-robin", ss), round_robin(ss));
  EXPECT_EQ(run_heuristic("greedy-period", ss), greedy_period(ss));
  EXPECT_THROW(run_heuristic("nope", ss), Error);
}

TEST(Heuristics, AllProduceValidFeasibleMemoryUsage) {
  gen::DagGenParams params;
  params.task_count = 40;
  params.seed = 17;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::playstation3();
  const SteadyStateAnalysis ss(g, p);
  for (const char* name : {"greedy-mem", "greedy-cpu", "ppe-only",
                           "round-robin", "greedy-period"}) {
    const Mapping m = run_heuristic(name, ss);
    EXPECT_NO_THROW(m.validate(p)) << name;
    const ResourceUsage u = ss.usage(m);
    for (PeId pe = p.ppe_count; pe < p.pe_count(); ++pe) {
      EXPECT_LE(u.buffer_bytes[pe], static_cast<double>(p.buffer_budget()))
          << name << " overflows " << p.pe_name(pe);
    }
  }
}

}  // namespace
}  // namespace cellstream::mapping
