#include "mapping/milp_mapper.hpp"

#include <gtest/gtest.h>

#include "gen/daggen.hpp"
#include "mapping/exhaustive.hpp"
#include "mapping/heuristics.hpp"

namespace cellstream::mapping {
namespace {

Task make_task(double wppe, double wspe, int peek = 0) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  t.peek = peek;
  return t;
}

TEST(Formulation, HasExpectedShape) {
  TaskGraph g("pair");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 1024.0);
  const CellPlatform p = platforms::qs22_with_spes(2);  // n = 3
  const SteadyStateAnalysis ss(g, p);
  const Formulation f = build_formulation(ss);
  // 1 period + K*n alpha + |E|*n^2 beta.
  EXPECT_EQ(f.problem.variable_count(), 1u + 2 * 3 + 1 * 9);
  EXPECT_EQ(f.alpha.size(), 2u);
  EXPECT_EQ(f.alpha[0].size(), 3u);
  EXPECT_EQ(f.beta.size(), 1u);
  EXPECT_EQ(f.beta[0].size(), 9u);
}

TEST(Formulation, EncodedMappingIsLpFeasibleWithPeriodObjective) {
  const TaskGraph g = [&] {
    TaskGraph graph("three");
    graph.add_task(make_task(2e-3, 1e-3));
    graph.add_task(make_task(1e-3, 3e-3));
    graph.add_task(make_task(1e-3, 1e-3, 1));
    graph.add_edge(0, 1, 4096.0);
    graph.add_edge(1, 2, 2048.0);
    return graph;
  }();
  const CellPlatform p = platforms::qs22_with_spes(2);
  const SteadyStateAnalysis ss(g, p);
  const Formulation f = build_formulation(ss);

  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  const std::vector<double> x = encode_mapping(f, ss, m);
  EXPECT_LE(f.problem.max_violation(x), 1e-9);
  EXPECT_NEAR(f.problem.objective_value(x), ss.period(m), 1e-12);
  EXPECT_EQ(extract_mapping(f, x), m);
}

TEST(Formulation, InfeasibleMappingViolatesEncodedConstraints) {
  // A mapping that overflows a SPE local store must violate row (1i).
  TaskGraph g("heavy");
  g.add_task(make_task(1e-3, 1e-3));
  g.add_task(make_task(1e-3, 1e-3));
  g.add_edge(0, 1, 200.0 * 1024.0);  // 400 kB buffer
  const CellPlatform p = platforms::qs22_with_spes(2);
  const SteadyStateAnalysis ss(g, p);
  const Formulation f = build_formulation(ss);
  Mapping m(2, 1);  // both tasks on SPE0
  const std::vector<double> x = encode_mapping(f, ss, m);
  EXPECT_GT(f.problem.max_violation(x), 0.1);
}

// The headline correctness property: the MILP mapper (at gap 0) matches
// the exhaustive optimum on small random instances.
class MilpVsExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(MilpVsExhaustive, PeriodsAgree) {
  gen::DagGenParams params;
  params.task_count = 6;
  params.fat = 0.5;
  params.seed = static_cast<std::uint64_t>(GetParam()) * 7 + 1;
  // Make communication matter: large payloads.
  params.data_min = 16.0 * 1024;
  params.data_max = 64.0 * 1024;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::qs22_with_spes(2);  // n = 3
  const SteadyStateAnalysis ss(g, p);

  const auto brute = exhaustive_optimal_mapping(ss);
  ASSERT_TRUE(brute.has_value());

  MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  const MilpMapperResult milp = solve_optimal_mapping(ss, opts);
  EXPECT_EQ(milp.status, milp::Status::kOptimal);
  EXPECT_NEAR(milp.period, brute->period, 1e-6 * brute->period)
      << "MILP " << milp.mapping.to_string(p) << " vs brute "
      << brute->mapping.to_string(p);
  EXPECT_TRUE(ss.feasible(milp.mapping));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpVsExhaustive, ::testing::Range(0, 8));

TEST(MilpMapper, NeverWorseThanAnyHeuristic) {
  gen::DagGenParams params;
  params.task_count = 20;
  params.seed = 77;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::playstation3();
  const SteadyStateAnalysis ss(g, p);

  MilpMapperOptions opts;
  opts.milp.relative_gap = 0.05;
  opts.milp.time_limit_seconds = 30.0;
  const MilpMapperResult result = solve_optimal_mapping(ss, opts);

  for (const char* name :
       {"greedy-mem", "greedy-cpu", "ppe-only", "greedy-period"}) {
    const Mapping m = run_heuristic(name, ss);
    if (!ss.feasible(m)) continue;
    EXPECT_LE(result.period, ss.period(m) * (1.0 + 1e-9)) << name;
  }
}

TEST(MilpMapper, RespectsHardConstraints) {
  gen::DagGenParams params;
  params.task_count = 25;
  params.seed = 3;
  params.data_min = 8.0 * 1024;
  params.data_max = 48.0 * 1024;
  const TaskGraph g = gen::daggen_random(params);
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 15.0;  // incumbent quality suffices here
  const MilpMapperResult result = solve_optimal_mapping(ss, opts);
  EXPECT_TRUE(ss.feasible(result.mapping))
      << result.mapping.to_string(p);
}

TEST(MilpMapper, GapIsReported) {
  gen::DagGenParams params;
  params.task_count = 15;
  params.seed = 11;
  const TaskGraph g = gen::daggen_random(params);
  const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(4));
  MilpMapperOptions opts;
  opts.milp.relative_gap = 0.05;
  // Generous cap: the assertion is that the gap is reported correctly on
  // a proven-optimal run, and instrumented builds (TSan) run the solve
  // several times slower than the ~15 s it takes uninstrumented.
  opts.milp.time_limit_seconds = 300.0;
  const MilpMapperResult result = solve_optimal_mapping(ss, opts);
  ASSERT_EQ(result.status, milp::Status::kOptimal);
  EXPECT_LE(result.gap, 0.05 + 1e-9);
  EXPECT_GT(result.best_bound, 0.0);
  EXPECT_LE(result.best_bound, result.period + 1e-12);
}

TEST(MilpMapper, SingleTaskGoesToItsFasterPe) {
  TaskGraph g("solo");
  g.add_task(make_task(/*wppe=*/4e-3, /*wspe=*/1e-3));
  const CellPlatform p = platforms::qs22_with_spes(2);
  const SteadyStateAnalysis ss(g, p);
  MilpMapperOptions opts;
  opts.milp.relative_gap = 0.0;
  const MilpMapperResult result = solve_optimal_mapping(ss, opts);
  EXPECT_TRUE(p.is_spe(result.mapping.pe_of(0)));
  EXPECT_NEAR(result.period, 1e-3, 1e-9);
}

TEST(MilpMapper, ZeroSpesForcesPpe) {
  TaskGraph g("duo");
  g.add_task(make_task(1e-3, 0.1e-3));
  g.add_task(make_task(1e-3, 0.1e-3));
  g.add_edge(0, 1, 512.0);
  const CellPlatform p = platforms::qs22_with_spes(0);
  const SteadyStateAnalysis ss(g, p);
  const MilpMapperResult result = solve_optimal_mapping(ss);
  EXPECT_EQ(result.mapping.pe_of(0), 0u);
  EXPECT_EQ(result.mapping.pe_of(1), 0u);
  EXPECT_NEAR(result.period, 2e-3, 1e-9);
}

TEST(Exhaustive, RejectsHugeSearchSpaces) {
  gen::DagGenParams params;
  params.task_count = 40;
  const TaskGraph g = gen::daggen_random(params);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_THROW(exhaustive_optimal_mapping(ss), Error);
}

TEST(Exhaustive, FindsTheObviousOptimum) {
  TaskGraph g("solo");
  g.add_task(make_task(4e-3, 1e-3));
  const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(1));
  const auto result = exhaustive_optimal_mapping(ss);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->period, 1e-3, 1e-12);
}

}  // namespace
}  // namespace cellstream::mapping
