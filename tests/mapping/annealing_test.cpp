#include "mapping/annealing.hpp"

#include <gtest/gtest.h>

#include "gen/daggen.hpp"
#include "mapping/exhaustive.hpp"
#include "mapping/heuristics.hpp"

namespace cellstream::mapping {
namespace {

SteadyStateAnalysis make_analysis(std::uint64_t seed, std::size_t tasks = 18) {
  gen::DagGenParams params;
  params.task_count = tasks;
  params.seed = seed;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 1.0);
  return SteadyStateAnalysis(std::move(g), platforms::qs22_single_cell());
}

TEST(Annealing, NeverWorseThanItsStart) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SteadyStateAnalysis ss = make_analysis(seed);
    Mapping start = greedy_cpu(ss);
    if (!ss.feasible(start)) start = ppe_only(ss);
    AnnealingOptions opts;
    opts.iterations = 4000;
    opts.seed = seed;
    const Mapping result = anneal_mapping(ss, start, opts);
    EXPECT_LE(ss.period(result), ss.period(start) + 1e-15) << seed;
    EXPECT_TRUE(ss.feasible(result));
  }
}

TEST(Annealing, DeterministicForFixedSeed) {
  const SteadyStateAnalysis ss = make_analysis(3);
  AnnealingOptions opts;
  opts.iterations = 2000;
  opts.seed = 99;
  const Mapping a = annealing_heuristic(ss, opts);
  const Mapping b = annealing_heuristic(ss, opts);
  EXPECT_EQ(a, b);
}

TEST(Annealing, ImprovesAPpeOnlyStartSubstantially) {
  const SteadyStateAnalysis ss = make_analysis(7, 24);
  const Mapping start = ppe_only(ss);
  AnnealingOptions opts;
  opts.iterations = 8000;
  const Mapping result = anneal_mapping(ss, start, opts);
  EXPECT_LT(ss.period(result), 0.8 * ss.period(start));
}

TEST(Annealing, ApproachesExhaustiveOptimumOnTinyInstances) {
  gen::DagGenParams params;
  params.task_count = 6;
  int hits = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.seed = seed;
    TaskGraph g = gen::daggen_random(params);
    gen::set_ccr(g, 1.0);
    const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(2));
    const auto brute = exhaustive_optimal_mapping(ss);
    ASSERT_TRUE(brute.has_value());
    AnnealingOptions opts;
    opts.iterations = 5000;
    opts.seed = seed;
    const Mapping result = annealing_heuristic(ss, opts);
    EXPECT_GE(ss.period(result), brute->period - 1e-12);
    if (ss.period(result) <= brute->period * 1.02) ++hits;
  }
  EXPECT_GE(hits, 4);  // finds (near-)optimal on most tiny instances
}

TEST(Annealing, ValidatesArguments) {
  const SteadyStateAnalysis ss = make_analysis(1, 8);
  AnnealingOptions opts;
  opts.iterations = 0;
  EXPECT_THROW(anneal_mapping(ss, ppe_only(ss), opts), Error);
  opts = AnnealingOptions{};
  opts.end_temperature = 1.0;
  opts.start_temperature = 0.1;
  EXPECT_THROW(anneal_mapping(ss, ppe_only(ss), opts), Error);
}

TEST(Annealing, RejectsInfeasibleStart) {
  TaskGraph g;
  Task t;
  t.wppe = t.wspe = 1e-3;
  g.add_task(t);
  g.add_task(t);
  g.add_edge(0, 1, 200.0 * 1024.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_THROW(anneal_mapping(ss, Mapping(2, 1), {}), Error);
}

}  // namespace
}  // namespace cellstream::mapping
