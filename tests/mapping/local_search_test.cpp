#include "mapping/local_search.hpp"

#include <gtest/gtest.h>

#include "gen/daggen.hpp"
#include "mapping/exhaustive.hpp"
#include "mapping/heuristics.hpp"

namespace cellstream::mapping {
namespace {

TEST(LocalSearch, NeverWorsensTheStartingPoint) {
  gen::DagGenParams params;
  params.task_count = 20;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.seed = seed;
    TaskGraph g = gen::daggen_random(params);
    gen::set_ccr(g, 1.0);
    const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
    Mapping m = greedy_cpu(ss);
    if (!ss.feasible(m)) m = ppe_only(ss);
    const double before = ss.period(m);
    const double after = improve_mapping(ss, m);
    EXPECT_LE(after, before + 1e-15) << "seed " << seed;
    EXPECT_TRUE(ss.feasible(m));
    EXPECT_NEAR(after, ss.period(m), 1e-15);
  }
}

TEST(LocalSearch, RejectsInfeasibleStart) {
  TaskGraph g;
  Task t;
  t.wppe = t.wspe = 1e-3;
  g.add_task(t);
  g.add_task(t);
  g.add_edge(0, 1, 200.0 * 1024.0);  // 400 kB buffer
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(2, 1);  // both on SPE0: infeasible
  EXPECT_THROW(improve_mapping(ss, m), Error);
}

TEST(LocalSearch, FixesAnObviouslyBadPlacement) {
  // One heavy SIMD task stuck on the PPE; a move step must push it to a
  // SPE.
  TaskGraph g;
  Task heavy;
  heavy.wppe = 10e-3;
  heavy.wspe = 1e-3;
  g.add_task(heavy);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(1, 0);
  const double after = improve_mapping(ss, m);
  EXPECT_NEAR(after, 1e-3, 1e-12);
  EXPECT_TRUE(ss.platform().is_spe(m.pe_of(0)));
}

TEST(LocalSearch, SwapEscapesMoveLocalOptimum) {
  // Two PEs (PPE + 1 SPE), two tasks with opposite affinities placed on
  // the wrong hosts.  A single move worsens the bottleneck, only a swap
  // fixes it; with swaps enabled the optimum is reached.
  TaskGraph g;
  Task simd;  // fast on SPE
  simd.wppe = 4e-3;
  simd.wspe = 1e-3;
  Task branchy;  // fast on PPE
  branchy.wppe = 1e-3;
  branchy.wspe = 4e-3;
  g.add_task(simd);
  g.add_task(branchy);
  const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(1));
  Mapping m(2);
  m.assign(0, 0);  // simd on PPE (bad)
  m.assign(1, 1);  // branchy on SPE (bad); period = 4 ms
  LocalSearchOptions opts;
  opts.use_swaps = true;
  const double after = improve_mapping(ss, m, opts);
  EXPECT_NEAR(after, 1e-3, 1e-12);
  EXPECT_EQ(m.pe_of(0), 1u);
  EXPECT_EQ(m.pe_of(1), 0u);
}

TEST(LocalSearch, ReachesExhaustiveOptimumOnTinyInstances) {
  gen::DagGenParams params;
  params.task_count = 6;
  int optimal_hits = 0;
  const int trials = 6;
  for (int seed = 1; seed <= trials; ++seed) {
    params.seed = static_cast<std::uint64_t>(seed);
    TaskGraph g = gen::daggen_random(params);
    gen::set_ccr(g, 1.0);
    const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(2));
    const auto brute = exhaustive_optimal_mapping(ss);
    ASSERT_TRUE(brute.has_value());
    const Mapping m = local_search_heuristic(ss);
    if (ss.period(m) <= brute->period * 1.001) ++optimal_hits;
    // Local search can be stuck in local optima, but never below optimal.
    EXPECT_GE(ss.period(m), brute->period - 1e-12);
  }
  // It should find the true optimum on most tiny instances.
  EXPECT_GE(optimal_hits, trials / 2);
}

TEST(LocalSearch, HeuristicBeatsItsGreedySeed) {
  gen::DagGenParams params;
  params.task_count = 30;
  params.seed = 9;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 0.775);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const double greedy = ss.period(greedy_cpu(ss));
  const double polished = ss.period(local_search_heuristic(ss));
  EXPECT_LE(polished, greedy + 1e-15);
}

}  // namespace
}  // namespace cellstream::mapping
