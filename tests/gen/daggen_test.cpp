#include "gen/daggen.hpp"

#include <gtest/gtest.h>

namespace cellstream::gen {
namespace {

TEST(DagGen, ProducesRequestedTaskCount) {
  DagGenParams params;
  params.task_count = 37;
  const TaskGraph g = daggen_random(params);
  EXPECT_EQ(g.task_count(), 37u);
  EXPECT_NO_THROW(g.validate());
}

TEST(DagGen, DeterministicForSameSeed) {
  DagGenParams params;
  params.task_count = 30;
  params.seed = 99;
  const TaskGraph a = daggen_random(params);
  const TaskGraph b = daggen_random(params);
  EXPECT_EQ(a.to_text(), b.to_text());
}

TEST(DagGen, DifferentSeedsDiffer) {
  DagGenParams params;
  params.task_count = 30;
  params.seed = 1;
  const TaskGraph a = daggen_random(params);
  params.seed = 2;
  const TaskGraph b = daggen_random(params);
  EXPECT_NE(a.to_text(), b.to_text());
}

TEST(DagGen, FatControlsShape) {
  DagGenParams params;
  params.task_count = 60;
  params.seed = 4;
  params.fat = 0.05;
  const std::size_t deep = daggen_random(params).depth();
  params.fat = 0.9;
  const std::size_t shallow = daggen_random(params).depth();
  EXPECT_GT(deep, shallow);
}

TEST(DagGen, EveryNonSourceHasAParentAndEveryNonSinkAChild) {
  DagGenParams params;
  params.task_count = 50;
  params.seed = 12;
  params.fat = 0.5;
  const TaskGraph g = daggen_random(params);
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  for (TaskId t = 0; t < g.task_count(); ++t) {
    const bool is_source =
        std::find(sources.begin(), sources.end(), t) != sources.end();
    const bool is_sink =
        std::find(sinks.begin(), sinks.end(), t) != sinks.end();
    if (!is_source) EXPECT_FALSE(g.in_edges(t).empty());
    if (!is_sink) EXPECT_FALSE(g.out_edges(t).empty());
  }
}

TEST(DagGen, CostsWithinConfiguredRanges) {
  DagGenParams params;
  params.task_count = 40;
  params.seed = 8;
  const TaskGraph g = daggen_random(params);
  for (const Task& t : g.tasks()) {
    EXPECT_GE(t.wppe, params.wppe_min);
    EXPECT_LE(t.wppe, params.wppe_max);
    // wspe = wppe / speedup with speedup in [min, max].
    EXPECT_GE(t.wspe, t.wppe / params.spe_speedup_max - 1e-15);
    EXPECT_LE(t.wspe, t.wppe / params.spe_speedup_min + 1e-15);
    EXPECT_GE(t.peek, 0);
    EXPECT_LE(t.peek, 2);
  }
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.data_bytes, params.data_min);
    EXPECT_LE(e.data_bytes, params.data_max);
  }
}

TEST(DagGen, SourcesReadAndSinksWrite) {
  DagGenParams params;
  params.task_count = 25;
  params.seed = 3;
  const TaskGraph g = daggen_random(params);
  for (TaskId t : g.sources()) {
    EXPECT_DOUBLE_EQ(g.task(t).read_bytes, params.io_bytes);
  }
  for (TaskId t : g.sinks()) {
    EXPECT_DOUBLE_EQ(g.task(t).write_bytes, params.io_bytes);
  }
}

TEST(ChainGraph, IsALinearChain) {
  DagGenParams params;
  const TaskGraph g = chain_graph(10, params);
  EXPECT_EQ(g.task_count(), 10u);
  EXPECT_EQ(g.edge_count(), 9u);
  EXPECT_EQ(g.depth(), 9u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(ForkJoin, HasExpectedShape) {
  DagGenParams params;
  const TaskGraph g = fork_join_graph(4, 3, params);
  EXPECT_EQ(g.task_count(), 1 + 4 * 3 + 1u);
  EXPECT_EQ(g.depth(), 4u);  // source -> 3 chain -> sink
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(PaperGraphs, MatchThePaperScales) {
  const TaskGraph g1 = paper_graph(0);
  const TaskGraph g2 = paper_graph(1);
  const TaskGraph g3 = paper_graph(2);
  EXPECT_EQ(g1.task_count(), 50u);
  EXPECT_EQ(g2.task_count(), 94u);
  EXPECT_EQ(g3.task_count(), 50u);
  EXPECT_EQ(g3.edge_count(), 49u);  // chain
  EXPECT_GT(g2.depth(), 3u);
  EXPECT_THROW(paper_graph(3), Error);
  // Deterministic across calls.
  EXPECT_EQ(paper_graph(0).to_text(), g1.to_text());
}

TEST(SetCcr, HitsPaperTargets) {
  for (int idx = 0; idx < 3; ++idx) {
    for (double target : kPaperCcrValues) {
      TaskGraph g = paper_graph(idx);
      set_ccr(g, target);
      EXPECT_NEAR(g.ccr(kPaperOpsRate), target, 1e-9) << "graph " << idx;
    }
  }
}

TEST(Diamond, ShapeAndConnectivity) {
  DagGenParams params;
  const TaskGraph g = diamond_graph(5, params);
  // Widths 1,2,3,2,1 -> 9 tasks.
  EXPECT_EQ(g.task_count(), 9u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.depth(), 4u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Diamond, SingleLevelIsOneTask) {
  const TaskGraph g = diamond_graph(1, DagGenParams{});
  EXPECT_EQ(g.task_count(), 1u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Diamond, RejectsEvenLevels) {
  EXPECT_THROW(diamond_graph(4, DagGenParams{}), Error);
  EXPECT_THROW(diamond_graph(0, DagGenParams{}), Error);
}

TEST(Diamond, EveryMiddleTaskConnected) {
  const TaskGraph g = diamond_graph(7, DagGenParams{});
  const auto sources = g.sources();
  const auto sinks = g.sinks();
  EXPECT_EQ(sources.size(), 1u);
  EXPECT_EQ(sinks.size(), 1u);
  for (TaskId t = 0; t < g.task_count(); ++t) {
    const bool is_src = t == sources[0];
    const bool is_sink = t == sinks[0];
    if (!is_src) EXPECT_FALSE(g.in_edges(t).empty()) << t;
    if (!is_sink) EXPECT_FALSE(g.out_edges(t).empty()) << t;
  }
}

TEST(DagGen, RejectsBadParameters) {
  DagGenParams params;
  params.task_count = 0;
  EXPECT_THROW(daggen_random(params), Error);
  params.task_count = 10;
  params.fat = 1.5;
  EXPECT_THROW(daggen_random(params), Error);
  EXPECT_THROW(chain_graph(0, DagGenParams{}), Error);
  EXPECT_THROW(fork_join_graph(0, 3, DagGenParams{}), Error);
}

}  // namespace
}  // namespace cellstream::gen
