#include "gen/apps.hpp"

#include <gtest/gtest.h>

#include "core/steady_state.hpp"

namespace cellstream::gen {
namespace {

TEST(AudioEncoder, IsAValidDag) {
  const TaskGraph g = audio_encoder_graph();
  EXPECT_NO_THROW(g.validate());
  // reader + window + psycho + 8 filters + bitalloc + 8 quant + pack.
  EXPECT_EQ(g.task_count(), 5u + 2 * 8u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

TEST(AudioEncoder, SubbandGroupsScaleTheGraph) {
  EXPECT_EQ(audio_encoder_graph(4).task_count(), 5u + 2 * 4u);
  EXPECT_EQ(audio_encoder_graph(16).task_count(), 5u + 2 * 16u);
  EXPECT_THROW(audio_encoder_graph(0), Error);
  EXPECT_THROW(audio_encoder_graph(33), Error);
}

TEST(AudioEncoder, PsychoacousticModelPeeks) {
  const TaskGraph g = audio_encoder_graph();
  bool found_peek = false;
  for (const Task& t : g.tasks()) {
    if (t.name == "psychoacoustic") {
      EXPECT_EQ(t.peek, 1);
      found_peek = true;
    }
  }
  EXPECT_TRUE(found_peek);
}

TEST(AudioEncoder, HasUnrelatedCosts) {
  // Some tasks faster on SPE, some faster on PPE (the unrelated model).
  const TaskGraph g = audio_encoder_graph();
  bool spe_faster = false, ppe_faster = false;
  for (const Task& t : g.tasks()) {
    if (t.wspe < t.wppe) spe_faster = true;
    if (t.wppe < t.wspe) ppe_faster = true;
  }
  EXPECT_TRUE(spe_faster);
  EXPECT_TRUE(ppe_faster);
}

TEST(AudioEncoder, StreamsThroughMainMemory) {
  const TaskGraph g = audio_encoder_graph();
  double reads = 0.0, writes = 0.0;
  for (const Task& t : g.tasks()) {
    reads += t.read_bytes;
    writes += t.write_bytes;
  }
  EXPECT_GT(reads, 0.0);
  EXPECT_GT(writes, 0.0);
}

TEST(AudioEncoder, FitsTheSteadyStateMachinery) {
  const TaskGraph g = audio_encoder_graph();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  EXPECT_TRUE(ss.feasible(ppe_only_mapping(g)));
  EXPECT_GT(ss.throughput(ppe_only_mapping(g)), 0.0);
}

TEST(VideoPipeline, IsAValidDag) {
  const TaskGraph g = video_pipeline_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.task_count(), 5u + 4u);  // capture..mux + 4 tiles
  EXPECT_THROW(video_pipeline_graph(0), Error);
  EXPECT_THROW(video_pipeline_graph(17), Error);
}

TEST(VideoPipeline, MotionEstimationPeeksTwoFrames) {
  const TaskGraph g = video_pipeline_graph();
  bool found = false;
  for (const Task& t : g.tasks()) {
    if (t.name == "motion_estimation") {
      EXPECT_EQ(t.peek, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(VideoPipeline, TileCountControlsWidth) {
  const TaskGraph g = video_pipeline_graph(8);
  EXPECT_EQ(g.task_count(), 5u + 8u);
  // Each tile encoder has two inputs (denoise + motion vectors).
  std::size_t two_input_tasks = 0;
  for (TaskId t = 0; t < g.task_count(); ++t) {
    if (g.in_edges(t).size() == 2) ++two_input_tasks;
  }
  EXPECT_GE(two_input_tasks, 8u);
}

}  // namespace
}  // namespace cellstream::gen
