// Regression pins for the three paper evaluation graphs.  The figure
// benches and EXPERIMENTS.md numbers are only comparable across builds if
// these generated instances stay bit-identical; any intentional generator
// change must update these pins (and re-baseline EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "gen/daggen.hpp"

namespace cellstream::gen {
namespace {

TEST(PaperGraphRegression, Graph1Shape) {
  const TaskGraph g = paper_graph(0);
  EXPECT_EQ(g.task_count(), 50u);
  EXPECT_EQ(g.edge_count(), 81u);
  EXPECT_EQ(g.sources().size(), 2u);
}

TEST(PaperGraphRegression, Graph2Shape) {
  const TaskGraph g = paper_graph(1);
  EXPECT_EQ(g.task_count(), 94u);
  EXPECT_EQ(g.edge_count(), 157u);
}

TEST(PaperGraphRegression, Graph3Shape) {
  const TaskGraph g = paper_graph(2);
  EXPECT_EQ(g.task_count(), 50u);
  EXPECT_EQ(g.edge_count(), 49u);
  EXPECT_EQ(g.depth(), 49u);
}

TEST(PaperGraphRegression, TotalWorkStableAcrossBuilds) {
  // Seconds of PPE work per instance; a drift here silently rescales every
  // speed-up in the benches.
  const double w1 = paper_graph(0).total_wppe();
  const double w2 = paper_graph(1).total_wppe();
  const double w3 = paper_graph(2).total_wppe();
  EXPECT_NEAR(w1, paper_graph(0).total_wppe(), 0.0);  // deterministic
  EXPECT_GT(w1, 0.03);
  EXPECT_LT(w1, 0.08);
  EXPECT_GT(w2, 0.06);
  EXPECT_LT(w2, 0.15);
  EXPECT_GT(w3, 0.03);
  EXPECT_LT(w3, 0.08);
}

TEST(PaperGraphRegression, PeekDistributionInPaperRange) {
  // The paper's graphs show peeks of 0, 1 and 2 with 0 dominating.
  for (int idx = 0; idx < 3; ++idx) {
    const TaskGraph g = paper_graph(idx);
    int histogram[3] = {0, 0, 0};
    for (const Task& t : g.tasks()) {
      ASSERT_GE(t.peek, 0);
      ASSERT_LE(t.peek, 2);
      ++histogram[t.peek];
    }
    EXPECT_GT(histogram[0], histogram[1]) << "graph " << idx;
    EXPECT_GT(histogram[0], histogram[2]) << "graph " << idx;
  }
}

TEST(PaperGraphRegression, StatefulMinorityAsInPaperFigures) {
  for (int idx = 0; idx < 3; ++idx) {
    const TaskGraph g = paper_graph(idx);
    std::size_t stateful = 0;
    for (const Task& t : g.tasks()) stateful += t.stateful;
    EXPECT_GT(stateful, 0u) << "graph " << idx;
    EXPECT_LT(stateful, g.task_count() / 2) << "graph " << idx;
  }
}

TEST(PaperGraphRegression, CcrScalingIsIdempotentUpToRounding) {
  TaskGraph g = paper_graph(0);
  set_ccr(g, 0.775);
  const double total = g.total_data_bytes();
  // Re-scaling to the same target changes volumes only by roundoff.
  set_ccr(g, 0.775);
  EXPECT_NEAR(g.total_data_bytes(), total, 1e-9 * total);
  EXPECT_NEAR(g.ccr(kPaperOpsRate), 0.775, 1e-12);
}

}  // namespace
}  // namespace cellstream::gen
