// Round-trip of the stats exports on the paper's worked example (Fig. 2
// graph, the mapping with period exactly 1 ms): emit JSON and CSV, parse
// them back, and check the parsed throughput and occupation numbers
// against closed-form values — so the export layer cannot silently
// drop, rename, or garble a field without a test noticing.

#include "report/stats_io.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/steady_state.hpp"
#include "mapping/milp_mapper.hpp"
#include "sim/simulator.hpp"
#include "support/json.hpp"

namespace cellstream::report {
namespace {

/// The paper's worked example: six tasks, all edges 4 kB, mapped one
/// task per SPE; the steady-state period is exactly T0's 1.0 ms of SPE
/// work (see mapping/heuristics_paper_example_test.cpp).
struct WorkedExample {
  TaskGraph graph{"paper-worked-example"};
  Mapping mapping{0, 0};
  WorkedExample() {
    graph.add_task({"T0", 1.2e-3, 1.0e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T1", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T2", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T3", 1.5e-3, 0.9e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T4", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T5", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_edge(0, 1, 4096.0);
    graph.add_edge(0, 2, 4096.0);
    graph.add_edge(1, 3, 4096.0);
    graph.add_edge(2, 3, 4096.0);
    graph.add_edge(3, 4, 4096.0);
    graph.add_edge(4, 5, 4096.0);
    mapping = Mapping(6, 0);
    for (TaskId t = 0; t < 6; ++t) mapping.assign(t, t + 1);
  }
};

obs::Report simulate_report(const WorkedExample& ex, std::size_t instances) {
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  EXPECT_DOUBLE_EQ(ss.period(ex.mapping), 1.0e-3);
  sim::SimOptions options;
  options.instances = instances;
  const sim::SimResult run = sim::simulate(ss, ex.mapping, options);
  return obs::build_report(ss, ex.mapping, run.counters);
}

TEST(StatsRoundTrip, JsonParsesBackWithClosedFormValues) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 400);
  const std::string text = stats_json(report);

  const json::Value doc = json::Value::parse(text);
  const std::vector<std::string> problems = validate_stats_json(doc);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  ASSERT_TRUE(problems.empty());

  EXPECT_EQ(doc.at("schema").as_string(), kStatsSchema);
  EXPECT_EQ(doc.at("graph").at("name").as_string(), "paper-worked-example");
  EXPECT_EQ(doc.at("graph").at("tasks").as_number(), 6.0);
  EXPECT_EQ(doc.at("run").at("domain").as_string(), "simulated");
  EXPECT_EQ(doc.at("run").at("instances").as_number(), 400.0);

  // Closed form: the period is T0's 1.0 ms, so rho_predicted = 1000/s and
  // the bottleneck is the compute of T0's SPE (PE 1 = "SPE0").
  EXPECT_DOUBLE_EQ(doc.at("predicted").at("period").as_number(), 1.0e-3);
  EXPECT_DOUBLE_EQ(doc.at("predicted").at("throughput").as_number(), 1000.0);
  EXPECT_EQ(doc.at("predicted").at("bottleneck").as_string(),
            "SPE0 compute");
  // Observed rho converges on the prediction (overheads cost ~1 %).
  EXPECT_NEAR(doc.at("observed").at("steady_throughput").as_number(),
              1000.0, 50.0);

  // The cross-check must be green and internally consistent.
  EXPECT_TRUE(doc.at("crosscheck").at("applicable").as_bool());
  EXPECT_TRUE(doc.at("crosscheck").at("ok").as_bool());
  EXPECT_EQ(doc.at("crosscheck").at("flagged").size(), 0u);

  // Occupation sums: total predicted compute seconds per instance equal
  // the sum of the mapped work (1.0 + 0.6 x 4 + 0.9 ms = 4.3 ms), and
  // every per-resource observation sits within tolerance of prediction.
  double predicted_compute = 0.0;
  for (const json::Value& r : doc.at("resources").items()) {
    const double predicted = r.at("predicted_seconds").as_number();
    const double observed = r.at("observed_seconds").as_number();
    if (r.at("kind").as_string() == "compute") predicted_compute += predicted;
    EXPECT_LE(observed, predicted * 1.05 + 1e-12)
        << r.at("resource").as_string();
  }
  EXPECT_NEAR(predicted_compute, 4.3e-3, 1e-15);

  // Solver section: null for a hand-built mapping.
  EXPECT_TRUE(doc.at("solver").is_null());
}

TEST(StatsRoundTrip, CsvParsesBackConsistentWithJson) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 200);
  const std::string csv = stats_csv(report);

  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "resource,pe,kind,predicted_seconds,observed_seconds,ratio");

  std::size_t rows = 0;
  bool saw_bottleneck = false;
  std::string line;
  while (std::getline(lines, line)) {
    ++rows;
    std::istringstream cells(line);
    std::string resource, pe, kind, predicted, observed, ratio;
    ASSERT_TRUE(std::getline(cells, resource, ','));
    ASSERT_TRUE(std::getline(cells, pe, ','));
    ASSERT_TRUE(std::getline(cells, kind, ','));
    ASSERT_TRUE(std::getline(cells, predicted, ','));
    ASSERT_TRUE(std::getline(cells, observed, ','));
    ASSERT_TRUE(std::getline(cells, ratio, ','));
    if (resource == "SPE0 compute") {
      saw_bottleneck = true;
      EXPECT_DOUBLE_EQ(std::stod(predicted), 1.0e-3);
      EXPECT_NEAR(std::stod(ratio), 1.0, 1e-6);
    }
  }
  // One row per PE per direction/compute.
  const std::size_t pe_count = platforms::qs22_single_cell().pe_count();
  EXPECT_EQ(rows, 3u * pe_count);
  EXPECT_TRUE(saw_bottleneck);
  EXPECT_EQ(report.resources.size(), rows);
}

TEST(StatsRoundTrip, SolverSectionRoundTripsForMilpMappings) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  const mapping::MilpMapperResult solved = mapping::solve_optimal_mapping(ss);

  sim::SimOptions options;
  options.instances = 100;
  const sim::SimResult run = sim::simulate(ss, solved.mapping, options);
  obs::Report report = obs::build_report(ss, solved.mapping, run.counters);
  report.solver = mapping::solver_stats(solved);

  const json::Value doc = json::Value::parse(stats_json(report));
  const std::vector<std::string> problems = validate_stats_json(doc);
  for (const std::string& p : problems) ADD_FAILURE() << p;

  const json::Value& solver = doc.at("solver");
  ASSERT_TRUE(solver.is_object());
  EXPECT_EQ(solver.at("status").as_string(), milp::to_string(solved.status));
  EXPECT_EQ(solver.at("nodes").as_number(),
            static_cast<double>(solved.nodes));
  EXPECT_DOUBLE_EQ(solver.at("objective").as_number(), solved.period);
  // The incumbent trajectory made it through: at least one improvement,
  // each stamped with its deterministic (round, nodes) search position,
  // objectives strictly improving down to the final incumbent.
  const json::Value& incumbents = solver.at("incumbents");
  ASSERT_GT(incumbents.size(), 0u);
  double prev = std::numeric_limits<double>::infinity();
  for (const json::Value& inc : incumbents.items()) {
    EXPECT_GE(inc.at("round").as_number(), 0.0);
    EXPECT_GE(inc.at("nodes").as_number(), 0.0);
    EXPECT_LT(inc.at("objective").as_number(), prev);
    prev = inc.at("objective").as_number();
  }
  // The MILP minimizes the period, so the last incumbent is the period
  // the mapper reports (recomputed by the analysis; 5 % default gap).
  EXPECT_NEAR(prev, solved.period, 0.05 * solved.period + 1e-12);
}

TEST(StatsRoundTrip, ValidatorCatchesSchemaDrift) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 50);
  json::Value doc = stats_to_json(report);
  EXPECT_TRUE(validate_stats_json(doc).empty());

  json::Value wrong_tag = doc;
  wrong_tag.set("schema", json::Value("cellstream-stats-v0"));
  EXPECT_FALSE(validate_stats_json(wrong_tag).empty());

  json::Value inconsistent = doc;
  json::Value crosscheck = json::Value::object();
  crosscheck.set("applicable", json::Value(true));
  crosscheck.set("tolerance", json::Value(0.05));
  crosscheck.set("ok", json::Value(false));  // but nothing flagged
  crosscheck.set("flagged", json::Value::array());
  inconsistent.set("crosscheck", std::move(crosscheck));
  EXPECT_FALSE(validate_stats_json(inconsistent).empty());

  EXPECT_FALSE(validate_stats_json(json::Value(1.0)).empty());
}

}  // namespace
}  // namespace cellstream::report
