// Round-trip of the stats exports on the paper's worked example (Fig. 2
// graph, the mapping with period exactly 1 ms): emit JSON and CSV, parse
// them back, and check the parsed throughput and occupation numbers
// against closed-form values — so the export layer cannot silently
// drop, rename, or garble a field without a test noticing.

#include "report/stats_io.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "core/steady_state.hpp"
#include "fault/failover.hpp"
#include "mapping/milp_mapper.hpp"
#include "sim/simulator.hpp"
#include "support/json.hpp"

namespace cellstream::report {
namespace {

/// The paper's worked example: six tasks, all edges 4 kB, mapped one
/// task per SPE; the steady-state period is exactly T0's 1.0 ms of SPE
/// work (see mapping/heuristics_paper_example_test.cpp).
struct WorkedExample {
  TaskGraph graph{"paper-worked-example"};
  Mapping mapping{0, 0};
  WorkedExample() {
    graph.add_task({"T0", 1.2e-3, 1.0e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T1", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T2", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T3", 1.5e-3, 0.9e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T4", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_task({"T5", 1.5e-3, 0.6e-3, 0, 0.0, 0.0, false});
    graph.add_edge(0, 1, 4096.0);
    graph.add_edge(0, 2, 4096.0);
    graph.add_edge(1, 3, 4096.0);
    graph.add_edge(2, 3, 4096.0);
    graph.add_edge(3, 4, 4096.0);
    graph.add_edge(4, 5, 4096.0);
    mapping = Mapping(6, 0);
    for (TaskId t = 0; t < 6; ++t) mapping.assign(t, t + 1);
  }
};

obs::Report simulate_report(const WorkedExample& ex, std::size_t instances) {
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  EXPECT_DOUBLE_EQ(ss.period(ex.mapping), 1.0e-3);
  sim::SimOptions options;
  options.instances = instances;
  const sim::SimResult run = sim::simulate(ss, ex.mapping, options);
  return obs::build_report(ss, ex.mapping, run.counters);
}

TEST(StatsRoundTrip, JsonParsesBackWithClosedFormValues) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 400);
  const std::string text = stats_json(report);

  const json::Value doc = json::Value::parse(text);
  const std::vector<std::string> problems = validate_stats_json(doc);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  ASSERT_TRUE(problems.empty());

  EXPECT_EQ(doc.at("schema").as_string(), kStatsSchema);
  EXPECT_EQ(doc.at("graph").at("name").as_string(), "paper-worked-example");
  EXPECT_EQ(doc.at("graph").at("tasks").as_number(), 6.0);
  EXPECT_EQ(doc.at("run").at("domain").as_string(), "simulated");
  EXPECT_EQ(doc.at("run").at("instances").as_number(), 400.0);

  // Closed form: the period is T0's 1.0 ms, so rho_predicted = 1000/s and
  // the bottleneck is the compute of T0's SPE (PE 1 = "SPE0").
  EXPECT_DOUBLE_EQ(doc.at("predicted").at("period").as_number(), 1.0e-3);
  EXPECT_DOUBLE_EQ(doc.at("predicted").at("throughput").as_number(), 1000.0);
  EXPECT_EQ(doc.at("predicted").at("bottleneck").as_string(),
            "SPE0 compute");
  // Observed rho converges on the prediction (overheads cost ~1 %).
  EXPECT_NEAR(doc.at("observed").at("steady_throughput").as_number(),
              1000.0, 50.0);

  // The cross-check must be green and internally consistent.
  EXPECT_TRUE(doc.at("crosscheck").at("applicable").as_bool());
  EXPECT_TRUE(doc.at("crosscheck").at("ok").as_bool());
  EXPECT_EQ(doc.at("crosscheck").at("flagged").size(), 0u);

  // Occupation sums: total predicted compute seconds per instance equal
  // the sum of the mapped work (1.0 + 0.6 x 4 + 0.9 ms = 4.3 ms), and
  // every per-resource observation sits within tolerance of prediction.
  double predicted_compute = 0.0;
  for (const json::Value& r : doc.at("resources").items()) {
    const double predicted = r.at("predicted_seconds").as_number();
    const double observed = r.at("observed_seconds").as_number();
    if (r.at("kind").as_string() == "compute") predicted_compute += predicted;
    EXPECT_LE(observed, predicted * 1.05 + 1e-12)
        << r.at("resource").as_string();
  }
  EXPECT_NEAR(predicted_compute, 4.3e-3, 1e-15);

  // Solver section: null for a hand-built mapping.
  EXPECT_TRUE(doc.at("solver").is_null());
}

TEST(StatsRoundTrip, CsvParsesBackConsistentWithJson) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 200);
  const std::string csv = stats_csv(report);

  std::istringstream lines(csv);
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header,
            "resource,pe,kind,predicted_seconds,observed_seconds,ratio");

  std::size_t rows = 0;
  bool saw_bottleneck = false;
  std::string line;
  while (std::getline(lines, line)) {
    ++rows;
    std::istringstream cells(line);
    std::string resource, pe, kind, predicted, observed, ratio;
    ASSERT_TRUE(std::getline(cells, resource, ','));
    ASSERT_TRUE(std::getline(cells, pe, ','));
    ASSERT_TRUE(std::getline(cells, kind, ','));
    ASSERT_TRUE(std::getline(cells, predicted, ','));
    ASSERT_TRUE(std::getline(cells, observed, ','));
    ASSERT_TRUE(std::getline(cells, ratio, ','));
    if (resource == "SPE0 compute") {
      saw_bottleneck = true;
      EXPECT_DOUBLE_EQ(std::stod(predicted), 1.0e-3);
      EXPECT_NEAR(std::stod(ratio), 1.0, 1e-6);
    }
  }
  // One row per PE per direction/compute.
  const std::size_t pe_count = platforms::qs22_single_cell().pe_count();
  EXPECT_EQ(rows, 3u * pe_count);
  EXPECT_TRUE(saw_bottleneck);
  EXPECT_EQ(report.resources.size(), rows);
}

TEST(StatsRoundTrip, SolverSectionRoundTripsForMilpMappings) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());
  const mapping::MilpMapperResult solved = mapping::solve_optimal_mapping(ss);

  sim::SimOptions options;
  options.instances = 100;
  const sim::SimResult run = sim::simulate(ss, solved.mapping, options);
  obs::Report report = obs::build_report(ss, solved.mapping, run.counters);
  report.solver = mapping::solver_stats(solved);

  const json::Value doc = json::Value::parse(stats_json(report));
  const std::vector<std::string> problems = validate_stats_json(doc);
  for (const std::string& p : problems) ADD_FAILURE() << p;

  const json::Value& solver = doc.at("solver");
  ASSERT_TRUE(solver.is_object());
  EXPECT_EQ(solver.at("status").as_string(), milp::to_string(solved.status));
  EXPECT_EQ(solver.at("nodes").as_number(),
            static_cast<double>(solved.nodes));
  EXPECT_DOUBLE_EQ(solver.at("objective").as_number(), solved.period);
  // The incumbent trajectory made it through: at least one improvement,
  // each stamped with its deterministic (round, nodes) search position,
  // objectives strictly improving down to the final incumbent.
  const json::Value& incumbents = solver.at("incumbents");
  ASSERT_GT(incumbents.size(), 0u);
  double prev = std::numeric_limits<double>::infinity();
  for (const json::Value& inc : incumbents.items()) {
    EXPECT_GE(inc.at("round").as_number(), 0.0);
    EXPECT_GE(inc.at("nodes").as_number(), 0.0);
    EXPECT_LT(inc.at("objective").as_number(), prev);
    prev = inc.at("objective").as_number();
  }
  // The MILP minimizes the period, so the last incumbent is the period
  // the mapper reports (recomputed by the analysis; 5 % default gap).
  EXPECT_NEAR(prev, solved.period, 0.05 * solved.period + 1e-12);
}

TEST(StatsRoundTrip, FaultSectionRoundTripsForFaultedRuns) {
  WorkedExample ex;
  const SteadyStateAnalysis ss(ex.graph, platforms::qs22_single_cell());

  // Fail-stop SPE1 (PE 2, hosting T1) mid-stream, with a light transient
  // DMA fault load so every counter family is exercised.
  fault::FaultPlan plan;
  plan.seed = 404;
  plan.pe_failure = fault::PeFailure{2, 120};
  plan.dma.rate = 0.02;
  plan.dma.max_retries = 4;
  plan.dma.backoff_seconds = 5.0e-5;

  fault::FailoverOptions options;
  options.sim.instances = 240;
  const fault::FailoverOutcome outcome =
      fault::run_with_failover(ss, ex.mapping, plan, options);
  ASSERT_TRUE(outcome.failover_performed);

  obs::Report report =
      obs::build_report(ss, outcome.post_mapping, outcome.result.counters);
  report.faults = fault::fault_summary(outcome.result.faults,
                                       outcome.predicted_post_throughput);

  const json::Value doc = json::Value::parse(stats_json(report));
  const std::vector<std::string> problems = validate_stats_json(doc);
  for (const std::string& p : problems) ADD_FAILURE() << p;
  ASSERT_TRUE(problems.empty());

  const json::Value& faults = doc.at("faults");
  ASSERT_TRUE(faults.is_object());
  EXPECT_EQ(faults.at("failovers").as_number(), 1.0);
  EXPECT_EQ(faults.at("failed_pe").as_number(), 2.0);
  EXPECT_EQ(faults.at("fail_instance").as_number(), 120.0);
  EXPECT_GT(faults.at("migrated_tasks").as_number(), 0.0);
  EXPECT_GT(faults.at("migrated_bytes").as_number(), 0.0);
  EXPECT_GT(faults.at("downtime_seconds").as_number(), 0.0);
  EXPECT_GT(faults.at("dma_retries").as_number(), 0.0);
  EXPECT_GT(faults.at("backoff_seconds").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(faults.at("predicted_post_throughput").as_number(),
                   outcome.predicted_post_throughput);
  EXPECT_EQ(faults.at("migrated_tasks").as_number(),
            static_cast<double>(outcome.result.faults.migrated_tasks));
}

TEST(StatsRoundTrip, FaultSectionIsNullWithoutAFaultPlan) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 50);
  const json::Value doc = json::Value::parse(stats_json(report));
  EXPECT_TRUE(validate_stats_json(doc).empty());
  ASSERT_TRUE(doc.has("faults"));
  EXPECT_TRUE(doc.at("faults").is_null());
}

TEST(StatsRoundTrip, ValidatorAcceptsLegacyV1AndEnforcesFaultsPresence) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 50);
  const json::Value v2 = stats_to_json(report);
  ASSERT_TRUE(validate_stats_json(v2).empty());

  // A legacy v1 document is the v2 document minus the faults section
  // (json::Value has no erase, so rebuild by copying the other keys).
  json::Value v1 = json::Value::object();
  v1.set("schema", json::Value(kStatsSchemaV1));
  for (const char* key :
       {"graph", "platform", "run", "predicted", "observed", "crosscheck",
        "resources", "convergence", "solver"}) {
    v1.set(key, v2.at(key));
  }
  EXPECT_TRUE(validate_stats_json(v1).empty());

  // v1 carrying the v2-only section is drift, as is v2 missing it.
  json::Value v1_with_faults = v1;
  v1_with_faults.set("faults", json::Value());
  EXPECT_FALSE(validate_stats_json(v1_with_faults).empty());

  json::Value v2_without_faults = v1;
  v2_without_faults.set("schema", json::Value(kStatsSchema));
  EXPECT_FALSE(validate_stats_json(v2_without_faults).empty());

  // Internal consistency: a failover count without a failed PE (or the
  // reverse) cannot come from the real counters.
  json::Value inconsistent = v2;
  json::Value faults = json::Value::object();
  faults.set("dma_retries", json::Value(std::int64_t{0}));
  faults.set("backoff_seconds", json::Value(0.0));
  faults.set("hangs", json::Value(std::int64_t{0}));
  faults.set("hang_seconds", json::Value(0.0));
  faults.set("slowdown_seconds", json::Value(0.0));
  faults.set("failovers", json::Value(std::int64_t{1}));
  faults.set("downtime_seconds", json::Value(1.0e-3));
  faults.set("migrated_tasks", json::Value(std::int64_t{2}));
  faults.set("migrated_bytes", json::Value(8192.0));
  faults.set("failed_pe", json::Value(std::int64_t{-1}));  // inconsistent
  faults.set("fail_instance", json::Value(std::int64_t{10}));
  faults.set("predicted_post_throughput", json::Value(900.0));
  inconsistent.set("faults", std::move(faults));
  EXPECT_FALSE(validate_stats_json(inconsistent).empty());
}

TEST(StatsRoundTrip, ValidatorCatchesSchemaDrift) {
  WorkedExample ex;
  const obs::Report report = simulate_report(ex, 50);
  json::Value doc = stats_to_json(report);
  EXPECT_TRUE(validate_stats_json(doc).empty());

  json::Value wrong_tag = doc;
  wrong_tag.set("schema", json::Value("cellstream-stats-v0"));
  EXPECT_FALSE(validate_stats_json(wrong_tag).empty());

  json::Value inconsistent = doc;
  json::Value crosscheck = json::Value::object();
  crosscheck.set("applicable", json::Value(true));
  crosscheck.set("tolerance", json::Value(0.05));
  crosscheck.set("ok", json::Value(false));  // but nothing flagged
  crosscheck.set("flagged", json::Value::array());
  inconsistent.set("crosscheck", std::move(crosscheck));
  EXPECT_FALSE(validate_stats_json(inconsistent).empty());

  EXPECT_FALSE(validate_stats_json(json::Value(1.0)).empty());
}

}  // namespace
}  // namespace cellstream::report
