#include "report/table.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace cellstream::report {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, NumericRowsUseFormatNumber) {
  Table t({"x", "y"});
  t.add_numeric_row({1.5, 0.25});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "x,y\n1.5,0.25\n");
}

TEST(Table, CsvRoundTripShape) {
  Table t({"h1", "h2", "h3"});
  t.add_row({"a", "b", "c"});
  t.add_row({"d", "e", "f"});
  EXPECT_EQ(t.to_csv(), "h1,h2,h3\na,b,c\nd,e,f\n");
}

TEST(RenderSeries, MergesXAxes) {
  Series s1{"up", {{1, 10}, {2, 20}}};
  Series s2{"down", {{2, 5}, {3, 1}}};
  const std::string out = render_series("x", {s1, s2});
  EXPECT_NE(out.find("up"), std::string::npos);
  EXPECT_NE(out.find("down"), std::string::npos);
  // x = 1 has no "down" sample: a dash placeholder appears.
  EXPECT_NE(out.find("-"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
}

TEST(Summarize, BasicStatistics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(s.count, 4u);
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace cellstream::report
