// The predicted-vs-observed occupation report (invariant I7's engine):
// green on honest simulated counters, flagging corrupted ones, and
// inapplicable for wall-clock or empty runs.

#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "core/steady_state.hpp"
#include "sim/simulator.hpp"

namespace cellstream::obs {
namespace {

struct Fixture {
  TaskGraph graph{"report-fixture"};
  Mapping mapping{0, 0};

  Fixture() {
    graph.add_task({"a", 0.5e-3, 0.4e-3, 0, 1024.0, 0.0, false});
    graph.add_task({"b", 0.6e-3, 0.3e-3, 0, 0.0, 0.0, false});
    graph.add_task({"c", 0.4e-3, 0.3e-3, 0, 0.0, 512.0, false});
    graph.add_edge(0, 1, 4096.0);
    graph.add_edge(1, 2, 2048.0);
    mapping = Mapping(3, 0);
    mapping.assign(1, 1);
    mapping.assign(2, 2);
  }
};

TEST(Report, SimulatedRunCrossChecksGreen) {
  Fixture f;
  const SteadyStateAnalysis ss(f.graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  options.instances = 300;
  const sim::SimResult run = sim::simulate(ss, f.mapping, options);

  const Report report = build_report(ss, f.mapping, run.counters);
  EXPECT_EQ(report.graph, "report-fixture");
  EXPECT_EQ(report.tasks, 3u);
  EXPECT_EQ(report.edges, 2u);
  EXPECT_EQ(report.instances, 300u);
  EXPECT_TRUE(report.crosscheck_applicable);
  EXPECT_TRUE(report.crosscheck_ok()) << report.flagged.front();
  ASSERT_EQ(report.resources.size(), 3u * ss.platform().pe_count());
  // Each used resource's observation matches the model (ratio ~= 1); the
  // one-sided check leaves margin only above.
  for (const ResourceSample& sample : report.resources) {
    if (sample.predicted > 0.0) {
      EXPECT_NEAR(sample.ratio(), 1.0, 1e-6) << sample.resource;
    } else {
      EXPECT_EQ(sample.observed, 0.0) << sample.resource;
    }
  }
  EXPECT_DOUBLE_EQ(report.predicted_period, ss.usage(f.mapping).period);
  EXPECT_GT(report.observed_throughput, 0.0);
  EXPECT_FALSE(report.convergence.empty());
}

TEST(Report, FlagsInflatedObservedOccupation) {
  Fixture f;
  const SteadyStateAnalysis ss(f.graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  options.instances = 100;
  sim::SimResult run = sim::simulate(ss, f.mapping, options);

  // Corrupt the counters the way a misattribution bug would: bytes that
  // the model never routed through SPE1's out interface.
  run.counters.pe[1].bytes_out += 1e9;
  const Report bad = build_report(ss, f.mapping, run.counters);
  EXPECT_TRUE(bad.crosscheck_applicable);
  EXPECT_FALSE(bad.crosscheck_ok());
  ASSERT_EQ(bad.flagged.size(), 1u);
  EXPECT_NE(bad.flagged[0].find("SPE0 out"), std::string::npos)
      << bad.flagged[0];
}

TEST(Report, FlagsDmaQueuePeaksBeyondHardwareDepth) {
  Fixture f;
  const SteadyStateAnalysis ss(f.graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  options.instances = 50;
  sim::SimResult run = sim::simulate(ss, f.mapping, options);
  run.counters.pe[1].mfc_queue_peak = ss.platform().spe_dma_slots + 1;
  run.counters.pe[2].proxy_queue_peak = ss.platform().ppe_to_spe_dma_slots + 1;

  const Report report = build_report(ss, f.mapping, run.counters);
  EXPECT_EQ(report.flagged.size(), 2u);
}

TEST(Report, WallClockCountersAreNotCrossChecked) {
  Fixture f;
  const SteadyStateAnalysis ss(f.graph, platforms::qs22_single_cell());
  sim::SimOptions options;
  options.instances = 50;
  sim::SimResult run = sim::simulate(ss, f.mapping, options);
  run.counters.domain = TimeDomain::kWall;
  run.counters.pe[0].bytes_in += 1e12;  // would flag in the sim domain

  const Report report = build_report(ss, f.mapping, run.counters);
  EXPECT_FALSE(report.crosscheck_applicable);
  EXPECT_TRUE(report.crosscheck_ok());
}

TEST(Report, RejectsCountersOfTheWrongPlatform) {
  Fixture f;
  const SteadyStateAnalysis ss(f.graph, platforms::qs22_single_cell());
  Counters wrong;
  wrong.pe.resize(2);  // platform has 9 PEs
  EXPECT_THROW(build_report(ss, f.mapping, wrong), Error);
}

}  // namespace
}  // namespace cellstream::obs
