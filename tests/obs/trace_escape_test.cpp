// Regression tests for the hardened chrome-trace writer: hostile task
// names (quotes, backslashes, control characters) must yield a parseable
// JSON document, and corrupt event windows (NaN/Inf timestamps, negative
// durations) must not poison the file.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "support/json.hpp"

namespace cellstream::obs {
namespace {

TraceEvent compute_event(std::string name, double start, double end) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kCompute;
  e.name = std::move(name);
  e.pe = 0;
  e.src_pe = 0;
  e.start = start;
  e.end = end;
  e.instance = 0;
  e.task = 0;
  return e;
}

TEST(TraceEscape, HostileNamesStillProduceValidJson) {
  // Every class the escaper must handle: quote, backslash, the named
  // control escapes, an arbitrary control byte, and multi-byte UTF-8.
  const std::string hostile =
      "ta\"sk\\one\nwith\ttabs\rand\x01ctrl\x1f \xE2\x82\xAC";
  const std::vector<TraceEvent> events = {
      compute_event(hostile, 0.0, 1.0e-3),
  };
  const std::string text =
      chrome_trace_json(events, platforms::qs22_single_cell());

  const json::Value doc = json::Value::parse(text);
  ASSERT_TRUE(doc.is_array());
  // Find the duration event (after the thread_name metadata) and check
  // the name round-tripped through escaping unchanged.
  bool found = false;
  for (const json::Value& item : doc.items()) {
    if (item.at("ph").as_string() != "X") continue;
    EXPECT_EQ(item.at("name").as_string(), hostile);
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TraceEscape, NonFiniteWindowsAreSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<TraceEvent> events = {
      compute_event("bad-start", nan, 1.0),
      compute_event("bad-end", 0.0, inf),
      compute_event("good", 0.0, 1.0e-3),
  };
  const std::string text =
      chrome_trace_json(events, platforms::qs22_single_cell());
  const json::Value doc = json::Value::parse(text);
  std::size_t durations = 0;
  for (const json::Value& item : doc.items()) {
    if (item.at("ph").as_string() != "X") continue;
    ++durations;
    EXPECT_EQ(item.at("name").as_string(), "good");
  }
  EXPECT_EQ(durations, 1u);
}

TEST(TraceEscape, NegativeDurationsClampToZeroLength) {
  const std::vector<TraceEvent> events = {
      compute_event("backwards", 2.0e-3, 1.0e-3),
  };
  const std::string text =
      chrome_trace_json(events, platforms::qs22_single_cell());
  const json::Value doc = json::Value::parse(text);
  bool found = false;
  for (const json::Value& item : doc.items()) {
    if (item.at("ph").as_string() != "X") continue;
    found = true;
    EXPECT_DOUBLE_EQ(item.at("ts").as_number(), 2.0e-3 * 1e6);
    EXPECT_DOUBLE_EQ(item.at("dur").as_number(), 0.0);
  }
  EXPECT_TRUE(found);
}

TEST(TraceEscape, PlatformPeNamesAreEscapedInMetadata) {
  // The writer escapes pe_name() output too; the stock platforms have
  // benign names, so this documents the whole file parses regardless.
  const std::string text =
      chrome_trace_json({}, platforms::playstation3());
  const json::Value doc = json::Value::parse(text);
  for (const json::Value& item : doc.items()) {
    EXPECT_EQ(item.at("ph").as_string(), "M");
  }
  EXPECT_GT(doc.size(), 0u);
}

}  // namespace
}  // namespace cellstream::obs
