// obs::Recorder semantics: accumulation, derived throughputs, and the
// exactly-once flush contract multi-threaded engines rely on — plus the
// end-to-end pin that a simulated run's counters reproduce the
// steady-state model's per-resource byte/compute attribution exactly
// (the satellite audit of kMemRead/kMemWrite interface direction).

#include "obs/recorder.hpp"

#include <gtest/gtest.h>

#include "core/steady_state.hpp"
#include "sim/simulator.hpp"

namespace cellstream::obs {
namespace {

TEST(Recorder, AccumulatesPerPeEvents) {
  Recorder r(3, TimeDomain::kSimulated);
  r.on_execution(0, 2.0e-3);
  r.on_execution(0, 3.0e-3);
  r.on_overhead(0, 1.0e-6);
  r.on_transfer_issued(1);
  r.on_bytes_in(1, 4096.0);
  r.on_bytes_out(2, 128.0);
  r.on_mfc_queue_depth(1, 5);
  r.on_mfc_queue_depth(1, 3);  // below the peak: must not lower it
  r.on_proxy_queue_depth(2, 7);
  r.on_instance_complete(0.25);
  r.on_instance_complete(0.50);
  r.set_elapsed(0.5);

  const Counters& c = r.counters();
  EXPECT_EQ(c.pe[0].tasks_executed, 2u);
  EXPECT_DOUBLE_EQ(c.pe[0].compute_seconds, 5.0e-3);
  EXPECT_DOUBLE_EQ(c.pe[0].overhead_seconds, 1.0e-6);
  EXPECT_EQ(c.pe[1].transfers_issued, 1u);
  EXPECT_DOUBLE_EQ(c.pe[1].bytes_in, 4096.0);
  EXPECT_DOUBLE_EQ(c.pe[2].bytes_out, 128.0);
  EXPECT_EQ(c.pe[1].mfc_queue_peak, 5u);
  EXPECT_EQ(c.pe[2].proxy_queue_peak, 7u);
  EXPECT_EQ(c.instances_completed(), 2u);
  EXPECT_EQ(c.total_executions(), 2u);
  EXPECT_EQ(c.total_transfers(), 1u);
  EXPECT_DOUBLE_EQ(c.observed_throughput(), 2.0 / 0.5);
}

TEST(Recorder, RejectsOutOfRangePe) {
  Recorder r(2, TimeDomain::kSimulated);
  EXPECT_THROW(r.on_execution(2, 1.0), Error);
}

TEST(Recorder, FlushIsExactlyOncePerPe) {
  Recorder r(2, TimeDomain::kWall);
  PeCounters delta;
  delta.tasks_executed = 10;
  delta.compute_seconds = 0.125;
  delta.bytes_in = 64.0;
  delta.mfc_queue_peak = 3;
  r.flush_pe(0, delta);
  EXPECT_EQ(r.counters().pe[0].tasks_executed, 10u);
  EXPECT_DOUBLE_EQ(r.counters().pe[0].compute_seconds, 0.125);
  // A second flush of the same PE is the runtime's stop/drain contract
  // broken (every counter would double) — it must be a caught bug.
  EXPECT_THROW(r.flush_pe(0, delta), Error);
  // Other PEs are independent.
  r.flush_pe(1, delta);
  EXPECT_EQ(r.counters().pe[1].tasks_executed, 10u);
}

TEST(Recorder, ResetRearmsFlushes) {
  Recorder r(1, TimeDomain::kWall);
  r.flush_pe(0, PeCounters{});
  r.reset(1, TimeDomain::kWall);
  EXPECT_NO_THROW(r.flush_pe(0, PeCounters{}));
}

TEST(Recorder, TakeMovesCountersOut) {
  Recorder r(1, TimeDomain::kSimulated);
  r.on_execution(0, 1.0);
  const Counters taken = r.take();
  EXPECT_EQ(taken.pe[0].tasks_executed, 1u);
  EXPECT_TRUE(r.counters().pe.empty());
}

TEST(Recorder, SteadyThroughputUsesMiddleHalf) {
  Recorder r(1, TimeDomain::kSimulated);
  // 8 instances: slow start (1s apart), fast middle (0.1s), slow tail.
  const double times[] = {1.0, 2.0, 2.1, 2.2, 2.3, 2.4, 3.4, 4.4};
  for (double t : times) r.on_instance_complete(t);
  r.set_elapsed(4.4);
  // Middle half = instances [2, 6): completions 2.0 .. 2.4 -> 4/0.4 inst/s.
  EXPECT_NEAR(r.counters().steady_throughput(), 4.0 / 0.4, 1e-9);
  EXPECT_NEAR(r.counters().observed_throughput(), 8.0 / 4.4, 1e-12);
}

// The accounting pin for the interface-direction audit: simulate a
// mapping that exercises every attribution path (remote edges in both
// directions, local edges, memory reads and writes) and require the
// observed bytes to equal the steady-state model's prediction times the
// instance count *exactly* — the simulator moves exactly the modeled
// bytes, so any discrepancy is misattribution, not noise.
TEST(Recorder, SimulatedCountersMatchSteadyStateUsageExactly) {
  TaskGraph g("attribution");
  g.add_task({"read", 0.4e-3, 0.3e-3, 0, 2048.0, 0.0, false});
  g.add_task({"mid", 0.5e-3, 0.2e-3, 0, 0.0, 0.0, false});
  g.add_task({"local", 0.3e-3, 0.2e-3, 0, 0.0, 0.0, false});
  g.add_task({"write", 0.4e-3, 0.3e-3, 0, 0.0, 1024.0, false});
  g.add_edge(0, 1, 4096.0);  // remote: PPE0 -> SPE1
  g.add_edge(1, 2, 512.0);   // local: SPE1 -> SPE1
  g.add_edge(2, 3, 8192.0);  // remote: SPE1 -> PPE0
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(4, 0);
  m.assign(1, 1);
  m.assign(2, 1);

  sim::SimOptions options;
  options.instances = 200;
  const sim::SimResult run = sim::simulate(ss, m, options);
  const ResourceUsage usage = ss.usage(m);
  const auto n = static_cast<double>(options.instances);

  ASSERT_EQ(run.counters.pe.size(), ss.platform().pe_count());
  for (PeId pe = 0; pe < ss.platform().pe_count(); ++pe) {
    const PeCounters& c = run.counters.pe[pe];
    // Bytes are sums of exact per-instance contributions: equality holds
    // to the last bit (the sim adds the same doubles the model multiplies).
    EXPECT_DOUBLE_EQ(c.bytes_in, usage.incoming_bytes[pe] * n)
        << ss.platform().pe_name(pe) << " in";
    EXPECT_DOUBLE_EQ(c.bytes_out, usage.outgoing_bytes[pe] * n)
        << ss.platform().pe_name(pe) << " out";
    // Compute accumulates one addend per execution; allow rounding drift.
    EXPECT_NEAR(c.compute_seconds, usage.compute_seconds[pe] * n,
                1e-9 * (1.0 + usage.compute_seconds[pe] * n))
        << ss.platform().pe_name(pe) << " compute";
  }
  // Spot-check the directions: the memory read lands on the reader's in
  // interface, the memory write on the writer's out interface (1g/1h).
  EXPECT_DOUBLE_EQ(run.counters.pe[0].bytes_in, (2048.0 + 8192.0) * n);
  EXPECT_DOUBLE_EQ(run.counters.pe[0].bytes_out, (4096.0 + 1024.0) * n);
  EXPECT_DOUBLE_EQ(run.counters.pe[1].bytes_in, 4096.0 * n);
  EXPECT_DOUBLE_EQ(run.counters.pe[1].bytes_out, 8192.0 * n);
  EXPECT_EQ(run.counters.total_executions(),
            static_cast<std::uint64_t>(options.instances) * g.task_count());
  EXPECT_EQ(run.counters.instances_completed(),
            static_cast<std::uint64_t>(options.instances));
  EXPECT_EQ(run.counters.domain, TimeDomain::kSimulated);
}

}  // namespace
}  // namespace cellstream::obs
