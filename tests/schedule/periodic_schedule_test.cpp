#include "schedule/periodic_schedule.hpp"

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "sim/simulator.hpp"

namespace cellstream::schedule {
namespace {

Task make_task(double wppe, double wspe, int peek = 0) {
  Task t;
  t.wppe = wppe;
  t.wspe = wspe;
  t.peek = peek;
  return t;
}

TaskGraph chain3() {
  TaskGraph g("chain3");
  g.add_task(make_task(1e-3, 0.5e-3));
  g.add_task(make_task(2e-3, 1e-3));
  g.add_task(make_task(1e-3, 0.5e-3, 1));
  g.add_edge(0, 1, 1024.0);
  g.add_edge(1, 2, 1024.0);
  return g;
}

TEST(PeriodicSchedule, PeriodMatchesAnalysis) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  const PeriodicSchedule sched(ss, m);
  EXPECT_DOUBLE_EQ(sched.period(), ss.period(m));
  EXPECT_DOUBLE_EQ(sched.throughput(), ss.throughput(m));
}

TEST(PeriodicSchedule, SlotsArePackedTopologicallyPerPe) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const Mapping m = ppe_only_mapping(g);
  const PeriodicSchedule sched(ss, m);
  const auto& slots = sched.pe_timelines()[0];
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_DOUBLE_EQ(slots[0].offset, 0.0);
  EXPECT_DOUBLE_EQ(slots[1].offset, 1e-3);
  EXPECT_DOUBLE_EQ(slots[2].offset, 3e-3);
  EXPECT_NO_THROW(sched.validate());
}

TEST(PeriodicSchedule, TaskStartFollowsFirstPeriodRecurrence) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  const PeriodicSchedule sched(ss, m);
  const auto& fp = ss.first_periods();
  const double T = sched.period();
  // Task 0 instance 0 starts in period fp[0] at its offset (0 on its PE).
  EXPECT_NEAR(sched.task_start(0, 0), fp[0] * T, 1e-15);
  EXPECT_NEAR(sched.task_start(1, 0), fp[1] * T, 1e-15);
  // Instance i shifts by exactly i periods.
  EXPECT_NEAR(sched.task_start(1, 5) - sched.task_start(1, 0), 5 * T, 1e-12);
}

TEST(PeriodicSchedule, WarmupCoversDeepestTask) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const PeriodicSchedule sched(ss, ppe_only_mapping(g));
  const auto& fp = ss.first_periods();
  EXPECT_EQ(sched.warmup_periods(), fp[2] + 1);
  EXPECT_DOUBLE_EQ(sched.warmup_seconds(),
                   sched.period() * static_cast<double>(fp[2] + 1));
}

TEST(PeriodicSchedule, CommDemandsOnlyForRemoteEdges) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(3, 0);
  m.assign(2, 1);  // only edge 1->2 is remote
  const PeriodicSchedule sched(ss, m);
  ASSERT_EQ(sched.comm_demands().size(), 1u);
  const CommDemand& c = sched.comm_demands()[0];
  EXPECT_EQ(c.edge, 1u);
  EXPECT_EQ(c.src, 0u);
  EXPECT_EQ(c.dst, 1u);
  EXPECT_DOUBLE_EQ(c.bytes, 1024.0);
  EXPECT_DOUBLE_EQ(c.bandwidth_share, 1024.0 / sched.period());
}

TEST(PeriodicSchedule, StreamMakespanBeatsNaiveSerialExecution) {
  const TaskGraph g = chain3();
  const CellPlatform p = platforms::qs22_single_cell();
  const SteadyStateAnalysis ss(g, p);
  Mapping m(3, 0);
  m.assign(1, 1);
  m.assign(2, 2);
  const PeriodicSchedule sched(ss, m);
  const std::int64_t n = 1000;
  // Pipelined: ~n * period + warmup; serial would be n * sum of work.
  const double serial = 1000.0 * (1e-3 + 1e-3 + 0.5e-3);
  EXPECT_LT(sched.stream_makespan(n), serial);
  EXPECT_GE(sched.stream_makespan(n),
            static_cast<double>(n - 1) * sched.period());
}

class ScheduleValidation : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleValidation, RandomGraphsValidateUnderEveryHeuristic) {
  gen::DagGenParams params;
  params.task_count = 20;
  params.seed = static_cast<std::uint64_t>(GetParam()) * 13 + 5;
  TaskGraph g = gen::daggen_random(params);
  gen::set_ccr(g, 0.775 + 0.7 * (GetParam() % 3));
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  for (const char* name : {"ppe-only", "greedy-mem", "greedy-cpu"}) {
    const Mapping m = mapping::run_heuristic(name, ss);
    const PeriodicSchedule sched(ss, m);
    EXPECT_NO_THROW(sched.validate()) << name;
    EXPECT_GT(sched.warmup_periods(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleValidation, ::testing::Range(0, 8));

TEST(PeriodicSchedule, TextRenderingsMentionEverything) {
  const TaskGraph g = gen::audio_encoder_graph(4);
  const SteadyStateAnalysis ss(g, platforms::playstation3());
  const Mapping m = mapping::greedy_cpu(ss);
  const PeriodicSchedule sched(ss, m);
  const std::string text = sched.to_text();
  EXPECT_NE(text.find("period"), std::string::npos);
  EXPECT_NE(text.find("frame_reader"), std::string::npos);
  const std::string gantt = sched.to_gantt(3, 48);
  EXPECT_NE(gantt.find("legend:"), std::string::npos);
  EXPECT_NE(gantt.find("PPE0"), std::string::npos);
  EXPECT_THROW(sched.to_gantt(0), Error);
}

TEST(PeriodicSchedule, SelfTimedSimulatorKeepsUpWithTheStaticSchedule) {
  // The periodic schedule is one valid execution; the work-conserving
  // simulator (with negligible overheads) must complete a stream at least
  // as fast as the schedule's throughput predicts, up to its fill/drain
  // transients, and never faster than the period bound allows.
  TaskGraph g("pipe");
  for (int i = 0; i < 5; ++i) {
    g.add_task(make_task(0.8e-3, 0.4e-3, i == 2 ? 1 : 0));
  }
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1, 2048.0);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  Mapping m(5, 0);
  for (TaskId t = 1; t < 5; ++t) m.assign(t, t);
  const PeriodicSchedule sched(ss, m);

  sim::SimOptions o;
  o.instances = 1500;
  o.dispatch_overhead = 1e-9;
  o.dma_issue_overhead = 1e-9;
  const sim::SimResult run = sim::simulate(ss, m, o);
  const double schedule_makespan = sched.stream_makespan(1500);
  EXPECT_LE(run.makespan, schedule_makespan * 1.05);
  // And no faster than the period bound (modulo fill/drain accounting).
  EXPECT_GE(run.makespan, 1499.0 * sched.period() * 0.95);
}

TEST(PeriodicSchedule, RejectsMismatchedMapping) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  EXPECT_THROW(PeriodicSchedule(ss, Mapping(99, 0)), Error);
}

TEST(PeriodicSchedule, InstanceQueriesValidateArguments) {
  const TaskGraph g = chain3();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  const PeriodicSchedule sched(ss, ppe_only_mapping(g));
  EXPECT_THROW(sched.task_start(99, 0), Error);
  EXPECT_THROW(sched.task_start(0, -1), Error);
  EXPECT_THROW(sched.stream_makespan(0), Error);
}

}  // namespace
}  // namespace cellstream::schedule
