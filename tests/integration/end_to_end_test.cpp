// Integration tests across the whole stack: generator -> analysis ->
// mapping strategies (including the MILP) -> simulator, on the paper's
// actual evaluation configurations.

#include <gtest/gtest.h>

#include "gen/apps.hpp"
#include "gen/daggen.hpp"
#include "mapping/heuristics.hpp"
#include "mapping/local_search.hpp"
#include "mapping/milp_mapper.hpp"
#include "sim/simulator.hpp"

namespace cellstream {
namespace {

sim::SimOptions quick_sim(std::size_t instances = 800) {
  sim::SimOptions o;
  o.instances = instances;
  return o;
}

TEST(EndToEnd, PaperGraph1HeadlineConfiguration) {
  // Graph 1, CCR 0.775, 8 SPEs: the paper's Fig. 6 configuration.
  TaskGraph g = gen::paper_graph(0);
  gen::set_ccr(g, 0.775);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());

  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 30.0;
  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(ss, opts);
  EXPECT_TRUE(ss.feasible(lp.mapping));

  const double base = ss.period(mapping::ppe_only(ss));
  const double lp_speedup = base / lp.period;
  const double cpu_speedup = base / ss.period(mapping::greedy_cpu(ss));
  const double mem_speedup = base / ss.period(mapping::greedy_mem(ss));

  // Paper shape: LP clearly ahead of both heuristics, in the 2-3x band.
  EXPECT_GT(lp_speedup, 1.8);
  EXPECT_LT(lp_speedup, 3.5);
  EXPECT_GT(lp_speedup, cpu_speedup * 1.1);
  EXPECT_GT(lp_speedup, mem_speedup * 1.1);

  // Simulated execution reaches most of the prediction and never beats it.
  const sim::SimResult run = sim::simulate(ss, lp.mapping, quick_sim(2000));
  const double ratio = run.steady_throughput * lp.period;
  EXPECT_GT(ratio, 0.85);
  EXPECT_LE(ratio, 1.01);
}

TEST(EndToEnd, CcrIncreaseDegradesOptimalSpeedup) {
  // The monotone collapse behind Fig. 8, on the chain graph (fast MILP).
  double previous = 1e9;
  for (double ccr : {0.775, 2.3, 4.6}) {
    TaskGraph g = gen::paper_graph(2);
    gen::set_ccr(g, ccr);
    const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
    mapping::MilpMapperOptions opts;
    opts.milp.time_limit_seconds = 15.0;
    const mapping::MilpMapperResult lp =
        mapping::solve_optimal_mapping(ss, opts);
    const double speedup = ss.period(mapping::ppe_only(ss)) / lp.period;
    EXPECT_LT(speedup, previous * 1.05) << "ccr " << ccr;
    previous = speedup;
  }
  EXPECT_LT(previous, 1.6);  // near-PPE-only at CCR 4.6
}

TEST(EndToEnd, SpeCountImprovesOptimalThroughput) {
  TaskGraph g = gen::paper_graph(2);
  gen::set_ccr(g, 0.775);
  double previous = 0.0;
  for (std::size_t spes : {0u, 4u, 8u}) {
    const SteadyStateAnalysis ss(g, platforms::qs22_with_spes(spes));
    mapping::MilpMapperOptions opts;
    opts.milp.time_limit_seconds = 15.0;
    const mapping::MilpMapperResult lp =
        mapping::solve_optimal_mapping(ss, opts);
    EXPECT_GE(lp.throughput, previous * 0.999) << spes << " SPEs";
    previous = lp.throughput;
  }
}

TEST(EndToEnd, AudioEncoderBenefitsFromSpes) {
  const TaskGraph g = gen::audio_encoder_graph();
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 15.0;
  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(ss, opts);
  const double speedup = ss.period(mapping::ppe_only(ss)) / lp.period;
  EXPECT_GT(speedup, 1.5);
  const sim::SimResult run = sim::simulate(ss, lp.mapping, quick_sim());
  EXPECT_GT(run.steady_throughput, 0.0);
  EXPECT_LE(run.steady_throughput, lp.throughput * 1.02);
}

TEST(EndToEnd, VideoPipelineRunsOnEveryPreset) {
  const TaskGraph g = gen::video_pipeline_graph();
  for (const CellPlatform& p :
       {platforms::playstation3(), platforms::qs22_single_cell()}) {
    const SteadyStateAnalysis ss(g, p);
    const Mapping m = mapping::local_search_heuristic(ss);
    ASSERT_TRUE(ss.feasible(m));
    const sim::SimResult run = sim::simulate(ss, m, quick_sim(500));
    EXPECT_EQ(run.completion_times.size(), 500u);
  }
}

TEST(EndToEnd, SerializedGraphReproducesIdenticalResults) {
  // Round-trip a paper graph through text serialization; analysis and
  // simulation must be bit-identical.
  TaskGraph g = gen::paper_graph(2);
  gen::set_ccr(g, 1.5);
  const TaskGraph copy = TaskGraph::from_text(g.to_text());
  const SteadyStateAnalysis ss1(g, platforms::qs22_single_cell());
  const SteadyStateAnalysis ss2(copy, platforms::qs22_single_cell());
  const Mapping m1 = mapping::greedy_cpu(ss1);
  const Mapping m2 = mapping::greedy_cpu(ss2);
  EXPECT_EQ(m1, m2);
  EXPECT_DOUBLE_EQ(ss1.period(m1), ss2.period(m2));
  const sim::SimResult r1 = sim::simulate(ss1, m1, quick_sim(300));
  const sim::SimResult r2 = sim::simulate(ss2, m2, quick_sim(300));
  EXPECT_EQ(r1.completion_times, r2.completion_times);
}

TEST(EndToEnd, Milp5PercentGapNeverLosesToLocalSearchByMore) {
  // Even when the MILP stops at its gap, it must stay within 5% (plus
  // tolerance) of any other feasible mapping we can construct.
  TaskGraph g = gen::paper_graph(0);
  gen::set_ccr(g, 0.775);
  const SteadyStateAnalysis ss(g, platforms::qs22_single_cell());
  mapping::MilpMapperOptions opts;
  opts.milp.time_limit_seconds = 30.0;
  const mapping::MilpMapperResult lp = mapping::solve_optimal_mapping(ss, opts);
  const Mapping polished = mapping::local_search_heuristic(ss);
  EXPECT_LE(lp.period, ss.period(polished) * 1.0 + 1e-12);
}

}  // namespace
}  // namespace cellstream
